#include "nphard/ept.hpp"

#include <algorithm>
#include <set>

namespace tgroom {

bool is_triangle(const Graph& g, const std::array<EdgeId, 3>& edges) {
  std::set<EdgeId> distinct(edges.begin(), edges.end());
  if (distinct.size() != 3) return false;
  std::set<NodeId> nodes;
  for (EdgeId e : edges) {
    if (e < 0 || e >= g.edge_count()) return false;
    if (g.edge(e).is_virtual) return false;
    nodes.insert(g.edge(e).u);
    nodes.insert(g.edge(e).v);
  }
  if (nodes.size() != 3) return false;
  // Three edges on three nodes with no parallel edges is exactly K_3.
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (EdgeId e : edges) {
    pairs.insert(std::minmax(g.edge(e).u, g.edge(e).v));
  }
  return pairs.size() == 3;
}

bool is_triangle_partition(const Graph& g,
                           const TrianglePartition& partition) {
  std::vector<char> covered(static_cast<std::size_t>(g.edge_count()), 0);
  for (const auto& tri : partition.triangles) {
    if (!is_triangle(g, tri)) return false;
    for (EdgeId e : tri) {
      if (covered[static_cast<std::size_t>(e)]) return false;
      covered[static_cast<std::size_t>(e)] = 1;
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!g.edge(e).is_virtual && !covered[static_cast<std::size_t>(e)])
      return false;
  }
  return true;
}

bool ept_feasible_quickcheck(const Graph& g) {
  if (g.real_edge_count() % 3 != 0) return false;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.real_degree(v) % 2 == 1) return false;
  }
  return true;
}

namespace {

class EptSearcher {
 public:
  EptSearcher(const Graph& g, long long budget) : g_(g), budget_(budget) {
    covered_.assign(static_cast<std::size_t>(g.edge_count()), 0);
    // Virtual edges (none expected) are treated as covered.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (g.edge(e).is_virtual) covered_[static_cast<std::size_t>(e)] = 1;
    }
  }

  bool search() {
    TGROOM_CHECK_MSG(nodes_++ < budget_, "EPT search budget exhausted");
    EdgeId pivot = kInvalidEdge;
    for (EdgeId e = 0; e < g_.edge_count(); ++e) {
      if (!covered_[static_cast<std::size_t>(e)]) {
        pivot = e;
        break;
      }
    }
    if (pivot == kInvalidEdge) return true;

    const Edge& edge = g_.edge(pivot);
    // Try every uncovered triangle through the pivot edge.
    for (const Incidence& iu : g_.incident(edge.u)) {
      if (iu.edge == pivot || covered_[static_cast<std::size_t>(iu.edge)])
        continue;
      NodeId w = iu.neighbor;
      for (const Incidence& iv : g_.incident(edge.v)) {
        if (iv.neighbor != w) continue;
        if (covered_[static_cast<std::size_t>(iv.edge)]) continue;
        std::array<EdgeId, 3> tri{pivot, iu.edge, iv.edge};
        for (EdgeId e : tri) covered_[static_cast<std::size_t>(e)] = 1;
        chosen_.push_back(tri);
        if (search()) return true;
        chosen_.pop_back();
        for (EdgeId e : tri) covered_[static_cast<std::size_t>(e)] = 0;
      }
    }
    return false;
  }

  TrianglePartition result() const { return TrianglePartition{chosen_}; }

 private:
  const Graph& g_;
  long long budget_;
  long long nodes_ = 0;
  std::vector<char> covered_;
  std::vector<std::array<EdgeId, 3>> chosen_;
};

}  // namespace

std::optional<TrianglePartition> solve_ept(const Graph& g,
                                           long long node_budget) {
  if (!ept_feasible_quickcheck(g)) return std::nullopt;
  EptSearcher searcher(g, node_budget);
  if (!searcher.search()) return std::nullopt;
  TrianglePartition partition = searcher.result();
  TGROOM_DCHECK(is_triangle_partition(g, partition));
  return partition;
}

}  // namespace tgroom
