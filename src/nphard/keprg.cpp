#include "nphard/keprg.hpp"

#include "algorithms/exact.hpp"
#include "graph/properties.hpp"

namespace tgroom {

KeprgInstance keprg_from_regular_ept(const Graph& regular_graph) {
  TGROOM_CHECK_MSG(regularity(regular_graph).has_value(),
                   "Theorem 7 reduction expects a regular graph");
  KeprgInstance instance;
  instance.graph = regular_graph;
  instance.k = 3;
  instance.budget_l = regular_graph.real_edge_count();
  return instance;
}

EdgePartition partition_from_triangles(const Graph& g,
                                       const TrianglePartition& triangles) {
  TGROOM_CHECK_MSG(is_triangle_partition(g, triangles),
                   "not a triangle partition");
  EdgePartition partition;
  partition.k = 3;
  for (const auto& tri : triangles.triangles) {
    partition.parts.push_back({tri[0], tri[1], tri[2]});
  }
  TGROOM_DCHECK(sadm_cost(g, partition) == g.real_edge_count());
  return partition;
}

TrianglePartition triangles_from_partition(const Graph& g,
                                           const EdgePartition& partition) {
  TGROOM_CHECK_MSG(partition.k == 3, "Theorem 7 works at k = 3");
  TGROOM_CHECK_MSG(validate_partition(g, partition).ok, "invalid partition");
  TGROOM_CHECK_MSG(sadm_cost(g, partition) == g.real_edge_count(),
                   "cost premise |cost| == m does not hold");
  // Cost m with parts of at most 3 edges forces every part to be a
  // 3-edge/3-node subgraph, i.e. a triangle: a part with e edges spans at
  // least min_nodes_for_edges(e) >= e nodes for e <= 3, with equality only
  // for e == 3 and the complete graph K_3.
  TrianglePartition triangles;
  for (const auto& part : partition.parts) {
    TGROOM_CHECK_MSG(part.size() == 3, "a cost-m partition must use "
                                       "3-edge parts");
    std::array<EdgeId, 3> tri{part[0], part[1], part[2]};
    TGROOM_CHECK_MSG(is_triangle(g, tri), "a cost-m part must be a triangle");
    triangles.triangles.push_back(tri);
  }
  return triangles;
}

bool keprg_decide(const KeprgInstance& instance) {
  ExactResult result = exact_optimal_partition(instance.graph, instance.k);
  TGROOM_CHECK_MSG(result.proven_optimal, "exact search budget exhausted");
  if (instance.graph.real_edge_count() == 0) return 0 <= instance.budget_l;
  return result.cost <= instance.budget_l;
}

}  // namespace tgroom
