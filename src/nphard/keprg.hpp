// Theorem 7: k-Edge-Partitioning of Regular Graphs (KEPRG) is NP-complete,
// by reduction from EPT on regular graphs with k = 3 and L = m.
//
// The reduction is an identity on the graph; the content is the
// equivalence  "cost <= m  ⟺  triangle partition exists"  for k = 3,
// which follows because a part of 3 edges spans >= 3 nodes with equality
// exactly for triangles.  This module makes the equivalence executable.
#pragma once

#include "graph/graph.hpp"
#include "nphard/ept.hpp"
#include "partition/edge_partition.hpp"

namespace tgroom {

struct KeprgInstance {
  Graph graph;
  int k = 3;
  long long budget_l = 0;  // the decision threshold L
};

/// Theorem 7 mapping: same (regular) graph, k = 3, L = m.
KeprgInstance keprg_from_regular_ept(const Graph& regular_graph);

/// Forward direction: a triangle partition is a KEPRG certificate of cost
/// exactly m.
EdgePartition partition_from_triangles(const Graph& g,
                                       const TrianglePartition& triangles);

/// Backward direction: a k=3 partition of cost m must consist of
/// triangles; extracts them (throws CheckError if the cost premise fails).
TrianglePartition triangles_from_partition(const Graph& g,
                                           const EdgePartition& partition);

/// Decides a small KEPRG instance exactly (exhaustive, m <= 24).
bool keprg_decide(const KeprgInstance& instance);

}  // namespace tgroom
