// Lemma 6 gadget: reduce EPT on arbitrary even-degree graphs to EPT on
// Δ-regular graphs.
//
// Construction (paper §4, Figure 2), with one correction: the paper's step
// 6 adds triangles (u_j, w_{j⊖i}, y_{j⊖i}), which repeats the edge
// {w_m, y_m} for every iteration i and so is not simple.  We use
// (u_j, w_{j⊖i}, y_{j⊕i}) instead: all u-w, u-y and w-y pairs are then
// distinct across iterations (2i ≢ 0 and 2(i-i') ≢ 0 mod 3q because
// 2i <= Δ-2 < 3q), each new node still gains exactly degree 2 per
// iteration, and the i-th triangle family remains a perfect triangle layer
// — so the iff-argument of Lemma 6 is unchanged.
#pragma once

#include <array>
#include <vector>

#include "graph/graph.hpp"
#include "nphard/ept.hpp"

namespace tgroom {

struct RegularEptGadget {
  Graph gstar;
  NodeId delta = 0;  // regularity of gstar == Δ(G)

  /// copy_map[c][v] = gstar node for node v of copy c (c = 0, 1, 2).
  std::vector<std::vector<NodeId>> copy_map;

  /// Every helper triangle the construction added (node triples); together
  /// with triangle partitions of the three copies these tile all of gstar.
  std::vector<std::array<NodeId, 3>> helper_triangles;
};

/// Requires a simple graph with all degrees even.  (Lemma 6 observes that
/// a graph with an odd-degree node is a trivial EPT "no", so evenness is
/// WLOG for the reduction.)
RegularEptGadget build_regular_ept_gadget(const Graph& g);

/// Lifts a triangle partition of G to one of gstar: the partition applied
/// to each of the three copies plus all helper triangles.
TrianglePartition lift_triangle_partition(const RegularEptGadget& gadget,
                                          const Graph& g,
                                          const TrianglePartition& of_g);

}  // namespace tgroom
