#include "nphard/gadget.hpp"

#include "graph/properties.hpp"

namespace tgroom {

RegularEptGadget build_regular_ept_gadget(const Graph& g) {
  TGROOM_CHECK_MSG(is_simple(g), "gadget input must be simple");
  for (NodeId v = 0; v < g.node_count(); ++v) {
    TGROOM_CHECK_MSG(g.degree(v) % 2 == 0,
                     "gadget input must have all even degrees");
  }

  RegularEptGadget gadget;
  const NodeId delta = max_degree(g);
  gadget.delta = delta;
  Graph& gs = gadget.gstar;
  if (delta == 0) {
    gadget.copy_map.assign(3, std::vector<NodeId>(
                                  static_cast<std::size_t>(g.node_count()),
                                  kInvalidNode));
    return gadget;  // empty graph: trivially 0-regular
  }

  auto add_helper_triangle = [&](NodeId a, NodeId b, NodeId c) {
    gs.add_edge(a, b);
    gs.add_edge(b, c);
    gs.add_edge(a, c);
    gadget.helper_triangles.push_back({a, b, c});
  };

  // Steps 1-3: three copies of G' = G + per-node padding triangle chains.
  std::vector<NodeId> u_nodes;
  gadget.copy_map.resize(3);
  for (int c = 0; c < 3; ++c) {
    auto& map = gadget.copy_map[static_cast<std::size_t>(c)];
    map.resize(static_cast<std::size_t>(g.node_count()));
    for (NodeId v = 0; v < g.node_count(); ++v) map[static_cast<std::size_t>(v)] = gs.add_node();
    for (const Edge& e : g.edges()) {
      gs.add_edge(map[static_cast<std::size_t>(e.u)],
                  map[static_cast<std::size_t>(e.v)]);
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      NodeId pad = static_cast<NodeId>((delta - g.degree(v)) / 2);
      for (NodeId t = 0; t < pad; ++t) {
        NodeId a = gs.add_node();
        NodeId b = gs.add_node();
        u_nodes.push_back(a);
        u_nodes.push_back(b);
        add_helper_triangle(map[static_cast<std::size_t>(v)], a, b);
      }
    }
  }

  // Step 4: pad the u pool so it can host the regularizing layers.
  while (static_cast<NodeId>(u_nodes.size()) < delta) {
    NodeId a = gs.add_node();
    NodeId b = gs.add_node();
    NodeId c = gs.add_node();
    u_nodes.push_back(a);
    u_nodes.push_back(b);
    u_nodes.push_back(c);
    add_helper_triangle(a, b, c);
  }
  const std::size_t q3 = u_nodes.size();  // the paper's 3q
  TGROOM_CHECK(q3 % 3 == 0);

  // Step 5: w and y pools, each tiled by disjoint triangles.
  std::vector<NodeId> w_nodes(q3), y_nodes(q3);
  for (std::size_t i = 0; i < q3; ++i) w_nodes[i] = gs.add_node();
  for (std::size_t i = 0; i < q3; ++i) y_nodes[i] = gs.add_node();
  for (std::size_t i = 0; i + 2 < q3; i += 3) {
    add_helper_triangle(w_nodes[i], w_nodes[i + 1], w_nodes[i + 2]);
    add_helper_triangle(y_nodes[i], y_nodes[i + 1], y_nodes[i + 2]);
  }

  // Step 6 (corrected offsets): (Δ-2)/2 triangle layers raise every u, w
  // and y node from degree 2 to Δ.
  for (std::size_t i = 1; i <= static_cast<std::size_t>((delta - 2) / 2);
       ++i) {
    for (std::size_t j = 0; j < q3; ++j) {
      NodeId u = u_nodes[j];
      NodeId w = w_nodes[(j + q3 - i % q3) % q3];
      NodeId y = y_nodes[(j + i) % q3];
      add_helper_triangle(u, w, y);
    }
  }

  return gadget;
}

TrianglePartition lift_triangle_partition(const RegularEptGadget& gadget,
                                          const Graph& g,
                                          const TrianglePartition& of_g) {
  TGROOM_CHECK_MSG(is_triangle_partition(g, of_g),
                   "input certificate is not a triangle partition of G");
  TrianglePartition lifted;
  // Copy triangles: translate node triples through copy_map and look up
  // the corresponding gstar edges.
  const Graph& gs = gadget.gstar;
  for (int c = 0; c < 3; ++c) {
    const auto& map = gadget.copy_map[static_cast<std::size_t>(c)];
    for (const auto& tri : of_g.triangles) {
      std::array<EdgeId, 3> mapped{};
      for (int idx = 0; idx < 3; ++idx) {
        const Edge& e = g.edge(tri[static_cast<std::size_t>(idx)]);
        EdgeId found = gs.find_edge(map[static_cast<std::size_t>(e.u)],
                                    map[static_cast<std::size_t>(e.v)]);
        TGROOM_CHECK(found != kInvalidEdge);
        mapped[static_cast<std::size_t>(idx)] = found;
      }
      lifted.triangles.push_back(mapped);
    }
  }
  for (const auto& tri : gadget.helper_triangles) {
    std::array<EdgeId, 3> mapped{
        gs.find_edge(tri[0], tri[1]),
        gs.find_edge(tri[1], tri[2]),
        gs.find_edge(tri[0], tri[2]),
    };
    for (EdgeId e : mapped) TGROOM_CHECK(e != kInvalidEdge);
    lifted.triangles.push_back(mapped);
  }
  return lifted;
}

}  // namespace tgroom
