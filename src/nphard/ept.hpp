// Edge-Partition into Triangles (EPT) — the NP-complete anchor problem
// (Holyer [10]) of the paper's §4 reduction chain.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

struct TrianglePartition {
  std::vector<std::array<EdgeId, 3>> triangles;
};

/// True when the three edges induce a triangle (three distinct nodes, three
/// distinct edges pairwise sharing endpoints).
bool is_triangle(const Graph& g, const std::array<EdgeId, 3>& edges);

/// True when the partition covers every real edge exactly once with
/// triangles.
bool is_triangle_partition(const Graph& g, const TrianglePartition& partition);

/// Exhaustive EPT solver for tiny instances (certificate or nullopt).
/// `node_budget` caps the backtracking; exceeding it throws CheckError so a
/// truncated search is never mistaken for "no".
std::optional<TrianglePartition> solve_ept(const Graph& g,
                                           long long node_budget = 5'000'000);

/// Quick necessary conditions: m % 3 == 0 and no odd-degree node.
bool ept_feasible_quickcheck(const Graph& g);

}  // namespace tgroom
