// Bounded MPMC admission queue — the service's backpressure point.
//
// The daemon must never buffer unboundedly: when producers outrun the
// workers, try_push() fails fast and the server answers `overloaded`
// instead of letting the queue (and response latency) grow without limit.
// close_and_drain() supports graceful shutdown: it atomically stops
// admission, hands back everything still queued (so each gets a
// `shutting_down` response), and wakes blocked consumers, whose pop()
// then returns false once the queue is empty.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace tgroom {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// Enqueues `item` unless the queue is full or closed; `item` is moved
  /// from only on success.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed; returns false
  /// only when closed and drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admission; consumers keep popping until the queue is empty,
  /// then pop() returns false.  (EOF semantics: everything admitted is
  /// still processed.)
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Stops admission and returns every still-queued item.  Consumers
  /// blocked in pop() wake up and see the closed, empty queue.
  /// (Shutdown/SIGTERM semantics: queued work is handed back for
  /// structured rejection.)
  std::vector<T> close_and_drain() {
    std::vector<T> leftover;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      leftover.reserve(items_.size());
      while (!items_.empty()) {
        leftover.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    cv_.notify_all();
    return leftover;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tgroom
