// Bounded MPMC admission queue — the service's backpressure point.
//
// The daemon must never buffer unboundedly: when producers outrun the
// workers, try_push() fails fast and the server answers `overloaded`
// instead of letting the queue (and response latency) grow without limit.
// push() is the blocking variant for producers that want to wait for a
// slot instead (batch pipelines feeding a fixed workload).
// close_and_drain() supports graceful shutdown: it atomically stops
// admission, hands back everything still queued (so each gets a
// `shutting_down` response), and wakes blocked consumers, whose pop()
// then returns false once the queue is empty.
//
// Wake-up discipline: producers and consumers wait on *separate*
// condition variables.  A push never wakes a blocked producer and a pop
// never wakes a blocked consumer, so at high worker counts a burst of
// pushes causes exactly one consumer wake-up each instead of a
// thundering herd on a shared CV.  Each side only notifies when the
// other side can actually be waiting (consumers: queue was empty;
// producers: queue was full and a producer is registered as waiting).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace tgroom {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// Enqueues `item` unless the queue is full or closed; `item` is moved
  /// from only on success.  Never blocks.
  bool try_push(T&& item) {
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      was_empty = items_.empty();
      items_.push_back(std::move(item));
    }
    if (was_empty) not_empty_.notify_one();
    return true;
  }

  /// Blocks until a slot frees up or the queue closes; returns false only
  /// when closed (item untouched).
  bool push(T&& item) {
    bool was_empty = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++waiting_producers_;
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      --waiting_producers_;
      if (closed_) return false;
      was_empty = items_.empty();
      items_.push_back(std::move(item));
    }
    if (was_empty) not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed; returns false
  /// only when closed and drained.
  bool pop(T& out) {
    bool wake_producer = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return false;
      out = std::move(items_.front());
      items_.pop_front();
      // Another item may still be waiting for a consumer: hand the wake
      // on so a notify_one burst is never lost to a single consumer.
      if (!items_.empty()) not_empty_.notify_one();
      wake_producer = waiting_producers_ > 0;
    }
    if (wake_producer) not_full_.notify_one();
    return true;
  }

  /// Stops admission; consumers keep popping until the queue is empty,
  /// then pop() returns false.  (EOF semantics: everything admitted is
  /// still processed.)
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Stops admission and returns every still-queued item.  Consumers
  /// blocked in pop() wake up and see the closed, empty queue.
  /// (Shutdown/SIGTERM semantics: queued work is handed back for
  /// structured rejection.)
  std::vector<T> close_and_drain() {
    std::vector<T> leftover;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      leftover.reserve(items_.size());
      while (!items_.empty()) {
        leftover.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return leftover;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;  // consumers wait here
  std::condition_variable not_full_;   // blocking producers wait here
  std::deque<T> items_;
  std::size_t waiting_producers_ = 0;
  bool closed_ = false;
};

}  // namespace tgroom
