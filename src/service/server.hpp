// The grooming service: a long-running daemon over the batch substrate.
//
// One GroomingService owns the cross-request state — the groom-result LRU
// cache, the held-plan table for incremental provisioning, and the
// metrics registry.  run() serves one NDJSON session: a reader loop
// parses and admits requests into a BoundedQueue, `workers` long-running
// ThreadPool tasks (one GroomingWorkspace each, so scratch buffers
// amortize across requests exactly as in the batch engine) drain it, and
// responses are emitted line-atomically under an output mutex.
//
// Overload: when the admission queue is full the request is answered
// `overloaded` immediately — the connection is never dropped and memory
// never grows with offered load.  Deadlines: a request's `deadline_ms`
// (or the config default) is checked between pipeline stages (dequeue,
// post-compute); an expired groom still populates the cache so a retry
// hits.  Drain: on EOF admission stops and the workers finish everything
// already accepted; on `shutdown` or request_stop() (SIGTERM), in-flight
// requests finish but still-queued ones are answered `shutting_down`.
// Either way every accepted request gets a response before run() returns.
//
// With workers == 0 requests execute inline on the reader thread in
// arrival order (deterministic, single-core CI friendly); responses are
// then in order.  With workers > 0 responses may interleave; the echoed
// "id" correlates them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/cache.hpp"
#include "service/handler.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "store/durable_store.hpp"
#include "util/json.hpp"

namespace tgroom {

struct GroomingWorkspace;

/// Which side of the replication stream this service is on.  A replica
/// serves read-only traffic (stateless groom/provision/release, stats,
/// health) and rejects mutations with a structured `read_only` error; a
/// `promote` op flips a caught-up replica to primary at runtime.
enum class ServiceRole { kPrimary, kReplica };

/// Follower-side stream client, implemented in src/replication/ (an
/// abstract hook so service/ never depends on replication/).  The service
/// uses it for stats/health reporting and for the promotion drain.
class ReplicaLink {
 public:
  virtual ~ReplicaLink() = default;
  /// Stops the tailing thread after it finishes applying the batch it is
  /// in the middle of (the promotion "drain").  Idempotent; joins.
  virtual void stop_and_drain() = 0;
  /// Emits status keys (connected, applied_seq, primary_last_seq, lag,
  /// reconnects, snapshot_bootstraps, last_error) into an open object.
  virtual void write_status_json(JsonWriter& w) const = 0;
  virtual std::uint64_t applied_seq() const = 0;
  virtual std::uint64_t primary_last_seq() const = 0;
};

struct ServiceConfig {
  std::size_t workers = 0;        // 0 = inline, in-order execution
  std::size_t queue_capacity = 256;  // admission bound (workers > 0)
  std::size_t cache_capacity = 128;  // groom LRU entries; 0 disables
  std::size_t cache_shards = 0;   // lock stripes; 0 = auto (power of two)
  std::int64_t default_deadline_ms = 0;  // applied when a request has none
  bool metrics_on_exit = true;  // final {"event":"exit",...} metrics line

  // Durability (empty data_dir = in-memory only, the pre-store behavior).
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  std::uint64_t snapshot_every = 1024;  // records per snapshot; 0 disables
  bool prewarm_cache = true;  // seed the PlanCache from recovered WAL holds

  // Replication: non-empty = start as a read-only replica tailing this
  // primary ("host:port").  The stream client itself lives in
  // src/replication/ and is wired in via set_replica_link().
  std::string replica_of;

  // Cluster identity (all optional; used by `tgroom route`).  node_id is
  // echoed in health and keys the primary's per-replica ack table; the
  // shard coordinates are echoed in health so the router can reject a
  // node whose position disagrees with its cluster map at connect time.
  std::string node_id;
  int shard_index = -1;  // < 0 = not part of a sharded cluster
  int shard_count = 0;   // 0 = not part of a sharded cluster
};

class GroomingService;

class GroomingService : public EventLoopHandler {
 public:
  explicit GroomingService(const ServiceConfig& config)
      : config_(config),
        cache_(config.cache_capacity, config.cache_shards) {
    if (!config_.replica_of.empty()) {
      role_.store(ServiceRole::kReplica, std::memory_order_relaxed);
    }
  }

  /// Serves one NDJSON session until EOF, a `shutdown` request, or
  /// request_stop().  Always returns 0; protocol failures are responses,
  /// not exit codes.
  int run(std::istream& in, std::ostream& out);

  /// True once a `shutdown` request ended a run() session (used by the
  /// TCP accept loop to stop across sessions).
  bool shutdown_requested() const { return shutdown_; }

  /// Executes one parsed request, writing the response line into `w`
  /// (cleared first).  This is the worker-task body: with a warm
  /// workspace and writer, a cache-hit groom performs zero heap
  /// allocations end to end (DESIGN.md §11), and the per-request
  /// allocation count is recorded into the metrics registry.
  void execute_into(ServiceRequest& request, GroomingWorkspace& workspace,
                    JsonWriter& w) override;

  /// Convenience wrapper returning a fresh response string (tests, one-off
  /// calls).  `workspace` may be null.
  std::string execute(ServiceRequest& request, GroomingWorkspace* workspace);

  ServiceMetrics& metrics() override { return metrics_; }
  const ServiceConfig& config() const { return config_; }
  std::size_t held_plan_count() const;

  // ---- EventLoopHandler (service/handler.hpp) ----------------------------
  std::size_t worker_count() const override { return config_.workers; }
  std::size_t handler_queue_capacity() const override {
    return config_.queue_capacity;
  }
  std::int64_t handler_default_deadline_ms() const override {
    return config_.default_deadline_ms;
  }
  bool metrics_on_exit() const override { return config_.metrics_on_exit; }
  bool drain_requested() const override { return stop_requested(); }
  const char* log_name() const override { return "tgroom serve"; }
  void finalize() override { finalize_store(); }

  /// Opens the durable store when `config.data_dir` is set: recovers the
  /// held-plan table (snapshot + WAL replay), optionally pre-warms the
  /// cache, and starts the WAL writer.  Idempotent; a no-op without a
  /// data_dir.  Throws StoreIncompatibleError on a format-version
  /// mismatch and StoreCorruptError on unrepairable damage — `tgroom
  /// serve` calls this before entering the session loop so those become
  /// structured errors, not mid-session surprises.  run() also calls it.
  void open_store();

  /// The store, or nullptr when running in-memory (tests, stats).
  /// Returned as a shared_ptr because a replication snapshot bootstrap
  /// can swap the store out from under concurrent readers (health,
  /// stats, repl_fetch) — the reference keeps the old object alive until
  /// the caller drops it.
  std::shared_ptr<DurableStore> store() const { return store_ref(); }

  /// Clean-exit durability: flushes the WAL and forces a snapshot so the
  /// next start replays (almost) nothing.  A no-op without a store.
  /// run() calls this on its own; the event-loop front-end calls it once
  /// its last session drains.
  void finalize_store();

  /// The {"event":"exit",...} metrics document (held plans, cache,
  /// counters, store) shared by run()'s exit line and the event loop's
  /// log output.  `w` is cleared first.
  void write_exit_metrics(JsonWriter& w) override;

  /// Cooperative stop for signal handlers: the read loop drains and exits
  /// at the next line boundary (the `tgroom serve` command wires SIGTERM
  /// here without SA_RESTART, so a blocked read fails and drains too).
  static void request_stop() { stop_flag().store(true); }
  static void clear_stop() { stop_flag().store(false); }
  static bool stop_requested() { return stop_flag().load(); }

  // ---- Replication ------------------------------------------------------

  ServiceRole role() const { return role_.load(std::memory_order_acquire); }
  bool is_replica() const { return role() == ServiceRole::kReplica; }

  /// Wires the follower-side stream client in (replica mode).  Called
  /// once, before the service starts serving; the pointer must outlive
  /// every run()/event-loop session.
  void set_replica_link(ReplicaLink* link) { replica_link_ = link; }

  /// Follower apply path: decodes one shipped WAL record, applies it to
  /// the live held-plan table under the plans lock (prewarming the cache
  /// from hold records), and persists the identical bytes into this
  /// node's own store via append_raw — asserting the assigned local seq
  /// equals the primary's, so the two WALs stay record-for-record equal.
  /// Called from the replication client's thread.
  void apply_replication_record(std::uint64_t seq, WalRecordType type,
                                std::string_view body);

  /// Snapshot bootstrap: replaces the held-plan table (and, when a store
  /// is open, its on-disk content — old snapshots/WAL wiped, `snap`
  /// written, store reopened so the WAL resumes at snap.last_seq + 1).
  void install_replication_snapshot(const SnapshotData& snap);

  /// The seq this node has fully applied and persisted (replica
  /// catch-up probe; equals store last_seq when a store is open).
  std::uint64_t applied_seq() const;

  /// CRC32C of the framed payload of WAL record `seq` in this node's own
  /// store — the history-identity probe the replication handshake sends
  /// so the primary can detect a diverged record at the follower's
  /// cursor.  False when no store is open, seq is 0, or the record has
  /// been compacted away.
  bool wal_crc_at(std::uint64_t seq, std::uint32_t& crc) const;

  /// True for requests that would mutate server-side state (held-plan
  /// holds, held-plan provisions/releases) — exactly what a replica
  /// rejects with `read_only`.  Public because the cluster router routes
  /// by the same rule: mutations to the shard primary, reads anywhere.
  static bool is_mutating(const ServiceRequest& request);

 private:
  static std::atomic<bool>& stop_flag();

  void handle_groom(ServiceRequest& request, GroomingWorkspace& workspace,
                    JsonWriter& w);
  void handle_provision(ServiceRequest& request, JsonWriter& w);
  void handle_release(ServiceRequest& request, JsonWriter& w);
  void handle_stats(const ServiceRequest& request, JsonWriter& w);
  void handle_health(const ServiceRequest& request, JsonWriter& w);
  void handle_promote(const ServiceRequest& request, JsonWriter& w);
  void handle_repl_handshake(const ServiceRequest& request, JsonWriter& w);
  void handle_repl_fetch(const ServiceRequest& request, JsonWriter& w);
  void handle_repl_snapshot(const ServiceRequest& request, JsonWriter& w);
  void write_cache_stats(JsonWriter& w) const;
  bool deadline_expired(const ServiceRequest& request) const;
  void deadline_response(const ServiceRequest& request, JsonWriter& w);
  /// Snapshots the held-plan table into the store; with `force` false
  /// only when the store says one is due.
  void snapshot_store(bool force);
  /// Thread-safe copy of the store pointer.  Every store access outside
  /// plans_mutex_ goes through a local copy from here: a replication
  /// snapshot bootstrap swaps store_ at runtime, and the shared_ptr keeps
  /// the old store alive for readers mid-call.  store_ptr_mutex_ is the
  /// innermost lock — nothing else is ever taken while holding it.
  std::shared_ptr<DurableStore> store_ref() const {
    std::lock_guard<std::mutex> lock(store_ptr_mutex_);
    return store_;
  }

  ServiceConfig config_;
  PlanCache cache_;
  ServiceMetrics metrics_;
  mutable std::mutex plans_mutex_;  // guards plans_ and next_plan_id_;
                                    // held across a held-plan provision so
                                    // concurrent provisions serialize, and
                                    // across the matching WAL append so log
                                    // order equals table order
  std::unordered_map<std::int64_t, GroomingPlan> plans_;
  std::int64_t next_plan_id_ = 1;
  mutable std::mutex store_ptr_mutex_;  // guards the store_ pointer itself
                                        // (not the store's contents)
  std::shared_ptr<DurableStore> store_;  // read via store_ref()
  bool shutdown_ = false;

  std::atomic<ServiceRole> role_{ServiceRole::kPrimary};
  ReplicaLink* replica_link_ = nullptr;  // non-null only in replica mode
  std::mutex promote_mutex_;             // serializes promote requests
  std::atomic<std::uint64_t> repl_acked_seq_{0};  // followers' ack high-water
  mutable std::mutex repl_acks_mutex_;  // guards repl_follower_acks_ (tiny:
                                        // one entry per connected follower,
                                        // touched per fetch and per health)
  std::vector<std::pair<std::string, std::uint64_t>> repl_follower_acks_;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

/// Serves loopback TCP on 127.0.0.1:`port`.  On linux this runs the
/// epoll event loop (service/event_loop.hpp): many concurrent
/// connections, pipelined requests, per-connection outboxes — cache,
/// held plans, and metrics are shared across all of them.  Other unix
/// builds fall back to the historical accept-one-connection loop.
/// Returns when any connection sends `shutdown` or request_stop() is
/// set.  A non-empty `port_file` gets the bound port written atomically
/// (write_port_file) once the listener exists — harnesses read that
/// instead of scraping the stderr announcement.
int serve_tcp(GroomingService& service, int port, std::ostream& log,
              const std::string& port_file = std::string());

/// Atomically publishes `port` at `path` (temp file + rename, so a reader
/// never sees a partial write).  False with `error` set on IO failure.
bool write_port_file(const std::string& path, int port, std::string& error);

}  // namespace tgroom
