// Multi-connection epoll event loop for the grooming service.
//
// The PR-3 TCP front-end accepted exactly one connection at a time and
// drove it through GroomingService::run()'s blocking getline loop: one
// thread read, parsed, and wrote NDJSON, so the worker pool sat starved
// behind a single IO thread (baselines/BENCH_service.json showed warm
// throughput flat from 0 to 8 workers).  EventLoopServer replaces that
// with a non-blocking, level-triggered epoll loop serving many
// concurrent connections:
//
//  - Per-connection state machines.  Each connection owns a read buffer
//    and a write outbox drawn from its own MonotonicArena pair, so a
//    warm connection's buffer traffic never touches the heap (the PR-4
//    zero-allocation discipline extended to the network layer).  Reads
//    and writes are partial-tolerant: a request line may arrive over any
//    number of readiness events, and a response drains across as many
//    EPOLLOUT cycles as the socket needs.
//  - Pipelining.  A readiness event parses every complete NDJSON line
//    the buffer holds (bounded per connection per loop iteration by
//    `max_batch` for fairness; the remainder is replayed before the next
//    epoll_wait), so a client keeping N requests in flight pays one
//    read() for many requests.
//  - Write-back.  Workers never write to sockets.  They append finished
//    response lines to the owning connection's outbox under its mutex
//    (line-atomic — bytes of two responses never interleave) and nudge
//    the loop through an eventfd; the loop flushes outboxes and arms
//    EPOLLOUT only while a socket is write-blocked.
//  - Backpressure.  Admission keeps the PR-3 contract: a full
//    BoundedQueue answers `overloaded` immediately and the connection
//    stays up.  Additionally, a connection whose outbox exceeds
//    `outbox_pause_bytes` (slow reader) stops being read until the
//    outbox drains below half the cap, so memory stays bounded per
//    connection rather than per offered load.
//  - Drain semantics are exactly GroomingService::run()'s, per
//    connection: EOF stops admission from that connection but every
//    accepted request still gets its response before the socket closes;
//    a `shutdown` request (from any connection) or SIGTERM stops
//    accepting, rejects still-queued requests as `shutting_down`,
//    finishes in-flight work, flushes every outbox, and returns.
//    `--data-dir` ordering is untouched: appends happen inside
//    execute_into() before the response line exists, so append-before-
//    ack holds connection-count-independently.
//
// Linux-only (epoll, eventfd, accept4); other platforms keep the
// single-session fallback in serve_tcp().
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

namespace tgroom {

class EventLoopHandler;

struct EventLoopConfig {
  int port = 0;  // loopback TCP port; 0 picks an ephemeral port (see port())
  int backlog = 0;               // listen() backlog; 0 = SOMAXCONN
  std::size_t max_connections = 1024;  // beyond this, accepts are refused
  std::size_t read_chunk = 64 * 1024;  // bytes per read() call
  std::size_t max_batch = 256;   // request lines per connection per loop turn
  // A single request line longer than this kills the connection (the
  // stream cannot be resynchronized); responses are unbounded.
  std::size_t max_request_bytes = 16u << 20;
  // Reads from a connection pause while its outbox holds more than this
  // many unflushed bytes, and resume below half of it.
  std::size_t outbox_pause_bytes = 4u << 20;
  int sndbuf = 0;  // SO_SNDBUF on accepted sockets when > 0 (tests)
};

/// One epoll server bound to 127.0.0.1:`config.port`.  The constructor
/// creates, binds, and listens the socket (so ephemeral ports are known
/// before run(), which tests and the bench need); run() serves until a
/// `shutdown` request or the handler reports drain_requested() (wired to
/// GroomingService::request_stop() by both implementations).  The handler
/// decides what a request *means* — grooming service or cluster router
/// (service/handler.hpp); the loop is pure network machinery.
class EventLoopServer {
 public:
  EventLoopServer(EventLoopHandler& handler, const EventLoopConfig& config);
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// False when the listen socket could not be set up; error() says why.
  bool valid() const;
  const std::string& error() const;

  /// The actually-bound port (resolves config.port == 0).
  int port() const;

  /// Serves until shutdown/SIGTERM; returns 0 on a clean drain.  Progress
  /// and the final metrics line go to `log` (never to a client socket).
  int run(std::ostream& log);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tgroom
