#include "service/metrics.hpp"

#include <bit>

#include "util/json.hpp"

namespace tgroom {

namespace {

constexpr const char* kCounterNames[ServiceMetrics::kCounterCount] = {
    "received",        "ok",
    "error",           "overloaded",
    "shutting_down",   "deadline_exceeded",
    "cache_hits",      "cache_misses",
    "cache_evictions", "store_appends",
    "store_snapshots", "conn_accepted",
    "conn_closed",     "pipelined",
    "read_only_rejected", "repl_fetches",
    "repl_records_shipped", "repl_records_applied",
    "forwarded",       "forward_retries",
    "failovers",       "shard_down",
};

}  // namespace

void ServiceMetrics::increment(Counter c, long long delta) {
  counters_[static_cast<std::size_t>(c)].fetch_add(
      delta, std::memory_order_relaxed);
}

long long ServiceMetrics::count(Counter c) const {
  return counters_[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

void ServiceMetrics::observe_latency(std::chrono::nanoseconds elapsed) {
  long long us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  if (us < 0) us = 0;
  // bucket 0: < 1 µs; bucket i >= 1: [2^(i-1), 2^i) µs; last bucket open.
  std::size_t bucket = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(us)));
  if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
  latency_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_count_.fetch_add(1, std::memory_order_relaxed);
  latency_sum_us_.fetch_add(us, std::memory_order_relaxed);
  long long seen = latency_max_us_.load(std::memory_order_relaxed);
  while (us > seen && !latency_max_us_.compare_exchange_weak(
                          seen, us, std::memory_order_relaxed)) {
  }
}

void ServiceMetrics::observe_allocations(long long count) {
  if (count < 0) count = 0;
  alloc_requests_.fetch_add(1, std::memory_order_relaxed);
  alloc_total_.fetch_add(count, std::memory_order_relaxed);
  long long seen = alloc_max_.load(std::memory_order_relaxed);
  while (count > seen && !alloc_max_.compare_exchange_weak(
                             seen, count, std::memory_order_relaxed)) {
  }
}

void ServiceMetrics::observe_arena_peak(std::size_t peak_bytes) {
  auto peak = static_cast<long long>(peak_bytes);
  long long seen = arena_peak_bytes_.load(std::memory_order_relaxed);
  while (peak > seen && !arena_peak_bytes_.compare_exchange_weak(
                            seen, peak, std::memory_order_relaxed)) {
  }
}

void ServiceMetrics::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    w.kv(kCounterNames[i],
         counters_[i].load(std::memory_order_relaxed));
  }
  w.end_object();
  w.key("latency").begin_object();
  w.kv("count", latency_count_.load(std::memory_order_relaxed));
  w.kv("sum_us", latency_sum_us_.load(std::memory_order_relaxed));
  w.kv("max_us", latency_max_us_.load(std::memory_order_relaxed));
  // Sparse dump: only non-empty buckets, as [upper_bound_us, count] pairs
  // (the last bucket is open-ended; its bound is reported as 0).
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    long long n = latency_buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    long long upper =
        i + 1 < kLatencyBuckets ? (1LL << i) : 0;
    w.begin_array().value(upper).value(n).end_array();
  }
  w.end_array();
  w.end_object();
  w.key("allocations").begin_object();
  w.kv("requests", alloc_requests_.load(std::memory_order_relaxed));
  w.kv("total", alloc_total_.load(std::memory_order_relaxed));
  w.kv("max", alloc_max_.load(std::memory_order_relaxed));
  w.end_object();
  w.key("arena").begin_object();
  w.kv("peak_bytes", arena_peak_bytes_.load(std::memory_order_relaxed));
  w.end_object();
  w.end_object();
}

std::string ServiceMetrics::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

}  // namespace tgroom
