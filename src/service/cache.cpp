#include "service/cache.hpp"

#include "util/rng.hpp"

namespace tgroom {

namespace {

std::size_t pick_shard_count(std::size_t capacity, std::size_t requested) {
  if (capacity == 0) return 1;
  std::size_t shards = requested;
  if (shards == 0) shards = 16;  // plenty of stripes for any worker count
  // Keep at least ~4 entries per shard so striping does not starve the
  // LRU, and round down to a power of two for mask selection.
  while (shards > 1 && capacity / shards < 4) shards /= 2;
  std::size_t pow2 = 1;
  while (pow2 * 2 <= shards) pow2 *= 2;
  return pow2;
}

}  // namespace

std::size_t GroomCacheKeyHash::operator()(const GroomCacheKey& key) const {
  std::uint64_t state = key.fingerprint;
  state ^= splitmix64(state) + static_cast<std::uint64_t>(key.algorithm);
  state ^= splitmix64(state) + static_cast<std::uint64_t>(key.k);
  state ^= splitmix64(state) + key.seed;
  state ^= splitmix64(state) + key.flags;
  return static_cast<std::size_t>(splitmix64(state));
}

PlanCache::PlanCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity),
      shards_(pick_shard_count(capacity, shards)) {
  shard_mask_ = shards_.size() - 1;
  shard_capacity_ =
      capacity == 0 ? 0 : (capacity + shards_.size() - 1) / shards_.size();
}

PlanCache::Shard& PlanCache::shard_for(const GroomCacheKey& key) {
  // The low hash bits pick the bucket inside a shard's unordered_map, so
  // use the high bits — fully mixed by the final splitmix64 — for stripes.
  std::size_t h = GroomCacheKeyHash{}(key);
  return shards_[(h >> 48) & shard_mask_];
}

std::shared_ptr<const GroomCacheValue> PlanCache::get(
    const GroomCacheKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

std::size_t PlanCache::put(const GroomCacheKey& key,
                           std::shared_ptr<const GroomCacheValue> value) {
  if (capacity_ == 0) return 0;
  Shard& shard = shard_for(key);
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return 0;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    while (shard.lru.size() > shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(static_cast<long long>(evicted),
                         std::memory_order_relaxed);
  }
  return evicted;
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tgroom
