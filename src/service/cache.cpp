#include "service/cache.hpp"

#include "util/rng.hpp"

namespace tgroom {

std::size_t GroomCacheKeyHash::operator()(const GroomCacheKey& key) const {
  std::uint64_t state = key.fingerprint;
  state ^= splitmix64(state) + static_cast<std::uint64_t>(key.algorithm);
  state ^= splitmix64(state) + static_cast<std::uint64_t>(key.k);
  state ^= splitmix64(state) + key.seed;
  state ^= splitmix64(state) + key.flags;
  return static_cast<std::size_t>(splitmix64(state));
}

std::optional<GroomCacheValue> PlanCache::get(const GroomCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::put(const GroomCacheKey& key, GroomCacheValue value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace tgroom
