// The request-execution seam between the epoll front-end and whatever
// answers requests behind it.
//
// PR 7's EventLoopServer was hard-wired to GroomingService; the cluster
// front-end (src/cluster/router.hpp) needs the same network machinery —
// connections, pipelining, outboxes, backpressure, drain — in front of a
// forwarding engine that owns no grooming state.  EventLoopHandler is the
// narrow interface the loop actually consumes: execution, the admission
// knobs, metrics, and the drain hooks.  GroomingService and ClusterRouter
// both implement it; the loop never knows which it is serving.
//
// Threading contract: execute_into() runs on worker threads (or on the
// loop thread when worker_count() == 0, and always on the loop thread for
// `health`, which is answered inline ahead of queued work — so a health
// response must stay cheap and must not block on locks a worker can hold
// across a long computation).  The remaining methods are called from the
// loop thread only.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tgroom {

struct ServiceRequest;
struct GroomingWorkspace;
class JsonWriter;
class ServiceMetrics;

class EventLoopHandler {
 public:
  virtual ~EventLoopHandler() = default;

  virtual ServiceMetrics& metrics() = 0;

  // Admission knobs (the loop sizes its queue and worker pool from these).
  virtual std::size_t worker_count() const = 0;
  virtual std::size_t handler_queue_capacity() const = 0;
  virtual std::int64_t handler_default_deadline_ms() const = 0;
  virtual bool metrics_on_exit() const = 0;

  /// Polled each loop turn; true begins the SIGTERM-style drain.
  virtual bool drain_requested() const = 0;

  /// When true the loop copies each request's original line into
  /// ServiceRequest::raw before execution (the router forwards those
  /// bytes; the grooming service never pays the copy).
  virtual bool wants_raw_line() const { return false; }

  /// The name the listen announcement and log lines lead with.
  virtual const char* log_name() const = 0;

  /// Executes one parsed request, writing the response line into `w`
  /// (cleared first).
  virtual void execute_into(ServiceRequest& request,
                            GroomingWorkspace& workspace, JsonWriter& w) = 0;

  /// Called once on the loop thread when a drain begins (shutdown request
  /// or drain_requested()), before queued work is rejected.  The router
  /// fans the shutdown out to every shard here.
  virtual void on_drain_begin() {}

  /// Called after the loop fully drains (the service flushes + snapshots
  /// its store here).
  virtual void finalize() {}

  /// The {"event":"exit",...} document appended to the log when
  /// metrics_on_exit() is set.  `w` is cleared first.
  virtual void write_exit_metrics(JsonWriter& w) = 0;
};

}  // namespace tgroom
