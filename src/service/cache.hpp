// Sharded LRU cache of groom results keyed by graph identity + algorithm
// config.
//
// Production grooming traffic is repetitive — the same ring's traffic
// graph gets re-groomed when operators compare k values or re-request a
// plan — so the service memoizes `groom` by (graph fingerprint, algorithm,
// k, seed, option flags).  The cached value is the full result payload
// including the partition parts, so a hit rebuilds plans/responses
// byte-identically to a fresh computation (determinism contract: every
// algorithm is a pure function of that key).
//
// Two properties make the cache disappear from the hot path:
//
//  - Values are immutable `shared_ptr<const GroomCacheValue>`: a hit is a
//    refcount bump, never a deep copy of the partition payload, and the
//    entry stays alive for the reader even if it is evicted concurrently.
//  - The key space is striped across N independent shards (selected by
//    fingerprint-derived hash bits), each with its own mutex + LRU list,
//    so workers hitting different graphs never contend on one lock.
//
// Eviction is LRU *per shard*; capacity is distributed evenly across
// shards (each shard gets ceil(capacity / shards)).  With `shards == 1`
// the cache degenerates to exact global LRU — tests use that mode to pin
// eviction order.  capacity 0 disables caching (get always misses, put
// drops).  Hit/miss/eviction totals are relaxed atomics, mirrored into
// ServiceMetrics by the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

struct GroomCacheKey {
  std::uint64_t fingerprint = 0;
  int algorithm = 0;
  int k = 0;
  std::uint64_t seed = 0;
  unsigned flags = 0;  // bit 0: refine, bit 1: smart_branches

  friend bool operator==(const GroomCacheKey&, const GroomCacheKey&) = default;
};

struct GroomCacheKeyHash {
  std::size_t operator()(const GroomCacheKey& key) const;
};

struct GroomCacheValue {
  long long sadms = 0;
  int wavelengths = 0;
  long long lower_bound = 0;
  std::vector<std::vector<EdgeId>> parts;  // the partition, part-by-part
};

struct PlanCacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;
};

class PlanCache {
 public:
  /// `shards == 0` picks a power-of-two shard count automatically (capped
  /// so every shard holds at least a few entries).
  explicit PlanCache(std::size_t capacity, std::size_t shards = 0);

  /// Returns the cached value (refreshing its recency) or nullptr.  The
  /// pointee is immutable and safe to read without any lock, even across
  /// a concurrent eviction of the entry.
  std::shared_ptr<const GroomCacheValue> get(const GroomCacheKey& key);

  /// Inserts (or refreshes) `value`; evicts the least recently used
  /// entries of the key's shard beyond its capacity.  Returns the number
  /// of entries evicted.
  std::size_t put(const GroomCacheKey& key,
                  std::shared_ptr<const GroomCacheValue> value);
  std::size_t put(const GroomCacheKey& key, GroomCacheValue value) {
    return put(key,
               std::make_shared<const GroomCacheValue>(std::move(value)));
  }

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

  PlanCacheStats stats() const;

 private:
  using Entry =
      std::pair<GroomCacheKey, std::shared_ptr<const GroomCacheValue>>;

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<GroomCacheKey, std::list<Entry>::iterator,
                       GroomCacheKeyHash>
        index;
  };

  Shard& shard_for(const GroomCacheKey& key);

  const std::size_t capacity_;        // nominal total
  std::size_t shard_capacity_ = 0;    // per-shard LRU bound
  std::size_t shard_mask_ = 0;        // shard count - 1 (power of two)
  std::vector<Shard> shards_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
};

}  // namespace tgroom
