// LRU cache of groom results keyed by graph identity + algorithm config.
//
// Production grooming traffic is repetitive — the same ring's traffic
// graph gets re-groomed when operators compare k values or re-request a
// plan — so the service memoizes `groom` by (graph fingerprint, algorithm,
// k, seed, option flags).  The cached value is the full result payload
// including the partition parts, so a hit rebuilds plans/responses
// byte-identically to a fresh computation (determinism contract: every
// algorithm is a pure function of that key).
//
// Thread-safety: one mutex around the map+list; cache operations are
// microseconds against grooming runs of milliseconds, so contention is
// negligible.  capacity 0 disables caching (get always misses, put drops).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

struct GroomCacheKey {
  std::uint64_t fingerprint = 0;
  int algorithm = 0;
  int k = 0;
  std::uint64_t seed = 0;
  unsigned flags = 0;  // bit 0: refine, bit 1: smart_branches

  friend bool operator==(const GroomCacheKey&, const GroomCacheKey&) = default;
};

struct GroomCacheKeyHash {
  std::size_t operator()(const GroomCacheKey& key) const;
};

struct GroomCacheValue {
  long long sadms = 0;
  int wavelengths = 0;
  long long lower_bound = 0;
  std::vector<std::vector<EdgeId>> parts;  // the partition, part-by-part
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns a copy of the cached value and refreshes its recency.
  std::optional<GroomCacheValue> get(const GroomCacheKey& key);

  /// Inserts (or refreshes) `value`; evicts the least recently used entry
  /// beyond capacity.
  void put(const GroomCacheKey& key, GroomCacheValue value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<GroomCacheKey, GroomCacheValue>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<GroomCacheKey, std::list<Entry>::iterator,
                     GroomCacheKeyHash>
      index_;
};

}  // namespace tgroom
