#include "service/protocol.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace tgroom {

const char* service_op_name(ServiceOp op) {
  switch (op) {
    case ServiceOp::kGroom: return "groom";
    case ServiceOp::kProvision: return "provision";
    case ServiceOp::kStats: return "stats";
    case ServiceOp::kShutdown: return "shutdown";
  }
  return "?";
}

const char* service_error_name(ServiceError code) {
  switch (code) {
    case ServiceError::kBadRequest: return "bad_request";
    case ServiceError::kOverloaded: return "overloaded";
    case ServiceError::kShuttingDown: return "shutting_down";
    case ServiceError::kDeadlineExceeded: return "deadline_exceeded";
    case ServiceError::kInternal: return "internal";
  }
  return "?";
}

namespace {

bool bool_field(const JsonValue& doc, const char* name, bool fallback) {
  const JsonValue* v = doc.find(name);
  if (!v) return fallback;
  TGROOM_CHECK_MSG(v->is_bool(),
                   std::string("\"") + name + "\" must be a boolean");
  return v->boolean;
}

std::int64_t int_field(const JsonValue& doc, const char* name,
                       std::int64_t fallback) {
  const JsonValue* v = doc.find(name);
  if (!v) return fallback;
  TGROOM_CHECK_MSG(v->is_number(),
                   std::string("\"") + name + "\" must be an integer");
  return v->as_int();
}

void write_id(JsonWriter& w, std::int64_t id, bool has_id) {
  if (has_id) {
    w.kv("id", static_cast<long long>(id));
  } else {
    w.key("id").null();
  }
}

}  // namespace

void begin_ok_response(JsonWriter& w, std::int64_t id, bool has_id,
                       ServiceOp op) {
  w.begin_object();
  write_id(w, id, has_id);
  w.kv("ok", true);
  w.kv("op", service_op_name(op));
}

std::string make_error_response(std::int64_t id, bool has_id,
                                ServiceError code,
                                const std::string& message) {
  JsonWriter w;
  w.begin_object();
  write_id(w, id, has_id);
  w.kv("ok", false);
  w.kv("error", service_error_name(code));
  w.kv("message", message);
  w.end_object();
  return w.take();
}

void write_graph_json(JsonWriter& w, const Graph& g) {
  w.begin_object();
  w.kv("n", static_cast<long long>(g.node_count()));
  w.key("edges").begin_array();
  for (const Edge& e : g.edges()) {
    if (e.is_virtual) continue;
    w.begin_array()
        .value(static_cast<long long>(e.u))
        .value(static_cast<long long>(e.v))
        .end_array();
  }
  w.end_array();
  w.end_object();
}

Graph graph_from_json(const JsonValue& v) {
  TGROOM_CHECK_MSG(v.is_object(), "\"graph\" must be an object");
  const JsonValue* n = v.find("n");
  TGROOM_CHECK_MSG(n != nullptr, "graph.n is required");
  std::int64_t nodes = n->as_int();
  TGROOM_CHECK_MSG(nodes >= 0 && nodes <= 50'000'000, "graph.n out of range");
  const JsonValue* edges = v.find("edges");
  TGROOM_CHECK_MSG(edges != nullptr && edges->is_array(),
                   "graph.edges (array) is required");
  Graph g(static_cast<NodeId>(nodes));
  g.reserve_edges(static_cast<EdgeId>(edges->array.size()));
  for (const JsonValue& e : edges->array) {
    TGROOM_CHECK_MSG(e.is_array() && e.array.size() == 2,
                     "graph edge must be a [u,v] pair");
    std::int64_t u = e.array[0].as_int();
    std::int64_t w2 = e.array[1].as_int();
    TGROOM_CHECK_MSG(u >= 0 && u < nodes && w2 >= 0 && w2 < nodes,
                     "edge endpoint out of range");
    TGROOM_CHECK_MSG(u != w2, "self-loop edges are not allowed");
    TGROOM_CHECK_MSG(g.find_edge(static_cast<NodeId>(u),
                                 static_cast<NodeId>(w2)) == kInvalidEdge,
                     "duplicate edge in graph.edges");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(w2));
  }
  return g;
}

void write_plan_json(JsonWriter& w, const GroomingPlan& plan) {
  w.begin_object();
  w.kv("ring_size", static_cast<long long>(plan.ring_size));
  w.kv("k", static_cast<long long>(plan.grooming_factor));
  w.key("pairs").begin_array();
  for (const GroomedPair& gp : plan.pairs) {
    w.begin_array()
        .value(static_cast<long long>(gp.pair.a))
        .value(static_cast<long long>(gp.pair.b))
        .value(static_cast<long long>(gp.wavelength))
        .value(static_cast<long long>(gp.timeslot))
        .end_array();
  }
  w.end_array();
  w.end_object();
}

GroomingPlan plan_from_json(const JsonValue& v) {
  TGROOM_CHECK_MSG(v.is_object(), "\"plan\" must be an object");
  GroomingPlan plan;
  std::int64_t ring = int_field(v, "ring_size", -1);
  TGROOM_CHECK_MSG(ring >= 0, "plan.ring_size is required");
  std::int64_t k = int_field(v, "k", -1);
  TGROOM_CHECK_MSG(k >= 1, "plan.k must be >= 1");
  plan.ring_size = static_cast<NodeId>(ring);
  plan.grooming_factor = static_cast<int>(k);
  const JsonValue* pairs = v.find("pairs");
  TGROOM_CHECK_MSG(pairs != nullptr && pairs->is_array(),
                   "plan.pairs (array) is required");
  plan.pairs.reserve(pairs->array.size());
  for (const JsonValue& p : pairs->array) {
    TGROOM_CHECK_MSG(p.is_array() && p.array.size() == 4,
                     "plan pair must be [a,b,wavelength,timeslot]");
    std::int64_t a = p.array[0].as_int();
    std::int64_t b = p.array[1].as_int();
    std::int64_t wavelength = p.array[2].as_int();
    std::int64_t timeslot = p.array[3].as_int();
    TGROOM_CHECK_MSG(a >= 0 && b >= 0 && a < ring && b < ring && a != b,
                     "plan pair endpoints out of range");
    TGROOM_CHECK_MSG(wavelength >= 0, "plan wavelength must be >= 0");
    TGROOM_CHECK_MSG(timeslot >= 0 && timeslot < k,
                     "plan timeslot out of range");
    GroomedPair gp;
    gp.pair = DemandPair{static_cast<NodeId>(std::min(a, b)),
                         static_cast<NodeId>(std::max(a, b))};
    gp.wavelength = static_cast<int>(wavelength);
    gp.timeslot = static_cast<int>(timeslot);
    plan.pairs.push_back(gp);
  }
  return plan;
}

void write_partition_json(JsonWriter& w, const EdgePartition& partition) {
  w.begin_array();
  for (const auto& part : partition.parts) {
    w.begin_array();
    for (EdgeId e : part) w.value(static_cast<long long>(e));
    w.end_array();
  }
  w.end_array();
}

void write_incremental_json(JsonWriter& w, const IncrementalResult& result,
                            bool include_plan) {
  w.kv("new_sadms", static_cast<long long>(result.new_sadms));
  w.kv("new_wavelengths", static_cast<long long>(result.new_wavelengths));
  w.kv("reused_sites", static_cast<long long>(result.reused_sites));
  w.kv("sadms", plan_sadm_count(result.plan));
  w.kv("wavelengths", static_cast<long long>(result.plan.wavelength_count()));
  if (include_plan) {
    w.key("plan");
    write_plan_json(w, result.plan);
  }
}

std::vector<DemandPair> demand_pairs_from_json(const JsonValue& v) {
  TGROOM_CHECK_MSG(v.is_array(), "\"add\" must be an array of [a,b] pairs");
  std::vector<DemandPair> pairs;
  pairs.reserve(v.array.size());
  for (const JsonValue& p : v.array) {
    TGROOM_CHECK_MSG(p.is_array() && p.array.size() == 2,
                     "demand pair must be [a,b]");
    std::int64_t a = p.array[0].as_int();
    std::int64_t b = p.array[1].as_int();
    TGROOM_CHECK_MSG(a >= 0 && b >= 0, "demand endpoints must be >= 0");
    TGROOM_CHECK_MSG(a != b, "demand pair {x,x} is meaningless");
    pairs.push_back(DemandPair{static_cast<NodeId>(std::min(a, b)),
                               static_cast<NodeId>(std::max(a, b))});
  }
  return pairs;
}

RequestParse parse_request(const std::string& line) {
  RequestParse out;
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const CheckError& e) {
    out.error = e.what();
    return out;
  }
  if (!doc.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }
  try {
    if (const JsonValue* id = doc.find("id")) {
      out.id = id->as_int();
      out.has_id = true;
    }
  } catch (const CheckError&) {
    out.error = "\"id\" must be an integer";
    return out;
  }

  ServiceRequest request;
  request.id = out.id;
  request.has_id = out.has_id;
  try {
    const JsonValue* op = doc.find("op");
    TGROOM_CHECK_MSG(op != nullptr && op->is_string(),
                     "\"op\" (string) is required");
    if (op->string == "groom") request.op = ServiceOp::kGroom;
    else if (op->string == "provision") request.op = ServiceOp::kProvision;
    else if (op->string == "stats") request.op = ServiceOp::kStats;
    else if (op->string == "shutdown") request.op = ServiceOp::kShutdown;
    else TGROOM_CHECK_MSG(false, "unknown op '" + op->string + "'");

    request.deadline_ms = int_field(doc, "deadline_ms", 0);
    TGROOM_CHECK_MSG(request.deadline_ms >= 0,
                     "\"deadline_ms\" must be >= 0");

    if (request.op == ServiceOp::kGroom) {
      const JsonValue* graph = doc.find("graph");
      TGROOM_CHECK_MSG(graph != nullptr, "\"graph\" is required for groom");
      request.graph = graph_from_json(*graph);
      if (const JsonValue* algorithm = doc.find("algorithm")) {
        TGROOM_CHECK_MSG(algorithm->is_string(),
                         "\"algorithm\" must be a string");
        auto id = parse_algorithm_name(algorithm->string);
        TGROOM_CHECK_MSG(id.has_value(),
                         "unknown algorithm '" + algorithm->string + "'");
        request.algorithm = *id;
      }
      std::int64_t k = int_field(doc, "k", 16);
      TGROOM_CHECK_MSG(k >= 1 && k <= 1'000'000, "\"k\" must be in [1, 1e6]");
      request.k = static_cast<int>(k);
      request.seed = static_cast<std::uint64_t>(int_field(doc, "seed", 1));
      request.refine = bool_field(doc, "refine", false);
      request.smart_branches = bool_field(doc, "smart_branches", false);
      request.hold = bool_field(doc, "hold", false);
      request.include_partition = bool_field(doc, "include_partition", false);
    } else if (request.op == ServiceOp::kProvision) {
      const JsonValue* plan = doc.find("plan");
      const JsonValue* plan_id = doc.find("plan_id");
      TGROOM_CHECK_MSG((plan != nullptr) != (plan_id != nullptr),
                       "provision needs exactly one of \"plan\"/\"plan_id\"");
      if (plan != nullptr) {
        request.plan = plan_from_json(*plan);
      } else {
        request.plan_id = plan_id->as_int();
        TGROOM_CHECK_MSG(request.plan_id >= 0, "\"plan_id\" must be >= 0");
      }
      const JsonValue* add = doc.find("add");
      TGROOM_CHECK_MSG(add != nullptr, "\"add\" is required for provision");
      request.add = demand_pairs_from_json(*add);
      TGROOM_CHECK_MSG(!request.add.empty(), "\"add\" lists no pairs");
      request.include_plan = bool_field(doc, "include_plan", false);
    }
  } catch (const CheckError& e) {
    out.error = e.what();
    return out;
  }
  out.request = std::move(request);
  return out;
}

}  // namespace tgroom
