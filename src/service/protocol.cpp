#include "service/protocol.hpp"

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace tgroom {

const char* service_op_name(ServiceOp op) {
  switch (op) {
    case ServiceOp::kGroom: return "groom";
    case ServiceOp::kProvision: return "provision";
    case ServiceOp::kRelease: return "release";
    case ServiceOp::kStats: return "stats";
    case ServiceOp::kShutdown: return "shutdown";
    case ServiceOp::kHealth: return "health";
    case ServiceOp::kPromote: return "promote";
    case ServiceOp::kReplHandshake: return "repl_handshake";
    case ServiceOp::kReplFetch: return "repl_fetch";
    case ServiceOp::kReplSnapshot: return "repl_snapshot";
  }
  return "?";
}

const char* service_error_name(ServiceError code) {
  switch (code) {
    case ServiceError::kBadRequest: return "bad_request";
    case ServiceError::kOverloaded: return "overloaded";
    case ServiceError::kShuttingDown: return "shutting_down";
    case ServiceError::kDeadlineExceeded: return "deadline_exceeded";
    case ServiceError::kStoreIncompatible: return "store_incompatible";
    case ServiceError::kReadOnly: return "read_only";
    case ServiceError::kShardDown: return "shard_down";
    case ServiceError::kInternal: return "internal";
  }
  return "?";
}

namespace {

bool bool_field(const JsonValue& doc, const char* name, bool fallback) {
  const JsonValue* v = doc.find(name);
  if (!v) return fallback;
  TGROOM_CHECK_MSG(v->is_bool(),
                   std::string("\"") + name + "\" must be a boolean");
  return v->boolean;
}

std::int64_t int_field(const JsonValue& doc, const char* name,
                       std::int64_t fallback) {
  const JsonValue* v = doc.find(name);
  if (!v) return fallback;
  TGROOM_CHECK_MSG(v->is_number(),
                   std::string("\"") + name + "\" must be an integer");
  return v->as_int();
}

void write_id(JsonWriter& w, std::int64_t id, bool has_id) {
  if (has_id) {
    w.kv("id", static_cast<long long>(id));
  } else {
    w.key("id").null();
  }
}

}  // namespace

void begin_ok_response(JsonWriter& w, std::int64_t id, bool has_id,
                       ServiceOp op) {
  w.begin_object();
  write_id(w, id, has_id);
  w.kv("ok", true);
  w.kv("op", service_op_name(op));
}

std::string make_error_response(std::int64_t id, bool has_id,
                                ServiceError code,
                                const std::string& message) {
  JsonWriter w;
  write_error_response(w, id, has_id, code, message);
  return w.take();
}

void write_error_response(JsonWriter& w, std::int64_t id, bool has_id,
                          ServiceError code, const std::string& message) {
  w.begin_object();
  write_id(w, id, has_id);
  w.kv("ok", false);
  w.kv("error", service_error_name(code));
  w.kv("message", message);
  w.end_object();
}

void write_graph_json(JsonWriter& w, const Graph& g) {
  w.begin_object();
  w.kv("n", static_cast<long long>(g.node_count()));
  w.key("edges").begin_array();
  for (const Edge& e : g.edges()) {
    if (e.is_virtual) continue;
    w.begin_array()
        .value(static_cast<long long>(e.u))
        .value(static_cast<long long>(e.v))
        .end_array();
  }
  w.end_array();
  w.end_object();
}

Graph graph_from_json(const JsonValue& v) {
  TGROOM_CHECK_MSG(v.is_object(), "\"graph\" must be an object");
  const JsonValue* n = v.find("n");
  TGROOM_CHECK_MSG(n != nullptr, "graph.n is required");
  std::int64_t nodes = n->as_int();
  TGROOM_CHECK_MSG(nodes >= 0 && nodes <= 50'000'000, "graph.n out of range");
  const JsonValue* edges = v.find("edges");
  TGROOM_CHECK_MSG(edges != nullptr && edges->is_array(),
                   "graph.edges (array) is required");
  Graph g(static_cast<NodeId>(nodes));
  g.reserve_edges(static_cast<EdgeId>(edges->array.size()));
  for (const JsonValue& e : edges->array) {
    TGROOM_CHECK_MSG(e.is_array() && e.array.size() == 2,
                     "graph edge must be a [u,v] pair");
    std::int64_t u = e.array[0].as_int();
    std::int64_t w2 = e.array[1].as_int();
    TGROOM_CHECK_MSG(u >= 0 && u < nodes && w2 >= 0 && w2 < nodes,
                     "edge endpoint out of range");
    TGROOM_CHECK_MSG(u != w2, "self-loop edges are not allowed");
    TGROOM_CHECK_MSG(g.find_edge(static_cast<NodeId>(u),
                                 static_cast<NodeId>(w2)) == kInvalidEdge,
                     "duplicate edge in graph.edges");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(w2));
  }
  return g;
}

void write_plan_json(JsonWriter& w, const GroomingPlan& plan) {
  w.begin_object();
  w.kv("ring_size", static_cast<long long>(plan.ring_size));
  w.kv("k", static_cast<long long>(plan.grooming_factor));
  w.key("pairs").begin_array();
  for (const GroomedPair& gp : plan.pairs) {
    w.begin_array()
        .value(static_cast<long long>(gp.pair.a))
        .value(static_cast<long long>(gp.pair.b))
        .value(static_cast<long long>(gp.wavelength))
        .value(static_cast<long long>(gp.timeslot))
        .end_array();
  }
  w.end_array();
  w.end_object();
}

GroomingPlan plan_from_json(const JsonValue& v) {
  TGROOM_CHECK_MSG(v.is_object(), "\"plan\" must be an object");
  GroomingPlan plan;
  std::int64_t ring = int_field(v, "ring_size", -1);
  TGROOM_CHECK_MSG(ring >= 0, "plan.ring_size is required");
  std::int64_t k = int_field(v, "k", -1);
  TGROOM_CHECK_MSG(k >= 1, "plan.k must be >= 1");
  plan.ring_size = static_cast<NodeId>(ring);
  plan.grooming_factor = static_cast<int>(k);
  const JsonValue* pairs = v.find("pairs");
  TGROOM_CHECK_MSG(pairs != nullptr && pairs->is_array(),
                   "plan.pairs (array) is required");
  plan.pairs.reserve(pairs->array.size());
  for (const JsonValue& p : pairs->array) {
    TGROOM_CHECK_MSG(p.is_array() && p.array.size() == 4,
                     "plan pair must be [a,b,wavelength,timeslot]");
    std::int64_t a = p.array[0].as_int();
    std::int64_t b = p.array[1].as_int();
    std::int64_t wavelength = p.array[2].as_int();
    std::int64_t timeslot = p.array[3].as_int();
    TGROOM_CHECK_MSG(a >= 0 && b >= 0 && a < ring && b < ring && a != b,
                     "plan pair endpoints out of range");
    TGROOM_CHECK_MSG(wavelength >= 0, "plan wavelength must be >= 0");
    TGROOM_CHECK_MSG(timeslot >= 0 && timeslot < k,
                     "plan timeslot out of range");
    GroomedPair gp;
    gp.pair = DemandPair{static_cast<NodeId>(std::min(a, b)),
                         static_cast<NodeId>(std::max(a, b))};
    gp.wavelength = static_cast<int>(wavelength);
    gp.timeslot = static_cast<int>(timeslot);
    plan.pairs.push_back(gp);
  }
  return plan;
}

void write_partition_json(JsonWriter& w, const EdgePartition& partition) {
  write_partition_json(w, partition.parts);
}

void write_partition_json(JsonWriter& w,
                          const std::vector<std::vector<EdgeId>>& parts) {
  w.begin_array();
  for (const auto& part : parts) {
    w.begin_array();
    for (EdgeId e : part) w.value(static_cast<long long>(e));
    w.end_array();
  }
  w.end_array();
}

void write_incremental_json(JsonWriter& w, const IncrementalResult& result,
                            bool include_plan) {
  w.kv("new_sadms", static_cast<long long>(result.new_sadms));
  w.kv("new_wavelengths", static_cast<long long>(result.new_wavelengths));
  w.kv("reused_sites", static_cast<long long>(result.reused_sites));
  w.kv("sadms", plan_sadm_count(result.plan));
  w.kv("wavelengths", static_cast<long long>(result.plan.wavelength_count()));
  if (include_plan) {
    w.key("plan");
    write_plan_json(w, result.plan);
  }
}

void write_release_json(JsonWriter& w, const ReleaseStats& stats,
                        const GroomingPlan& plan, bool include_plan) {
  w.kv("released", static_cast<long long>(stats.released));
  w.kv("repair_moves", static_cast<long long>(stats.repair_moves));
  w.kv("freed_wavelengths",
       static_cast<long long>(stats.freed_wavelengths));
  w.kv("sadms_removed", stats.sadms_removed);
  w.kv("remaining", static_cast<long long>(plan.pairs.size()));
  w.kv("sadms", plan_sadm_count(plan));
  w.kv("wavelengths", static_cast<long long>(plan.wavelength_count()));
  if (include_plan) {
    w.key("plan");
    write_plan_json(w, plan);
  }
}

std::vector<DemandPair> demand_pairs_from_json(const JsonValue& v) {
  TGROOM_CHECK_MSG(v.is_array(), "\"add\" must be an array of [a,b] pairs");
  std::vector<DemandPair> pairs;
  pairs.reserve(v.array.size());
  for (const JsonValue& p : v.array) {
    TGROOM_CHECK_MSG(p.is_array() && p.array.size() == 2,
                     "demand pair must be [a,b]");
    std::int64_t a = p.array[0].as_int();
    std::int64_t b = p.array[1].as_int();
    TGROOM_CHECK_MSG(a >= 0 && b >= 0, "demand endpoints must be >= 0");
    TGROOM_CHECK_MSG(a != b, "demand pair {x,x} is meaningless");
    pairs.push_back(DemandPair{static_cast<NodeId>(std::min(a, b)),
                               static_cast<NodeId>(std::max(a, b))});
  }
  return pairs;
}

namespace {

// ---- Fast request path -------------------------------------------------
//
// A strict in-place scanner for the request grammar that skips the
// JsonValue tree entirely (the tree costs hundreds of small allocations
// per request and dominates the cache-warm service profile).  The
// contract: fast_parse_request() returns true ONLY for a completely valid
// request, in which case its result is identical to the generic parser's.
// On ANY surprise — structural (escapes, floats, unknown keys, duplicate
// keys) or semantic (range violations, duplicate edges) — it returns
// false and the caller re-parses generically, which reproduces the
// canonical error messages.  The fast path never rejects a request, so
// error behaviour is byte-for-byte unchanged.
class FastScanner {
 public:
  explicit FastScanner(std::string_view line)
      : p_(line.data()), end_(line.data() + line.size()) {}

  bool eat(char c) {
    ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool peek(char c) {
    ws();
    return p_ < end_ && *p_ == c;
  }

  bool at_end() {
    ws();
    return p_ == end_;
  }

  bool string(std::string_view& out) {
    ws();
    if (p_ >= end_ || *p_ != '"') return false;
    const char* start = ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') return false;  // escapes → generic parser
      ++p_;
    }
    if (p_ >= end_) return false;
    out = std::string_view(start, static_cast<std::size_t>(p_ - start));
    ++p_;
    return true;
  }

  bool integer(std::int64_t& out) {
    ws();
    bool neg = false;
    if (p_ < end_ && *p_ == '-') {
      neg = true;
      ++p_;
    }
    const char* digits = p_;
    std::int64_t value = 0;
    while (p_ < end_ && *p_ >= '0' && *p_ <= '9') {
      value = value * 10 + (*p_ - '0');
      ++p_;
    }
    if (p_ == digits || p_ - digits > 18) return false;
    if (p_ < end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) return false;
    out = neg ? -value : value;
    return true;
  }

  bool boolean(bool& out) {
    ws();
    if (match("true")) {
      out = true;
      return true;
    }
    if (match("false")) {
      out = false;
      return true;
    }
    return false;
  }

 private:
  void ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  bool match(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size()) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }

  const char* p_;
  const char* end_;
};

// Reader-thread scratch, retained across requests so a warm reader parses
// without heap allocation beyond what escapes into the ServiceRequest.
thread_local std::vector<std::pair<std::int64_t, std::int64_t>>
    t_edge_scratch;
thread_local std::vector<NodeId> t_degree_scratch;

bool fast_parse_graph(FastScanner& s, Graph& out) {
  if (!s.eat('{')) return false;
  std::int64_t n = -1;
  bool have_n = false;
  bool have_edges = false;
  auto& edges = t_edge_scratch;
  edges.clear();
  if (!s.peek('}')) {
    do {
      std::string_view key;
      if (!s.string(key) || !s.eat(':')) return false;
      if (key == "n") {
        if (have_n || !s.integer(n)) return false;
        have_n = true;
      } else if (key == "edges") {
        if (have_edges || !s.eat('[')) return false;
        have_edges = true;
        if (!s.peek(']')) {
          do {
            std::int64_t u = 0, v = 0;
            if (!s.eat('[') || !s.integer(u) || !s.eat(',') ||
                !s.integer(v) || !s.eat(']')) {
              return false;
            }
            edges.push_back({u, v});
          } while (s.eat(','));
        }
        if (!s.eat(']')) return false;
      } else {
        return false;  // unknown graph key → generic parser decides
      }
    } while (s.eat(','));
  }
  if (!s.eat('}')) return false;
  if (!have_n || !have_edges) return false;
  if (n < 0 || n > 50'000'000) return false;
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= n || v < 0 || v >= n || u == v) return false;
  }

  Graph g(static_cast<NodeId>(n));
  g.reserve_edges(static_cast<EdgeId>(edges.size()));
  auto& degree = t_degree_scratch;
  degree.assign(static_cast<std::size_t>(n), 0);
  for (const auto& [u, v] : edges) {
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    g.reserve_degree(v, degree[static_cast<std::size_t>(v)]);
  }
  for (const auto& [u, v] : edges) {
    if (g.find_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)) !=
        kInvalidEdge) {
      return false;  // duplicate edge → canonical error via generic path
    }
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  out = std::move(g);
  return true;
}

bool fast_parse_plan(FastScanner& s, GroomingPlan& plan) {
  if (!s.eat('{')) return false;
  std::int64_t ring = -1;
  std::int64_t k = -1;
  bool have_ring = false, have_k = false, have_pairs = false;
  plan.pairs.clear();
  if (!s.peek('}')) {
    do {
      std::string_view key;
      if (!s.string(key) || !s.eat(':')) return false;
      if (key == "ring_size") {
        if (have_ring || !s.integer(ring)) return false;
        have_ring = true;
      } else if (key == "k") {
        if (have_k || !s.integer(k)) return false;
        have_k = true;
      } else if (key == "pairs") {
        if (have_pairs || !s.eat('[')) return false;
        have_pairs = true;
        if (!s.peek(']')) {
          do {
            std::int64_t a = 0, b = 0, wavelength = 0, timeslot = 0;
            if (!s.eat('[') || !s.integer(a) || !s.eat(',') ||
                !s.integer(b) || !s.eat(',') || !s.integer(wavelength) ||
                !s.eat(',') || !s.integer(timeslot) || !s.eat(']')) {
              return false;
            }
            GroomedPair gp;
            gp.pair = DemandPair{static_cast<NodeId>(std::min(a, b)),
                                 static_cast<NodeId>(std::max(a, b))};
            gp.wavelength = static_cast<int>(wavelength);
            gp.timeslot = static_cast<int>(timeslot);
            plan.pairs.push_back(gp);
          } while (s.eat(','));
        }
        if (!s.eat(']')) return false;
      } else {
        return false;
      }
    } while (s.eat(','));
  }
  if (!s.eat('}')) return false;
  if (!have_ring || !have_pairs || ring < 0 || k < 1) return false;
  for (const GroomedPair& gp : plan.pairs) {
    if (gp.pair.a < 0 || gp.pair.b >= static_cast<NodeId>(ring) ||
        gp.pair.a == gp.pair.b || gp.wavelength < 0 || gp.timeslot < 0 ||
        gp.timeslot >= k) {
      return false;
    }
  }
  plan.ring_size = static_cast<NodeId>(ring);
  plan.grooming_factor = static_cast<int>(k);
  return true;
}

bool fast_parse_request(std::string_view line, RequestParse& out) {
  FastScanner s(line);
  if (!s.eat('{')) return false;

  ServiceRequest request;
  std::string_view op;
  std::int64_t k = 16, seed = 1;
  bool have_op = false, have_id = false, have_graph = false;
  bool have_algorithm = false, have_k = false, have_seed = false;
  bool have_refine = false, have_smart = false, have_hold = false;
  bool have_include_partition = false, have_deadline = false;
  bool have_plan = false, have_plan_id = false, have_add = false;
  bool have_include_plan = false;
  bool have_remove = false, have_all = false, have_repair = false;
  bool have_route_key = false;

  if (!s.peek('}')) {
    do {
      std::string_view key;
      if (!s.string(key) || !s.eat(':')) return false;
      if (key == "op") {
        if (have_op || !s.string(op)) return false;
        have_op = true;
      } else if (key == "id") {
        if (have_id || !s.integer(request.id)) return false;
        have_id = true;
      } else if (key == "graph") {
        if (have_graph || !fast_parse_graph(s, request.graph)) return false;
        have_graph = true;
      } else if (key == "algorithm") {
        std::string_view name;
        if (have_algorithm || !s.string(name)) return false;
        auto algorithm = parse_algorithm_name(std::string(name));
        if (!algorithm.has_value()) return false;
        request.algorithm = *algorithm;
        have_algorithm = true;
      } else if (key == "k") {
        if (have_k || !s.integer(k)) return false;
        have_k = true;
      } else if (key == "seed") {
        if (have_seed || !s.integer(seed)) return false;
        have_seed = true;
      } else if (key == "refine") {
        if (have_refine || !s.boolean(request.refine)) return false;
        have_refine = true;
      } else if (key == "smart_branches") {
        if (have_smart || !s.boolean(request.smart_branches)) return false;
        have_smart = true;
      } else if (key == "hold") {
        if (have_hold || !s.boolean(request.hold)) return false;
        have_hold = true;
      } else if (key == "include_partition") {
        if (have_include_partition ||
            !s.boolean(request.include_partition)) {
          return false;
        }
        have_include_partition = true;
      } else if (key == "deadline_ms") {
        if (have_deadline || !s.integer(request.deadline_ms)) return false;
        have_deadline = true;
      } else if (key == "plan") {
        request.plan.emplace();
        if (have_plan || !fast_parse_plan(s, *request.plan)) return false;
        have_plan = true;
      } else if (key == "plan_id") {
        if (have_plan_id || !s.integer(request.plan_id)) return false;
        have_plan_id = true;
      } else if (key == "add") {
        if (have_add || !s.eat('[')) return false;
        have_add = true;
        if (!s.peek(']')) {
          do {
            std::int64_t a = 0, b = 0;
            if (!s.eat('[') || !s.integer(a) || !s.eat(',') ||
                !s.integer(b) || !s.eat(']')) {
              return false;
            }
            if (a < 0 || b < 0 || a == b) return false;
            request.add.push_back(
                DemandPair{static_cast<NodeId>(std::min(a, b)),
                           static_cast<NodeId>(std::max(a, b))});
          } while (s.eat(','));
        }
        if (!s.eat(']')) return false;
      } else if (key == "include_plan") {
        if (have_include_plan || !s.boolean(request.include_plan)) {
          return false;
        }
        have_include_plan = true;
      } else if (key == "remove") {
        if (have_remove || !s.eat('[')) return false;
        have_remove = true;
        if (!s.peek(']')) {
          do {
            std::int64_t a = 0, b = 0;
            if (!s.eat('[') || !s.integer(a) || !s.eat(',') ||
                !s.integer(b) || !s.eat(']')) {
              return false;
            }
            if (a < 0 || b < 0 || a == b) return false;
            request.remove.push_back(
                DemandPair{static_cast<NodeId>(std::min(a, b)),
                           static_cast<NodeId>(std::max(a, b))});
          } while (s.eat(','));
        }
        if (!s.eat(']')) return false;
      } else if (key == "all") {
        if (have_all || !s.boolean(request.release_all)) return false;
        have_all = true;
      } else if (key == "repair") {
        if (have_repair || !s.boolean(request.repair)) return false;
        have_repair = true;
      } else if (key == "route_key") {
        if (have_route_key || !s.integer(request.route_key)) return false;
        request.has_route_key = true;
        have_route_key = true;
      } else {
        return false;  // unknown key → let the generic parser decide
      }
    } while (s.eat(','));
  }
  if (!s.eat('}') || !s.at_end()) return false;

  if (!have_op) return false;
  if (request.deadline_ms < 0) return false;
  if (op == "groom") {
    request.op = ServiceOp::kGroom;
    if (!have_graph) return false;
    if (have_plan || have_plan_id || have_add || have_include_plan ||
        have_remove || have_all || have_repair) {
      return false;
    }
    if (k < 1 || k > 1'000'000) return false;
    request.k = static_cast<int>(k);
    request.seed = static_cast<std::uint64_t>(seed);
  } else if (op == "provision") {
    request.op = ServiceOp::kProvision;
    if (have_plan == have_plan_id) return false;
    if (have_plan_id && request.plan_id < 0) return false;
    if (!have_add || request.add.empty()) return false;
    if (have_graph || have_algorithm || have_k || have_seed ||
        have_remove || have_all || have_repair) {
      return false;
    }
  } else if (op == "release") {
    request.op = ServiceOp::kRelease;
    if (have_plan == have_plan_id) return false;
    if (have_plan_id && request.plan_id < 0) return false;
    // Exactly one of a non-empty "remove" list or "all":true ("all":false
    // reads as absent, matching the generic parser).
    const bool removing = have_remove && !request.remove.empty();
    const bool dropping = have_all && request.release_all;
    if (removing == dropping) return false;
    if (have_remove && request.remove.empty()) return false;
    if (dropping && have_plan) return false;  // "all" needs a held plan
    if (have_graph || have_algorithm || have_k || have_seed || have_add) {
      return false;
    }
  } else if (op == "stats" || op == "shutdown" || op == "health" ||
             op == "promote") {
    request.op = op == "stats"      ? ServiceOp::kStats
                 : op == "shutdown" ? ServiceOp::kShutdown
                 : op == "health"   ? ServiceOp::kHealth
                                    : ServiceOp::kPromote;
    if (have_graph || have_plan || have_add || have_remove) return false;
  } else {
    return false;
  }

  out.id = request.id;
  out.has_id = have_id;
  request.has_id = have_id;
  out.request = std::move(request);
  return true;
}

}  // namespace

RequestParse parse_request(std::string_view line) {
  {
    RequestParse fast;
    if (fast_parse_request(line, fast)) return fast;
  }
  RequestParse out;
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const CheckError& e) {
    out.error = e.what();
    return out;
  }
  if (!doc.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }
  try {
    if (const JsonValue* id = doc.find("id")) {
      out.id = id->as_int();
      out.has_id = true;
    }
  } catch (const CheckError&) {
    out.error = "\"id\" must be an integer";
    return out;
  }

  ServiceRequest request;
  request.id = out.id;
  request.has_id = out.has_id;
  try {
    const JsonValue* op = doc.find("op");
    TGROOM_CHECK_MSG(op != nullptr && op->is_string(),
                     "\"op\" (string) is required");
    if (op->string == "groom") request.op = ServiceOp::kGroom;
    else if (op->string == "provision") request.op = ServiceOp::kProvision;
    else if (op->string == "release") request.op = ServiceOp::kRelease;
    else if (op->string == "stats") request.op = ServiceOp::kStats;
    else if (op->string == "shutdown") request.op = ServiceOp::kShutdown;
    else if (op->string == "health") request.op = ServiceOp::kHealth;
    else if (op->string == "promote") request.op = ServiceOp::kPromote;
    else if (op->string == "repl_handshake")
      request.op = ServiceOp::kReplHandshake;
    else if (op->string == "repl_fetch") request.op = ServiceOp::kReplFetch;
    else if (op->string == "repl_snapshot")
      request.op = ServiceOp::kReplSnapshot;
    else TGROOM_CHECK_MSG(false, "unknown op '" + op->string + "'");

    request.deadline_ms = int_field(doc, "deadline_ms", 0);
    TGROOM_CHECK_MSG(request.deadline_ms >= 0,
                     "\"deadline_ms\" must be >= 0");
    if (doc.find("route_key") != nullptr) {
      request.route_key = int_field(doc, "route_key", 0);
      request.has_route_key = true;
    }

    if (request.op == ServiceOp::kGroom) {
      const JsonValue* graph = doc.find("graph");
      TGROOM_CHECK_MSG(graph != nullptr, "\"graph\" is required for groom");
      request.graph = graph_from_json(*graph);
      if (const JsonValue* algorithm = doc.find("algorithm")) {
        TGROOM_CHECK_MSG(algorithm->is_string(),
                         "\"algorithm\" must be a string");
        auto id = parse_algorithm_name(algorithm->string);
        TGROOM_CHECK_MSG(id.has_value(),
                         "unknown algorithm '" + algorithm->string + "'");
        request.algorithm = *id;
      }
      std::int64_t k = int_field(doc, "k", 16);
      TGROOM_CHECK_MSG(k >= 1 && k <= 1'000'000, "\"k\" must be in [1, 1e6]");
      request.k = static_cast<int>(k);
      request.seed = static_cast<std::uint64_t>(int_field(doc, "seed", 1));
      request.refine = bool_field(doc, "refine", false);
      request.smart_branches = bool_field(doc, "smart_branches", false);
      request.hold = bool_field(doc, "hold", false);
      request.include_partition = bool_field(doc, "include_partition", false);
    } else if (request.op == ServiceOp::kProvision) {
      const JsonValue* plan = doc.find("plan");
      const JsonValue* plan_id = doc.find("plan_id");
      TGROOM_CHECK_MSG((plan != nullptr) != (plan_id != nullptr),
                       "provision needs exactly one of \"plan\"/\"plan_id\"");
      if (plan != nullptr) {
        request.plan = plan_from_json(*plan);
      } else {
        request.plan_id = plan_id->as_int();
        TGROOM_CHECK_MSG(request.plan_id >= 0, "\"plan_id\" must be >= 0");
      }
      const JsonValue* add = doc.find("add");
      TGROOM_CHECK_MSG(add != nullptr, "\"add\" is required for provision");
      request.add = demand_pairs_from_json(*add);
      TGROOM_CHECK_MSG(!request.add.empty(), "\"add\" lists no pairs");
      request.include_plan = bool_field(doc, "include_plan", false);
    } else if (request.op == ServiceOp::kRelease) {
      const JsonValue* plan = doc.find("plan");
      const JsonValue* plan_id = doc.find("plan_id");
      TGROOM_CHECK_MSG((plan != nullptr) != (plan_id != nullptr),
                       "release needs exactly one of \"plan\"/\"plan_id\"");
      if (plan != nullptr) {
        request.plan = plan_from_json(*plan);
      } else {
        request.plan_id = plan_id->as_int();
        TGROOM_CHECK_MSG(request.plan_id >= 0, "\"plan_id\" must be >= 0");
      }
      request.release_all = bool_field(doc, "all", false);
      const JsonValue* remove = doc.find("remove");
      if (request.release_all) {
        TGROOM_CHECK_MSG(remove == nullptr,
                         "release takes \"remove\" or \"all\", not both");
        TGROOM_CHECK_MSG(plan == nullptr,
                         "\"all\" releases a held plan; use \"plan_id\"");
      } else {
        TGROOM_CHECK_MSG(remove != nullptr,
                         "release needs \"remove\" pairs or \"all\":true");
        TGROOM_CHECK_MSG(remove->is_array(),
                         "\"remove\" must be an array of [a,b] pairs");
        request.remove = demand_pairs_from_json(*remove);
        TGROOM_CHECK_MSG(!request.remove.empty(),
                         "\"remove\" lists no pairs");
      }
      request.repair = bool_field(doc, "repair", true);
      request.include_plan = bool_field(doc, "include_plan", false);
    } else if (request.op == ServiceOp::kReplHandshake) {
      request.repl_store_version = int_field(doc, "store_version", -1);
      TGROOM_CHECK_MSG(request.repl_store_version >= 0,
                       "\"store_version\" is required for repl_handshake");
      request.repl_fingerprint_version =
          int_field(doc, "fingerprint_version", -1);
      TGROOM_CHECK_MSG(
          request.repl_fingerprint_version >= 0,
          "\"fingerprint_version\" is required for repl_handshake");
      const std::int64_t start = int_field(doc, "start_seq", 0);
      TGROOM_CHECK_MSG(start >= 0, "\"start_seq\" must be >= 0");
      request.repl_start_seq = static_cast<std::uint64_t>(start);
      const std::int64_t crc = int_field(doc, "last_crc", -1);
      if (crc >= 0) {
        TGROOM_CHECK_MSG(crc <= 0xffffffffll,
                         "\"last_crc\" must fit in 32 bits");
        request.repl_has_last_crc = true;
        request.repl_last_crc = static_cast<std::uint32_t>(crc);
      }
    } else if (request.op == ServiceOp::kReplFetch) {
      const std::int64_t from = int_field(doc, "from_seq", -1);
      TGROOM_CHECK_MSG(from >= 0,
                       "\"from_seq\" (>= 0) is required for repl_fetch");
      request.repl_from_seq = static_cast<std::uint64_t>(from);
      request.repl_max_records = int_field(doc, "max_records", 0);
      TGROOM_CHECK_MSG(request.repl_max_records >= 0,
                       "\"max_records\" must be >= 0");
      const std::int64_t ack = int_field(doc, "ack_seq", 0);
      TGROOM_CHECK_MSG(ack >= 0, "\"ack_seq\" must be >= 0");
      request.repl_ack_seq = static_cast<std::uint64_t>(ack);
      if (const JsonValue* follower = doc.find("follower")) {
        TGROOM_CHECK_MSG(follower->is_string(),
                         "\"follower\" must be a string");
        request.repl_follower = follower->string;
      }
    }
  } catch (const CheckError& e) {
    out.error = e.what();
    return out;
  }
  out.request = std::move(request);
  return out;
}

}  // namespace tgroom
