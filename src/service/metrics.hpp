// Service-level observability: request counters and a latency histogram.
//
// All mutation is lock-free (relaxed atomics — the counters are
// statistics, not synchronization), so workers never contend on a metrics
// mutex.  Snapshots are taken counter-by-counter; a snapshot concurrent
// with traffic is approximate, which is the standard metrics contract.
//
// The latency histogram is log2-bucketed in microseconds: bucket i counts
// requests with latency in [2^(i-1), 2^i) µs (bucket 0 is < 1 µs), which
// spans sub-microsecond cache hits to multi-minute groomings in 32
// buckets with no configuration.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

namespace tgroom {

class JsonWriter;

class ServiceMetrics {
 public:
  enum class Counter : std::size_t {
    kReceived,          // parseable or not, every non-blank request line
    kOk,                // responses with "ok":true
    kError,             // structured error responses (all codes)
    kOverloaded,        // subset of kError: admission-queue rejections
    kShuttingDown,      // subset of kError: queued requests answered on drain
    kDeadlineExceeded,  // subset of kError: per-request deadline expired
    kCacheHits,
    kCacheMisses,
    kCacheEvictions,
    kStoreAppends,      // WAL records appended by the durable store
    kStoreSnapshots,    // snapshots written by the durable store
    kConnAccepted,      // TCP connections accepted by the event loop
    kConnClosed,        // TCP connections closed (EOF, error, or drain)
    kPipelined,         // requests parsed beyond the first of a readiness
                        // batch (the pipelining depth actually realized)
    kReadOnlyRejected,  // subset of kError: mutations refused by a replica
    kReplFetches,       // repl_fetch batches served (primary side)
    kReplRecordsShipped,  // WAL records shipped to followers
    kReplRecordsApplied,  // shipped records applied locally (replica side)
    kForwarded,         // router: requests forwarded to a shard backend
    kForwardRetries,    // router: forward attempts after the first
    kFailovers,         // router: replica promotions triggered by the prober
    kShardDownErrors,   // subset of kError: no reachable node for the shard
    kCount_,
  };
  static constexpr std::size_t kCounterCount =
      static_cast<std::size_t>(Counter::kCount_);
  static constexpr std::size_t kLatencyBuckets = 32;

  void increment(Counter c, long long delta = 1);
  long long count(Counter c) const;

  void observe_latency(std::chrono::nanoseconds elapsed);

  /// Records how many heap allocations one request performed (measured by
  /// the worker via util/alloc_tracker.hpp).  Makes the zero-allocation
  /// request path (DESIGN.md §11) observable in production: a healthy
  /// cache-warm service shows max == 0 over the cached traffic.
  void observe_allocations(long long count);

  /// Records a worker workspace's arena high-water mark after a request
  /// (MonotonicArena::peak_bytes()).  The published value is the max over
  /// workers — the per-worker bound on irregular-scratch memory, the
  /// big-graph observable bench_scale tracks (DESIGN.md §16).
  void observe_arena_peak(std::size_t peak_bytes);

  /// Emits {"counters":{...},"latency":{...},"allocations":
  /// {requests,total,max},"arena":{"peak_bytes":...}}.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  std::array<std::atomic<long long>, kCounterCount> counters_{};
  std::array<std::atomic<long long>, kLatencyBuckets> latency_buckets_{};
  std::atomic<long long> latency_count_{0};
  std::atomic<long long> latency_sum_us_{0};
  std::atomic<long long> latency_max_us_{0};
  std::atomic<long long> alloc_requests_{0};
  std::atomic<long long> alloc_total_{0};
  std::atomic<long long> alloc_max_{0};
  std::atomic<long long> arena_peak_bytes_{0};
};

}  // namespace tgroom
