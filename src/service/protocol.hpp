// Wire protocol of the grooming service: newline-delimited JSON.
//
// Every request is one JSON object on one line; every response is one
// JSON object on one line.  Requests carry an optional integer "id" that
// is echoed verbatim in the response (responses may be emitted out of
// order when the daemon runs with workers).  Grammar:
//
//   request    := groom | provision | release | stats | shutdown
//               | health | promote | repl_handshake | repl_fetch
//               | repl_snapshot
//   groom      := {"op":"groom", "id"?:int, "graph":{"n":int,
//                  "edges":[[u,v],...]}, "algorithm"?:string, "k"?:int,
//                  "seed"?:int, "refine"?:bool, "smart_branches"?:bool,
//                  "hold"?:bool, "include_partition"?:bool,
//                  "deadline_ms"?:int}
//   provision  := {"op":"provision", "id"?:int,
//                  ("plan_id":int | "plan":plan), "add":[[a,b],...],
//                  "include_plan"?:bool, "deadline_ms"?:int}
//   release    := {"op":"release", "id"?:int,
//                  ("plan_id":int | "plan":plan),
//                  ("remove":[[a,b],...] | "all":true), "repair"?:bool,
//                  "include_plan"?:bool, "deadline_ms"?:int}
//   stats      := {"op":"stats", "id"?:int}
//   shutdown   := {"op":"shutdown", "id"?:int}
//   health     := {"op":"health", "id"?:int}        — answered inline,
//                  never queued behind grooming work
//   promote    := {"op":"promote", "id"?:int}       — replica → primary
//   plan       := {"ring_size":int, "k":int,
//                  "pairs":[[a,b,wavelength,timeslot],...]}
//
// Replication stream (follower → primary, over the same NDJSON loop):
//
//   repl_handshake := {"op":"repl_handshake", "id"?:int,
//                      "store_version":int, "fingerprint_version":int,
//                      "start_seq":int, "last_crc"?:int}
//                  →  {"ok":true, "op":"repl_handshake", "last_seq":int,
//                      "first_available":int, "mode":"wal"|"snapshot",
//                      "diverged"?:true}
//   ("last_crc" is the CRC32C of the follower's WAL record at start_seq;
//   a mismatch against the primary's record means the histories forked —
//   the primary answers mode "snapshot" with "diverged":true so the
//   follower re-bootstraps instead of appending past the fork.)
//   repl_fetch     := {"op":"repl_fetch", "id"?:int, "from_seq":int,
//                      "max_records"?:int, "ack_seq"?:int}
//                  →  {"ok":true, "op":"repl_fetch", "last_seq":int,
//                      "compacted":bool, "incomplete":bool,
//                      "records":[[seq,type,hexbody],...]}
//   repl_snapshot  := {"op":"repl_snapshot", "id"?:int}
//                  →  {"ok":true, "op":"repl_snapshot", "last_seq":int,
//                      "next_plan_id":int, "plans":[[id,plan],...]}
//
//   response   := {"id":int|null, "ok":true, "op":string, ...payload}
//               | {"id":int|null, "ok":false, "error":code,
//                  "message":string}
//   code       := "bad_request" | "overloaded" | "shutting_down"
//               | "deadline_exceeded" | "store_incompatible"
//               | "read_only" | "shard_down" | "internal"
//
// Any request may additionally carry "route_key":int — a routing hint
// for the cluster front-end (`tgroom route`, src/cluster/).  Shard nodes
// parse and ignore it, so a request stream is byte-for-byte replayable
// against a single node; the router uses it to pin held-plan operations
// to the shard that owns the plan (DESIGN.md §17).
//
// The serializers here are shared with the CLI's `--format json` output,
// so scripted pipelines and service clients parse one format.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "graph/graph.hpp"
#include "grooming/incremental.hpp"
#include "grooming/plan.hpp"
#include "grooming/repair.hpp"

namespace tgroom {

class JsonValue;
class JsonWriter;

enum class ServiceOp {
  kGroom,
  kProvision,
  kRelease,
  kStats,
  kShutdown,
  kHealth,         // cheap liveness/role probe, answered inline
  kPromote,        // flip a caught-up replica to primary
  kReplHandshake,  // replication stream: version + start-seq negotiation
  kReplFetch,      // replication stream: a batch of framed WAL records
  kReplSnapshot,   // replication stream: full-table bootstrap
};
const char* service_op_name(ServiceOp op);

enum class ServiceError {
  kBadRequest,
  kOverloaded,
  kShuttingDown,
  kDeadlineExceeded,
  kStoreIncompatible,  // durable store written by a different format version
  kReadOnly,           // mutation sent to a replica; message names the primary
  kShardDown,          // router: the owning shard has no reachable node
  kInternal,
};
const char* service_error_name(ServiceError code);

struct ServiceRequest {
  std::int64_t id = 0;
  bool has_id = false;
  ServiceOp op = ServiceOp::kStats;

  // groom fields
  Graph graph;
  AlgorithmId algorithm = AlgorithmId::kSpanTEuler;
  int k = 16;
  std::uint64_t seed = 1;
  bool refine = false;
  bool smart_branches = false;
  bool hold = false;               // keep the plan server-side, return plan_id
  bool include_partition = false;  // echo the partition parts

  // provision / release fields
  std::int64_t plan_id = -1;           // >= 0 references a held plan
  std::optional<GroomingPlan> plan;    // inline base plan (stateless mode)
  std::vector<DemandPair> add;
  bool include_plan = false;           // echo the extended plan

  // release fields
  std::vector<DemandPair> remove;      // circuits to release
  bool release_all = false;            // drop the whole held plan
  bool repair = true;                  // local repair after release

  // replication fields (repl_handshake / repl_fetch)
  std::int64_t repl_store_version = -1;        // handshake: kStoreFormatVersion
  std::int64_t repl_fingerprint_version = -1;  // handshake
  std::uint64_t repl_start_seq = 0;   // handshake: follower resumes after this
  bool repl_has_last_crc = false;     // handshake: "last_crc" was present
  std::uint32_t repl_last_crc = 0;    // handshake: CRC32C of the follower's
                                      // WAL record at start_seq
  std::uint64_t repl_from_seq = 0;    // fetch: records with seq > from_seq
  std::int64_t repl_max_records = 0;  // fetch: 0 = server default
  std::uint64_t repl_ack_seq = 0;     // fetch: follower's applied high-water
  std::string repl_follower;          // fetch: follower's node id (optional;
                                      // keys the primary's per-replica ack
                                      // table surfaced in health)

  // cluster routing hint (any op): the router shards by this when
  // present, by the graph/plan content otherwise.  Shard nodes ignore it.
  std::int64_t route_key = 0;
  bool has_route_key = false;

  // The original request line, captured only when the serving front-end
  // asks for it (EventLoopHandler::wants_raw_line() — the cluster router
  // forwards these bytes instead of re-serializing).  Empty otherwise.
  std::string raw;

  // lifecycle (stamped by the server at admission)
  std::int64_t deadline_ms = 0;  // 0 = no deadline
  std::chrono::steady_clock::time_point admitted{};
};

struct RequestParse {
  std::optional<ServiceRequest> request;  // empty: `error` says why
  std::string error;
  std::int64_t id = 0;  // best-effort id echo for error responses
  bool has_id = false;
};

/// Parses one request line; never throws — malformed input lands in
/// RequestParse::error.  Takes a view so the event loop can parse
/// directly out of a connection's read buffer without copying the line;
/// nothing in the result aliases `line`.
RequestParse parse_request(std::string_view line);

/// One structured error response line (without trailing newline).
std::string make_error_response(std::int64_t id, bool has_id,
                                ServiceError code,
                                const std::string& message);

/// Same, but into a reusable writer (the zero-allocation response path —
/// the caller owns and recycles the writer's buffer).
void write_error_response(JsonWriter& w, std::int64_t id, bool has_id,
                          ServiceError code, const std::string& message);

/// Opens a response object and writes the shared "id"/"ok"/"op" head; the
/// caller appends payload keys and closes the object.
void begin_ok_response(JsonWriter& w, std::int64_t id, bool has_id,
                       ServiceOp op);

// ---- serializers shared between service responses and CLI --format json.

/// {"n":...,"edges":[[u,v],...]} with real edges in id order.
void write_graph_json(JsonWriter& w, const Graph& g);
/// Builds a simple graph; throws CheckError on malformed/duplicate input.
Graph graph_from_json(const JsonValue& v);

/// {"ring_size":...,"k":...,"pairs":[[a,b,wavelength,timeslot],...]}.
void write_plan_json(JsonWriter& w, const GroomingPlan& plan);
GroomingPlan plan_from_json(const JsonValue& v);

/// The parts array only: [[edge ids...],...].
void write_partition_json(JsonWriter& w, const EdgePartition& partition);
void write_partition_json(JsonWriter& w,
                          const std::vector<std::vector<EdgeId>>& parts);

/// Emits the incremental-provisioning payload keys into an open object:
/// new_sadms/new_wavelengths/reused_sites/sadms/wavelengths[, plan].
void write_incremental_json(JsonWriter& w, const IncrementalResult& result,
                            bool include_plan);

/// Emits the release payload keys into an open object:
/// released/repair_moves/freed_wavelengths/sadms_removed/remaining/
/// sadms/wavelengths[, plan].  `plan` is the residual plan.
void write_release_json(JsonWriter& w, const ReleaseStats& stats,
                        const GroomingPlan& plan, bool include_plan);

/// [[a,b],...] demand pairs; normalizes a < b, rejects a == b.
std::vector<DemandPair> demand_pairs_from_json(const JsonValue& v);

}  // namespace tgroom
