#include "service/event_loop.hpp"

#include <ostream>
#include <string>

#include "service/handler.hpp"

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algorithms/workspace.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "util/arena.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace tgroom {

namespace {

// One accepted socket.  The loop thread owns the read side and the fd;
// the write side (outbox) is shared with workers under `mutex`.  Both
// buffers draw from per-connection arenas, so once a connection's
// buffers reach their high-water mark, serving it costs no heap traffic.
struct Conn {
  explicit Conn(int fd_in)
      : fd(fd_in),
        rbuf(ArenaAllocator<char>(&read_arena)),
        outbox(ArenaAllocator<char>(&write_arena)) {}

  int fd;

  // ---- read side: loop thread only.  rbuf's size() is allocated
  // storage (grown once, then stable); rlen tracks the valid bytes so a
  // read never re-initializes the whole chunk.
  MonotonicArena read_arena;
  ArenaVector<char> rbuf;
  std::size_t rlen = 0;     // rbuf[0, rlen) holds received bytes
  std::size_t rpos = 0;     // rbuf[0, rpos) is already consumed
  bool read_open = true;    // false after EOF, fatal error, or drain
  bool paused = false;      // EPOLLIN dropped: outbox over the cap
  bool replay_queued = false;  // complete lines remain past max_batch
  std::uint32_t events = 0;    // epoll interest mask currently installed

  // ---- write side: loop thread and workers, under `mutex`.
  std::mutex mutex;
  MonotonicArena write_arena;
  ArenaVector<char> outbox;  // response bytes not yet written
  std::size_t opos = 0;      // outbox[0, opos) is already written
  std::size_t inflight = 0;  // requests queued or executing for this conn
  bool notified = false;     // already on the dirty list (coalesces wakes)
  bool dead = false;         // peer gone: discard output, drop responses

  bool closed = false;  // fd closed and removed from epoll (loop thread)
};

using ConnPtr = std::shared_ptr<Conn>;

// A request bound for the worker pool, tagged with its home connection.
struct WorkItem {
  ServiceRequest request;
  ConnPtr conn;
};

int set_nonblocking_listener(int port, int backlog, std::string& error,
                             int& bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int enable = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable) <
      0) {
    error = std::string("setsockopt(SO_REUSEADDR): ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error = std::string("bind 127.0.0.1:") + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog > 0 ? backlog : SOMAXCONN) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    error = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  bound_port = ntohs(addr.sin_port);
  return fd;
}

void append_bytes(ArenaVector<char>& buf, std::string_view bytes) {
  buf.insert(buf.end(), bytes.begin(), bytes.end());
}

}  // namespace

struct EventLoopServer::Impl {
  EventLoopHandler& service;
  EventLoopConfig config;
  std::string error;
  int listen_fd = -1;
  int bound_port = 0;
  int epoll_fd = -1;
  int wake_fd = -1;

  std::unordered_map<int, ConnPtr> conns;

  // Connections with freshly-delivered responses (workers) — swapped out
  // and flushed by the loop on each eventfd wake.
  std::mutex dirty_mutex;
  std::vector<ConnPtr> dirty;

  // Connections with complete-but-unprocessed lines left behind by the
  // per-turn fairness cap; processed before the next blocking wait.
  std::vector<ConnPtr> replay;

  // Drain state.  kServing -> kDraining (shutdown/SIGTERM seen; queue
  // closed and rejected) -> kFlushing (all in-flight done; shutdown
  // response emitted; waiting for outboxes to reach the wire) -> exit.
  enum class Phase { kServing, kDraining, kFlushing };
  Phase phase = Phase::kServing;
  bool shutdown_seen = false;  // vs SIGTERM: emits the shutdown response
  ConnPtr shutdown_conn;
  std::int64_t shutdown_id = 0;
  bool shutdown_has_id = false;
  std::size_t rejected_queued = 0;

  std::size_t inflight_total = 0;  // guarded by dirty_mutex

  std::unique_ptr<BoundedQueue<WorkItem>> queue;
  std::unique_ptr<ThreadPool> pool;
  std::vector<std::future<void>> worker_done;

  // Loop-thread scratch for inline execution and loop-side responses.
  GroomingWorkspace inline_workspace;
  JsonWriter inline_writer;

  Impl(EventLoopHandler& s, const EventLoopConfig& c) : service(s), config(c) {
    listen_fd = set_nonblocking_listener(c.port, c.backlog, error, bound_port);
  }

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }

  // ---- epoll plumbing ----------------------------------------------------

  bool set_interest(Conn& conn, std::uint32_t events) {
    if (conn.closed || events == conn.events) return true;
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = conn.fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) < 0) return false;
    conn.events = events;
    return true;
  }

  void wake() {
    std::uint64_t one = 1;
    // The eventfd counter saturates rather than blocks; a failed write
    // here would mean the loop is already hopelessly wedged.
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof one);
  }

  // ---- response delivery -------------------------------------------------

  /// Appends one response line (newline added here) to `conn`'s outbox.
  /// Safe from any thread; `from_worker` also retires one in-flight slot
  /// and nudges the loop thread through the eventfd.
  void deliver(const ConnPtr& conn, std::string_view line, bool from_worker) {
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (from_worker && conn->inflight > 0) --conn->inflight;
      if (!conn->dead) {
        append_bytes(conn->outbox, line);
        conn->outbox.push_back('\n');
      }
      if (from_worker && !conn->notified) {
        conn->notified = true;
        notify = true;
      }
    }
    if (from_worker) {
      bool drained_all = false;
      {
        std::lock_guard<std::mutex> lock(dirty_mutex);
        if (inflight_total > 0) --inflight_total;
        drained_all = inflight_total == 0;
        if (notify) dirty.push_back(conn);
      }
      // The final in-flight retirement must wake the loop even when the
      // connection was already on the dirty list: the drain state machine
      // waits on inflight_total.
      if (notify || drained_all) wake();
    }
  }

  /// Loop-thread error/inline response: append then flush opportunistically.
  void respond_now(const ConnPtr& conn, std::string_view line) {
    deliver(conn, line, /*from_worker=*/false);
    flush_writes(conn);
  }

  // ---- connection lifecycle ----------------------------------------------

  void accept_ready(std::ostream& log) {
    while (true) {
      int fd = ::accept4(listen_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        log << "accept: " << std::strerror(errno) << "\n";
        return;
      }
      if (conns.size() >= config.max_connections) {
        // Refuse above the cap: closing immediately is the only answer
        // that costs no state (the peer sees ECONNRESET on first read).
        ::close(fd);
        continue;
      }
      int enable = 1;
      // Responses are single short writes; Nagle only adds latency here.
      if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable,
                       sizeof enable) < 0) {
        log << "setsockopt(TCP_NODELAY): " << std::strerror(errno) << "\n";
      }
      if (config.sndbuf > 0) {
        if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config.sndbuf,
                         sizeof config.sndbuf) < 0) {
          log << "setsockopt(SO_SNDBUF): " << std::strerror(errno) << "\n";
        }
      }
      auto conn = std::make_shared<Conn>(fd);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
        log << "epoll_ctl(add conn): " << std::strerror(errno) << "\n";
        ::close(fd);
        continue;
      }
      conn->events = ev.events;
      conns.emplace(fd, std::move(conn));
      service.metrics().increment(ServiceMetrics::Counter::kConnAccepted);
    }
  }

  void close_conn(const ConnPtr& conn) {
    if (conn->closed) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->closed = true;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->dead = true;
      conn->outbox.clear();
      conn->opos = 0;
    }
    conns.erase(conn->fd);
    service.metrics().increment(ServiceMetrics::Counter::kConnClosed);
  }

  void kill_conn(const ConnPtr& conn) {
    conn->read_open = false;
    close_conn(conn);
  }

  /// Close once nothing more can ever reach the socket: read side done,
  /// no request still owned by a worker, outbox on the wire.
  void maybe_close(const ConnPtr& conn) {
    if (conn->closed || conn->read_open) return;
    std::size_t pending = 0;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      pending = conn->inflight + (conn->outbox.size() - conn->opos);
    }
    if (pending == 0) close_conn(conn);
  }

  // ---- write path --------------------------------------------------------

  void flush_writes(const ConnPtr& conn) {
    if (conn->closed) return;
    bool drained = false;
    bool fatal = false;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      while (conn->opos < conn->outbox.size()) {
        ssize_t n = ::write(conn->fd, conn->outbox.data() + conn->opos,
                            conn->outbox.size() - conn->opos);
        if (n > 0) {
          conn->opos += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        // EPIPE / ECONNRESET: the peer is gone.  Drop the remaining
        // output; in-flight responses will be discarded on delivery.
        conn->dead = true;
        fatal = true;
        break;
      }
      if (conn->opos == conn->outbox.size()) {
        // clear() keeps the arena-backed capacity: the steady state
        // recycles the same high-water block forever.
        conn->outbox.clear();
        conn->opos = 0;
        drained = true;
      }
    }
    if (fatal) {
      kill_conn(conn);
      return;
    }
    if (drained) {
      set_interest(*conn, conn->events & ~std::uint32_t{EPOLLOUT});
      if (conn->paused) resume_reads(conn);
      maybe_close(conn);
    } else {
      set_interest(*conn, conn->events | EPOLLOUT);
    }
  }

  std::size_t outbox_backlog(const ConnPtr& conn) {
    std::lock_guard<std::mutex> lock(conn->mutex);
    return conn->outbox.size() - conn->opos;
  }

  void pause_reads(const ConnPtr& conn) {
    if (conn->paused || !conn->read_open) return;
    conn->paused = true;
    set_interest(*conn, conn->events & ~std::uint32_t{EPOLLIN});
  }

  void resume_reads(const ConnPtr& conn) {
    if (!conn->paused) return;
    if (outbox_backlog(conn) > config.outbox_pause_bytes / 2) return;
    conn->paused = false;
    if (conn->read_open) {
      set_interest(*conn, conn->events | EPOLLIN);
      // Lines may already be buffered; make sure they are replayed.
      schedule_replay(conn);
    }
  }

  // ---- read path ---------------------------------------------------------

  void schedule_replay(const ConnPtr& conn) {
    if (conn->replay_queued || conn->closed) return;
    conn->replay_queued = true;
    replay.push_back(conn);
  }

  void read_ready(const ConnPtr& conn) {
    if (!conn->read_open || conn->paused) return;
    bool saw_eof = false;
    while (true) {
      if (conn->rlen - conn->rpos > config.max_request_bytes) {
        // No newline within the line-length budget: the framing is lost
        // for good, so answer once and hang up.
        respond_now(conn, make_error_response(
                              0, false, ServiceError::kBadRequest,
                              "request line exceeds " +
                                  std::to_string(config.max_request_bytes) +
                                  " bytes"));
        service.metrics().increment(ServiceMetrics::Counter::kError);
        kill_conn(conn);
        return;
      }
      if (conn->rbuf.size() < conn->rlen + config.read_chunk) {
        conn->rbuf.resize(conn->rlen + config.read_chunk);
      }
      ssize_t n =
          ::read(conn->fd, conn->rbuf.data() + conn->rlen, config.read_chunk);
      if (n > 0) {
        conn->rlen += static_cast<std::size_t>(n);
        if (static_cast<std::size_t>(n) < config.read_chunk) break;
        continue;
      }
      if (n == 0) {
        saw_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      // Hard read error: nothing more will arrive and nothing pending
      // can be acknowledged to a broken peer.
      kill_conn(conn);
      return;
    }
    process_lines(conn, saw_eof);
  }

  /// Consumes complete lines from the buffer (at most max_batch per call;
  /// leftovers are replayed before the next blocking wait).  At EOF the
  /// final unterminated line is processed too, matching getline().
  void process_lines(const ConnPtr& conn, bool saw_eof) {
    std::size_t batch = 0;
    while (conn->read_open && batch < config.max_batch) {
      const char* base = conn->rbuf.data();
      const std::size_t size = conn->rlen;
      const char* nl = static_cast<const char*>(
          std::memchr(base + conn->rpos, '\n', size - conn->rpos));
      if (nl == nullptr) {
        if (saw_eof && conn->rpos < size) {
          std::string_view line(base + conn->rpos, size - conn->rpos);
          conn->rpos = size;
          ++batch;
          process_line(conn, line);
        }
        break;
      }
      std::string_view line(base + conn->rpos,
                            static_cast<std::size_t>(nl - base) - conn->rpos);
      conn->rpos = static_cast<std::size_t>(nl - base) + 1;
      ++batch;
      process_line(conn, line);
    }
    if (batch > 1) {
      service.metrics().increment(ServiceMetrics::Counter::kPipelined,
                                  static_cast<long long>(batch - 1));
    }
    if (conn->closed) return;
    // Compact: move any partial line to the front so the buffer's
    // high-water mark tracks one request, not one connection lifetime.
    if (conn->rpos > 0) {
      const std::size_t remaining = conn->rlen - conn->rpos;
      if (remaining > 0) {
        std::memmove(conn->rbuf.data(), conn->rbuf.data() + conn->rpos,
                     remaining);
      }
      conn->rlen = remaining;
      conn->rpos = 0;
    }
    if (conn->read_open && !conn->paused && conn->rlen > 0 &&
        std::memchr(conn->rbuf.data(), '\n', conn->rlen) != nullptr) {
      schedule_replay(conn);  // fairness cap left complete lines behind
    }
    if (saw_eof) {
      conn->read_open = false;
      flush_writes(conn);
      maybe_close(conn);
    } else if (!conn->paused && outbox_backlog(conn) > 0) {
      flush_writes(conn);
    }
    if (!conn->closed && outbox_backlog(conn) > config.outbox_pause_bytes) {
      pause_reads(conn);
    }
  }

  void process_line(const ConnPtr& conn, std::string_view line) {
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) return;
    service.metrics().increment(ServiceMetrics::Counter::kReceived);
    RequestParse parsed = parse_request(line);
    if (!parsed.request.has_value()) {
      service.metrics().increment(ServiceMetrics::Counter::kError);
      respond_now(conn, make_error_response(parsed.id, parsed.has_id,
                                            ServiceError::kBadRequest,
                                            parsed.error));
      return;
    }
    ServiceRequest request = std::move(*parsed.request);
    if (request.deadline_ms == 0) {
      request.deadline_ms = service.handler_default_deadline_ms();
    }
    request.admitted = std::chrono::steady_clock::now();
    if (service.wants_raw_line()) request.raw.assign(line);
    if (request.op == ServiceOp::kShutdown) {
      shutdown_seen = true;
      shutdown_conn = conn;
      shutdown_id = request.id;
      shutdown_has_id = request.has_id;
      begin_drain();
      return;
    }
    if (request.op == ServiceOp::kHealth) {
      // Health is answered inline from the event loop, never queued
      // behind grooming work — it stays cheap under a full admission
      // queue, which is exactly when a prober wants an answer.
      service.execute_into(request, inline_workspace, inline_writer);
      respond_now(conn, inline_writer.str());
      return;
    }
    if (service.worker_count() == 0) {
      service.execute_into(request, inline_workspace, inline_writer);
      deliver(conn, inline_writer.str(), /*from_worker=*/false);
      return;  // flushed once per batch by process_lines()
    }
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      ++conn->inflight;
    }
    {
      std::lock_guard<std::mutex> lock(dirty_mutex);
      ++inflight_total;
    }
    const std::int64_t id = request.id;
    const bool has_id = request.has_id;
    WorkItem item{std::move(request), conn};
    if (!queue->try_push(std::move(item))) {
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        --conn->inflight;
      }
      {
        std::lock_guard<std::mutex> lock(dirty_mutex);
        --inflight_total;
      }
      service.metrics().increment(ServiceMetrics::Counter::kError);
      service.metrics().increment(ServiceMetrics::Counter::kOverloaded);
      respond_now(
          conn,
          make_error_response(
              id, has_id, ServiceError::kOverloaded,
              "admission queue full (capacity " +
                  std::to_string(service.handler_queue_capacity()) + ")"));
    }
  }

  // ---- drain -------------------------------------------------------------

  void begin_drain() {
    if (phase != Phase::kServing) return;
    phase = Phase::kDraining;
    // Handler hook before any rejection: the cluster router fans the
    // shutdown out to its shards here, so "drain" means the whole
    // cluster, not just this front-end.
    service.on_drain_begin();
    // Stop accepting; pending SYNs get RST when the fd closes at exit.
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
    // Stop reading everywhere: in-flight work finishes, queued work is
    // rejected, unread pipelined bytes are discarded (exactly run()'s
    // post-shutdown contract for the rest of the stream).
    for (auto& [fd, conn] : conns) {
      conn->read_open = false;
      set_interest(*conn, conn->events & ~std::uint32_t{EPOLLIN});
    }
    if (queue != nullptr) {
      std::vector<WorkItem> leftover = queue->close_and_drain();
      rejected_queued = leftover.size();
      for (WorkItem& item : leftover) {
        service.metrics().increment(ServiceMetrics::Counter::kError);
        service.metrics().increment(ServiceMetrics::Counter::kShuttingDown);
        deliver(item.conn,
                make_error_response(item.request.id, item.request.has_id,
                                    ServiceError::kShuttingDown,
                                    "service is draining"),
                /*from_worker=*/true);
      }
    }
    maybe_finish_drain();
  }

  void maybe_finish_drain() {
    if (phase != Phase::kDraining) return;
    {
      std::lock_guard<std::mutex> lock(dirty_mutex);
      if (inflight_total > 0) return;
    }
    phase = Phase::kFlushing;
    if (shutdown_seen && shutdown_conn != nullptr) {
      JsonWriter w;
      begin_ok_response(w, shutdown_id, shutdown_has_id, ServiceOp::kShutdown);
      w.kv("rejected_queued", static_cast<long long>(rejected_queued));
      w.end_object();
      service.metrics().increment(ServiceMetrics::Counter::kOk);
      deliver(shutdown_conn, w.str(), /*from_worker=*/false);
    }
    // Final flush across every connection; conns whose peers stopped
    // reading are closed rather than waited on forever.
    std::vector<ConnPtr> all;
    all.reserve(conns.size());
    for (auto& [fd, conn] : conns) all.push_back(conn);
    for (const ConnPtr& conn : all) {
      flush_writes(conn);
      maybe_close(conn);
    }
  }

  bool flushing_done() {
    if (phase != Phase::kFlushing) return false;
    return conns.empty();
  }

  // ---- loop --------------------------------------------------------------

  void drain_dirty() {
    std::vector<ConnPtr> batch;
    {
      std::lock_guard<std::mutex> lock(dirty_mutex);
      batch.swap(dirty);
    }
    for (const ConnPtr& conn : batch) {
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->notified = false;
      }
      flush_writes(conn);
      if (!conn->closed && outbox_backlog(conn) > config.outbox_pause_bytes) {
        pause_reads(conn);
      }
      maybe_close(conn);
    }
    maybe_finish_drain();
  }

  void drain_replay() {
    std::vector<ConnPtr> batch;
    batch.swap(replay);
    for (const ConnPtr& conn : batch) {
      conn->replay_queued = false;
      if (conn->closed || conn->paused) continue;
      process_lines(conn, /*saw_eof=*/false);
    }
  }

  int run(std::ostream& log) {
    if (listen_fd < 0) {
      log << error << "\n";
      return 1;
    }
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd < 0 || wake_fd < 0) {
      log << "epoll/eventfd: " << std::strerror(errno) << "\n";
      return 1;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) < 0) {
      log << "epoll_ctl(listen): " << std::strerror(errno) << "\n";
      return 1;
    }
    ev.data.fd = wake_fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) < 0) {
      log << "epoll_ctl(eventfd): " << std::strerror(errno) << "\n";
      return 1;
    }

    const std::size_t workers = service.worker_count();
    if (workers > 0) {
      queue = std::make_unique<BoundedQueue<WorkItem>>(
          service.handler_queue_capacity());
      pool = std::make_unique<ThreadPool>(workers);
      worker_done.reserve(workers);
      for (std::size_t i = 0; i < workers; ++i) {
        worker_done.push_back(pool->submit([this] {
          GroomingWorkspace workspace;
          JsonWriter writer;
          WorkItem item;
          while (queue->pop(item)) {
            service.execute_into(item.request, workspace, writer);
            deliver(item.conn, writer.str(), /*from_worker=*/true);
            item.conn.reset();
          }
        }));
      }
    }

    log << service.log_name() << ": listening on 127.0.0.1:" << bound_port
        << " (event loop, workers=" << workers << ")\n";

    std::vector<epoll_event> events(128);
    bool stop_drain_started = false;
    while (true) {
      if (service.drain_requested() && !stop_drain_started &&
          phase == Phase::kServing) {
        stop_drain_started = true;
        begin_drain();
      }
      if (flushing_done()) break;
      // A zero timeout when replays are pending keeps buffered pipelined
      // requests flowing between epoll turns; otherwise a finite timeout
      // bounds how long a SIGTERM delivered to a worker thread waits.
      const int timeout_ms = replay.empty() ? 250 : 0;
      int n = ::epoll_wait(epoll_fd, events.data(),
                           static_cast<int>(events.size()), timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        log << "epoll_wait: " << std::strerror(errno) << "\n";
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const std::uint32_t mask = events[i].events;
        if (fd == listen_fd) {
          if (phase == Phase::kServing) accept_ready(log);
          continue;
        }
        if (fd == wake_fd) {
          std::uint64_t count = 0;
          while (::read(wake_fd, &count, sizeof count) > 0) {
          }
          drain_dirty();
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        ConnPtr conn = it->second;  // keep alive across handlers
        if (mask & (EPOLLHUP | EPOLLERR)) {
          // The peer is fully gone; nothing can be written back.
          kill_conn(conn);
          continue;
        }
        if (mask & EPOLLOUT) flush_writes(conn);
        if (conn->closed) continue;
        if (mask & (EPOLLIN | EPOLLRDHUP)) read_ready(conn);
        if (!conn->closed) maybe_close(conn);
      }
      drain_replay();
      drain_dirty();
    }

    // Reject-and-join even when the loop exits abnormally.
    if (queue != nullptr) queue->close();
    for (auto& done : worker_done) done.get();

    service.finalize();
    if (service.metrics_on_exit()) {
      JsonWriter w;
      service.write_exit_metrics(w);
      log << w.str() << "\n";
    }
    return 0;
  }
};

EventLoopServer::EventLoopServer(EventLoopHandler& handler,
                                 const EventLoopConfig& config)
    : impl_(std::make_unique<Impl>(handler, config)) {}

EventLoopServer::~EventLoopServer() = default;

bool EventLoopServer::valid() const { return impl_->listen_fd >= 0; }

const std::string& EventLoopServer::error() const { return impl_->error; }

int EventLoopServer::port() const { return impl_->bound_port; }

int EventLoopServer::run(std::ostream& log) { return impl_->run(log); }

}  // namespace tgroom

#else  // !__linux__

namespace tgroom {

struct EventLoopServer::Impl {
  std::string error = "epoll event loop requires linux";
};

EventLoopServer::EventLoopServer(EventLoopHandler&, const EventLoopConfig&)
    : impl_(std::make_unique<Impl>()) {}
EventLoopServer::~EventLoopServer() = default;
bool EventLoopServer::valid() const { return false; }
const std::string& EventLoopServer::error() const { return impl_->error; }
int EventLoopServer::port() const { return 0; }
int EventLoopServer::run(std::ostream& log) {
  log << impl_->error << "\n";
  return 2;
}

}  // namespace tgroom

#endif
