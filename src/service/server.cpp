#include "service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <future>
#include <istream>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "algorithms/workspace.hpp"
#include "graph/fingerprint.hpp"
#include "grooming/demand.hpp"
#include "service/queue.hpp"
#include "util/alloc_tracker.hpp"
#include "util/thread_pool.hpp"

#if defined(__linux__)
#include "service/event_loop.hpp"
#endif
#if defined(__unix__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif
#if defined(__GLIBCXX__)
#include <ext/stdio_filebuf.h>
#endif

namespace tgroom {

std::atomic<bool>& GroomingService::stop_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

std::size_t GroomingService::held_plan_count() const {
  std::lock_guard<std::mutex> lock(plans_mutex_);
  return plans_.size();
}

void GroomingService::open_store() {
  if (config_.data_dir.empty() || store_ref() != nullptr) return;
  DurableStoreOptions options;
  options.dir = config_.data_dir;
  options.fsync = config_.fsync;
  options.snapshot_every = config_.snapshot_every;
  auto store = std::make_shared<DurableStore>(options);
  RecoveredState state = store->take_recovered();
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    plans_ = std::move(state.plans);
    next_plan_id_ = std::max(next_plan_id_, state.next_plan_id);
  }
  if (config_.prewarm_cache) {
    for (PrewarmEntry& entry : state.prewarm) {
      cache_.put(entry.key, std::move(entry.value));
    }
  }
  std::lock_guard<std::mutex> lock(store_ptr_mutex_);
  store_ = std::move(store);
}

void GroomingService::snapshot_store(bool force) {
  const std::shared_ptr<DurableStore> store = store_ref();
  if (store == nullptr) return;
  if (!force && !store->snapshot_due()) return;
  SnapshotData snap;
  {
    // Appends happen under plans_mutex_ too, so last_seq taken here is
    // exactly the sequence number covering this copy of the table.
    std::lock_guard<std::mutex> lock(plans_mutex_);
    snap.last_seq = store->last_seq();
    snap.next_plan_id = next_plan_id_;
    snap.plans.reserve(plans_.size());
    for (const auto& [id, plan] : plans_) snap.plans.emplace_back(id, plan);
  }
  std::sort(snap.plans.begin(), snap.plans.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (store->write_snapshot(snap)) {
    metrics_.increment(ServiceMetrics::Counter::kStoreSnapshots);
  }
}

bool GroomingService::deadline_expired(const ServiceRequest& request) const {
  if (request.deadline_ms <= 0) return false;
  return std::chrono::steady_clock::now() - request.admitted >=
         std::chrono::milliseconds(request.deadline_ms);
}

void GroomingService::deadline_response(const ServiceRequest& request,
                                        JsonWriter& w) {
  metrics_.increment(ServiceMetrics::Counter::kError);
  metrics_.increment(ServiceMetrics::Counter::kDeadlineExceeded);
  write_error_response(
      w, request.id, request.has_id, ServiceError::kDeadlineExceeded,
      "deadline of " + std::to_string(request.deadline_ms) + " ms expired");
}

void GroomingService::execute_into(ServiceRequest& request,
                                   GroomingWorkspace& workspace,
                                   JsonWriter& w) {
  if (request.admitted == std::chrono::steady_clock::time_point{}) {
    request.admitted = std::chrono::steady_clock::now();
  }
  w.clear();
  const AllocCounter allocs_before = thread_alloc_counter();
  try {
    if (is_mutating(request) && is_replica()) {
      metrics_.increment(ServiceMetrics::Counter::kError);
      metrics_.increment(ServiceMetrics::Counter::kReadOnlyRejected);
      write_error_response(
          w, request.id, request.has_id, ServiceError::kReadOnly,
          "read-only replica of " + config_.replica_of +
              "; send mutations to the primary or promote this node");
    } else {
      switch (request.op) {
        case ServiceOp::kGroom:
          handle_groom(request, workspace, w);
          break;
        case ServiceOp::kProvision:
          handle_provision(request, w);
          break;
        case ServiceOp::kRelease:
          handle_release(request, w);
          break;
        case ServiceOp::kStats:
          handle_stats(request, w);
          break;
        case ServiceOp::kHealth:
          handle_health(request, w);
          break;
        case ServiceOp::kPromote:
          handle_promote(request, w);
          break;
        case ServiceOp::kReplHandshake:
          handle_repl_handshake(request, w);
          break;
        case ServiceOp::kReplFetch:
          handle_repl_fetch(request, w);
          break;
        case ServiceOp::kReplSnapshot:
          handle_repl_snapshot(request, w);
          break;
        case ServiceOp::kShutdown:
          // run() intercepts shutdown before dispatch; a direct execute()
          // (tests) gets a structured refusal instead of silence.
          metrics_.increment(ServiceMetrics::Counter::kError);
          write_error_response(w, request.id, request.has_id,
                               ServiceError::kBadRequest,
                               "shutdown is handled by the server");
          break;
      }
    }
  } catch (const std::exception& e) {
    w.clear();
    metrics_.increment(ServiceMetrics::Counter::kError);
    write_error_response(w, request.id, request.has_id,
                         ServiceError::kInternal, e.what());
  }
  metrics_.observe_allocations(thread_alloc_counter().count -
                               allocs_before.count);
  metrics_.observe_arena_peak(workspace.arena.peak_bytes());
  metrics_.observe_latency(std::chrono::steady_clock::now() -
                           request.admitted);
}

std::string GroomingService::execute(ServiceRequest& request,
                                     GroomingWorkspace* workspace) {
  GroomingWorkspace local;
  JsonWriter w;
  execute_into(request, workspace ? *workspace : local, w);
  return w.take();
}

void GroomingService::handle_groom(ServiceRequest& request,
                                   GroomingWorkspace& workspace,
                                   JsonWriter& w) {
  if (deadline_expired(request)) return deadline_response(request, w);

  GroomCacheKey key;
  key.fingerprint = graph_fingerprint(request.graph);
  key.algorithm = static_cast<int>(request.algorithm);
  key.k = request.k;
  key.seed = request.seed;
  key.flags = (request.refine ? 1u : 0u) | (request.smart_branches ? 2u : 0u);

  std::shared_ptr<const GroomCacheValue> value = cache_.get(key);
  const bool hit = value != nullptr;
  metrics_.increment(hit ? ServiceMetrics::Counter::kCacheHits
                         : ServiceMetrics::Counter::kCacheMisses);
  if (!hit) {
    // Rewind the workspace arena: this request's scratch starts from the
    // retained high-water blocks, so a warm worker computes heap-free.
    workspace.reset();
    GroomingOptions options;
    options.seed = request.seed;
    options.refine = request.refine;
    options.smart_branches = request.smart_branches;
    EdgePartition partition;
    try {
      partition = run_algorithm(request.algorithm, request.graph, request.k,
                                options, &workspace);
    } catch (const CheckError& e) {
      metrics_.increment(ServiceMetrics::Counter::kError);
      return write_error_response(w, request.id, request.has_id,
                                  ServiceError::kBadRequest, e.what());
    }
    auto fresh = std::make_shared<GroomCacheValue>();
    fresh->sadms = sadm_cost(request.graph, partition);
    fresh->wavelengths = partition.wavelength_count();
    fresh->lower_bound = partition_cost_lower_bound(request.graph, request.k);
    fresh->parts = std::move(partition.parts);
    value = std::move(fresh);
    // The value is shared with the cache, never deep-copied: the response
    // below serializes from the same immutable payload a later hit reuses.
    std::size_t evicted = cache_.put(key, value);
    if (evicted > 0) {
      metrics_.increment(ServiceMetrics::Counter::kCacheEvictions,
                         static_cast<long long>(evicted));
    }
  }

  // The work is already cached, so an expired deadline still pays forward.
  if (deadline_expired(request)) return deadline_response(request, w);

  std::int64_t held_id = -1;
  if (request.hold) {
    EdgePartition partition;
    partition.k = request.k;
    partition.parts = value->parts;
    GroomingPlan plan = plan_from_partition(
        DemandSet::from_traffic_graph(request.graph), request.graph,
        partition);
    const std::shared_ptr<DurableStore> store = store_ref();
    std::uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> lock(plans_mutex_);
      held_id = next_plan_id_++;
      auto [it, inserted] = plans_.emplace(held_id, std::move(plan));
      (void)inserted;
      if (store != nullptr) {
        // Append before ack, under the table lock so WAL order equals
        // table order; the fsync (sync below) happens off the lock.
        seq = store->append_hold(held_id, it->second, key, *value);
      }
    }
    if (store != nullptr && seq != 0) {
      metrics_.increment(ServiceMetrics::Counter::kStoreAppends);
      store->sync(seq);
      snapshot_store(false);
    }
  }

  begin_ok_response(w, request.id, request.has_id, ServiceOp::kGroom);
  w.kv("algorithm", algorithm_name(request.algorithm));
  w.kv("k", static_cast<long long>(request.k));
  w.kv("sadms", value->sadms);
  w.kv("wavelengths", static_cast<long long>(value->wavelengths));
  w.kv("lower_bound", value->lower_bound);
  w.kv("cached", hit);
  if (held_id >= 0) w.kv("plan_id", static_cast<long long>(held_id));
  if (request.include_partition) {
    w.key("partition");
    write_partition_json(w, value->parts);
  }
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

void GroomingService::handle_provision(ServiceRequest& request,
                                       JsonWriter& w) {
  if (deadline_expired(request)) return deadline_response(request, w);

  IncrementalResult result;
  const std::shared_ptr<DurableStore> store = store_ref();
  std::uint64_t seq = 0;
  try {
    if (request.plan.has_value()) {
      // Stateless mode mutates no server state, so nothing is logged.
      result = add_demands_incremental(*request.plan, request.add);
    } else {
      std::lock_guard<std::mutex> lock(plans_mutex_);
      auto it = plans_.find(request.plan_id);
      if (it == plans_.end()) {
        metrics_.increment(ServiceMetrics::Counter::kError);
        return write_error_response(
            w, request.id, request.has_id, ServiceError::kBadRequest,
            "unknown plan_id " + std::to_string(request.plan_id));
      }
      result = add_demands_incremental(it->second, request.add);
      it->second = result.plan;
      if (store != nullptr) {
        // The WAL logs the *input* pairs; replay recomputes the same
        // placement deterministically (extend_plan_incremental).
        seq = store->append_provision(request.plan_id, request.add);
      }
    }
  } catch (const CheckError& e) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(w, request.id, request.has_id,
                                ServiceError::kBadRequest, e.what());
  }
  if (store != nullptr && seq != 0) {
    metrics_.increment(ServiceMetrics::Counter::kStoreAppends);
    store->sync(seq);
    snapshot_store(false);
  }

  begin_ok_response(w, request.id, request.has_id, ServiceOp::kProvision);
  if (request.plan_id >= 0) {
    w.kv("plan_id", static_cast<long long>(request.plan_id));
  }
  w.kv("added", static_cast<long long>(request.add.size()));
  write_incremental_json(w, result, request.include_plan);
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

void GroomingService::handle_release(ServiceRequest& request,
                                     JsonWriter& w) {
  if (deadline_expired(request)) return deadline_response(request, w);

  ReleaseStats stats;
  GroomingPlan residual;
  bool dropped = false;
  const std::shared_ptr<DurableStore> store = store_ref();
  std::uint64_t seq = 0;
  try {
    if (request.plan.has_value()) {
      // Stateless mode mutates no server state, so nothing is logged.
      residual = std::move(*request.plan);
      stats = release_demands(residual, request.remove, request.repair);
    } else {
      std::lock_guard<std::mutex> lock(plans_mutex_);
      auto it = plans_.find(request.plan_id);
      if (it == plans_.end()) {
        metrics_.increment(ServiceMetrics::Counter::kError);
        return write_error_response(
            w, request.id, request.has_id, ServiceError::kBadRequest,
            "unknown plan_id " + std::to_string(request.plan_id));
      }
      if (request.release_all) {
        residual = GroomingPlan{it->second.ring_size,
                                it->second.grooming_factor, {}};
        stats.released = static_cast<int>(it->second.pairs.size());
        stats.sadms_removed = plan_sadm_count(it->second);
        stats.freed_wavelengths = it->second.wavelength_count();
        plans_.erase(it);
        dropped = true;
      } else {
        // Release on a copy first: a bad pair must not leave the held
        // plan (or the WAL) half-mutated.
        GroomingPlan updated = it->second;
        stats = release_demands(updated, request.remove, request.repair);
        it->second = updated;
        residual = std::move(updated);
      }
      if (store != nullptr) {
        // Append before ack, under the table lock so WAL order equals
        // table order; the fsync (sync below) happens off the lock.
        seq = store->append_release(request.plan_id, request.remove,
                                    request.release_all, request.repair);
      }
    }
  } catch (const CheckError& e) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(w, request.id, request.has_id,
                                ServiceError::kBadRequest, e.what());
  }
  if (store != nullptr && seq != 0) {
    metrics_.increment(ServiceMetrics::Counter::kStoreAppends);
    store->sync(seq);
    snapshot_store(false);
  }

  begin_ok_response(w, request.id, request.has_id, ServiceOp::kRelease);
  if (request.plan_id >= 0) {
    w.kv("plan_id", static_cast<long long>(request.plan_id));
  }
  if (request.release_all) w.kv("dropped", dropped);
  // A dropped plan never echoes back, whatever include_plan says.
  write_release_json(w, stats, residual,
                     request.include_plan && !dropped);
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

void GroomingService::write_cache_stats(JsonWriter& w) const {
  const PlanCacheStats stats = cache_.stats();
  const long long lookups = stats.hits + stats.misses;
  w.begin_object();
  w.kv("capacity", static_cast<long long>(cache_.capacity()));
  w.kv("shards", static_cast<long long>(cache_.shard_count()));
  w.kv("size", static_cast<long long>(cache_.size()));
  w.kv("hits", stats.hits);
  w.kv("misses", stats.misses);
  w.kv("evictions", stats.evictions);
  w.kv("hit_ratio",
       lookups == 0 ? 0.0
                    : static_cast<double>(stats.hits) /
                          static_cast<double>(lookups));
  w.end_object();
}

void GroomingService::handle_stats(const ServiceRequest& request,
                                   JsonWriter& w) {
  begin_ok_response(w, request.id, request.has_id, ServiceOp::kStats);
  w.kv("workers", static_cast<long long>(config_.workers));
  w.kv("queue_capacity", static_cast<long long>(config_.queue_capacity));
  w.kv("cache_capacity", static_cast<long long>(config_.cache_capacity));
  w.kv("cache_size", static_cast<long long>(cache_.size()));
  w.kv("held_plans", static_cast<long long>(held_plan_count()));
  w.key("cache");
  write_cache_stats(w);
  w.key("replication");
  w.begin_object();
  const bool replica = is_replica();
  w.kv("role", replica ? "replica" : "primary");
  if (replica) {
    w.kv("primary", config_.replica_of);
    if (replica_link_ != nullptr) {
      // connected / applied_seq / primary_last_seq / lag / reconnects /
      // snapshot_bootstraps / last_error — the replication-lag surface.
      replica_link_->write_status_json(w);
    }
  } else {
    w.kv("acked_seq", repl_acked_seq_.load(std::memory_order_relaxed));
    std::vector<std::pair<std::string, std::uint64_t>> acks;
    {
      std::lock_guard<std::mutex> lock(repl_acks_mutex_);
      acks = repl_follower_acks_;
    }
    std::sort(acks.begin(), acks.end());
    const std::uint64_t last_seq = applied_seq();
    w.key("replicas").begin_array();
    for (const auto& [follower, acked] : acks) {
      w.begin_object();
      w.kv("follower", follower);
      w.kv("acked_seq", acked);
      w.kv("lag", last_seq > acked ? last_seq - acked : 0);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  w.key("metrics");
  metrics_.write_json(w);
  if (const std::shared_ptr<DurableStore> store = store_ref()) {
    w.key("store");
    store->write_json(w);
  }
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

bool GroomingService::is_mutating(const ServiceRequest& request) {
  switch (request.op) {
    case ServiceOp::kGroom:
      return request.hold;  // a plain groom only reads (and warms) the cache
    case ServiceOp::kProvision:
    case ServiceOp::kRelease:
      // Inline-plan requests are stateless transforms of the caller's own
      // plan; only held-plan references touch the table.
      return !request.plan.has_value();
    default:
      return false;
  }
}

std::uint64_t GroomingService::applied_seq() const {
  const std::shared_ptr<DurableStore> store = store_ref();
  return store != nullptr ? store->last_seq() : 0;
}

bool GroomingService::wal_crc_at(std::uint64_t seq, std::uint32_t& crc) const {
  const std::shared_ptr<DurableStore> store = store_ref();
  if (store == nullptr || seq == 0) return false;
  // Push stdio-buffered appends to the OS first: the record to checksum
  // may have been appended (and acked) without crossing an fsync batch.
  store->flush_os();
  return wal_record_crc(store->dir(), seq, crc);
}

void GroomingService::handle_health(const ServiceRequest& request,
                                    JsonWriter& w) {
  // Deliberately cheap: no plans_mutex_, no store scan — safe to answer
  // inline from the event loop ahead of any queued grooming work.
  begin_ok_response(w, request.id, request.has_id, ServiceOp::kHealth);
  const bool replica = is_replica();
  w.kv("role", replica ? "replica" : "primary");
  // Format + topology echo: the cluster router validates these against
  // its compiled versions and its static map at connect time, so a node
  // from the wrong build or the wrong shard is rejected before it serves.
  w.kv("store_version", static_cast<long long>(kStoreFormatVersion));
  w.kv("fingerprint_version",
       static_cast<long long>(kFingerprintFormatVersion));
  if (!config_.node_id.empty()) w.kv("node_id", config_.node_id);
  if (config_.shard_count > 0) {
    w.kv("shard_index", static_cast<long long>(config_.shard_index));
    w.kv("shard_count", static_cast<long long>(config_.shard_count));
  }
  const std::uint64_t last_seq = applied_seq();
  w.kv("last_seq", last_seq);
  if (replica) {
    w.kv("primary", config_.replica_of);
    if (replica_link_ != nullptr) {
      const std::uint64_t applied = replica_link_->applied_seq();
      const std::uint64_t primary_last = replica_link_->primary_last_seq();
      w.kv("applied_seq", applied);
      w.kv("primary_last_seq", primary_last);
      w.kv("lag", primary_last > applied ? primary_last - applied : 0);
    }
  } else {
    // Primary-side replication lag, per connected follower: acked_seq is
    // the follower's last piggybacked ack, lag its distance from this
    // node's WAL head.  Sorted by follower id so the output is stable.
    w.kv("acked_seq", repl_acked_seq_.load(std::memory_order_relaxed));
    std::vector<std::pair<std::string, std::uint64_t>> acks;
    {
      std::lock_guard<std::mutex> lock(repl_acks_mutex_);
      acks = repl_follower_acks_;
    }
    std::sort(acks.begin(), acks.end());
    w.key("replicas").begin_array();
    for (const auto& [follower, acked] : acks) {
      w.begin_object();
      w.kv("follower", follower);
      w.kv("acked_seq", acked);
      w.kv("lag", last_seq > acked ? last_seq - acked : 0);
      w.end_object();
    }
    w.end_array();
  }
  w.kv("uptime_s",
       static_cast<long long>(std::chrono::duration_cast<std::chrono::seconds>(
                                  std::chrono::steady_clock::now() - started_)
                                  .count()));
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

void GroomingService::handle_promote(const ServiceRequest& request,
                                     JsonWriter& w) {
  std::lock_guard<std::mutex> lock(promote_mutex_);
  if (!is_replica()) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(w, request.id, request.has_id,
                                ServiceError::kBadRequest,
                                "promote: this node is already the primary");
  }
  // Drain: the stream client finishes applying the batch it already
  // holds, then stops — no shipped record is half-applied.  Then make
  // everything applied durable before accepting new mutations.
  if (replica_link_ != nullptr) replica_link_->stop_and_drain();
  if (const std::shared_ptr<DurableStore> store = store_ref()) store->flush();
  role_.store(ServiceRole::kPrimary, std::memory_order_release);
  begin_ok_response(w, request.id, request.has_id, ServiceOp::kPromote);
  w.kv("role", "primary");
  w.kv("last_seq", applied_seq());
  w.kv("was_replica_of", config_.replica_of);
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

namespace {

void append_hex(std::string& out, std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 15]);
  }
}

}  // namespace

void GroomingService::handle_repl_handshake(const ServiceRequest& request,
                                            JsonWriter& w) {
  const std::shared_ptr<DurableStore> store = store_ref();
  if (store == nullptr) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(
        w, request.id, request.has_id, ServiceError::kBadRequest,
        "replication requires a durable store (--data-dir)");
  }
  if (request.repl_store_version !=
      static_cast<std::int64_t>(kStoreFormatVersion)) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(
        w, request.id, request.has_id, ServiceError::kStoreIncompatible,
        "replica store format v" +
            std::to_string(request.repl_store_version) +
            " does not match primary v" + std::to_string(kStoreFormatVersion));
  }
  if (request.repl_fingerprint_version !=
      static_cast<std::int64_t>(kFingerprintFormatVersion)) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(
        w, request.id, request.has_id, ServiceError::kStoreIncompatible,
        "replica fingerprint format v" +
            std::to_string(request.repl_fingerprint_version) +
            " does not match primary v" +
            std::to_string(kFingerprintFormatVersion));
  }
  const std::uint64_t last = store->last_seq();
  if (request.repl_start_seq > last) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(
        w, request.id, request.has_id, ServiceError::kBadRequest,
        "replica is ahead of this primary (start_seq " +
            std::to_string(request.repl_start_seq) + " > last_seq " +
            std::to_string(last) + ")");
  }
  std::uint64_t first_available = 0;
  const std::vector<std::string> segments = list_wal_segments(store->dir());
  if (!segments.empty()) {
    first_available = wal_segment_first_seq(segments.front());
  }
  // Snapshot bootstrap when the records right after start_seq are gone
  // (compacted away) — the WAL can only resume a follower whose cursor
  // still lands inside it.
  bool snapshot_mode =
      first_available == 0 || first_available > request.repl_start_seq + 1;
  // History-identity check: the follower's last applied record must be
  // byte-identical to ours at that seq.  After a racing-kill failover an
  // old primary re-attaching as a replica can hold a *diverged* record at
  // its cursor (same seq, different bytes — it was written by a different
  // history); appending our stream after it would silently fork the
  // stores.  A CRC mismatch forces a snapshot bootstrap, which wipes the
  // diverged history wholesale.
  bool diverged = false;
  if (!snapshot_mode && request.repl_has_last_crc &&
      request.repl_start_seq >= first_available) {
    std::uint32_t local_crc = 0;
    store->flush_os();
    if (wal_record_crc(store->dir(), request.repl_start_seq, local_crc) &&
        local_crc != request.repl_last_crc) {
      diverged = true;
      snapshot_mode = true;
    }
  }
  begin_ok_response(w, request.id, request.has_id, ServiceOp::kReplHandshake);
  w.kv("last_seq", last);
  w.kv("first_available", first_available);
  w.kv("mode", snapshot_mode ? "snapshot" : "wal");
  if (diverged) w.kv("diverged", true);
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

void GroomingService::handle_repl_fetch(const ServiceRequest& request,
                                        JsonWriter& w) {
  const std::shared_ptr<DurableStore> store = store_ref();
  if (store == nullptr) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(
        w, request.id, request.has_id, ServiceError::kBadRequest,
        "replication requires a durable store (--data-dir)");
  }
  // Record the follower's applied high-water (monotonic max across
  // followers) before serving — the periodic commit-seq ack.
  if (request.repl_ack_seq > 0) {
    std::uint64_t prev = repl_acked_seq_.load(std::memory_order_relaxed);
    while (request.repl_ack_seq > prev &&
           !repl_acked_seq_.compare_exchange_weak(prev, request.repl_ack_seq,
                                                  std::memory_order_relaxed)) {
    }
  }
  // Followers that identify themselves (--node-id on the replica) also
  // get a per-replica ack entry, surfaced in health so a failover
  // decision can prefer the most-caught-up replica by name.
  if (!request.repl_follower.empty()) {
    std::lock_guard<std::mutex> lock(repl_acks_mutex_);
    auto it = std::find_if(
        repl_follower_acks_.begin(), repl_follower_acks_.end(),
        [&](const auto& entry) { return entry.first == request.repl_follower; });
    if (it == repl_follower_acks_.end()) {
      repl_follower_acks_.emplace_back(request.repl_follower,
                                       request.repl_ack_seq);
    } else if (request.repl_ack_seq > it->second) {
      it->second = request.repl_ack_seq;
    }
  }
  constexpr std::int64_t kDefaultBatch = 256;
  constexpr std::int64_t kMaxBatch = 4096;
  const std::size_t max_records = static_cast<std::size_t>(
      request.repl_max_records == 0
          ? kDefaultBatch
          : std::min(request.repl_max_records, kMaxBatch));
  // Push stdio-buffered appends to the OS so the tail sees every record
  // the service has acked, whatever the fsync policy.
  store->flush_os();
  struct ShippedRecord {
    std::uint64_t seq;
    std::uint8_t type;
    std::string hex;
  };
  std::vector<ShippedRecord> records;
  const WalTailStats stats = tail_wal(
      store->dir(), request.repl_from_seq, max_records,
      [&records](std::uint64_t seq, WalRecordType type,
                 std::string_view body) {
        ShippedRecord rec;
        rec.seq = seq;
        rec.type = static_cast<std::uint8_t>(type);
        rec.hex.reserve(body.size() * 2);
        append_hex(rec.hex, body);
        records.push_back(std::move(rec));
      });
  begin_ok_response(w, request.id, request.has_id, ServiceOp::kReplFetch);
  w.kv("last_seq", store->last_seq());
  w.kv("compacted", stats.compacted);
  w.kv("incomplete", stats.incomplete);
  w.key("records").begin_array();
  for (const ShippedRecord& rec : records) {
    w.begin_array()
        .value(static_cast<long long>(rec.seq))
        .value(static_cast<long long>(rec.type))
        .value(rec.hex)
        .end_array();
  }
  w.end_array();
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
  metrics_.increment(ServiceMetrics::Counter::kReplFetches);
  if (!records.empty()) {
    metrics_.increment(ServiceMetrics::Counter::kReplRecordsShipped,
                       static_cast<long long>(records.size()));
  }
}

void GroomingService::handle_repl_snapshot(const ServiceRequest& request,
                                           JsonWriter& w) {
  const std::shared_ptr<DurableStore> store = store_ref();
  if (store == nullptr) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(
        w, request.id, request.has_id, ServiceError::kBadRequest,
        "replication requires a durable store (--data-dir)");
  }
  SnapshotData snap;
  {
    // Same invariant as snapshot_store: appends happen under
    // plans_mutex_, so last_seq taken here covers exactly this table.
    std::lock_guard<std::mutex> lock(plans_mutex_);
    snap.last_seq = store->last_seq();
    snap.next_plan_id = next_plan_id_;
    snap.plans.reserve(plans_.size());
    for (const auto& [id, plan] : plans_) snap.plans.emplace_back(id, plan);
  }
  std::sort(snap.plans.begin(), snap.plans.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  begin_ok_response(w, request.id, request.has_id, ServiceOp::kReplSnapshot);
  w.kv("last_seq", snap.last_seq);
  w.kv("next_plan_id", static_cast<long long>(snap.next_plan_id));
  w.key("plans").begin_array();
  for (const auto& [id, plan] : snap.plans) {
    w.begin_array().value(static_cast<long long>(id));
    write_plan_json(w, plan);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

void GroomingService::apply_replication_record(std::uint64_t seq,
                                               WalRecordType type,
                                               std::string_view body) {
  DecodedWalRecord rec = decode_wal_record(seq, type, body);
  if (rec.type == WalRecordType::kHoldPlan && rec.has_cache_entry &&
      config_.prewarm_cache) {
    cache_.put(rec.cache_key, std::make_shared<const GroomCacheValue>(
                                  std::move(rec.cache_value)));
  }
  const std::shared_ptr<DurableStore> store = store_ref();
  TGROOM_CHECK_MSG(store != nullptr,
                   "replication apply requires an open store");
  std::uint64_t appended = 0;
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    const std::uint64_t expected = store->last_seq() + 1;
    TGROOM_CHECK_MSG(seq == expected,
                     "replication stream gap: shipped seq " +
                         std::to_string(seq) + ", expected " +
                         std::to_string(expected));
    switch (rec.type) {
      case WalRecordType::kHoldPlan: {
        plans_[rec.plan_id] = std::move(rec.plan);
        next_plan_id_ = std::max(next_plan_id_, rec.plan_id + 1);
        break;
      }
      case WalRecordType::kProvision: {
        auto it = plans_.find(rec.plan_id);
        TGROOM_CHECK_MSG(it != plans_.end(),
                         "replicated provision for unknown plan " +
                             std::to_string(rec.plan_id));
        extend_plan_incremental(it->second, rec.pairs);
        break;
      }
      case WalRecordType::kRelease: {
        auto it = plans_.find(rec.plan_id);
        TGROOM_CHECK_MSG(it != plans_.end(),
                         "replicated release for unknown plan " +
                             std::to_string(rec.plan_id));
        if (rec.drop_all) {
          plans_.erase(it);
        } else {
          release_demands(it->second, rec.pairs, rec.repair);
        }
        break;
      }
    }
    // Persist the primary's exact bytes before reporting the seq applied
    // (append under the table lock, fsync off it — the same append-
    // before-ack discipline as the primary's own mutations).
    appended = store->append_raw(type, body);
    TGROOM_CHECK_MSG(appended == seq,
                     "replica WAL diverged: local seq " +
                         std::to_string(appended) + " for shipped seq " +
                         std::to_string(seq));
  }
  store->sync(appended);
  metrics_.increment(ServiceMetrics::Counter::kStoreAppends);
  metrics_.increment(ServiceMetrics::Counter::kReplRecordsApplied);
  snapshot_store(false);
}

void GroomingService::install_replication_snapshot(const SnapshotData& snap) {
  std::lock_guard<std::mutex> lock(plans_mutex_);
  if (const std::shared_ptr<DurableStore> old = store_ref()) {
    // Replace the on-disk store wholesale: whatever partial history this
    // replica had is unreachable from the primary's WAL (that is what
    // forced the snapshot bootstrap), so it cannot be extended — wipe it,
    // persist the snapshot, and reopen with the WAL at last_seq + 1.
    //
    // The old store object stays alive throughout (and for as long as
    // any concurrent health/stats reader holds a store_ref() copy):
    // readers see its in-memory counters and unlinked-but-open files,
    // never a destroyed object.  Only once the fresh store is fully
    // recovered does the pointer swap, so store_ref() is never null
    // mid-bootstrap.
    const std::string dir = old->dir();
    std::error_code ec;
    for (const std::string& path : list_snapshot_files(dir)) {
      std::filesystem::remove(path, ec);
    }
    for (const std::string& path : list_wal_segments(dir)) {
      std::filesystem::remove(path, ec);
    }
    write_snapshot_file(dir, snap);
    DurableStoreOptions options;
    options.dir = dir;
    options.fsync = config_.fsync;
    options.snapshot_every = config_.snapshot_every;
    auto fresh = std::make_shared<DurableStore>(options);
    (void)fresh->take_recovered();  // == snap; the table is set below
    std::lock_guard<std::mutex> plock(store_ptr_mutex_);
    store_ = std::move(fresh);
  }
  plans_.clear();
  plans_.reserve(snap.plans.size());
  for (const auto& [id, plan] : snap.plans) plans_[id] = plan;
  next_plan_id_ = snap.next_plan_id;
}

int GroomingService::run(std::istream& in, std::ostream& out) {
  shutdown_ = false;

  std::mutex out_mutex;
  auto emit = [&out, &out_mutex](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << line << '\n';
    out.flush();
  };

  try {
    open_store();
  } catch (const StoreIncompatibleError& e) {
    emit(make_error_response(0, false, ServiceError::kStoreIncompatible,
                             e.what()));
    return 0;
  } catch (const StoreCorruptError& e) {
    emit(make_error_response(0, false, ServiceError::kInternal, e.what()));
    return 0;
  }

  BoundedQueue<ServiceRequest> queue(config_.queue_capacity);
  ThreadPool pool(config_.workers);
  std::vector<std::future<void>> worker_done;
  worker_done.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    worker_done.push_back(pool.submit([this, &queue, &emit] {
      // Long-lived per-worker state: scratch, arena, and response buffer
      // all amortize across every request this worker serves.
      GroomingWorkspace workspace;
      JsonWriter writer;
      ServiceRequest request;
      while (queue.pop(request)) {
        execute_into(request, workspace, writer);
        emit(writer.str());
      }
    }));
  }

  GroomingWorkspace inline_workspace;
  JsonWriter inline_writer;
  std::int64_t shutdown_id = 0;
  bool shutdown_has_id = false;
  std::string line;
  while (!stop_requested() && std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    metrics_.increment(ServiceMetrics::Counter::kReceived);
    RequestParse parsed = parse_request(line);
    if (!parsed.request.has_value()) {
      metrics_.increment(ServiceMetrics::Counter::kError);
      emit(make_error_response(parsed.id, parsed.has_id,
                               ServiceError::kBadRequest, parsed.error));
      continue;
    }
    ServiceRequest request = std::move(*parsed.request);
    if (request.deadline_ms == 0) {
      request.deadline_ms = config_.default_deadline_ms;
    }
    request.admitted = std::chrono::steady_clock::now();
    if (request.op == ServiceOp::kShutdown) {
      shutdown_ = true;
      shutdown_id = request.id;
      shutdown_has_id = request.has_id;
      break;
    }
    if (request.op == ServiceOp::kHealth) {
      // Health never queues behind grooming work: answer inline on the
      // reader thread (the handler touches only atomics and last_seq).
      execute_into(request, inline_workspace, inline_writer);
      emit(inline_writer.str());
      continue;
    }
    if (config_.workers == 0) {
      execute_into(request, inline_workspace, inline_writer);
      emit(inline_writer.str());
      continue;
    }
    const std::int64_t id = request.id;
    const bool has_id = request.has_id;
    if (!queue.try_push(std::move(request))) {
      metrics_.increment(ServiceMetrics::Counter::kError);
      metrics_.increment(ServiceMetrics::Counter::kOverloaded);
      emit(make_error_response(
          id, has_id, ServiceError::kOverloaded,
          "admission queue full (capacity " +
              std::to_string(config_.queue_capacity) + ")"));
    }
  }

  // Drain.  EOF closes admission but lets the workers finish everything
  // already accepted; `shutdown`/SIGTERM additionally hands queued (not
  // yet started) requests back for structured rejection.
  std::vector<ServiceRequest> leftover;
  if (shutdown_ || stop_requested()) {
    leftover = queue.close_and_drain();
  } else {
    queue.close();
  }
  for (const ServiceRequest& request : leftover) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    metrics_.increment(ServiceMetrics::Counter::kShuttingDown);
    emit(make_error_response(request.id, request.has_id,
                             ServiceError::kShuttingDown,
                             "service is draining"));
  }
  for (auto& done : worker_done) done.get();

  // Nothing acked may be lost at a clean exit, whatever the fsync
  // policy: flush the WAL, then leave a snapshot so the next start
  // replays (almost) nothing.
  finalize_store();

  if (shutdown_) {
    JsonWriter w;
    begin_ok_response(w, shutdown_id, shutdown_has_id, ServiceOp::kShutdown);
    w.kv("rejected_queued", static_cast<long long>(leftover.size()));
    w.end_object();
    metrics_.increment(ServiceMetrics::Counter::kOk);
    emit(w.take());
  }
  if (config_.metrics_on_exit) {
    JsonWriter w;
    write_exit_metrics(w);
    emit(w.take());
  }
  return 0;
}

void GroomingService::finalize_store() {
  const std::shared_ptr<DurableStore> store = store_ref();
  if (store == nullptr) return;
  store->flush();
  snapshot_store(/*force=*/true);
}

void GroomingService::write_exit_metrics(JsonWriter& w) {
  w.clear();
  w.begin_object();
  w.kv("event", "exit");
  w.kv("held_plans", static_cast<long long>(held_plan_count()));
  w.kv("cache_size", static_cast<long long>(cache_.size()));
  w.key("cache");
  write_cache_stats(w);
  w.key("metrics");
  metrics_.write_json(w);
  if (const std::shared_ptr<DurableStore> store = store_ref()) {
    w.key("store");
    store->write_json(w);
  }
  w.end_object();
}

int serve_tcp(GroomingService& service, int port, std::ostream& log,
              const std::string& port_file) {
#if defined(__linux__)
  EventLoopConfig config;
  config.port = port;
  EventLoopServer server(service, config);
  if (!server.valid()) {
    log << server.error() << "\n";
    return 1;
  }
  if (!port_file.empty()) {
    std::string error;
    if (!write_port_file(port_file, server.port(), error)) {
      log << error << "\n";
      return 1;
    }
  }
  return server.run(log);
#elif defined(__unix__) && defined(__GLIBCXX__)
  // Non-linux fallback: the historical one-connection-at-a-time loop.
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    log << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  int enable = 1;
  if (::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable,
                   sizeof enable) < 0) {
    log << "setsockopt(SO_REUSEADDR): " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, SOMAXCONN) < 0) {
    log << "bind/listen on 127.0.0.1:" << port << ": "
        << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port = ntohs(addr.sin_port);
  }
  if (!port_file.empty()) {
    std::string error;
    if (!write_port_file(port_file, port, error)) {
      log << error << "\n";
      ::close(listen_fd);
      return 1;
    }
  }
  log << "tgroom serve: listening on 127.0.0.1:" << port << "\n";
  while (!GroomingService::stop_requested() && !service.shutdown_requested()) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;  // SIGTERM: loop re-checks the flag
      log << "accept: " << std::strerror(errno) << "\n";
      break;
    }
    if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable) <
        0) {
      log << "setsockopt(TCP_NODELAY): " << std::strerror(errno) << "\n";
    }
    int out_fd = ::dup(fd);
    if (out_fd < 0) {
      ::close(fd);
      continue;
    }
    // Each filebuf owns (and closes) its fd; the dup keeps in/out halves
    // independently closable.
    __gnu_cxx::stdio_filebuf<char> in_buf(fd, std::ios::in);
    __gnu_cxx::stdio_filebuf<char> out_buf(out_fd, std::ios::out);
    std::istream session_in(&in_buf);
    std::ostream session_out(&out_buf);
    service.run(session_in, session_out);
  }
  ::close(listen_fd);
  return 0;
#else
  (void)service;
  (void)port;
  (void)port_file;
  log << "serve --port requires a unix/libstdc++ build\n";
  return 2;
#endif
}

bool write_port_file(const std::string& path, int port, std::string& error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      error = "port-file: cannot write " + tmp;
      return false;
    }
    out << port << "\n";
    out.flush();
    if (!out) {
      error = "port-file: write to " + tmp + " failed";
      return false;
    }
  }
  // rename() is atomic within a filesystem: a reader polling `path` sees
  // either nothing or the complete port, never a torn write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = std::string("port-file: rename to ") + path + ": " +
            std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace tgroom
