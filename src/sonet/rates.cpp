#include "sonet/rates.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "util/check.hpp"

namespace tgroom {

namespace {
constexpr std::array<std::pair<OcRate, int>, 7> kRates{{
    {OcRate::kOc1, 1},
    {OcRate::kOc3, 3},
    {OcRate::kOc12, 12},
    {OcRate::kOc24, 24},
    {OcRate::kOc48, 48},
    {OcRate::kOc192, 192},
    {OcRate::kOc768, 768},
}};
}  // namespace

int oc_multiplier(OcRate rate) {
  for (const auto& [r, n] : kRates) {
    if (r == rate) return n;
  }
  TGROOM_CHECK_MSG(false, "unknown OC rate");
  return 0;
}

long long oc_bandwidth_kbps(OcRate rate) {
  return 51840LL * oc_multiplier(rate);
}

std::string oc_name(OcRate rate) {
  return "OC-" + std::to_string(oc_multiplier(rate));
}

std::optional<OcRate> parse_oc_rate(const std::string& text) {
  std::string digits;
  for (char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c))) digits += c;
  }
  if (digits.empty()) return std::nullopt;
  int n = std::atoi(digits.c_str());
  for (const auto& [r, value] : kRates) {
    if (value == n) return r;
  }
  return std::nullopt;
}

int grooming_factor(OcRate line, OcRate tributary) {
  int line_n = oc_multiplier(line);
  int trib_n = oc_multiplier(tributary);
  TGROOM_CHECK_MSG(trib_n <= line_n,
                   "tributary rate exceeds the line rate");
  // All OC-N multipliers in the hierarchy divide each other, so the
  // grooming factor is exact.
  return line_n / trib_n;
}

}  // namespace tgroom
