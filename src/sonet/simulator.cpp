#include "sonet/simulator.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace tgroom {

SimulationResult simulate_plan(const UpsrRing& ring,
                               const GroomingPlan& plan) {
  SimulationResult result;
  const int k = plan.grooming_factor;
  const int wavelengths = plan.wavelength_count();
  result.wavelengths_used = wavelengths;
  result.load.assign(static_cast<std::size_t>(wavelengths),
                     std::vector<int>(
                         static_cast<std::size_t>(ring.link_count()), 0));

  auto flag = [&](const std::string& issue) {
    if (result.ok) {
      result.ok = false;
      result.issue = issue;
    }
  };

  if (plan.ring_size != ring.node_count()) {
    flag("plan ring size does not match the ring");
  }

  std::set<std::pair<int, int>> used_slots;        // (wavelength, timeslot)
  std::set<std::pair<int, NodeId>> sadm_sites;     // (wavelength, node)
  for (const GroomedPair& gp : plan.pairs) {
    if (gp.pair.a < 0 || gp.pair.b < 0 || gp.pair.a >= ring.node_count() ||
        gp.pair.b >= ring.node_count() || gp.pair.a == gp.pair.b) {
      flag("demand endpoints invalid for this ring");
      continue;
    }
    if (gp.timeslot < 0 || gp.timeslot >= k) {
      flag("timeslot outside the grooming factor");
    }
    if (gp.wavelength < 0) {
      flag("negative wavelength");
      continue;
    }
    if (!used_slots.insert({gp.wavelength, gp.timeslot}).second) {
      // Any two pairs on one wavelength overlap on some working link (their
      // two directed routes jointly wrap the whole ring), so a reused slot
      // is always a collision.
      flag("timeslot collision on wavelength " +
           std::to_string(gp.wavelength));
    }
    sadm_sites.insert({gp.wavelength, gp.pair.a});
    sadm_sites.insert({gp.wavelength, gp.pair.b});

    // Route both directed halves on the working ring.
    for (NodeId link : ring.working_path(gp.pair.a, gp.pair.b)) {
      ++result.load[static_cast<std::size_t>(gp.wavelength)]
                   [static_cast<std::size_t>(link)];
      ++result.unit_hops;
    }
    for (NodeId link : ring.working_path(gp.pair.b, gp.pair.a)) {
      ++result.load[static_cast<std::size_t>(gp.wavelength)]
                   [static_cast<std::size_t>(link)];
      ++result.unit_hops;
    }
  }

  long long load_sum = 0;
  for (const auto& per_wavelength : result.load) {
    for (int cell : per_wavelength) {
      load_sum += cell;
      if (cell > k) flag("link capacity exceeded");
    }
  }
  result.sadm_count = static_cast<long long>(sadm_sites.size());
  result.bypass_count =
      static_cast<long long>(ring.node_count()) * wavelengths -
      result.sadm_count;
  const double cells =
      static_cast<double>(wavelengths) *
      static_cast<double>(ring.link_count());
  result.mean_utilization =
      cells > 0 ? static_cast<double>(load_sum) / (cells * k) : 0.0;
  return result;
}

std::string render_sadm_map(const UpsrRing& ring, const GroomingPlan& plan) {
  const int wavelengths = plan.wavelength_count();
  std::vector<std::set<NodeId>> adds(static_cast<std::size_t>(wavelengths));
  for (const GroomedPair& gp : plan.pairs) {
    adds[static_cast<std::size_t>(gp.wavelength)].insert(gp.pair.a);
    adds[static_cast<std::size_t>(gp.wavelength)].insert(gp.pair.b);
  }
  std::ostringstream out;
  out << "node:       ";
  for (NodeId v = 0; v < ring.node_count(); ++v) out << (v % 10);
  out << '\n';
  for (int w = 0; w < wavelengths; ++w) {
    out << "lambda " << w << (w < 10 ? ":   " : ":  ");
    for (NodeId v = 0; v < ring.node_count(); ++v) {
      out << (adds[static_cast<std::size_t>(w)].count(v) ? 'A' : '.');
    }
    out << "   (" << adds[static_cast<std::size_t>(w)].size() << " SADMs)\n";
  }
  return out.str();
}

}  // namespace tgroom
