// UPSR ring topology model (paper §1).
//
// The UPSR has two counter-rotating fiber rings; the clockwise ring is the
// working ring and the counter-clockwise ring protects it.  All demands are
// routed on the working ring along the unique clockwise path from source to
// destination.  Link i is the working-ring fiber from node i to node
// (i+1) mod n.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

class UpsrRing {
 public:
  explicit UpsrRing(NodeId node_count);

  NodeId node_count() const { return n_; }
  NodeId link_count() const { return n_; }

  /// Clockwise successor of node v.
  NodeId next(NodeId v) const { return static_cast<NodeId>((v + 1) % n_); }

  /// Number of working-ring hops from x to y (clockwise distance).
  NodeId hop_count(NodeId x, NodeId y) const;

  /// Link ids on the working path from x to y (clockwise), in order.
  std::vector<NodeId> working_path(NodeId x, NodeId y) const;

  /// Link ids on the protection path from x to y: the complement arc,
  /// traversed on the counter-rotating ring (returned as working-link ids
  /// whose protection twins are used).
  std::vector<NodeId> protection_path(NodeId x, NodeId y) const;

 private:
  NodeId n_;
};

}  // namespace tgroom
