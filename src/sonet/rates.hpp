// SONET OC-N rate hierarchy.
//
// The grooming factor k of the paper is the ratio between the wavelength
// line rate and the tributary demand rate — "sixteen OC-3 traffic demands
// multiplexed onto one OC-48 wavelength channel gives a grooming factor of
// 16" (§1).  This module maps named rates to bandwidths and grooming
// factors so examples and tools can speak SONET instead of bare integers.
#pragma once

#include <optional>
#include <string>

namespace tgroom {

enum class OcRate {
  kOc1,
  kOc3,
  kOc12,
  kOc24,
  kOc48,
  kOc192,
  kOc768,
};

/// The N in OC-N.
int oc_multiplier(OcRate rate);

/// Line bandwidth in kbit/s (OC-1 = 51840 kbit/s).
long long oc_bandwidth_kbps(OcRate rate);

/// Canonical name, e.g. "OC-48".
std::string oc_name(OcRate rate);

/// Parses "OC-48" / "oc48" / "48"; nullopt if unknown.
std::optional<OcRate> parse_oc_rate(const std::string& text);

/// Grooming factor: how many tributary channels fit one line channel.
/// Throws CheckError if the tributary rate exceeds the line rate.
int grooming_factor(OcRate line, OcRate tributary);

}  // namespace tgroom
