// UPSR grooming simulator.
//
// Independently re-derives the physical consequences of a GroomingPlan:
// per-link per-wavelength timeslot occupancy, capacity violations, SADM
// placement, and bypass statistics.  Used as the ground truth that the
// combinatorial k-edge-partition cost model equals the SADM count a real
// ring would need (the paper asserts this equivalence; we test it).
#pragma once

#include <string>
#include <vector>

#include "grooming/plan.hpp"
#include "sonet/ring.hpp"

namespace tgroom {

struct SimulationResult {
  bool ok = true;
  std::string issue;  // first violation found, empty when ok

  long long sadm_count = 0;
  int wavelengths_used = 0;

  /// load[w][link] = occupied timeslots on that wavelength/link.
  std::vector<std::vector<int>> load;

  /// Total unit·hops carried on the working ring.
  long long unit_hops = 0;

  /// Mean of load over all (wavelength, link) cells divided by k.
  double mean_utilization = 0.0;

  /// Node-wavelength incidences with no add/drop (optical bypasses).
  long long bypass_count = 0;
};

/// Routes every pair of the plan on the working ring and checks:
///  - endpoints within the ring, timeslot within [0, k),
///  - no two pairs share (wavelength, timeslot)  [on a UPSR any two pairs
///    on a wavelength overlap on some link, so slots must be distinct],
///  - per (wavelength, link) occupancy <= k.
/// Returns statistics even when a violation is found (ok=false).
SimulationResult simulate_plan(const UpsrRing& ring, const GroomingPlan& plan);

/// Renders a per-wavelength add/drop map ('A' = SADM, '.' = bypass) for
/// reports and examples.
std::string render_sadm_map(const UpsrRing& ring, const GroomingPlan& plan);

}  // namespace tgroom
