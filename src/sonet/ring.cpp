#include "sonet/ring.hpp"

namespace tgroom {

UpsrRing::UpsrRing(NodeId node_count) : n_(node_count) {
  TGROOM_CHECK_MSG(node_count >= 2, "a ring needs at least 2 nodes");
}

NodeId UpsrRing::hop_count(NodeId x, NodeId y) const {
  TGROOM_CHECK(x >= 0 && x < n_ && y >= 0 && y < n_);
  TGROOM_CHECK_MSG(x != y, "no path from a node to itself");
  return static_cast<NodeId>((y - x + n_) % n_);
}

std::vector<NodeId> UpsrRing::working_path(NodeId x, NodeId y) const {
  NodeId hops = hop_count(x, y);
  std::vector<NodeId> links;
  links.reserve(static_cast<std::size_t>(hops));
  NodeId v = x;
  for (NodeId i = 0; i < hops; ++i) {
    links.push_back(v);  // link id == its source node
    v = next(v);
  }
  return links;
}

std::vector<NodeId> UpsrRing::protection_path(NodeId x, NodeId y) const {
  // The protection ring runs counter-clockwise: from x we traverse the
  // complement arc, i.e. the working links from y to x, in reverse order.
  std::vector<NodeId> links = working_path(y, x);
  return {links.rbegin(), links.rend()};
}

}  // namespace tgroom
