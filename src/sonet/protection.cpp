#include "sonet/protection.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace tgroom {

namespace {

/// True when the working (clockwise) path from x to y crosses `span`.
bool working_path_contains(const UpsrRing& ring, NodeId x, NodeId y,
                           NodeId span) {
  NodeId n = ring.node_count();
  NodeId hops = ring.hop_count(x, y);
  NodeId offset = static_cast<NodeId>((span - x + n) % n);
  return offset < hops;
}

/// The two directed halves of every groomed pair.
struct Directed {
  NodeId from, to;
  int wavelength;
};

std::vector<Directed> directed_demands(const GroomingPlan& plan) {
  std::vector<Directed> out;
  out.reserve(plan.pairs.size() * 2);
  for (const GroomedPair& gp : plan.pairs) {
    out.push_back({gp.pair.a, gp.pair.b, gp.wavelength});
    out.push_back({gp.pair.b, gp.pair.a, gp.wavelength});
  }
  return out;
}

}  // namespace

SpanFailureImpact simulate_span_failure(const UpsrRing& ring,
                                        const GroomingPlan& plan,
                                        NodeId span) {
  TGROOM_CHECK_MSG(span >= 0 && span < ring.link_count(),
                   "span id out of range");
  SpanFailureImpact impact;
  impact.failed_span = span;

  // protection_load[wavelength][span] counts selected protection copies.
  std::map<int, std::vector<int>> protection_load;
  for (const Directed& d : directed_demands(plan)) {
    if (!working_path_contains(ring, d.from, d.to, span)) continue;
    ++impact.switched_demands;
    NodeId working_hops = ring.hop_count(d.from, d.to);
    NodeId protect_hops =
        static_cast<NodeId>(ring.node_count() - working_hops);
    impact.extra_hops += protect_hops - working_hops;
    auto& load = protection_load[d.wavelength];
    if (load.empty()) {
      load.assign(static_cast<std::size_t>(ring.link_count()), 0);
    }
    // The protection copy rides the counter-clockwise fiber over the
    // complement spans (the working spans of the reverse direction).
    for (NodeId link : ring.working_path(d.to, d.from)) {
      int cell = ++load[static_cast<std::size_t>(link)];
      impact.peak_protection_load =
          std::max(impact.peak_protection_load, cell);
    }
  }
  // A single span failure can never cut a protection copy of a demand
  // whose working copy it cut: the two paths partition the spans.
  impact.lost_demands = 0;
  return impact;
}

SpanFailureImpact simulate_double_failure(const UpsrRing& ring,
                                          const GroomingPlan& plan,
                                          NodeId span_a, NodeId span_b) {
  TGROOM_CHECK_MSG(span_a != span_b, "spans must differ");
  TGROOM_CHECK(span_a >= 0 && span_a < ring.link_count());
  TGROOM_CHECK(span_b >= 0 && span_b < ring.link_count());
  SpanFailureImpact impact;
  impact.failed_span = span_a;  // reported against the first span
  for (const Directed& d : directed_demands(plan)) {
    bool a_on_working = working_path_contains(ring, d.from, d.to, span_a);
    bool b_on_working = working_path_contains(ring, d.from, d.to, span_b);
    if (a_on_working && b_on_working) {
      ++impact.switched_demands;  // protection copy intact
    } else if (a_on_working || b_on_working) {
      ++impact.lost_demands;  // one span on each path: both copies cut
    }
    // Neither on working: the working copy is untouched.
  }
  return impact;
}

SurvivabilityReport survivability_report(const UpsrRing& ring,
                                         const GroomingPlan& plan) {
  SurvivabilityReport report;
  report.per_span.reserve(static_cast<std::size_t>(ring.link_count()));
  for (NodeId span = 0; span < ring.link_count(); ++span) {
    SpanFailureImpact impact = simulate_span_failure(ring, plan, span);
    report.survives_all_single_failures &= impact.fully_recovered();
    report.worst_case_switched =
        std::max(report.worst_case_switched, impact.switched_demands);
    report.worst_case_extra_hops =
        std::max(report.worst_case_extra_hops, impact.extra_hops);
    report.per_span.push_back(impact);
  }
  return report;
}

std::string render_survivability(const SurvivabilityReport& report) {
  std::ostringstream out;
  out << (report.survives_all_single_failures
              ? "UPSR survivability: all single span failures recovered"
              : "UPSR survivability: VIOLATED")
      << "\n";
  for (const SpanFailureImpact& impact : report.per_span) {
    out << "  span " << impact.failed_span << ": " << impact.switched_demands
        << " demand(s) switched to protection, +" << impact.extra_hops
        << " hops, peak protection load " << impact.peak_protection_load
        << (impact.lost_demands ? "  [LOST " +
                                      std::to_string(impact.lost_demands) +
                                      "]"
                                : "")
        << "\n";
  }
  return out.str();
}

}  // namespace tgroom
