// UPSR 1+1 path protection (paper §1: "one ring is used as a working ring
// and the other as a protecting ring").
//
// Every directed demand is transmitted simultaneously on its working
// (clockwise) path and its protection (counter-clockwise, complement-arc)
// path; the receiver selects.  Because the two paths partition the ring's
// spans, any single span failure leaves exactly one copy intact — the UPSR
// survivability guarantee.  This module simulates span failures against a
// grooming plan and verifies that guarantee, giving the test suite a real
// failure-injection surface.
#pragma once

#include <string>
#include <vector>

#include "grooming/plan.hpp"
#include "sonet/ring.hpp"

namespace tgroom {

/// Outcome of failing one span (both fibers between node `span` and its
/// clockwise successor).
struct SpanFailureImpact {
  NodeId failed_span = kInvalidNode;

  /// Directed demands whose working path crossed the span and switched to
  /// their protection copy.
  int switched_demands = 0;

  /// Directed demands with neither copy available (0 for any single span
  /// failure on a valid plan — the UPSR guarantee).
  int lost_demands = 0;

  /// Extra hop count of the protection paths over the failed working
  /// paths, summed over switched demands (protection detours are longer
  /// whenever the working path was the short way round).
  long long extra_hops = 0;

  /// Max per-(wavelength, span) occupancy on the protection ring after the
  /// switch; must stay within the grooming factor.
  int peak_protection_load = 0;

  bool fully_recovered() const { return lost_demands == 0; }
};

/// Simulates the failure of one span.  `span` is a working-link id.
SpanFailureImpact simulate_span_failure(const UpsrRing& ring,
                                        const GroomingPlan& plan,
                                        NodeId span);

/// Simulates the simultaneous failure of two distinct spans.  Demands
/// whose working *and* protection copies are both cut are lost — UPSR
/// does not survive double failures.
SpanFailureImpact simulate_double_failure(const UpsrRing& ring,
                                          const GroomingPlan& plan,
                                          NodeId span_a, NodeId span_b);

/// Full survivability sweep: every single span failure.
struct SurvivabilityReport {
  bool survives_all_single_failures = true;
  int worst_case_switched = 0;
  long long worst_case_extra_hops = 0;
  std::vector<SpanFailureImpact> per_span;
};

SurvivabilityReport survivability_report(const UpsrRing& ring,
                                         const GroomingPlan& plan);

/// Human-readable one-liner per span, for examples/tools.
std::string render_survivability(const SurvivabilityReport& report);

}  // namespace tgroom
