#include "tools/commands.hpp"

#include <algorithm>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>

#include "algorithms/algorithm.hpp"
#include "algorithms/anneal.hpp"
#include "bench_support/sweep.hpp"
#include "cluster/cluster_map.hpp"
#include "cluster/router.hpp"
#include "gen/traffic_patterns.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "grooming/incremental.hpp"
#include "grooming/plan.hpp"
#include "nphard/gadget.hpp"
#include "replication/replica.hpp"
#include "service/event_loop.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sim/simulator.hpp"
#include "sonet/protection.hpp"
#include "store/durable_store.hpp"
#include "store/format.hpp"
#include "sonet/simulator.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

#if defined(__unix__)
#include <csignal>
#endif

namespace tgroom::tools {

namespace {

std::string slurp(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses --algorithm (default spant); reports to err and returns nullopt
/// on an unknown name.
std::optional<AlgorithmId> algorithm_flag(const CliArgs& args,
                                          std::ostream& err) {
  std::string name = args.get("algorithm", "spant");
  auto id = parse_algorithm_name(name);
  if (!id) err << "unknown algorithm '" << name << "'\n";
  return id;
}

GroomingOptions options_from_flags(const CliArgs& args) {
  GroomingOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.refine = args.get_bool("refine", false);
  options.smart_branches = args.get_bool("smart-branches", false);
  return options;
}

/// Parses --format (default "text"); reports unknown values to err.
std::optional<bool> json_format_flag(const CliArgs& args, std::ostream& err) {
  std::string format = args.get("format", "text");
  if (format == "text") return false;
  if (format == "json") return true;
  err << "--format expects text|json, got '" << format << "'\n";
  return std::nullopt;
}

/// Parses an "a-b,c-d" pair list (shared by grow/provision so the CLI and
/// service provisioning paths feed identical inputs).  Throws CheckError.
std::vector<DemandPair> parse_pair_list(const std::string& spec_text) {
  std::vector<DemandPair> pairs;
  std::stringstream spec(spec_text);
  std::string item;
  while (std::getline(spec, item, ',')) {
    auto dash = item.find('-');
    TGROOM_CHECK_MSG(dash != std::string::npos,
                     "--add expects a-b pairs, got '" + item + "'");
    NodeId a = static_cast<NodeId>(std::atoi(item.substr(0, dash).c_str()));
    NodeId b = static_cast<NodeId>(std::atoi(item.substr(dash + 1).c_str()));
    pairs.push_back(DemandPair{std::min(a, b), std::max(a, b)});
  }
  TGROOM_CHECK_MSG(!pairs.empty(), "--add lists no pairs");
  return pairs;
}

/// Parses a comma-separated integer list, e.g. "4,8,16".
std::optional<std::vector<int>> int_list_flag(const CliArgs& args,
                                              const std::string& flag,
                                              const std::string& fallback,
                                              std::ostream& err) {
  std::vector<int> values;
  std::stringstream spec(args.get(flag, fallback));
  std::string item;
  while (std::getline(spec, item, ',')) {
    if (item.empty()) continue;
    int value = std::atoi(item.c_str());
    if (value <= 0) {
      err << "--" << flag << " expects positive integers, got '" << item
          << "'\n";
      return std::nullopt;
    }
    values.push_back(value);
  }
  if (values.empty()) {
    err << "--" << flag << " lists no values\n";
    return std::nullopt;
  }
  return values;
}

void write_latency_json(JsonWriter& w, std::string_view key,
                        const LatencySummary& latency) {
  w.key(key).begin_object();
  w.kv("count", static_cast<long long>(latency.count));
  w.kv("p50_us", latency.p50_us);
  w.kv("p90_us", latency.p90_us);
  w.kv("p99_us", latency.p99_us);
  w.kv("max_us", latency.max_us);
  w.end_object();
}

void write_sim_result_json(JsonWriter& w, const SimResult& result,
                           bool timing) {
  w.kv("arrivals", static_cast<long long>(result.arrivals));
  w.kv("accepted", static_cast<long long>(result.accepted));
  w.kv("blocked", static_cast<long long>(result.blocked));
  w.kv("blocking_rate", result.blocking_rate);
  w.kv("departures", static_cast<long long>(result.departures));
  w.kv("sadms_added", result.sadms_added);
  w.kv("sadms_removed", result.sadms_removed);
  w.kv("repair_moves", result.repair_moves);
  w.kv("freed_wavelengths", result.freed_wavelengths);
  w.kv("peak_sadms", result.peak_sadms);
  w.kv("peak_wavelengths", static_cast<long long>(result.peak_wavelengths));
  w.kv("final_sadms", result.final_sadms);
  w.kv("final_wavelengths",
       static_cast<long long>(result.final_wavelengths));
  w.kv("residual_demands",
       static_cast<long long>(result.residual_demands));
  w.kv("bound_ok", result.bound_ok);
  if (timing) {
    write_latency_json(w, "arrival_latency", result.arrival_latency);
    write_latency_json(w, "release_latency", result.release_latency);
  }
}

void print_latency_text(std::ostream& out, const char* label,
                        const LatencySummary& latency) {
  out << label << "p50=" << TextTable::num(latency.p50_us, 1)
      << "us p90=" << TextTable::num(latency.p90_us, 1)
      << "us p99=" << TextTable::num(latency.p99_us, 1)
      << "us max=" << TextTable::num(latency.max_us, 1) << "us (n="
      << latency.count << ")\n";
}

void print_sim_result_text(std::ostream& out, const SimResult& result,
                           bool timing) {
  out << "arrivals:          " << result.arrivals << "\n"
      << "accepted:          " << result.accepted << "\n"
      << "blocked:           " << result.blocked << "\n"
      << "blocking rate:     "
      << TextTable::num(result.blocking_rate * 100.0, 2) << "%\n"
      << "departures:        " << result.departures << "\n"
      << "SADMs added:       " << result.sadms_added << "\n"
      << "SADMs removed:     " << result.sadms_removed << "\n"
      << "repair moves:      " << result.repair_moves << "\n"
      << "freed wavelengths: " << result.freed_wavelengths << "\n"
      << "peak SADMs:        " << result.peak_sadms << "\n"
      << "peak wavelengths:  " << result.peak_wavelengths << "\n"
      << "final SADMs:       " << result.final_sadms << "\n"
      << "final wavelengths: " << result.final_wavelengths << "\n"
      << "residual demands:  " << result.residual_demands << "\n"
      << "prop2 bound:       " << (result.bound_ok ? "ok" : "VIOLATED")
      << "\n";
  if (timing) {
    print_latency_text(out, "arrival latency:   ", result.arrival_latency);
    print_latency_text(out, "release latency:   ", result.release_latency);
  }
}

/// The dynamic-traffic mode of `tgroom simulate` (active when --traffic is
/// given): generates a seeded DemandScript and plays it through the
/// arrival/release event loop, or sweeps load until blocking crosses the
/// threshold when --load-steps is set.
int cmd_simulate_dynamic(const CliArgs& args, std::ostream& out,
                         std::ostream& err) {
  auto json = json_format_flag(args, err);
  if (!json) return 2;
  const std::string model_name = args.get("traffic", "poisson");
  auto model = parse_traffic_model(model_name);
  if (!model) {
    err << "--traffic expects poisson|diurnal|flash, got '" << model_name
        << "'\n";
    return 2;
  }

  TrafficConfig traffic;
  traffic.model = *model;
  traffic.ring_size = static_cast<NodeId>(args.get_int("ring", 16));
  traffic.arrival_rate = args.get_double("rate", 4.0);
  traffic.mean_holding = args.get_double("holding", 4.0);
  traffic.load = args.get_double("load", 1.0);
  traffic.diurnal_depth = args.get_double("depth", 0.5);
  traffic.diurnal_period = args.get_double("period", 64.0);
  traffic.flash_start = args.get_double("flash-start", 32.0);
  traffic.flash_duration = args.get_double("flash-duration", 8.0);
  traffic.flash_multiplier = args.get_double("flash-mult", 4.0);
  traffic.arrivals = static_cast<std::size_t>(args.get_int("events", 1000));
  traffic.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  SimOptions sim;
  sim.k = static_cast<int>(args.get_int("k", 16));
  sim.max_wavelengths = static_cast<int>(args.get_int("max-wavelengths", 0));
  sim.repair = args.get_bool("repair", true);
  sim.check_bound = args.get_bool("check-bound", true);
  sim.collect_latency = args.get_bool("timing", false);

  const int load_steps = static_cast<int>(args.get_int("load-steps", 0));
  try {
    if (load_steps <= 0) {
      const SimResult result = simulate_script(generate_script(traffic), sim);
      if (*json) {
        JsonWriter w;
        w.begin_object();
        w.kv("traffic", traffic_model_name(traffic.model));
        w.kv("ring", static_cast<long long>(traffic.ring_size));
        w.kv("k", static_cast<long long>(sim.k));
        w.kv("seed", traffic.seed);
        w.kv("load", traffic.load);
        w.kv("max_wavelengths",
             static_cast<long long>(sim.max_wavelengths));
        w.kv("repair", sim.repair);
        write_sim_result_json(w, result, sim.collect_latency);
        w.end_object();
        out << w.str() << "\n";
      } else {
        out << "# tgroom simulate: traffic="
            << traffic_model_name(traffic.model) << " ring="
            << traffic.ring_size << " k=" << sim.k << " arrivals="
            << traffic.arrivals << " seed=" << traffic.seed << " load="
            << TextTable::num(traffic.load, 2) << " max_wavelengths="
            << sim.max_wavelengths << " repair="
            << (sim.repair ? "on" : "off") << "\n";
        print_sim_result_text(out, result, sim.collect_latency);
      }
      return result.bound_ok ? 0 : 1;
    }

    LoadSweepOptions sweep_options;
    sweep_options.traffic = traffic;
    sweep_options.sim = sim;
    sweep_options.load_start = args.get_double("load-start", 0.5);
    sweep_options.load_step = args.get_double("load-step", 0.5);
    sweep_options.load_steps = load_steps;
    sweep_options.blocking_threshold = args.get_double("threshold", 0.01);
    sweep_options.workers =
        static_cast<std::size_t>(args.get_int("workers", 0));
    const LoadSweepResult sweep = run_load_sweep(sweep_options);
    bool all_bounds_ok = true;
    for (const LoadPoint& point : sweep.points) {
      all_bounds_ok = all_bounds_ok && point.result.bound_ok;
    }
    if (*json) {
      JsonWriter w;
      w.begin_object();
      w.kv("traffic", traffic_model_name(traffic.model));
      w.kv("ring", static_cast<long long>(traffic.ring_size));
      w.kv("k", static_cast<long long>(sim.k));
      w.kv("seed", traffic.seed);
      w.kv("max_wavelengths", static_cast<long long>(sim.max_wavelengths));
      w.kv("repair", sim.repair);
      w.kv("blocking_threshold", sweep_options.blocking_threshold);
      w.kv("threshold_index",
           static_cast<long long>(sweep.threshold_index));
      if (sweep.threshold_index >= 0) {
        w.kv("threshold_load",
             sweep.points[static_cast<std::size_t>(sweep.threshold_index)]
                 .load);
      } else {
        w.key("threshold_load").null();
      }
      w.key("points").begin_array();
      for (const LoadPoint& point : sweep.points) {
        w.begin_object();
        w.kv("load", point.load);
        write_sim_result_json(w, point.result, sim.collect_latency);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      out << w.str() << "\n";
    } else {
      TextTable table(
          "load sweep: traffic=" +
          std::string(traffic_model_name(traffic.model)) + ", ring=" +
          std::to_string(traffic.ring_size) + ", k=" + std::to_string(sim.k) +
          ", max_wavelengths=" + std::to_string(sim.max_wavelengths) +
          ", threshold=" +
          TextTable::num(sweep_options.blocking_threshold * 100.0, 2) + "%");
      table.set_header({"load", "arrivals", "blocked", "blocking",
                        "peak waves", "peak SADMs", "bound"});
      for (const LoadPoint& point : sweep.points) {
        table.add_row(
            {TextTable::num(point.load, 2),
             TextTable::num(static_cast<long long>(point.result.arrivals)),
             TextTable::num(static_cast<long long>(point.result.blocked)),
             TextTable::num(point.result.blocking_rate * 100.0, 2) + "%",
             TextTable::num(
                 static_cast<long long>(point.result.peak_wavelengths)),
             TextTable::num(point.result.peak_sadms),
             point.result.bound_ok ? "ok" : "VIOLATED"});
      }
      table.print(out);
      if (sweep.threshold_index >= 0) {
        out << "blocking crosses "
            << TextTable::num(sweep_options.blocking_threshold * 100.0, 2)
            << "% at load "
            << TextTable::num(
                   sweep.points[static_cast<std::size_t>(
                                    sweep.threshold_index)]
                       .load,
                   2)
            << "\n";
      } else {
        out << "blocking never crosses "
            << TextTable::num(sweep_options.blocking_threshold * 100.0, 2)
            << "% on this load grid\n";
      }
    }
    return all_bounds_ok ? 0 : 1;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

}  // namespace

std::string usage() {
  return
      "tgroom <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate   --pattern random|regular|all-to-all|hub --n N\n"
      "             [--dense D] [--r R] [--hubs H] [--seed S]\n"
      "             writes a demand file to stdout\n"
      "  groom      --k K [--algorithm NAME] [--refine] [--anneal]\n"
      "             [--anneal-iterations I] [--smart-branches]\n"
      "             [--format text|json]\n"
      "             reads a demand file on stdin, writes a plan file\n"
      "  simulate   reads a plan file on stdin, prints the ring report;\n"
      "             with --traffic poisson|diurnal|flash runs the dynamic\n"
      "             event-driven simulator instead: [--ring N] [--k K]\n"
      "             [--events E] [--rate R] [--holding H] [--load L]\n"
      "             [--max-wavelengths W] [--repair BOOL] [--seed S]\n"
      "             [--depth D] [--period P] [--flash-start T]\n"
      "             [--flash-duration T] [--flash-mult M] [--timing]\n"
      "             [--format text|json]; add --load-steps N [--load-start\n"
      "             L0] [--load-step DL] [--threshold B] [--workers W] to\n"
      "             sweep load until blocking crosses the threshold\n"
      "  survive    reads a plan file on stdin, prints survivability\n"
      "  compare    --k K  reads a demand file, prints per-algorithm table\n"
      "  grow       --add a-b,c-d  reads a plan file, provisions the new\n"
      "             pairs incrementally (existing circuits untouched)\n"
      "  provision  --add a-b,c-d [--format text|json]  same operation as\n"
      "             the service's provision op, shared code path\n"
      "  gadget     reads an even-degree graph, writes the Lemma 6\n"
      "             Δ-regular EPT gadget\n"
      "  sweep      --pattern dense|regular|all-to-all --n N [--dense D]\n"
      "             [--r R] [--k K1,K2,...] [--seeds S] [--workers W]\n"
      "             [--algorithms a,b,...] [--csv | --format json] runs the\n"
      "             batch engine over a (seed x k) grid, aggregate SADMs\n"
      "  serve      [--workers W] [--queue Q] [--cache C] [--cache-shards S]\n"
      "             [--deadline-ms D] [--port P] [--data-dir PATH]\n"
      "             [--fsync always|batch|none] [--snapshot-every N]\n"
      "             [--prewarm-cache BOOL] NDJSON request daemon on\n"
      "             stdin/stdout; --port P serves many concurrent loopback\n"
      "             TCP connections via an epoll event loop (P=0 picks an\n"
      "             ephemeral port, announced on stderr); ops groom,\n"
      "             provision, stats, shutdown — see DESIGN.md 10/12/14;\n"
      "             --data-dir makes held plans survive crashes (WAL +\n"
      "             snapshots, recovered on restart); --replica-of H:P\n"
      "             tails that primary's WAL and serves read-only until a\n"
      "             `promote` op flips it to primary (DESIGN.md 15);\n"
      "             --node-id NAME --shard-index I --shard-count N name\n"
      "             this node's place in a sharded cluster (echoed in\n"
      "             health, validated by `route`); --port-file PATH\n"
      "             writes the bound port atomically once listening\n"
      "  route      --shards host:port[,replica:port...];host:port;...\n"
      "             [--port P] [--port-file PATH] [--workers W]\n"
      "             [--queue Q] [--deadline-ms D] [--probe-ms MS]\n"
      "             [--timeout-ms MS] [--connect-wait-ms MS]\n"
      "             cluster front-end: fingerprint-routes requests across\n"
      "             the shard groups (',' separates a group's primary and\n"
      "             replicas, ';' separates groups), fails over to a\n"
      "             promoted replica when a primary dies (DESIGN.md 17)\n"
      "  store-dump --data-dir PATH  read-only recovery: prints the\n"
      "             held-plan table a restarted daemon would serve; a\n"
      "             summary with the store format version, WAL first/last\n"
      "             seq, per-record-type counts, and the store's fsync\n"
      "             policy goes to stderr\n"
      "\n"
      "algorithms: Algo1-Goldschmidt, Algo2-Brauner, Algo3-WangGu,\n"
      "            SpanT_Euler, Regular_Euler, CliquePack (aliases: algo1,\n"
      "            algo2, algo3, spant, regular, clique)\n";
}

int cmd_generate(const CliArgs& args, std::ostream& out, std::ostream& err) {
  const auto n = static_cast<NodeId>(args.get_int("n", 16));
  const std::string pattern = args.get("pattern", "random");
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  try {
    DemandSet demands(0);
    if (pattern == "random") {
      demands = random_traffic(n, args.get_double("dense", 0.5), rng);
    } else if (pattern == "regular") {
      demands = regular_traffic(
          n, static_cast<NodeId>(args.get_int("r", 4)), rng);
    } else if (pattern == "all-to-all") {
      demands = all_to_all_traffic(n);
    } else if (pattern == "hub") {
      demands = hub_traffic(n, static_cast<NodeId>(args.get_int("hubs", 2)));
    } else {
      err << "unknown pattern '" << pattern << "'\n";
      return 2;
    }
    out << "# tgroom demand file: pattern=" << pattern << " n=" << n << "\n";
    out << demands.serialize();
    return 0;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_groom(const CliArgs& args, std::istream& in, std::ostream& out,
              std::ostream& err) {
  auto id = algorithm_flag(args, err);
  if (!id) return 2;
  auto json = json_format_flag(args, err);
  if (!json) return 2;
  const int k = static_cast<int>(args.get_int("k", 16));
  try {
    DemandSet demands = DemandSet::parse(slurp(in));
    Graph traffic = demands.traffic_graph();
    EdgePartition partition =
        run_algorithm(*id, traffic, k, options_from_flags(args));
    if (args.get_bool("anneal", false)) {
      AnnealOptions anneal_options;
      anneal_options.seed =
          static_cast<std::uint64_t>(args.get_int("seed", 1));
      anneal_options.iterations =
          static_cast<int>(args.get_int("anneal-iterations", 20000));
      anneal_partition(traffic, partition, anneal_options);
    }
    auto valid = validate_partition(traffic, partition);
    TGROOM_CHECK_MSG(valid.ok, valid.reason);
    GroomingPlan plan = plan_from_partition(demands, traffic, partition);
    if (*json) {
      JsonWriter w;
      w.begin_object();
      w.kv("algorithm", algorithm_name(*id));
      w.kv("k", static_cast<long long>(k));
      w.kv("sadms", plan_sadm_count(plan));
      w.kv("wavelengths", static_cast<long long>(plan.wavelength_count()));
      w.kv("lower_bound", partition_cost_lower_bound(traffic, k));
      w.key("plan");
      write_plan_json(w, plan);
      w.end_object();
      out << w.str() << "\n";
      return 0;
    }
    out << "# tgroom plan: algorithm=" << algorithm_name(*id) << " k=" << k
        << " sadms=" << plan_sadm_count(plan)
        << " wavelengths=" << plan.wavelength_count() << "\n";
    out << serialize_plan(plan);
    return 0;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_simulate(const CliArgs& args, std::istream& in, std::ostream& out,
                 std::ostream& err) {
  // --traffic switches to the dynamic event-driven mode; without it the
  // command keeps its original contract (plan file on stdin, ring report).
  if (args.has("traffic")) return cmd_simulate_dynamic(args, out, err);
  try {
    GroomingPlan plan = parse_plan(slurp(in));
    UpsrRing ring(plan.ring_size);
    SimulationResult sim = simulate_plan(ring, plan);
    out << "ring nodes:        " << ring.node_count() << "\n"
        << "grooming factor:   " << plan.grooming_factor << "\n"
        << "demand pairs:      " << plan.pairs.size() << "\n"
        << "wavelengths:       " << sim.wavelengths_used << "\n"
        << "SADMs:             " << sim.sadm_count << "\n"
        << "optical bypasses:  " << sim.bypass_count << "\n"
        << "unit-hops:         " << sim.unit_hops << "\n"
        << "mean utilization:  "
        << TextTable::num(sim.mean_utilization * 100.0, 1) << "%\n"
        << "valid:             " << (sim.ok ? "yes" : "NO — " + sim.issue)
        << "\n\n"
        << render_sadm_map(ring, plan);
    return sim.ok ? 0 : 1;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_survive(const CliArgs& args, std::istream& in, std::ostream& out,
                std::ostream& err) {
  (void)args;
  try {
    GroomingPlan plan = parse_plan(slurp(in));
    UpsrRing ring(plan.ring_size);
    SurvivabilityReport report = survivability_report(ring, plan);
    out << render_survivability(report);
    return report.survives_all_single_failures ? 0 : 1;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_compare(const CliArgs& args, std::istream& in, std::ostream& out,
                std::ostream& err) {
  const int k = static_cast<int>(args.get_int("k", 16));
  try {
    DemandSet demands = DemandSet::parse(slurp(in));
    Graph traffic = demands.traffic_graph();
    TextTable table("k=" + std::to_string(k) + ", m=" +
                    std::to_string(traffic.real_edge_count()) +
                    ", lower bound=" +
                    std::to_string(partition_cost_lower_bound(traffic, k)));
    table.set_header({"algorithm", "SADMs", "wavelengths"});
    for (AlgorithmId id : all_algorithms()) {
      if (id == AlgorithmId::kRegularEuler &&
          !regularity(traffic).has_value()) {
        continue;  // needs a regular traffic graph
      }
      EdgePartition p = run_algorithm(id, traffic, k,
                                      options_from_flags(args));
      table.add_row({algorithm_name(id),
                     TextTable::num(sadm_cost(traffic, p)),
                     TextTable::num(static_cast<long long>(
                         p.wavelength_count()))});
    }
    table.print(out);
    return 0;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_grow(const CliArgs& args, std::istream& in, std::ostream& out,
             std::ostream& err) {
  try {
    GroomingPlan plan = parse_plan(slurp(in));
    std::vector<DemandPair> new_pairs = parse_pair_list(args.get("add", ""));
    IncrementalResult grown = add_demands_incremental(plan, new_pairs);
    out << "# tgroom grow: added=" << new_pairs.size()
        << " new_sadms=" << grown.new_sadms
        << " new_wavelengths=" << grown.new_wavelengths
        << " reused_sites=" << grown.reused_sites << "\n";
    out << serialize_plan(grown.plan);
    return 0;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_provision(const CliArgs& args, std::istream& in, std::ostream& out,
                  std::ostream& err) {
  auto json = json_format_flag(args, err);
  if (!json) return 2;
  try {
    // Same pipeline as the service's `provision` op: parse a base plan,
    // add the pairs with add_demands_incremental, report via the shared
    // JSON serializer.  tests pin CLI/service output equality.
    GroomingPlan plan = parse_plan(slurp(in));
    std::vector<DemandPair> new_pairs = parse_pair_list(args.get("add", ""));
    IncrementalResult grown = add_demands_incremental(plan, new_pairs);
    if (*json) {
      JsonWriter w;
      w.begin_object();
      w.kv("added", static_cast<long long>(new_pairs.size()));
      write_incremental_json(w, grown, /*include_plan=*/true);
      w.end_object();
      out << w.str() << "\n";
      return 0;
    }
    out << "# tgroom provision: added=" << new_pairs.size()
        << " new_sadms=" << grown.new_sadms
        << " new_wavelengths=" << grown.new_wavelengths
        << " reused_sites=" << grown.reused_sites << "\n";
    out << serialize_plan(grown.plan);
    return 0;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_gadget(const CliArgs& args, std::istream& in, std::ostream& out,
               std::ostream& err) {
  (void)args;
  try {
    Graph g = read_edge_list_string(slurp(in));
    RegularEptGadget gadget = build_regular_ept_gadget(g);
    out << "# Lemma 6 gadget: delta=" << gadget.delta
        << " helper_triangles=" << gadget.helper_triangles.size() << "\n";
    write_edge_list(out, gadget.gstar);
    return 0;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_sweep(const CliArgs& args, std::ostream& out, std::ostream& err) {
  const auto n = static_cast<NodeId>(args.get_int("n", 36));
  const std::string pattern = args.get("pattern", "dense");
  WorkloadSpec workload;
  if (pattern == "dense") {
    workload = WorkloadSpec::dense(n, args.get_double("dense", 0.5));
  } else if (pattern == "regular") {
    workload =
        WorkloadSpec::regular(n, static_cast<NodeId>(args.get_int("r", 8)));
  } else if (pattern == "all-to-all") {
    workload = WorkloadSpec::all_to_all(n);
  } else {
    err << "unknown pattern '" << pattern << "'\n";
    return 2;
  }

  auto factors = int_list_flag(args, "k", "4,8,12,16,20,24,28,32,40,48", err);
  if (!factors) return 2;

  std::vector<AlgorithmId> algorithms;
  std::stringstream names(args.get("algorithms", ""));
  std::string name;
  while (std::getline(names, name, ',')) {
    if (name.empty()) continue;
    auto id = parse_algorithm_name(name);
    if (!id) {
      err << "unknown algorithm '" << name << "'\n";
      return 2;
    }
    algorithms.push_back(*id);
  }
  if (algorithms.empty()) algorithms = figure4_algorithms();

  SweepConfig config;
  config.grooming_factors = *factors;
  config.seeds = static_cast<int>(args.get_int("seeds", 20));
  config.base_seed = static_cast<std::uint64_t>(
      args.get_int("base-seed", 20060101));
  config.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  config.options = options_from_flags(args);

  auto json = json_format_flag(args, err);
  if (!json) return 2;

  try {
    SweepResult result = run_sweep(workload, algorithms, config);
    if (*json) {
      JsonWriter w;
      w.begin_object();
      w.kv("workload", workload_label(workload));
      w.kv("seeds", static_cast<long long>(config.seeds));
      w.kv("mean_edges", result.mean_edges);
      w.key("series").begin_array();
      for (const auto& series : result.series) {
        w.begin_object();
        w.kv("algorithm", algorithm_name(series.algorithm));
        w.key("cells").begin_array();
        for (std::size_t ki = 0; ki < series.cells.size(); ++ki) {
          const SweepCell& cell = series.cells[ki];
          w.begin_object();
          w.kv("k", static_cast<long long>(config.grooming_factors[ki]));
          w.kv("mean_sadms", cell.mean_sadms);
          w.kv("min_sadms", cell.min_sadms);
          w.kv("max_sadms", cell.max_sadms);
          w.kv("mean_wavelengths", cell.mean_wavelengths);
          w.kv("mean_lower_bound", cell.mean_lower_bound);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.end_object();
      out << w.str() << "\n";
      return 0;
    }
    if (args.get_bool("csv", false)) {
      out << "algorithm,k,mean_sadms,min_sadms,max_sadms,"
             "mean_wavelengths,mean_lower_bound\n";
      for (const auto& series : result.series) {
        for (std::size_t ki = 0; ki < series.cells.size(); ++ki) {
          const SweepCell& cell = series.cells[ki];
          out << algorithm_name(series.algorithm) << ','
              << config.grooming_factors[ki] << ',' << cell.mean_sadms << ','
              << cell.min_sadms << ',' << cell.max_sadms << ','
              << cell.mean_wavelengths << ',' << cell.mean_lower_bound
              << '\n';
        }
      }
      return 0;
    }
    TextTable table(workload_label(workload) + ", seeds=" +
                    std::to_string(config.seeds) + ", mean edges=" +
                    TextTable::num(result.mean_edges, 1));
    table.set_header({"algorithm", "k", "mean SADMs", "min", "max",
                      "mean waves", "mean LB"});
    for (const auto& series : result.series) {
      for (std::size_t ki = 0; ki < series.cells.size(); ++ki) {
        const SweepCell& cell = series.cells[ki];
        table.add_row({algorithm_name(series.algorithm),
                       TextTable::num(static_cast<long long>(
                           config.grooming_factors[ki])),
                       TextTable::num(cell.mean_sadms, 2),
                       TextTable::num(cell.min_sadms, 0),
                       TextTable::num(cell.max_sadms, 0),
                       TextTable::num(cell.mean_wavelengths, 2),
                       TextTable::num(cell.mean_lower_bound, 2)});
      }
    }
    table.print(out);
    return 0;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int cmd_serve(const CliArgs& args, std::istream& in, std::ostream& out,
              std::ostream& err) {
  ServiceConfig config;
  config.workers = static_cast<std::size_t>(args.get_int("workers", 0));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 256));
  config.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache", 128));
  config.cache_shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 0));
  config.default_deadline_ms = args.get_int("deadline-ms", 0);
  config.metrics_on_exit = args.get_bool("exit-metrics", true);
  config.data_dir = args.get("data-dir", "");
  config.snapshot_every =
      static_cast<std::uint64_t>(args.get_int("snapshot-every", 1024));
  config.prewarm_cache = args.get_bool("prewarm-cache", true);
  config.replica_of = args.get("replica-of", "");
  config.node_id = args.get("node-id", "");
  config.shard_index = static_cast<int>(args.get_int("shard-index", -1));
  config.shard_count = static_cast<int>(args.get_int("shard-count", 0));
  try {
    config.fsync = parse_fsync_policy(args.get("fsync", "batch"));
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 2;
  }
  if (config.queue_capacity == 0) {
    err << "--queue must be >= 1\n";
    return 2;
  }
  if (!config.replica_of.empty() && config.data_dir.empty()) {
    err << "--replica-of needs --data-dir (the replica persists the "
           "shipped WAL into its own store)\n";
    return 2;
  }
  if (config.shard_count > 0 &&
      (config.shard_index < 0 || config.shard_index >= config.shard_count)) {
    err << "--shard-index must be in [0, --shard-count)\n";
    return 2;
  }
#if defined(__unix__)
  // SIGTERM requests a graceful drain.  No SA_RESTART: a read blocked in
  // getline/accept fails with EINTR, so the loop reaches its drain path
  // instead of blocking until the next request line.
  struct sigaction action {};
  action.sa_handler = [](int) { GroomingService::request_stop(); };
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
#endif
  GroomingService::clear_stop();
  GroomingService service(config);
  // Open (and recover) the store before accepting any request, so a
  // format-version mismatch or unrepairable corruption is a structured
  // error up front, not a mid-session surprise.
  try {
    service.open_store();
  } catch (const StoreIncompatibleError& e) {
    out << make_error_response(0, false, ServiceError::kStoreIncompatible,
                               e.what())
        << "\n";
    err << e.what() << "\n";
    return 1;
  } catch (const CheckError& e) {
    out << make_error_response(0, false, ServiceError::kInternal, e.what())
        << "\n";
    err << e.what() << "\n";
    return 1;
  }
  // Replica mode: start the stream client tailing the primary before
  // accepting any request, and keep it alive for the whole serve session
  // (stop_and_drain on the way out unless `promote` already did it).
  std::unique_ptr<ReplicationClient> replica_link;
  if (!config.replica_of.empty()) {
    ReplicationClientConfig link_config;
    link_config.primary = config.replica_of;
    link_config.follower_id = config.node_id;
    replica_link = std::make_unique<ReplicationClient>(service, link_config);
    service.set_replica_link(replica_link.get());
    err << "tgroom serve: replica of " << config.replica_of
        << " (read-only until promoted)\n";
    replica_link->start();
  }
  // --port present selects TCP mode; --port 0 binds an ephemeral port
  // (the chosen port is announced on the "listening on" log line, which
  // is how tests and smoke scripts avoid port collisions).
  int rc;
  if (args.has("port")) {
    const int port = static_cast<int>(args.get_int("port", 0));
    rc = serve_tcp(service, port, err, args.get("port-file", ""));
  } else {
    rc = service.run(in, out);
  }
  if (replica_link != nullptr) replica_link->stop_and_drain();
  return rc;
}

int cmd_route(const CliArgs& args, std::ostream& out, std::ostream& err) {
  (void)out;  // the router speaks TCP only; logs go to stderr
  const std::string spec = args.get("shards", "");
  if (spec.empty()) {
    err << "route needs --shards "
           "host:port[,replica:port...];host:port[,...];...\n";
    return 2;
  }
  cluster::RouterConfig config;
  std::string error;
  if (!cluster::parse_cluster_map(spec, config.map, error)) {
    err << "route: bad --shards: " << error << "\n";
    return 2;
  }
  config.workers = static_cast<std::size_t>(args.get_int("workers", 8));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 256));
  config.default_deadline_ms = args.get_int("deadline-ms", 0);
  config.metrics_on_exit = args.get_bool("exit-metrics", true);
  config.probe_interval_ms =
      static_cast<int>(args.get_int("probe-ms", 200));
  config.backend_timeout_ms =
      static_cast<int>(args.get_int("timeout-ms", 10000));
  config.connect_wait_ms =
      static_cast<int>(args.get_int("connect-wait-ms", 2000));
  if (config.workers == 0) {
    // Forwarding blocks on backend round trips; inline execution would
    // block the event loop itself.
    err << "route needs --workers >= 1\n";
    return 2;
  }
  if (config.queue_capacity == 0) {
    err << "--queue must be >= 1\n";
    return 2;
  }
#if defined(__unix__)
  struct sigaction action {};
  action.sa_handler = [](int) { GroomingService::request_stop(); };
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
#endif
  GroomingService::clear_stop();
  cluster::ClusterRouter router(config);
  if (!router.start(err, error)) {
    err << "tgroom route: " << error << "\n";
    return 1;
  }
  EventLoopConfig loop_config;
  loop_config.port = static_cast<int>(args.get_int("port", 0));
  EventLoopServer server(router, loop_config);
  if (!server.valid()) {
    err << server.error() << "\n";
    router.stop_backends();
    return 1;
  }
  const std::string port_file = args.get("port-file", "");
  if (!port_file.empty()) {
    std::string port_error;
    if (!write_port_file(port_file, server.port(), port_error)) {
      err << port_error << "\n";
      router.stop_backends();
      return 1;
    }
  }
  return server.run(err);
}

int cmd_store_dump(const CliArgs& args, std::ostream& out,
                   std::ostream& err) {
  const std::string dir = args.get("data-dir", "");
  if (dir.empty()) {
    err << "store-dump needs --data-dir\n";
    return 2;
  }
  StoreRecovery recovery;
  try {
    // repair=false: inspection never mutates the store, so it is safe to
    // run against the data dir of a live daemon or a fresh crash site.
    RecoveredState state = recover_store_state(dir, &recovery,
                                               /*repair=*/false);
    std::vector<std::pair<std::int64_t, GroomingPlan>> plans(
        std::make_move_iterator(state.plans.begin()),
        std::make_move_iterator(state.plans.end()));
    std::sort(plans.begin(), plans.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Recovery details go to stderr so stdout is a pure function of the
    // recovered state (the crash harness diffs stdout across runs).
    const std::string fsync_policy = read_store_meta_fsync(dir);
    err << "store-dump: version=" << kStoreFormatVersion
        << " snapshot_seq=" << recovery.snapshot_seq
        << " wal_first_seq=" << recovery.wal_first_seq
        << " wal_last_seq=" << recovery.last_seq
        << " wal_records=" << recovery.wal_records_replayed
        << " torn=" << (recovery.torn_truncated ? 1 : 0)
        << " hold=" << recovery.hold_records
        << " provision=" << recovery.provision_records
        << " release=" << recovery.release_records
        << " fsync=" << (fsync_policy.empty() ? "unknown" : fsync_policy)
        << "\n";
    out << "# tgroom store: last_seq=" << recovery.last_seq
        << " plans=" << plans.size() << " next_plan_id=" << state.next_plan_id
        << "\n";
    for (const auto& [id, plan] : plans) {
      out << "plan " << id << "\n" << serialize_plan(plan);
    }
    return 0;
  } catch (const CheckError& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int run_tool(int argc, const char* const* argv, std::istream& in,
             std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    err << usage();
    return 2;
  }
  std::string command = argv[1];
  CliArgs args(argc - 1, argv + 1);
  if (command == "generate") return cmd_generate(args, out, err);
  if (command == "groom") return cmd_groom(args, in, out, err);
  if (command == "simulate") return cmd_simulate(args, in, out, err);
  if (command == "survive") return cmd_survive(args, in, out, err);
  if (command == "compare") return cmd_compare(args, in, out, err);
  if (command == "grow") return cmd_grow(args, in, out, err);
  if (command == "provision") return cmd_provision(args, in, out, err);
  if (command == "gadget") return cmd_gadget(args, in, out, err);
  if (command == "sweep") return cmd_sweep(args, out, err);
  if (command == "serve") return cmd_serve(args, in, out, err);
  if (command == "route") return cmd_route(args, out, err);
  if (command == "store-dump") return cmd_store_dump(args, out, err);
  if (command == "help" || command == "--help") {
    out << usage();
    return 0;
  }
  err << "unknown command '" << command << "'\n\n" << usage();
  return 2;
}

}  // namespace tgroom::tools
