// Command layer behind the `tgroom` CLI (examples/tgroom_tool.cpp).
//
// Each subcommand is a plain function over streams so the test suite can
// drive it without spawning processes.  Subcommands:
//
//   generate   emit a demand file (random / regular / all-to-all / hub)
//   groom      demand file -> grooming plan file (algorithm selectable)
//   simulate   plan file -> validity + SADM/utilization report
//   survive    plan file -> span-failure survivability report
//   compare    demand file -> per-algorithm SADM comparison table
//   grow       plan file + --add pairs -> incrementally extended plan
//   provision  same operation as the service's `provision` op (one shared
//              code path), with --format text|json output
//   gadget     EPT graph file -> Lemma 6 regular gadget graph file
//   sweep      (seed x k) grid over generated workloads -> aggregate
//              SADM table, fanned across workers by the batch engine
//   serve      long-running NDJSON daemon (stdin/stdout or --port) with
//              admission control, deadlines, plan cache, metrics, and —
//              with --data-dir — a durable store (WAL + snapshots)
//   route      cluster front-end: routes NDJSON requests across the
//              shard groups named by --shards (src/cluster/), owning no
//              grooming state of its own
//   store-dump read-only recovery of a --data-dir: prints the held-plan
//              table a restarted daemon would serve (never mutates files)
//
// `groom` and `sweep` take --format json for machine-readable output via
// the service serializers.  All file arguments default to stdin/stdout.
#pragma once

#include <iosfwd>
#include <string>

#include "util/cli.hpp"

namespace tgroom::tools {

/// Dispatches argv[1] as a subcommand; returns a process exit code.
/// Unknown/missing subcommands print usage to `err` and return 2.
int run_tool(int argc, const char* const* argv, std::istream& in,
             std::ostream& out, std::ostream& err);

/// Individual subcommands (exposed for tests).
int cmd_generate(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_groom(const CliArgs& args, std::istream& in, std::ostream& out,
              std::ostream& err);
int cmd_simulate(const CliArgs& args, std::istream& in, std::ostream& out,
                 std::ostream& err);
int cmd_survive(const CliArgs& args, std::istream& in, std::ostream& out,
                std::ostream& err);
int cmd_compare(const CliArgs& args, std::istream& in, std::ostream& out,
                std::ostream& err);
int cmd_grow(const CliArgs& args, std::istream& in, std::ostream& out,
             std::ostream& err);
int cmd_provision(const CliArgs& args, std::istream& in, std::ostream& out,
                  std::ostream& err);
int cmd_gadget(const CliArgs& args, std::istream& in, std::ostream& out,
               std::ostream& err);
int cmd_sweep(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_serve(const CliArgs& args, std::istream& in, std::ostream& out,
              std::ostream& err);
int cmd_route(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_store_dump(const CliArgs& args, std::ostream& out, std::ostream& err);

/// Usage text for the whole tool.
std::string usage();

}  // namespace tgroom::tools
