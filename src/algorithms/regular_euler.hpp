// Algorithm Regular_Euler (paper §4, Figure 3): grooming for r-regular
// traffic graphs with guaranteed bounds (Theorem 10).
//
// Even r: every component is Eulerian; the tours are branch-free skeleton
// backbones (cover size = #components, 1 for connected G).
//
// Odd r: compute a (maximum) matching M; in G-M, saturated nodes have even
// degree r-1 and unsaturated nodes odd degree r.  Components containing an
// unsaturated node ("odd components") are chained into one graph G_odd with
// virtual edges between unsaturated nodes; remaining odd-degree nodes are
// virtually paired leaving exactly two, so G_odd has an Euler path.  Even
// components get Euler tours.  Deleting the virtual edges splits the G_odd
// path into real segments; all segments plus the even tours are backbones,
// and M attaches as branches.  Lemma 9 bounds the cover size by
// 3n/(r+1); Proposition 2 finishes.
#pragma once

#include "algorithms/algorithm.hpp"
#include "partition/skeleton.hpp"

namespace tgroom {

struct RegularEulerTrace {
  NodeId r = 0;
  std::vector<EdgeId> matching;   // empty for even r
  int even_components = 0;        // components of G-M with all-even degrees
  int odd_components = 0;         // components of G-M with unsaturated nodes
  SkeletonCover cover;
};

/// Requires a simple r-regular traffic graph.  r = 1 degenerates to
/// grouping the perfect matching k edges per wavelength (optimal there).
EdgePartition regular_euler(const Graph& g, int k,
                            const GroomingOptions& options = {},
                            RegularEulerTrace* trace = nullptr);

/// Lemma 9 bound on the skeleton cover size for odd nontrivial r.
long long lemma9_cover_bound(NodeId n, NodeId r);

/// Theorem 10 cost bound (uses the Lemma 9 cover bound for odd r and
/// cover size `components` for even r).
long long regular_euler_cost_bound(NodeId n, NodeId r, long long real_edges,
                                   int k, int components);

}  // namespace tgroom
