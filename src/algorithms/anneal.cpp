#include "algorithms/anneal.hpp"

#include <cmath>

#include "partition/part_profile.hpp"
#include "util/rng.hpp"

namespace tgroom {

AnnealStats anneal_partition(const Graph& g, EdgePartition& partition,
                             const AnnealOptions& options) {
  TGROOM_CHECK(options.iterations >= 0);
  TGROOM_CHECK(options.start_temperature > 0 &&
               options.end_temperature > 0);
  AnnealStats stats;
  auto& parts = partition.parts;
  const auto k = static_cast<std::size_t>(partition.k);

  std::vector<PartProfile> profiles(parts.size());
  long long cost = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (EdgeId e : parts[i]) profiles[i].add(g.edge(e));
    cost += static_cast<long long>(profiles[i].node_count());
  }
  stats.cost_before = cost;
  if (parts.size() < 2 || options.iterations == 0) {
    stats.cost_after = cost;
    return stats;
  }

  Rng rng(options.seed);
  long long best_cost = cost;
  std::vector<std::vector<EdgeId>> best_parts = parts;

  const double cooling =
      std::pow(options.end_temperature / options.start_temperature,
               1.0 / options.iterations);
  double temperature = options.start_temperature;

  for (int iter = 0; iter < options.iterations; ++iter, temperature *= cooling) {
    std::size_t a = static_cast<std::size_t>(rng.below(parts.size()));
    std::size_t b = static_cast<std::size_t>(rng.below(parts.size()));
    if (a == b || parts[a].empty()) continue;
    std::size_t ia = static_cast<std::size_t>(rng.below(parts[a].size()));
    const Edge& ea = g.edge(parts[a][ia]);

    // Choose move type: relocate when b has slack and a coin says so,
    // otherwise swap.
    bool relocate = parts[b].size() < k && rng.chance(0.5);
    long long delta;
    std::size_t ib = 0;
    if (relocate) {
      delta = profiles[a].remove_delta(ea) + profiles[b].add_delta(ea);
    } else {
      if (parts[b].empty()) continue;
      ib = static_cast<std::size_t>(rng.below(parts[b].size()));
      const Edge& eb = g.edge(parts[b][ib]);
      delta = profiles[a].swap_delta(ea, eb) + profiles[b].swap_delta(eb, ea);
    }

    bool accept = delta <= 0 ||
                  rng.uniform01() <
                      std::exp(-static_cast<double>(delta) / temperature);
    if (!accept) continue;
    ++stats.accepted_moves;
    if (delta > 0) ++stats.accepted_uphill;

    if (relocate) {
      profiles[a].remove(ea);
      profiles[b].add(ea);
      parts[b].push_back(parts[a][ia]);
      parts[a].erase(parts[a].begin() + static_cast<long>(ia));
    } else {
      const Edge& eb = g.edge(parts[b][ib]);
      profiles[a].remove(ea);
      profiles[a].add(eb);
      profiles[b].remove(eb);
      profiles[b].add(ea);
      std::swap(parts[a][ia], parts[b][ib]);
    }
    cost += delta;
    if (cost < best_cost) {
      best_cost = cost;
      best_parts = parts;
    }
  }

  parts = std::move(best_parts);
  // Relocations may have emptied parts in the best snapshot.
  for (std::size_t i = parts.size(); i-- > 0;) {
    if (parts[i].empty()) parts.erase(parts.begin() + static_cast<long>(i));
  }
  stats.cost_after = best_cost;
  return stats;
}

}  // namespace tgroom
