// Algo. 1 — Goldschmidt, Hochbaum, Levin, Olinick, "The SONET
// edge-partition problem" [9]: the spanning-tree partition baseline.
//
// Reconstruction (no public code exists): root a DFS spanning tree per
// component and accumulate edges in postorder — child subtrees first, then
// the non-tree edges anchored at the node (each non-tree edge is assigned
// to its later-finishing endpoint), then the node's parent edge.  The
// running sequence is cut into parts of exactly k edges.  Parts are unions
// of adjacent subtrees, matching the m(1 + 2/sqrt(k)) style guarantee the
// paper quotes for [9] and the reported behaviour (strong on sparse
// graphs, weaker on dense ones where non-tree edges scatter).
#pragma once

#include "algorithms/algorithm.hpp"

namespace tgroom {

EdgePartition goldschmidt_spanning_tree(const Graph& g, int k,
                                        const GroomingOptions& options = {});

}  // namespace tgroom
