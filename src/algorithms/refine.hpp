// Local-search refinement of a k-edge partition (paper §6: "heuristics on
// constructing denser sub-graphs in the k-edge partition").
//
// Two move types, applied first-improvement until a fixed point or pass
// cap:
//   - relocate: move an edge into another part with free capacity;
//   - swap: exchange two edges between (possibly full) parts.
// Moves never increase the part count, so a minimum-wavelength partition
// stays minimum-wavelength; empty parts are dropped.
#pragma once

#include "partition/edge_partition.hpp"

namespace tgroom {

struct RefineStats {
  long long cost_before = 0;
  long long cost_after = 0;
  int relocations = 0;
  int swaps = 0;
  int passes = 0;
};

/// Refines in place; returns statistics.  `max_passes` bounds the sweeps.
RefineStats refine_partition(const Graph& g, EdgePartition& partition,
                             int max_passes = 40);

}  // namespace tgroom
