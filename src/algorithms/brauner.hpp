// Algo. 2 — Brauner, Crama, Finke, Lemaire, Wynants, "Approximation
// algorithms for the design of SDH/SONET networks" [3]: the Euler-path
// partition baseline.
//
// Add virtual edges to make the whole graph one Eulerian walk: chain the
// components, pair all but two odd-degree nodes; build the Euler path; cut
// it into segments of k real edges; delete the virtual edges.  Strong on
// dense graphs (few odd nodes), weak on sparse ones where the many virtual
// edges fragment the segments — the behaviour the paper reports in §5.
#pragma once

#include "algorithms/algorithm.hpp"

namespace tgroom {

struct BraunerTrace {
  int virtual_edges = 0;
  int segments = 0;
};

EdgePartition brauner_euler(const Graph& g, int k,
                            const GroomingOptions& options = {},
                            BraunerTrace* trace = nullptr);

}  // namespace tgroom
