// Algo. 3 — Wang & Gu, "Grooming of symmetric traffic in unidirectional
// SONET/WDM rings" (ICC'06) [19]: skeleton cover by spanning-tree
// partition.
//
// Reconstruction of the stated approach: repeatedly peel a skeleton off the
// remaining graph — a longest tree path (the diameter path of a BFS tree of
// the component) as the backbone, with every remaining edge incident to a
// backbone node attached as a branch — until no edge is left, then apply
// Proposition 2.  Backbones are simple tree paths, so skeletons stay
// relatively small and the cover relatively large, which is exactly the
// weakness (§3) that motivates SpanT_Euler.
#pragma once

#include "algorithms/algorithm.hpp"
#include "partition/skeleton.hpp"

namespace tgroom {

struct WangGuTrace {
  SkeletonCover cover;
};

EdgePartition wanggu_skeleton_cover(const Graph& g, int k,
                                    const GroomingOptions& options = {},
                                    WangGuTrace* trace = nullptr);

}  // namespace tgroom
