// Reusable per-run scratch for the grooming hot path.
//
// A single run_algorithm call needs ~10 scratch arrays sized by the input
// graph (edge masks, node flags, backbone sites).  Allocating them fresh
// per call dominates the runtime of the O(m) algorithms once the graph fits
// in cache.  A GroomingWorkspace owns those buffers plus a CsrGraph
// snapshot; prepare() resizes-and-clears them, so repeat runs on same-sized
// (or smaller) instances perform no allocation at all.
//
// The workspace also owns a MonotonicArena for the *irregular* per-run
// structures (Euler walks, skeleton covers, branch lists) whose nested
// shapes vary run to run and so cannot amortize through plain capacity
// retention.  prepare() rewinds the arena; its blocks are retained, so a
// warm workspace serves an entire groom without any heap allocation
// (DESIGN.md §11 — the invariant tests/arena_test.cpp pins with the
// allocation tracker).  Arena-backed containers never outlive the run
// that built them: everything allocated from the arena is dead before the
// next prepare()/reset() rewind.
//
// Thread-safety: a workspace belongs to one thread at a time.  The batch
// engine (grooming/batch.hpp) keeps one per worker chunk, the service one
// per worker thread.
//
// Determinism: using a workspace never changes an algorithm's output —
// every buffer is fully (re)initialized by prepare(); csr_test.cpp pins
// partition-for-partition equality against the workspace-free path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algo/rooted_tree.hpp"
#include "graph/csr_graph.hpp"
#include "util/arena.hpp"

namespace tgroom {

struct GroomingWorkspace {
  /// First backbone occurrence of a node: (skeleton index, walk position).
  struct Site {
    std::size_t skeleton = 0;
    std::size_t position = 0;
  };

  CsrGraph csr;  // flat traversal snapshot of the input graph

  // Edge-indexed scratch.
  std::vector<char> in_tree;
  std::vector<char> cotree;
  std::vector<char> g2_mask;

  // Node-indexed scratch.  odd_parity is a packed bitset (bit v set when
  // node v has odd degree in G\T) — parity_word_count(n) words, 1/64th the
  // footprint of the old per-node counter array at n = 10^6.
  std::vector<std::uint64_t> odd_parity;
  std::vector<NodeId> branch_degree;
  std::vector<char> on_backbone;
  std::vector<Site> site;

  // Size-stable per-run results, retained across runs (cleared, capacity
  // kept, by prepare()).
  std::vector<EdgeId> tree;   // spanning forest edges
  std::vector<EdgeId> e_odd;  // Lemma 4 odd-subtree edges
  RootedForest forest;

  // Bump allocator for the irregular structures (walks, covers, branch
  // lists).  Rewound by prepare()/reset(); blocks retained.
  MonotonicArena arena;

  /// Re-snapshots `g` into `csr`, sizes-and-clears every buffer, and
  /// rewinds the arena.
  void prepare(const Graph& g);

  /// Sizes-and-clears every buffer from the CURRENT `csr` contents without
  /// re-snapshotting.  The per-component parallel driver fills `csr` via
  /// CsrGraph::rebuild_subgraph and then calls this to ready the scratch.
  void prepare_for_csr();

  /// Rewinds the arena and clears per-run result buffers without touching
  /// the CSR snapshot (the service calls this between requests; the next
  /// prepare() does it again, harmlessly).
  void reset();
};

}  // namespace tgroom
