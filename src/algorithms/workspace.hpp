// Reusable per-run scratch for the grooming hot path.
//
// A single run_algorithm call needs ~10 scratch arrays sized by the input
// graph (edge masks, node flags, backbone sites).  Allocating them fresh
// per call dominates the runtime of the O(m) algorithms once the graph fits
// in cache.  A GroomingWorkspace owns those buffers plus a CsrGraph
// snapshot; prepare() resizes-and-clears them, so repeat runs on same-sized
// (or smaller) instances perform no allocation at all.
//
// Thread-safety: a workspace belongs to one thread at a time.  The batch
// engine (grooming/batch.hpp) keeps one per worker chunk.
//
// Determinism: using a workspace never changes an algorithm's output —
// every buffer is fully (re)initialized by prepare(); csr_test.cpp pins
// partition-for-partition equality against the workspace-free path.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr_graph.hpp"

namespace tgroom {

struct GroomingWorkspace {
  /// First backbone occurrence of a node: (skeleton index, walk position).
  struct Site {
    std::size_t skeleton = 0;
    std::size_t position = 0;
  };

  CsrGraph csr;  // flat traversal snapshot of the input graph

  // Edge-indexed scratch.
  std::vector<char> in_tree;
  std::vector<char> cotree;
  std::vector<char> g2_mask;

  // Node-indexed scratch.
  std::vector<long long> odd_weight;
  std::vector<NodeId> branch_degree;
  std::vector<char> on_backbone;
  std::vector<Site> site;

  /// Re-snapshots `g` into `csr` and sizes-and-clears every buffer.
  void prepare(const Graph& g);
};

}  // namespace tgroom
