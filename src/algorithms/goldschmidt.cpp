#include "algorithms/goldschmidt.hpp"

#include "algo/rooted_tree.hpp"
#include "algo/spanning_tree.hpp"

namespace tgroom {

EdgePartition goldschmidt_spanning_tree(const Graph& g, int k,
                                        const GroomingOptions& options) {
  (void)options;  // the baseline is deterministic: a fixed DFS tree
  check_algorithm_input(g, k);
  const auto n = static_cast<std::size_t>(g.node_count());

  std::vector<EdgeId> tree = spanning_forest(g, TreePolicy::kDfs);
  std::vector<char> in_tree(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e : tree) in_tree[static_cast<std::size_t>(e)] = 1;

  RootedForest forest = root_forest(g, tree);
  std::vector<std::size_t> preorder_pos(n, 0);
  for (std::size_t i = 0; i < forest.preorder.size(); ++i) {
    preorder_pos[static_cast<std::size_t>(forest.preorder[i])] = i;
  }

  // Anchor each non-tree edge at its later-visited endpoint, so the edge is
  // emitted while that endpoint's subtree is being flushed.
  std::vector<std::vector<EdgeId>> anchored(n);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (in_tree[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = g.edge(e);
    NodeId anchor =
        preorder_pos[static_cast<std::size_t>(edge.u)] >
                preorder_pos[static_cast<std::size_t>(edge.v)]
            ? edge.u
            : edge.v;
    anchored[static_cast<std::size_t>(anchor)].push_back(e);
  }

  // Reverse preorder keeps every subtree's nodes contiguous and children
  // ahead of parents: flush each node's anchored edges, then its parent
  // edge, cutting every k edges.
  EdgePartition partition;
  partition.k = k;
  std::vector<EdgeId> pending;
  auto emit = [&](EdgeId e) {
    pending.push_back(e);
    if (pending.size() == static_cast<std::size_t>(k)) {
      partition.parts.push_back(std::move(pending));
      pending.clear();
    }
  };
  for (auto it = forest.preorder.rbegin(); it != forest.preorder.rend();
       ++it) {
    NodeId v = *it;
    for (EdgeId e : anchored[static_cast<std::size_t>(v)]) emit(e);
    EdgeId parent_edge = forest.parent_edge[static_cast<std::size_t>(v)];
    if (parent_edge != kInvalidEdge) emit(parent_edge);
  }
  if (!pending.empty()) partition.parts.push_back(std::move(pending));
  return partition;
}

}  // namespace tgroom
