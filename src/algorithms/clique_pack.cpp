#include "algorithms/clique_pack.hpp"

#include <algorithm>
#include <set>

#include "graph/properties.hpp"

namespace tgroom {

namespace {

/// New nodes a part would gain by absorbing edge e.
int new_nodes(const std::set<NodeId>& part_nodes, const Edge& e) {
  return (part_nodes.count(e.u) ? 0 : 1) + (part_nodes.count(e.v) ? 0 : 1);
}

}  // namespace

EdgePartition clique_pack(const Graph& g, int k,
                          const GroomingOptions& options) {
  (void)options;
  check_algorithm_input(g, k);

  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
  std::vector<NodeId> alive_deg(static_cast<std::size_t>(g.node_count()), 0);
  EdgeId alive_count = g.edge_count();
  for (const Edge& e : g.edges()) {
    ++alive_deg[static_cast<std::size_t>(e.u)];
    ++alive_deg[static_cast<std::size_t>(e.v)];
  }
  auto kill = [&](EdgeId e) {
    alive[static_cast<std::size_t>(e)] = 0;
    --alive_count;
    --alive_deg[static_cast<std::size_t>(g.edge(e).u)];
    --alive_deg[static_cast<std::size_t>(g.edge(e).v)];
  };

  EdgePartition partition;
  partition.k = k;
  std::vector<std::set<NodeId>> part_nodes;

  while (alive_count > 0) {
    // Seed: the alive edge with the densest neighbourhood.
    EdgeId seed = kInvalidEdge;
    NodeId best_score = -1;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (!alive[static_cast<std::size_t>(e)]) continue;
      NodeId score = static_cast<NodeId>(
          alive_deg[static_cast<std::size_t>(g.edge(e).u)] +
          alive_deg[static_cast<std::size_t>(g.edge(e).v)]);
      if (score > best_score) {
        best_score = score;
        seed = e;
      }
    }
    std::vector<EdgeId> part{seed};
    std::set<NodeId> nodes{g.edge(seed).u, g.edge(seed).v};
    kill(seed);

    while (part.size() < static_cast<std::size_t>(k)) {
      // Candidates: alive edges touching the part; prefer 0 new nodes,
      // break ties toward nodes with more alive edges into the part.
      EdgeId best = kInvalidEdge;
      int best_new = 3;
      NodeId best_tie = -1;
      for (NodeId v : nodes) {
        for (const Incidence& inc : g.incident(v)) {
          if (!alive[static_cast<std::size_t>(inc.edge)]) continue;
          const Edge& cand = g.edge(inc.edge);
          int gain = new_nodes(nodes, cand);
          NodeId tie = alive_deg[static_cast<std::size_t>(inc.neighbor)];
          if (gain < best_new || (gain == best_new && tie > best_tie)) {
            best_new = gain;
            best_tie = tie;
            best = inc.edge;
          }
        }
      }
      if (best == kInvalidEdge) break;  // nothing adjacent left
      part.push_back(best);
      nodes.insert(g.edge(best).u);
      nodes.insert(g.edge(best).v);
      kill(best);
    }
    partition.parts.push_back(std::move(part));
    part_nodes.push_back(std::move(nodes));
  }

  // Repair to the minimum wavelength count: dissolve the smallest parts
  // into remaining slack, placing each edge where it adds fewest nodes.
  const auto min_w = static_cast<std::size_t>(
      min_wavelengths(g.real_edge_count(), k));
  while (partition.parts.size() > min_w) {
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < partition.parts.size(); ++i) {
      if (partition.parts[i].size() < partition.parts[smallest].size())
        smallest = i;
    }
    std::vector<EdgeId> homeless = std::move(partition.parts[smallest]);
    partition.parts.erase(partition.parts.begin() +
                          static_cast<long>(smallest));
    part_nodes.erase(part_nodes.begin() + static_cast<long>(smallest));
    for (EdgeId e : homeless) {
      std::size_t target = partition.parts.size();
      int target_gain = 3;
      for (std::size_t i = 0; i < partition.parts.size(); ++i) {
        if (partition.parts[i].size() >= static_cast<std::size_t>(k))
          continue;
        int gain = new_nodes(part_nodes[i], g.edge(e));
        if (gain < target_gain) {
          target_gain = gain;
          target = i;
        }
      }
      TGROOM_CHECK_MSG(target < partition.parts.size(),
                       "repair pass ran out of slack");
      partition.parts[target].push_back(e);
      part_nodes[target].insert(g.edge(e).u);
      part_nodes[target].insert(g.edge(e).v);
    }
  }
  return partition;
}

}  // namespace tgroom
