// Algorithm SpanT_Euler (paper §3, Figure 1): the paper's main
// contribution for arbitrary traffic graphs.
//
// Pipeline (Lemma 4 / Theorem 5):
//  1. spanning forest T of G;
//  2. V_odd = odd-degree nodes of G\T; E_odd = tree edges crossed by an odd
//     number of pairing paths — computed pairing-free as tree edges whose
//     below-subtree contains an odd number of V_odd nodes;
//  3. G'' = (V, E_odd ∪ (E\T)) has all even degrees; its Euler tours become
//     skeleton backbones (singleton backbones for nodes G'' misses);
//  4. the remaining tree edges E(T)\E_odd attach as branches;
//  5. Proposition 2 turns the cover into a k-edge partition with exactly
//     ceil(m/k) wavelengths.
#pragma once

#include "algorithms/algorithm.hpp"
#include "partition/skeleton.hpp"

namespace tgroom {

struct GroomingWorkspace;
class ThreadPool;

/// White-box intermediates for tests and ablations.
struct SpanTEulerTrace {
  std::vector<EdgeId> tree;
  std::vector<EdgeId> e_odd;
  int g2_component_count = 0;  // Lemma 4's c (components of G\T)
  /// Set want_cover = false to skip the heap copy of the skeleton cover
  /// (cover_size is always filled) — the big-graph Prop-2 harness checks
  /// the Theorem 5 bound at n = 10^6 without materializing 10^6 skeletons
  /// twice.
  bool want_cover = true;
  std::size_t cover_size = 0;
  SkeletonCover cover;
};

/// `workspace` (optional) supplies reusable scratch; results are identical
/// with or without one.
EdgePartition spant_euler(const Graph& g, int k,
                          const GroomingOptions& options = {},
                          SpanTEulerTrace* trace = nullptr,
                          GroomingWorkspace* workspace = nullptr);

/// Per-component parallel SpanT_Euler: splits g into connected components,
/// runs the sequential pipeline on each (rank-renumbered local subgraph,
/// chunks fanned out over `pool`), and merges the per-component skeleton
/// sequences back into the exact sequential cover order.  The partition is
/// BIT-IDENTICAL to spant_euler(g, k, options) for any worker count
/// (including 0, where the pool runs chunks inline) — the merge key
/// (phase, min-node / creating-edge id) reconstructs the global order; see
/// DESIGN.md §16 for the argument.
///
/// Falls back to the sequential path when `pool` is null or the tree
/// policy is not component-local (kRandom shuffles edge ids globally,
/// kMinMaxDegree's local search is whole-graph).
EdgePartition spant_euler_parallel(const Graph& g, int k,
                                   const GroomingOptions& options,
                                   ThreadPool* pool,
                                   GroomingWorkspace* workspace = nullptr);

/// Theorem 5 cost bound: m + ceil(m/k) + (c - 1) extra part-components.
long long spant_euler_cost_bound(long long real_edges, int k,
                                 int gminus_t_components);

}  // namespace tgroom
