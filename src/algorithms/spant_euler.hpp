// Algorithm SpanT_Euler (paper §3, Figure 1): the paper's main
// contribution for arbitrary traffic graphs.
//
// Pipeline (Lemma 4 / Theorem 5):
//  1. spanning forest T of G;
//  2. V_odd = odd-degree nodes of G\T; E_odd = tree edges crossed by an odd
//     number of pairing paths — computed pairing-free as tree edges whose
//     below-subtree contains an odd number of V_odd nodes;
//  3. G'' = (V, E_odd ∪ (E\T)) has all even degrees; its Euler tours become
//     skeleton backbones (singleton backbones for nodes G'' misses);
//  4. the remaining tree edges E(T)\E_odd attach as branches;
//  5. Proposition 2 turns the cover into a k-edge partition with exactly
//     ceil(m/k) wavelengths.
#pragma once

#include "algorithms/algorithm.hpp"
#include "partition/skeleton.hpp"

namespace tgroom {

struct GroomingWorkspace;

/// White-box intermediates for tests and ablations.
struct SpanTEulerTrace {
  std::vector<EdgeId> tree;
  std::vector<EdgeId> e_odd;
  int g2_component_count = 0;  // Lemma 4's c (components of G\T)
  SkeletonCover cover;
};

/// `workspace` (optional) supplies reusable scratch; results are identical
/// with or without one.
EdgePartition spant_euler(const Graph& g, int k,
                          const GroomingOptions& options = {},
                          SpanTEulerTrace* trace = nullptr,
                          GroomingWorkspace* workspace = nullptr);

/// Theorem 5 cost bound: m + ceil(m/k) + (c - 1) extra part-components.
long long spant_euler_cost_bound(long long real_edges, int k,
                                 int gminus_t_components);

}  // namespace tgroom
