// Exact k-edge partitioning by branch and bound, for tiny instances.
//
// Used by tests to certify heuristic quality (heuristic >= OPT, OPT >= the
// combinatorial lower bound) and by the NP-hardness module to decide small
// KEPRG instances.  Edges are assigned in a connectivity-friendly order;
// symmetry is broken by only ever opening one new part per branch node.
// Two admissible completion bounds drive the pruning: a slack/packing bound
// (unplaced edges beyond the open parts' capacity need new parts of at
// least min_nodes_for_edges(k) nodes each) and a per-node degree bound
// (a node's unplaced edges beyond the slack of the parts already containing
// it force ceil(overflow/k) further appearances).  The latter is what makes
// dense no-instances like the 27-edge Theorem 7 gadget decidable in
// milliseconds.
#pragma once

#include "algorithms/algorithm.hpp"

namespace tgroom {

struct ExactOptions {
  /// Cap on the number of parts (-1 = unconstrained).  Set to
  /// min_wavelengths(m, k) to solve the wavelength-constrained variant.
  int max_parts = -1;
  /// Search-node budget; when exhausted the result is the best found so
  /// far with proven_optimal = false.
  long long node_budget = 20'000'000;
};

struct ExactResult {
  EdgePartition partition;
  long long cost = 0;
  bool proven_optimal = true;
  /// False when no assignment satisfies max_parts (cost is then
  /// meaningless and the partition empty).
  bool feasible = true;
  long long nodes_explored = 0;
};

/// Requires real_edge_count() <= 24 (guards accidental blow-ups).
ExactResult exact_optimal_partition(const Graph& g, int k,
                                    const ExactOptions& options = {});

}  // namespace tgroom
