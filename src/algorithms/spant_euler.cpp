#include "algorithms/spant_euler.hpp"

#include <algorithm>

#include "algo/components.hpp"
#include "algo/euler.hpp"
#include "algo/rooted_tree.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"
#include "util/rng.hpp"

namespace tgroom {

EdgePartition spant_euler(const Graph& g, int k,
                          const GroomingOptions& options,
                          SpanTEulerTrace* trace) {
  check_algorithm_input(g, k);
  const auto m = static_cast<std::size_t>(g.edge_count());

  Rng rng(options.seed);
  std::vector<EdgeId> tree = spanning_forest(g, options.tree_policy, &rng);
  std::vector<char> in_tree(m, 0);
  for (EdgeId e : tree) in_tree[static_cast<std::size_t>(e)] = 1;

  // G\T mask and its odd-degree node weights.
  std::vector<char> cotree(m, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    cotree[static_cast<std::size_t>(e)] =
        in_tree[static_cast<std::size_t>(e)] ? 0 : 1;
  }
  std::vector<NodeId> cotree_deg = masked_degrees(g, cotree);
  std::vector<long long> odd_weight(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    odd_weight[static_cast<std::size_t>(v)] =
        cotree_deg[static_cast<std::size_t>(v)] % 2;
  }

  // E_odd: tree edges with odd V_odd count below (Lemma 4, pairing-free).
  RootedForest forest = root_forest(g, tree);
  std::vector<EdgeId> e_odd = odd_subtree_edges(g, forest, odd_weight);

  // G'' = E_odd ∪ (E \ T): all degrees even by the Lemma 4 parity argument.
  std::vector<char> g2_mask = cotree;
  for (EdgeId e : e_odd) g2_mask[static_cast<std::size_t>(e)] = 1;

  std::vector<Walk> walks = euler_decomposition(g, g2_mask);

  // Backbones: one skeleton per Euler tour; record the first backbone
  // position of every node for branch attachment.
  SkeletonCover cover;
  struct Site {
    std::size_t skeleton = 0;
    std::size_t position = 0;
  };
  std::vector<Site> site(static_cast<std::size_t>(g.node_count()));
  std::vector<char> on_backbone(static_cast<std::size_t>(g.node_count()), 0);
  for (Walk& walk : walks) {
    std::size_t idx = cover.size();
    for (std::size_t pos = 0; pos < walk.nodes.size(); ++pos) {
      auto v = static_cast<std::size_t>(walk.nodes[pos]);
      if (!on_backbone[v]) {
        on_backbone[v] = 1;
        site[v] = Site{idx, pos};
      }
    }
    cover.push_back(Skeleton::from_walk(std::move(walk)));
  }

  // Branches: E(T) \ E_odd.  Attach to an existing backbone when possible;
  // otherwise open a singleton skeleton at one endpoint (the paper's
  // degenerate one-node Euler path) so later branches can share it.  With
  // smart_branches, anchor each branch at its busier endpoint so branches
  // cluster at hubs and large parts share nodes.
  std::vector<char> in_g2 = g2_mask;
  std::vector<NodeId> branch_degree(static_cast<std::size_t>(g.node_count()),
                                    0);
  auto is_branch = [&](EdgeId e) {
    return in_tree[static_cast<std::size_t>(e)] &&
           !in_g2[static_cast<std::size_t>(e)];
  };
  if (options.smart_branches) {
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (!is_branch(e)) continue;
      ++branch_degree[static_cast<std::size_t>(g.edge(e).u)];
      ++branch_degree[static_cast<std::size_t>(g.edge(e).v)];
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!is_branch(e)) continue;
    const Edge& edge = g.edge(e);
    bool u_ok = on_backbone[static_cast<std::size_t>(edge.u)];
    bool v_ok = on_backbone[static_cast<std::size_t>(edge.v)];
    NodeId anchor;
    if (u_ok && v_ok && options.smart_branches) {
      anchor = branch_degree[static_cast<std::size_t>(edge.v)] >
                       branch_degree[static_cast<std::size_t>(edge.u)]
                   ? edge.v
                   : edge.u;
    } else if (u_ok) {
      anchor = edge.u;
    } else if (v_ok) {
      anchor = edge.v;
    } else {
      anchor = options.smart_branches &&
                       branch_degree[static_cast<std::size_t>(edge.v)] >
                           branch_degree[static_cast<std::size_t>(edge.u)]
                   ? edge.v
                   : edge.u;
      on_backbone[static_cast<std::size_t>(anchor)] = 1;
      site[static_cast<std::size_t>(anchor)] = Site{cover.size(), 0};
      cover.push_back(Skeleton::single_node(anchor));
    }
    const Site& s = site[static_cast<std::size_t>(anchor)];
    cover[s.skeleton].add_branch(s.position, e);
  }

  if (trace) {
    trace->tree = std::move(tree);
    trace->e_odd = std::move(e_odd);
    trace->g2_component_count = connected_components_masked(g, cotree).count;
    trace->cover = cover;
  }
  return partition_from_cover(g, cover, k);
}

long long spant_euler_cost_bound(long long real_edges, int k,
                                 int gminus_t_components) {
  return prop2_cost_bound(real_edges, k,
                          static_cast<std::size_t>(
                              std::max(1, gminus_t_components)));
}

}  // namespace tgroom
