#include "algorithms/spant_euler.hpp"

#include <algorithm>
#include <utility>

#include "algo/components.hpp"
#include "algo/euler.hpp"
#include "algo/rooted_tree.hpp"
#include "algorithms/workspace.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"
#include "util/rng.hpp"

namespace tgroom {

EdgePartition spant_euler(const Graph& g, int k,
                          const GroomingOptions& options,
                          SpanTEulerTrace* trace,
                          GroomingWorkspace* workspace) {
  check_algorithm_input(g, k);

  GroomingWorkspace local;
  GroomingWorkspace& ws = workspace ? *workspace : local;
  ws.prepare(g);
  const CsrGraph& csr = ws.csr;
  MonotonicArena& arena = ws.arena;

  Rng rng(options.seed);
  spanning_forest(csr, options.tree_policy, &rng, ws.tree, &arena);
  for (EdgeId e : ws.tree) ws.in_tree[static_cast<std::size_t>(e)] = 1;

  // G\T mask and the parity of each node's degree in it (the odd/even
  // status is all Lemma 4 needs, so the full degree array never
  // materializes).
  for (EdgeId e = 0; e < csr.edge_count(); ++e) {
    ws.cotree[static_cast<std::size_t>(e)] =
        ws.in_tree[static_cast<std::size_t>(e)] ? 0 : 1;
  }
  for (EdgeId e = 0; e < csr.edge_count(); ++e) {
    if (!ws.cotree[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = csr.edge(e);
    ws.odd_weight[static_cast<std::size_t>(edge.u)] ^= 1;
    ws.odd_weight[static_cast<std::size_t>(edge.v)] ^= 1;
  }

  // E_odd: tree edges with odd V_odd count below (Lemma 4, pairing-free).
  root_forest(csr, ws.tree, ws.forest, &arena);
  odd_subtree_edges(csr, ws.forest, ws.odd_weight, ws.e_odd, &arena);

  // G'' = E_odd ∪ (E \ T): all degrees even by the Lemma 4 parity argument.
  std::copy(ws.cotree.begin(), ws.cotree.end(), ws.g2_mask.begin());
  for (EdgeId e : ws.e_odd) ws.g2_mask[static_cast<std::size_t>(e)] = 1;

  ArenaWalkList walks = euler_decomposition(csr, ws.g2_mask, arena);

  // Backbones: one skeleton per Euler tour; record the first backbone
  // position of every node for branch attachment.
  ArenaSkeletonCover cover{ArenaAllocator<ArenaSkeleton>(&arena)};
  using Site = GroomingWorkspace::Site;
  for (ArenaWalk& walk : walks) {
    std::size_t idx = cover.size();
    for (std::size_t pos = 0; pos < walk.nodes.size(); ++pos) {
      auto v = static_cast<std::size_t>(walk.nodes[pos]);
      if (!ws.on_backbone[v]) {
        ws.on_backbone[v] = 1;
        ws.site[v] = Site{idx, pos};
      }
    }
    cover.push_back(ArenaSkeleton::from_walk(std::move(walk), &arena));
  }

  // Branches: E(T) \ E_odd.  Attach to an existing backbone when possible;
  // otherwise open a singleton skeleton at one endpoint (the paper's
  // degenerate one-node Euler path) so later branches can share it.  With
  // smart_branches, anchor each branch at its busier endpoint so branches
  // cluster at hubs and large parts share nodes.
  auto is_branch = [&](EdgeId e) {
    return ws.in_tree[static_cast<std::size_t>(e)] &&
           !ws.g2_mask[static_cast<std::size_t>(e)];
  };
  if (options.smart_branches) {
    for (EdgeId e = 0; e < csr.edge_count(); ++e) {
      if (!is_branch(e)) continue;
      ++ws.branch_degree[static_cast<std::size_t>(csr.edge(e).u)];
      ++ws.branch_degree[static_cast<std::size_t>(csr.edge(e).v)];
    }
  }
  for (EdgeId e = 0; e < csr.edge_count(); ++e) {
    if (!is_branch(e)) continue;
    const Edge& edge = csr.edge(e);
    bool u_ok = ws.on_backbone[static_cast<std::size_t>(edge.u)];
    bool v_ok = ws.on_backbone[static_cast<std::size_t>(edge.v)];
    NodeId anchor;
    if (u_ok && v_ok && options.smart_branches) {
      anchor = ws.branch_degree[static_cast<std::size_t>(edge.v)] >
                       ws.branch_degree[static_cast<std::size_t>(edge.u)]
                   ? edge.v
                   : edge.u;
    } else if (u_ok) {
      anchor = edge.u;
    } else if (v_ok) {
      anchor = edge.v;
    } else {
      anchor = options.smart_branches &&
                       ws.branch_degree[static_cast<std::size_t>(edge.v)] >
                           ws.branch_degree[static_cast<std::size_t>(edge.u)]
                   ? edge.v
                   : edge.u;
      ws.on_backbone[static_cast<std::size_t>(anchor)] = 1;
      ws.site[static_cast<std::size_t>(anchor)] = Site{cover.size(), 0};
      cover.push_back(ArenaSkeleton::single_node(anchor, &arena));
    }
    const Site& s = ws.site[static_cast<std::size_t>(anchor)];
    cover[s.skeleton].add_branch(s.position, e);
  }

  if (trace) {
    trace->tree = ws.tree;
    trace->e_odd = ws.e_odd;
    trace->g2_component_count =
        connected_components_masked(csr, ws.cotree).count;
    trace->cover.clear();
    trace->cover.reserve(cover.size());
    for (const ArenaSkeleton& s : cover) trace->cover.push_back(s.to_skeleton());
  }
  return partition_from_cover(g, cover, k, arena);
}

long long spant_euler_cost_bound(long long real_edges, int k,
                                 int gminus_t_components) {
  return prop2_cost_bound(real_edges, k,
                          static_cast<std::size_t>(
                              std::max(1, gminus_t_components)));
}

}  // namespace tgroom
