#include "algorithms/spant_euler.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "algo/components.hpp"
#include "algo/euler.hpp"
#include "algo/rooted_tree.hpp"
#include "algorithms/workspace.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tgroom {

namespace {

// Steps 1-4 of the pipeline on the workspace's CURRENT CSR snapshot
// (whole graph, or one rank-renumbered component in the parallel driver):
// spanning forest, Lemma 4 parity, G'' Euler decomposition, branch
// attachment.  The returned cover lives on ws.arena in the canonical
// sequential order: Euler-walk skeletons first, emitted in ascending order
// of the minimum node id of their masked G'' component, then singleton
// skeletons in ascending order of the branch edge that created them.  The
// parallel merge in spant_euler_parallel relies on exactly that order.
ArenaSkeletonCover build_cover(GroomingWorkspace& ws,
                               const GroomingOptions& options) {
  const CsrGraph& csr = ws.csr;
  MonotonicArena& arena = ws.arena;

  Rng rng(options.seed);
  spanning_forest(csr, options.tree_policy, &rng, ws.tree, &arena);
  for (EdgeId e : ws.tree) ws.in_tree[static_cast<std::size_t>(e)] = 1;

  // G\T mask and the parity of each node's degree in it, kept as a packed
  // bitset (the odd/even status is all Lemma 4 needs, so neither the full
  // degree array nor a per-node counter ever materializes).
  for (EdgeId e = 0; e < csr.edge_count(); ++e) {
    ws.cotree[static_cast<std::size_t>(e)] =
        ws.in_tree[static_cast<std::size_t>(e)] ? 0 : 1;
  }
  for (EdgeId e = 0; e < csr.edge_count(); ++e) {
    if (!ws.cotree[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = csr.edge(e);
    parity_flip(ws.odd_parity, edge.u);
    parity_flip(ws.odd_parity, edge.v);
  }

  // E_odd: tree edges with odd V_odd count below (Lemma 4, pairing-free).
  root_forest(csr, ws.tree, ws.forest, &arena);
  odd_subtree_edges_parity(csr, ws.forest, ws.odd_parity, ws.e_odd, &arena);

  // G'' = E_odd ∪ (E \ T): all degrees even by the Lemma 4 parity argument.
  std::copy(ws.cotree.begin(), ws.cotree.end(), ws.g2_mask.begin());
  for (EdgeId e : ws.e_odd) ws.g2_mask[static_cast<std::size_t>(e)] = 1;

  ArenaWalkList walks = euler_decomposition(csr, ws.g2_mask, arena);

  // Backbones: one skeleton per Euler tour; record the first backbone
  // position of every node for branch attachment.
  ArenaSkeletonCover cover{ArenaAllocator<ArenaSkeleton>(&arena)};
  using Site = GroomingWorkspace::Site;
  for (ArenaWalk& walk : walks) {
    std::size_t idx = cover.size();
    for (std::size_t pos = 0; pos < walk.nodes.size(); ++pos) {
      auto v = static_cast<std::size_t>(walk.nodes[pos]);
      if (!ws.on_backbone[v]) {
        ws.on_backbone[v] = 1;
        ws.site[v] = Site{idx, pos};
      }
    }
    cover.push_back(ArenaSkeleton::from_walk(std::move(walk), &arena));
  }

  // Branches: E(T) \ E_odd.  Attach to an existing backbone when possible;
  // otherwise open a singleton skeleton at one endpoint (the paper's
  // degenerate one-node Euler path) so later branches can share it.  With
  // smart_branches, anchor each branch at its busier endpoint so branches
  // cluster at hubs and large parts share nodes.
  auto is_branch = [&](EdgeId e) {
    return ws.in_tree[static_cast<std::size_t>(e)] &&
           !ws.g2_mask[static_cast<std::size_t>(e)];
  };
  if (options.smart_branches) {
    for (EdgeId e = 0; e < csr.edge_count(); ++e) {
      if (!is_branch(e)) continue;
      ++ws.branch_degree[static_cast<std::size_t>(csr.edge(e).u)];
      ++ws.branch_degree[static_cast<std::size_t>(csr.edge(e).v)];
    }
  }
  for (EdgeId e = 0; e < csr.edge_count(); ++e) {
    if (!is_branch(e)) continue;
    const Edge& edge = csr.edge(e);
    bool u_ok = ws.on_backbone[static_cast<std::size_t>(edge.u)];
    bool v_ok = ws.on_backbone[static_cast<std::size_t>(edge.v)];
    NodeId anchor;
    if (u_ok && v_ok && options.smart_branches) {
      anchor = ws.branch_degree[static_cast<std::size_t>(edge.v)] >
                       ws.branch_degree[static_cast<std::size_t>(edge.u)]
                   ? edge.v
                   : edge.u;
    } else if (u_ok) {
      anchor = edge.u;
    } else if (v_ok) {
      anchor = edge.v;
    } else {
      anchor = options.smart_branches &&
                       ws.branch_degree[static_cast<std::size_t>(edge.v)] >
                           ws.branch_degree[static_cast<std::size_t>(edge.u)]
                   ? edge.v
                   : edge.u;
      ws.on_backbone[static_cast<std::size_t>(anchor)] = 1;
      ws.site[static_cast<std::size_t>(anchor)] = Site{cover.size(), 0};
      cover.push_back(ArenaSkeleton::single_node(anchor, &arena));
    }
    const Site& s = ws.site[static_cast<std::size_t>(anchor)];
    cover[s.skeleton].add_branch(s.position, e);
  }
  return cover;
}

}  // namespace

EdgePartition spant_euler(const Graph& g, int k,
                          const GroomingOptions& options,
                          SpanTEulerTrace* trace,
                          GroomingWorkspace* workspace) {
  check_algorithm_input(g, k);

  GroomingWorkspace local;
  GroomingWorkspace& ws = workspace ? *workspace : local;
  ws.prepare(g);

  ArenaSkeletonCover cover = build_cover(ws, options);

  if (trace) {
    trace->tree = ws.tree;
    trace->e_odd = ws.e_odd;
    trace->g2_component_count =
        connected_components_masked(ws.csr, ws.cotree).count;
    trace->cover_size = cover.size();
    trace->cover.clear();
    if (trace->want_cover) {
      trace->cover.reserve(cover.size());
      for (const ArenaSkeleton& s : cover) {
        trace->cover.push_back(s.to_skeleton());
      }
    }
  }
  return partition_from_cover(g, cover, k, ws.arena);
}

namespace {

// One skeleton's canonical edge order translated to global ids, plus its
// position in the sequential cover order.  phase 0 = Euler-walk skeleton
// keyed by the minimum global node id on its walk (= the minimum node of
// its masked G'' component, which fixes its euler_decomposition emission
// rank); phase 1 = singleton skeleton keyed by the global id of the branch
// edge that created it (the branch loop scans edges in ascending id order,
// and a singleton's creating edge is the first entry of its canonical
// order).  Keys are unique across components — node and edge sets are
// disjoint — so sorting by (phase, key) reconstructs the sequential cover
// order exactly, for any chunking.
struct MergeSeq {
  int phase = 0;
  long long key = 0;
  ArenaVector<EdgeId> edges;
};

// Per-chunk state: a private workspace (rewound per component) plus a
// second arena for the merge sequences, which must stay alive across
// component rewinds until the final merge consumes them.
struct ChunkState {
  GroomingWorkspace ws;
  MonotonicArena out_arena;
  std::vector<MergeSeq> seqs;
};

void run_component_chunk(const CsrGraph& csr, const ComponentSplit& split,
                         std::size_t c_begin, std::size_t c_end,
                         const GroomingOptions& options, ChunkState& chunk) {
  for (std::size_t c = c_begin; c < c_end; ++c) {
    auto comp_nodes = split.component_nodes(c);
    auto comp_edges = split.component_edges(c);
    if (comp_edges.empty()) continue;  // isolated nodes cover no edges
    chunk.ws.reset();
    chunk.ws.csr.rebuild_subgraph(csr, comp_nodes, comp_edges,
                                  split.local_node);
    chunk.ws.prepare_for_csr();
    ArenaSkeletonCover cover = build_cover(chunk.ws, options);
    for (const ArenaSkeleton& s : cover) {
      MergeSeq seq;
      seq.edges = ArenaVector<EdgeId>(
          ArenaAllocator<EdgeId>(&chunk.out_arena));
      {
        ArenaVector<EdgeId> local{ArenaAllocator<EdgeId>(&chunk.ws.arena)};
        s.append_canonical_order(local);
        seq.edges.reserve(local.size());
        for (EdgeId e : local) {
          seq.edges.push_back(comp_edges[static_cast<std::size_t>(e)]);
        }
      }
      if (s.walk_edges().empty()) {
        seq.phase = 1;
        seq.key = seq.edges.front();
      } else {
        NodeId local_min = s.walk_nodes().front();
        for (NodeId v : s.walk_nodes()) local_min = std::min(local_min, v);
        seq.phase = 0;
        seq.key = comp_nodes[static_cast<std::size_t>(local_min)];
      }
      chunk.seqs.push_back(std::move(seq));
    }
  }
}

}  // namespace

EdgePartition spant_euler_parallel(const Graph& g, int k,
                                   const GroomingOptions& options,
                                   ThreadPool* pool,
                                   GroomingWorkspace* workspace) {
  // Only component-local tree policies reproduce the sequential forest on
  // a renumbered component; kRandom draws one global edge shuffle and
  // kMinMaxDegree's local search sees the whole graph.
  const bool component_local =
      options.tree_policy == TreePolicy::kBfs ||
      options.tree_policy == TreePolicy::kDfs;
  if (pool == nullptr || !component_local) {
    return spant_euler(g, k, options, nullptr, workspace);
  }

  check_algorithm_input(g, k);
  GroomingWorkspace local;
  GroomingWorkspace& ws = workspace ? *workspace : local;
  ws.prepare(g);
  const CsrGraph& csr = ws.csr;

  Components comp;
  connected_components(csr, comp, &ws.arena);
  if (comp.count <= 1) {
    ArenaSkeletonCover cover = build_cover(ws, options);
    return partition_from_cover(g, cover, k, ws.arena);
  }

  const ComponentSplit split = split_components(csr, comp);
  const auto count = static_cast<std::size_t>(comp.count);

  // Contiguous component ranges balanced by edge count (≈4 chunks per
  // worker so a giant component does not serialize the tail).  The output
  // does not depend on the chunking; only load balance does.
  const std::size_t workers = pool->worker_count();
  const std::size_t num_chunks =
      workers == 0 ? 1 : std::min(count, workers * 4);
  const auto m = static_cast<std::size_t>(csr.edge_count());
  const std::size_t target = (m + num_chunks - 1) / num_chunks;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::size_t begin = 0;
  std::size_t acc = 0;
  for (std::size_t c = 0; c < count; ++c) {
    acc += split.edge_offset[c + 1] - split.edge_offset[c];
    if (acc >= target && c + 1 < count) {
      ranges.emplace_back(begin, c + 1);
      begin = c + 1;
      acc = 0;
    }
  }
  ranges.emplace_back(begin, count);

  std::vector<std::unique_ptr<ChunkState>> chunks;
  chunks.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    chunks.push_back(std::make_unique<ChunkState>());
  }
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    ChunkState* chunk = chunks[i].get();
    auto range = ranges[i];
    futures.push_back(pool->submit([&csr, &split, &options, chunk, range] {
      run_component_chunk(csr, split, range.first, range.second, options,
                          *chunk);
    }));
  }
  // Wait for EVERY chunk before rethrowing so no task still references
  // stack state when an exception unwinds (same pattern as the batch
  // engine).
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();

  std::vector<const MergeSeq*> order;
  std::size_t total = 0;
  for (const auto& chunk : chunks) {
    for (const MergeSeq& seq : chunk->seqs) {
      order.push_back(&seq);
      total += seq.edges.size();
    }
  }
  std::sort(order.begin(), order.end(),
            [](const MergeSeq* a, const MergeSeq* b) {
              return a->phase != b->phase ? a->phase < b->phase
                                          : a->key < b->key;
            });

  EdgePartition partition;
  partition.k = k;
  partition.parts.reserve((total + static_cast<std::size_t>(k) - 1) /
                          static_cast<std::size_t>(k));
  std::vector<EdgeId> part;
  part.reserve(static_cast<std::size_t>(k));
  for (const MergeSeq* seq : order) {
    for (EdgeId e : seq->edges) {
      part.push_back(e);
      if (part.size() == static_cast<std::size_t>(k)) {
        partition.parts.push_back(std::move(part));
        part = {};
        part.reserve(static_cast<std::size_t>(k));
      }
    }
  }
  if (!part.empty()) partition.parts.push_back(std::move(part));
  return partition;
}

long long spant_euler_cost_bound(long long real_edges, int k,
                                 int gminus_t_components) {
  return prop2_cost_bound(real_edges, k,
                          static_cast<std::size_t>(
                              std::max(1, gminus_t_components)));
}

}  // namespace tgroom
