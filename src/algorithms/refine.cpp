#include "algorithms/refine.hpp"

#include "partition/part_profile.hpp"

namespace tgroom {

RefineStats refine_partition(const Graph& g, EdgePartition& partition,
                             int max_passes) {
  RefineStats stats;
  auto& parts = partition.parts;
  const auto k = static_cast<std::size_t>(partition.k);

  std::vector<PartProfile> profiles(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (EdgeId e : parts[i]) profiles[i].add(g.edge(e));
  }
  long long cost = 0;
  for (const auto& p : profiles) cost += static_cast<long long>(p.node_count());
  stats.cost_before = cost;

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    bool improved_any = false;
    for (std::size_t a = 0; a < parts.size(); ++a) {
      std::size_t ia = 0;
      while (ia < parts[a].size()) {
        const EdgeId edge_a = parts[a][ia];
        const Edge& ea = g.edge(edge_a);
        const int out_a = profiles[a].remove_delta(ea);
        bool relocated = false;
        for (std::size_t b = 0; b < parts.size() && !relocated; ++b) {
          if (a == b) continue;
          // Relocate a -> b when b has slack.
          if (parts[b].size() < k) {
            int delta = out_a + profiles[b].add_delta(ea);
            if (delta < 0) {
              profiles[a].remove(ea);
              profiles[b].add(ea);
              parts[b].push_back(edge_a);
              parts[a].erase(parts[a].begin() + static_cast<long>(ia));
              cost += delta;
              ++stats.relocations;
              improved_any = true;
              relocated = true;
              break;
            }
          }
          // Swap with an edge of b (works between full parts too).
          for (std::size_t ib = 0; ib < parts[b].size(); ++ib) {
            const Edge& eb = g.edge(parts[b][ib]);
            PartProfile pa = profiles[a];
            PartProfile pb = profiles[b];
            pa.remove(ea);
            pa.add(eb);
            pb.remove(eb);
            pb.add(ea);
            long long delta =
                static_cast<long long>(pa.node_count()) +
                static_cast<long long>(pb.node_count()) -
                static_cast<long long>(profiles[a].node_count()) -
                static_cast<long long>(profiles[b].node_count());
            if (delta < 0) {
              profiles[a] = std::move(pa);
              profiles[b] = std::move(pb);
              std::swap(parts[a][ia], parts[b][ib]);
              cost += delta;
              ++stats.swaps;
              improved_any = true;
              break;  // slot (a, ia) now holds eb; move on
            }
          }
          if (improved_any && parts[a][ia] != edge_a) break;
        }
        if (!relocated) ++ia;  // after a relocation, ia already points at
                               // the next edge
      }
    }
    if (!improved_any) break;
  }

  // Drop parts emptied by relocations.
  for (std::size_t i = parts.size(); i-- > 0;) {
    if (parts[i].empty()) {
      parts.erase(parts.begin() + static_cast<long>(i));
      profiles.erase(profiles.begin() + static_cast<long>(i));
    }
  }
  stats.cost_after = cost;
  return stats;
}

}  // namespace tgroom
