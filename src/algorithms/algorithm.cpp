#include "algorithms/algorithm.hpp"

#include <cctype>

#include "algorithms/brauner.hpp"
#include "algorithms/clique_pack.hpp"
#include "algorithms/goldschmidt.hpp"
#include "algorithms/refine.hpp"
#include "algorithms/regular_euler.hpp"
#include "algorithms/spant_euler.hpp"
#include "algorithms/wanggu.hpp"

namespace tgroom {

const char* algorithm_name(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kGoldschmidt:
      return "Algo1-Goldschmidt";
    case AlgorithmId::kBrauner:
      return "Algo2-Brauner";
    case AlgorithmId::kWangGuIcc06:
      return "Algo3-WangGu";
    case AlgorithmId::kSpanTEuler:
      return "SpanT_Euler";
    case AlgorithmId::kRegularEuler:
      return "Regular_Euler";
    case AlgorithmId::kCliquePack:
      return "CliquePack";
  }
  return "?";
}

std::optional<AlgorithmId> parse_algorithm_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (AlgorithmId id : all_algorithms()) {
    std::string canonical = algorithm_name(id);
    for (char& c : canonical) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (lower == canonical) return id;
  }
  if (lower == "algo1" || lower == "goldschmidt")
    return AlgorithmId::kGoldschmidt;
  if (lower == "algo2" || lower == "brauner") return AlgorithmId::kBrauner;
  if (lower == "algo3" || lower == "wanggu") return AlgorithmId::kWangGuIcc06;
  if (lower == "spant" || lower == "spant_euler")
    return AlgorithmId::kSpanTEuler;
  if (lower == "regular" || lower == "regular_euler")
    return AlgorithmId::kRegularEuler;
  if (lower == "clique" || lower == "cliquepack")
    return AlgorithmId::kCliquePack;
  return std::nullopt;
}

std::vector<AlgorithmId> all_algorithms() {
  return {AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
          AlgorithmId::kWangGuIcc06, AlgorithmId::kSpanTEuler,
          AlgorithmId::kRegularEuler, AlgorithmId::kCliquePack};
}

void check_algorithm_input(const Graph& traffic_graph, int k) {
  TGROOM_CHECK_MSG(k >= 1, "grooming factor must be >= 1");
  TGROOM_CHECK_MSG(
      traffic_graph.real_edge_count() == traffic_graph.edge_count(),
      "traffic graphs must not contain virtual edges");
}

EdgePartition run_algorithm(AlgorithmId id, const Graph& traffic_graph, int k,
                            const GroomingOptions& options) {
  return run_algorithm(id, traffic_graph, k, options, nullptr);
}

EdgePartition run_algorithm(AlgorithmId id, const Graph& traffic_graph, int k,
                            const GroomingOptions& options,
                            GroomingWorkspace* workspace) {
  return run_algorithm(id, traffic_graph, k, options, workspace, nullptr);
}

EdgePartition run_algorithm(AlgorithmId id, const Graph& traffic_graph, int k,
                            const GroomingOptions& options,
                            GroomingWorkspace* workspace, ThreadPool* pool) {
  EdgePartition partition;
  switch (id) {
    case AlgorithmId::kGoldschmidt:
      partition = goldschmidt_spanning_tree(traffic_graph, k, options);
      break;
    case AlgorithmId::kBrauner:
      partition = brauner_euler(traffic_graph, k, options);
      break;
    case AlgorithmId::kWangGuIcc06:
      partition = wanggu_skeleton_cover(traffic_graph, k, options);
      break;
    case AlgorithmId::kSpanTEuler:
      partition = pool ? spant_euler_parallel(traffic_graph, k, options, pool,
                                              workspace)
                       : spant_euler(traffic_graph, k, options, nullptr,
                                     workspace);
      break;
    case AlgorithmId::kRegularEuler:
      partition = regular_euler(traffic_graph, k, options);
      break;
    case AlgorithmId::kCliquePack:
      partition = clique_pack(traffic_graph, k, options);
      break;
  }
  if (options.refine) refine_partition(traffic_graph, partition);
  return partition;
}

std::vector<AlgorithmId> figure4_algorithms() {
  return {AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
          AlgorithmId::kWangGuIcc06, AlgorithmId::kSpanTEuler};
}

std::vector<AlgorithmId> figure5_algorithms() {
  return {AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
          AlgorithmId::kWangGuIcc06, AlgorithmId::kRegularEuler};
}

}  // namespace tgroom
