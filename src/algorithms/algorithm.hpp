// Common interface over the grooming algorithms: the paper's two
// contributions (SpanT_Euler, Regular_Euler), the three baselines it
// compares against, and the clique-packing extension from its concluding
// remarks.  All of them consume a traffic graph plus grooming factor k and
// emit a k-edge partition.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algo/matching.hpp"
#include "algo/spanning_tree.hpp"
#include "partition/edge_partition.hpp"

namespace tgroom {

enum class AlgorithmId {
  kGoldschmidt,   // Algo. 1 [9]: spanning-tree partition
  kBrauner,       // Algo. 2 [3]: Euler path with virtual edges
  kWangGuIcc06,   // Algo. 3 [19]: skeleton cover by spanning-tree peeling
  kSpanTEuler,    // the paper's §3 algorithm
  kRegularEuler,  // the paper's §4 algorithm (regular graphs only)
  kCliquePack,    // §6 future-work extension: dense-subgraph packing
};

const char* algorithm_name(AlgorithmId id);

/// Inverse of algorithm_name; also accepts the short aliases "algo1",
/// "algo2", "algo3", "spant", "regular", "clique" (case-insensitive).
std::optional<AlgorithmId> parse_algorithm_name(const std::string& name);

/// All ids, for enumeration in tools.
std::vector<AlgorithmId> all_algorithms();

/// Tunables; the defaults reproduce the paper's configuration.
struct GroomingOptions {
  TreePolicy tree_policy = TreePolicy::kBfs;
  MatchingPolicy matching_policy = MatchingPolicy::kBlossom;
  std::uint64_t seed = 1;      // randomized tie-breaks
  bool refine = false;         // run the local-search post-pass
  /// SpanT_Euler only: attach each tree branch at its hub endpoint (the
  /// one carrying more branches) instead of the first backbone occurrence.
  /// An extension beyond the paper; clusters branches so large-k parts
  /// share more nodes (ABL-TREE in bench_ablation quantifies it).
  bool smart_branches = false;
};

/// Runs the chosen algorithm.  Throws CheckError on invalid input (e.g.
/// Regular_Euler on a non-regular graph, virtual edges in the input).
EdgePartition run_algorithm(AlgorithmId id, const Graph& traffic_graph, int k,
                            const GroomingOptions& options = {});

struct GroomingWorkspace;

/// Same, with caller-owned reusable scratch (see algorithms/workspace.hpp).
/// Output is identical to the workspace-free overload; algorithms that do
/// not yet use a workspace simply ignore it.  Pass nullptr to fall back to
/// per-call scratch.
EdgePartition run_algorithm(AlgorithmId id, const Graph& traffic_graph, int k,
                            const GroomingOptions& options,
                            GroomingWorkspace* workspace);

class ThreadPool;

/// Same, with a thread pool for per-component parallelism INSIDE the one
/// run (currently kSpanTEuler only; other algorithms ignore the pool).
/// Output is bit-identical to the pool-free overloads for every worker
/// count — see algorithms/spant_euler.hpp.  Pass nullptr to run
/// sequentially.
EdgePartition run_algorithm(AlgorithmId id, const Graph& traffic_graph, int k,
                            const GroomingOptions& options,
                            GroomingWorkspace* workspace, ThreadPool* pool);

/// The four algorithms of the paper's Figure 4 comparison, in its order.
std::vector<AlgorithmId> figure4_algorithms();

/// The four algorithms of the paper's Figure 5 comparison, in its order.
std::vector<AlgorithmId> figure5_algorithms();

/// Guards shared by all algorithm entry points.
void check_algorithm_input(const Graph& traffic_graph, int k);

}  // namespace tgroom
