#include "algorithms/workspace.hpp"

namespace tgroom {

void GroomingWorkspace::prepare(const Graph& g) {
  reset();
  csr.rebuild(g);
  prepare_for_csr();
}

void GroomingWorkspace::prepare_for_csr() {
  const auto n = static_cast<std::size_t>(csr.node_count());
  const auto m = static_cast<std::size_t>(csr.edge_count());
  in_tree.assign(m, 0);
  cotree.assign(m, 0);
  g2_mask.assign(m, 0);
  odd_parity.assign(parity_word_count(n), 0);
  branch_degree.assign(n, 0);
  on_backbone.assign(n, 0);
  site.assign(n, Site{});
}

void GroomingWorkspace::reset() {
  tree.clear();
  e_odd.clear();
  forest.parent.clear();
  forest.parent_edge.clear();
  forest.preorder.clear();
  forest.root_of.clear();
  arena.reset();
}

}  // namespace tgroom
