// Simulated-annealing refinement — the stochastic counterpart of
// refine_partition for escaping its local optima (the §6 "denser
// sub-graphs" direction, pushed further than hill climbing).
//
// Moves are single-edge relocations into parts with slack and pairwise
// swaps between arbitrary parts; uphill moves are accepted with the usual
// exp(-Δ/T) rule on a geometric temperature schedule.  The best partition
// seen is restored at the end, so the result never regresses below the
// input.
#pragma once

#include <cstdint>

#include "partition/edge_partition.hpp"

namespace tgroom {

struct AnnealOptions {
  int iterations = 20000;
  double start_temperature = 2.0;
  double end_temperature = 0.02;
  std::uint64_t seed = 1;
};

struct AnnealStats {
  long long cost_before = 0;
  long long cost_after = 0;
  int accepted_moves = 0;
  int accepted_uphill = 0;
};

/// Anneals in place; preserves validity, part count never grows (empty
/// parts are dropped), and cost_after <= cost_before.
AnnealStats anneal_partition(const Graph& g, EdgePartition& partition,
                             const AnnealOptions& options = {});

}  // namespace tgroom
