#include "algorithms/exact.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "graph/properties.hpp"

namespace tgroom {

namespace {

/// Edge order that keeps adjacent edges close (BFS over the line-graph
/// neighbourhood), improving bound tightness early in the search.
std::vector<EdgeId> connectivity_order(const Graph& g) {
  std::vector<EdgeId> order;
  std::vector<char> taken(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId seed = 0; seed < g.edge_count(); ++seed) {
    if (taken[static_cast<std::size_t>(seed)]) continue;
    std::queue<EdgeId> q;
    q.push(seed);
    taken[static_cast<std::size_t>(seed)] = 1;
    while (!q.empty()) {
      EdgeId e = q.front();
      q.pop();
      order.push_back(e);
      for (NodeId endpoint : {g.edge(e).u, g.edge(e).v}) {
        for (const Incidence& inc : g.incident(endpoint)) {
          if (taken[static_cast<std::size_t>(inc.edge)]) continue;
          taken[static_cast<std::size_t>(inc.edge)] = 1;
          q.push(inc.edge);
        }
      }
    }
  }
  return order;
}

class Searcher {
 public:
  Searcher(const Graph& g, int k, const ExactOptions& options)
      : g_(g), k_(k), options_(options), order_(connectivity_order(g)) {
    remaining_deg_.assign(static_cast<std::size_t>(g.node_count()), 0);
    for (EdgeId e : order_) {
      ++remaining_deg_[static_cast<std::size_t>(g.edge(e).u)];
      ++remaining_deg_[static_cast<std::size_t>(g.edge(e).v)];
    }
    slack_scratch_.assign(static_cast<std::size_t>(g.node_count()), 0);
  }

  ExactResult run() {
    best_cost_ = 4LL * g_.edge_count() + 1;  // worse than any partition
    descend(0, 0);
    ExactResult result;
    result.partition.k = k_;
    result.partition.parts = best_parts_;
    result.feasible = !best_parts_.empty() || order_.empty();
    result.cost = result.feasible ? best_cost_ : 0;
    result.nodes_explored = nodes_;
    result.proven_optimal = nodes_ < options_.node_budget;
    return result;
  }

 private:
  /// Per-node admissible bound: node v already appears in its parts; its
  /// remaining edges beyond the slack of those parts force at least
  /// ceil(overflow/k) further appearances of v somewhere.  Summing over
  /// nodes lower-bounds the final cost because the final cost is exactly
  /// the sum of per-node appearance counts.
  long long degree_completion_bound(long long cost) {
    std::fill(slack_scratch_.begin(), slack_scratch_.end(), 0);
    for (std::size_t p = 0; p < parts_.size(); ++p) {
      int slack = k_ - static_cast<int>(parts_[p].size());
      if (slack <= 0) continue;
      for (const auto& [v, count] : node_use_[p]) {
        slack_scratch_[static_cast<std::size_t>(v)] += slack;
      }
    }
    long long extra = 0;
    for (std::size_t v = 0; v < remaining_deg_.size(); ++v) {
      int overflow = remaining_deg_[v] - slack_scratch_[v];
      if (overflow > 0) extra += (overflow + k_ - 1) / k_;
    }
    return cost + extra;
  }

  /// Admissible completion bound: current node counts never shrink, and
  /// the edges not yet placed need at least enough *new* parts once the
  /// existing slack is spent — each new full part of e edges spans at
  /// least min_nodes_for_edges(e) nodes.
  long long completion_bound(std::size_t index, long long cost) const {
    long long remaining =
        static_cast<long long>(order_.size()) - static_cast<long long>(index);
    long long slack = 0;
    for (const auto& part : parts_) {
      slack += k_ - static_cast<long long>(part.size());
    }
    long long overflow = remaining - slack;
    if (overflow <= 0) return cost;
    if (options_.max_parts >= 0 &&
        static_cast<long long>(parts_.size()) >= options_.max_parts) {
      return best_cost_ + 1;  // cannot open parts: dead branch
    }
    long long new_full = overflow / k_;
    long long rest = overflow % k_;
    long long extra = new_full * min_nodes_for_edges(k_) +
                      min_nodes_for_edges(rest);
    if (options_.max_parts >= 0) {
      long long new_parts = new_full + (rest > 0 ? 1 : 0);
      if (static_cast<long long>(parts_.size()) + new_parts >
          options_.max_parts) {
        return best_cost_ + 1;
      }
    }
    return cost + extra;
  }

  void descend(std::size_t index, long long cost) {
    if (nodes_ >= options_.node_budget) return;
    ++nodes_;
    if (completion_bound(index, cost) >= best_cost_) return;
    if (degree_completion_bound(cost) >= best_cost_) return;
    if (index == order_.size()) {
      best_cost_ = cost;
      best_parts_ = parts_;
      return;
    }
    const Edge& e = g_.edge(order_[index]);
    --remaining_deg_[static_cast<std::size_t>(e.u)];
    --remaining_deg_[static_cast<std::size_t>(e.v)];

    // Children cheapest-first: placements adding fewer new nodes explored
    // first so good incumbents arrive early.
    std::vector<std::pair<int, std::size_t>> children;
    children.reserve(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
      if (parts_[p].size() >= static_cast<std::size_t>(k_)) continue;
      int delta = (node_use_[p].count(e.u) ? 0 : 1) +
                  (node_use_[p].count(e.v) ? 0 : 1);
      children.push_back({delta, p});
    }
    std::stable_sort(children.begin(), children.end());

    for (const auto& [delta_hint, p] : children) {
      (void)delta_hint;
      int delta = place(p, e);
      parts_[p].push_back(order_[index]);
      descend(index + 1, cost + delta);
      parts_[p].pop_back();
      unplace(p, e);
    }
    // Open one new part (symmetry-broken: only ever the next index).
    if (options_.max_parts < 0 ||
        parts_.size() < static_cast<std::size_t>(options_.max_parts)) {
      parts_.emplace_back();
      node_use_.emplace_back();
      int delta = place(parts_.size() - 1, e);
      parts_.back().push_back(order_[index]);
      descend(index + 1, cost + delta);
      parts_.back().pop_back();
      unplace(parts_.size() - 1, e);
      node_use_.pop_back();
      parts_.pop_back();
    }
    ++remaining_deg_[static_cast<std::size_t>(e.u)];
    ++remaining_deg_[static_cast<std::size_t>(e.v)];
  }

  int place(std::size_t p, const Edge& e) {
    int delta = 0;
    for (NodeId v : {e.u, e.v}) {
      if (node_use_[p][v]++ == 0) ++delta;
    }
    return delta;
  }

  void unplace(std::size_t p, const Edge& e) {
    for (NodeId v : {e.u, e.v}) {
      auto it = node_use_[p].find(v);
      if (--it->second == 0) node_use_[p].erase(it);
    }
  }

  const Graph& g_;
  int k_;
  ExactOptions options_;
  std::vector<EdgeId> order_;
  std::vector<int> remaining_deg_;
  std::vector<int> slack_scratch_;
  std::vector<std::vector<EdgeId>> parts_;
  std::vector<std::map<NodeId, int>> node_use_;
  long long best_cost_ = 0;
  std::vector<std::vector<EdgeId>> best_parts_;
  long long nodes_ = 0;
};

}  // namespace

ExactResult exact_optimal_partition(const Graph& g, int k,
                                    const ExactOptions& options) {
  TGROOM_CHECK(k >= 1);
  TGROOM_CHECK_MSG(g.real_edge_count() <= 30,
                   "exact solver is restricted to tiny instances");
  TGROOM_CHECK_MSG(g.real_edge_count() == g.edge_count(),
                   "exact solver expects a traffic graph without virtual "
                   "edges");
  if (g.edge_count() == 0) {
    ExactResult empty;
    empty.partition.k = k;
    empty.cost = 0;
    return empty;
  }
  return Searcher(g, k, options).run();
}

}  // namespace tgroom
