#include "algorithms/brauner.hpp"

#include "algo/components.hpp"
#include "algo/euler.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"
#include "partition/skeleton.hpp"

namespace tgroom {

EdgePartition brauner_euler(const Graph& g, int k,
                            const GroomingOptions& options,
                            BraunerTrace* trace) {
  (void)options;  // deterministic pairing in edge-list order
  check_algorithm_input(g, k);
  EdgePartition partition;
  partition.k = k;
  if (g.edge_count() == 0) {
    if (trace) *trace = BraunerTrace{};
    return partition;
  }

  Graph working = g;
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 1);
  int virtual_count = 0;
  auto add_virtual = [&](NodeId a, NodeId b) {
    working.add_edge(a, b, /*is_virtual=*/true);
    mask.push_back(1);
    ++virtual_count;
  };

  // Two ports per edge-bearing component (odd-degree nodes preferred; a
  // circuit component reuses one node for both ports), then chain the
  // components into one.
  Components comps = connected_components(working);
  std::vector<NodeId> degrees = masked_degrees(working, mask);
  std::vector<std::vector<NodeId>> odd_nodes(
      static_cast<std::size_t>(comps.count));
  std::vector<NodeId> any_active(static_cast<std::size_t>(comps.count),
                                 kInvalidNode);
  for (NodeId v = 0; v < working.node_count(); ++v) {
    auto c = static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)]);
    if (degrees[static_cast<std::size_t>(v)] == 0) continue;
    if (degrees[static_cast<std::size_t>(v)] % 2 == 1) odd_nodes[c].push_back(v);
    if (any_active[c] == kInvalidNode) any_active[c] = v;
  }
  std::vector<std::pair<NodeId, NodeId>> ports;
  for (std::size_t c = 0; c < static_cast<std::size_t>(comps.count); ++c) {
    if (any_active[c] == kInvalidNode) continue;  // isolated node
    if (odd_nodes[c].size() >= 2) {
      ports.push_back({odd_nodes[c][0], odd_nodes[c][1]});
    } else {
      ports.push_back({any_active[c], any_active[c]});
    }
  }
  for (std::size_t i = 0; i + 1 < ports.size(); ++i) {
    add_virtual(ports[i].second, ports[i + 1].first);
  }

  // Pair the remaining odd-degree nodes, leaving two for an open path.
  std::vector<NodeId> odd_now;
  std::vector<NodeId> deg_now = masked_degrees(working, mask);
  for (NodeId v = 0; v < working.node_count(); ++v) {
    if (deg_now[static_cast<std::size_t>(v)] % 2 == 1) odd_now.push_back(v);
  }
  TGROOM_DCHECK(odd_now.size() % 2 == 0);
  for (std::size_t j = 2; j + 1 < odd_now.size(); j += 2) {
    add_virtual(odd_now[j], odd_now[j + 1]);
  }

  // One Euler walk over everything; cut at virtual edges and chunk.
  std::vector<Walk> walks = euler_decomposition(working, mask);
  TGROOM_DCHECK(walks.size() == 1);
  SkeletonCover cover;
  int segments = 0;
  for (const Walk& walk : walks) {
    for (Walk& seg : split_walk_on_virtual(working, walk)) {
      ++segments;
      cover.push_back(Skeleton::from_walk(std::move(seg)));
    }
  }
  if (trace) {
    trace->virtual_edges = virtual_count;
    trace->segments = segments;
  }
  return partition_from_cover(g, cover, k);
}

}  // namespace tgroom
