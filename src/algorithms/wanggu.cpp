#include "algorithms/wanggu.hpp"

#include <queue>

#include "algo/components.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"

namespace tgroom {

namespace {

// BFS over a masked edge set from `start`; returns (farthest node, via-edge
// array for path recovery).
struct BfsResult {
  NodeId farthest = kInvalidNode;
  std::vector<EdgeId> via;
};

BfsResult masked_bfs(const Graph& g, const std::vector<char>& mask,
                     NodeId start) {
  const auto n = static_cast<std::size_t>(g.node_count());
  BfsResult result;
  result.via.assign(n, kInvalidEdge);
  std::vector<int> dist(n, -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(start)] = 0;
  q.push(start);
  result.farthest = start;
  int best = 0;
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (const Incidence& inc : g.incident(v)) {
      if (!mask[static_cast<std::size_t>(inc.edge)]) continue;
      if (dist[static_cast<std::size_t>(inc.neighbor)] != -1) continue;
      dist[static_cast<std::size_t>(inc.neighbor)] =
          dist[static_cast<std::size_t>(v)] + 1;
      result.via[static_cast<std::size_t>(inc.neighbor)] = inc.edge;
      if (dist[static_cast<std::size_t>(inc.neighbor)] > best) {
        best = dist[static_cast<std::size_t>(inc.neighbor)];
        result.farthest = inc.neighbor;
      }
      q.push(inc.neighbor);
    }
  }
  return result;
}

// BFS spanning-tree mask of the alive subgraph.
std::vector<char> alive_bfs_forest(const Graph& g,
                                   const std::vector<char>& alive) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<char> tree(static_cast<std::size_t>(g.edge_count()), 0);
  std::vector<char> visited(n, 0);
  std::queue<NodeId> q;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    visited[static_cast<std::size_t>(start)] = 1;
    q.push(start);
    while (!q.empty()) {
      NodeId v = q.front();
      q.pop();
      for (const Incidence& inc : g.incident(v)) {
        if (!alive[static_cast<std::size_t>(inc.edge)]) continue;
        if (visited[static_cast<std::size_t>(inc.neighbor)]) continue;
        visited[static_cast<std::size_t>(inc.neighbor)] = 1;
        tree[static_cast<std::size_t>(inc.edge)] = 1;
        q.push(inc.neighbor);
      }
    }
  }
  return tree;
}

}  // namespace

EdgePartition wanggu_skeleton_cover(const Graph& g, int k,
                                    const GroomingOptions& options,
                                    WangGuTrace* trace) {
  (void)options;  // deterministic peeling
  check_algorithm_input(g, k);

  std::vector<char> alive(static_cast<std::size_t>(g.edge_count()), 1);
  std::size_t alive_count = static_cast<std::size_t>(g.edge_count());
  SkeletonCover cover;

  while (alive_count > 0) {
    // One peel pass: a diameter-path skeleton per remaining component.
    std::vector<char> tree = alive_bfs_forest(g, alive);
    std::vector<NodeId> deg = masked_degrees(g, alive);
    std::vector<char> handled(static_cast<std::size_t>(g.node_count()), 0);
    Components comps = connected_components_masked(g, alive);
    std::vector<char> comp_done(static_cast<std::size_t>(comps.count), 0);

    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (deg[static_cast<std::size_t>(v)] == 0) continue;
      auto c =
          static_cast<std::size_t>(comps.label[static_cast<std::size_t>(v)]);
      if (comp_done[c]) continue;
      comp_done[c] = 1;

      // Longest tree path through this component: double BFS on the tree.
      NodeId a = masked_bfs(g, tree, v).farthest;
      BfsResult second = masked_bfs(g, tree, a);
      NodeId b = second.farthest;

      // Recover the backbone walk a..b.
      Walk backbone;
      std::vector<EdgeId> rev_edges;
      for (NodeId x = b; x != a;) {
        EdgeId e = second.via[static_cast<std::size_t>(x)];
        rev_edges.push_back(e);
        x = g.edge(e).other(x);
      }
      backbone.nodes.push_back(a);
      for (auto it = rev_edges.rbegin(); it != rev_edges.rend(); ++it) {
        backbone.edges.push_back(*it);
        backbone.nodes.push_back(g.edge(*it).other(backbone.nodes.back()));
      }

      Skeleton skeleton = Skeleton::from_walk(backbone);
      for (EdgeId e : backbone.edges) {
        alive[static_cast<std::size_t>(e)] = 0;
        --alive_count;
      }
      // Attach every remaining edge touching the backbone as a branch.
      for (std::size_t pos = 0; pos < backbone.nodes.size(); ++pos) {
        NodeId node = backbone.nodes[pos];
        if (handled[static_cast<std::size_t>(node)]) continue;
        handled[static_cast<std::size_t>(node)] = 1;
        for (const Incidence& inc : g.incident(node)) {
          if (!alive[static_cast<std::size_t>(inc.edge)]) continue;
          skeleton.add_branch(pos, inc.edge);
          alive[static_cast<std::size_t>(inc.edge)] = 0;
          --alive_count;
        }
      }
      cover.push_back(std::move(skeleton));
    }
  }

  if (trace) trace->cover = cover;
  return partition_from_cover(g, cover, k);
}

}  // namespace tgroom
