// CliquePack — the paper's §6 future-work direction: "partitioning the
// traffic graph into sub-graphs which are cliques or close to cliques".
//
// Greedy dense-subgraph packing: seed each part with the edge of highest
// remaining degree sum, then grow by preferring edges that close inside the
// part's node set (0 new nodes) over edges adding one node, until the part
// holds k edges or nothing adjacent remains.  A final repair pass merges
// the surplus parts so the result still uses the minimum ceil(m/k)
// wavelengths.
#pragma once

#include "algorithms/algorithm.hpp"

namespace tgroom {

EdgePartition clique_pack(const Graph& g, int k,
                          const GroomingOptions& options = {});

}  // namespace tgroom
