#include "algorithms/regular_euler.hpp"

#include <algorithm>

#include "algo/components.hpp"
#include "algo/euler.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"
#include "util/rng.hpp"

namespace tgroom {

namespace {

/// Builds skeletons from walks and attaches the matching edges as branches;
/// shared by the odd-r path.
SkeletonCover cover_from_segments(const Graph& g, std::vector<Walk> segments,
                                  const std::vector<EdgeId>& matching) {
  SkeletonCover cover;
  struct Site {
    std::size_t skeleton = 0;
    std::size_t position = 0;
  };
  std::vector<Site> site(static_cast<std::size_t>(g.node_count()));
  std::vector<char> on_backbone(static_cast<std::size_t>(g.node_count()), 0);
  for (Walk& walk : segments) {
    std::size_t idx = cover.size();
    for (std::size_t pos = 0; pos < walk.nodes.size(); ++pos) {
      auto v = static_cast<std::size_t>(walk.nodes[pos]);
      if (!on_backbone[v]) {
        on_backbone[v] = 1;
        site[v] = Site{idx, pos};
      }
    }
    cover.push_back(Skeleton::from_walk(std::move(walk)));
  }
  for (EdgeId e : matching) {
    const Edge& edge = g.edge(e);
    NodeId anchor;
    if (on_backbone[static_cast<std::size_t>(edge.u)]) {
      anchor = edge.u;
    } else if (on_backbone[static_cast<std::size_t>(edge.v)]) {
      anchor = edge.v;
    } else {
      // Unreachable for r >= 3 (every node keeps degree >= 2 in G-M), but
      // kept as a safe degradation path.
      anchor = edge.u;
      on_backbone[static_cast<std::size_t>(anchor)] = 1;
      site[static_cast<std::size_t>(anchor)] = Site{cover.size(), 0};
      cover.push_back(Skeleton::single_node(anchor));
    }
    const auto& s = site[static_cast<std::size_t>(anchor)];
    cover[s.skeleton].add_branch(s.position, e);
  }
  return cover;
}

}  // namespace

EdgePartition regular_euler(const Graph& g, int k,
                            const GroomingOptions& options,
                            RegularEulerTrace* trace) {
  check_algorithm_input(g, k);
  std::optional<NodeId> reg = regularity(g);
  TGROOM_CHECK_MSG(reg.has_value(),
                   "Regular_Euler requires an r-regular traffic graph");
  const NodeId r = *reg;
  if (trace) *trace = RegularEulerTrace{};
  if (trace) trace->r = r;

  EdgePartition empty;
  empty.k = k;
  if (g.edge_count() == 0) return empty;

  if (r % 2 == 0) {
    // Even r: Euler tour per component, no branches.
    std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 1);
    std::vector<Walk> walks = euler_decomposition(g, mask);
    SkeletonCover cover;
    for (Walk& walk : walks) cover.push_back(Skeleton::from_walk(std::move(walk)));
    if (trace) {
      trace->even_components = static_cast<int>(cover.size());
      trace->cover = cover;
    }
    return partition_from_cover(g, cover, k);
  }

  if (r == 1) {
    // Perfect matching: every edge is its own skeleton; chunking yields the
    // optimal 2 SADMs per demand.
    SkeletonCover cover;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      Walk walk;
      walk.nodes = {g.edge(e).u, g.edge(e).v};
      walk.edges = {e};
      cover.push_back(Skeleton::from_walk(std::move(walk)));
    }
    if (trace) trace->cover = cover;
    return partition_from_cover(g, cover, k);
  }

  // Odd r >= 3.
  Rng rng(options.seed);
  std::vector<EdgeId> matching =
      find_matching(g, options.matching_policy, &rng);
  std::vector<char> in_matching(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e : matching) in_matching[static_cast<std::size_t>(e)] = 1;

  Graph working = g;  // virtual edges are appended to this copy
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 1);
  for (EdgeId e : matching) mask[static_cast<std::size_t>(e)] = 0;

  // Classify components of G - M by the presence of unsaturated (odd,
  // degree-r) nodes.
  Components comps = connected_components_masked(working, mask);
  std::vector<NodeId> degrees = masked_degrees(working, mask);
  std::vector<std::vector<NodeId>> unsaturated(
      static_cast<std::size_t>(comps.count));
  for (NodeId v = 0; v < working.node_count(); ++v) {
    if (degrees[static_cast<std::size_t>(v)] % 2 == 1) {
      unsaturated[static_cast<std::size_t>(
                      comps.label[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
  }
  std::vector<int> odd_comp_ids;
  int even_comp_count = 0;
  for (int c = 0; c < comps.count; ++c) {
    if (!unsaturated[static_cast<std::size_t>(c)].empty()) {
      odd_comp_ids.push_back(c);
    } else {
      ++even_comp_count;
    }
  }

  auto add_virtual = [&](NodeId a, NodeId b) {
    working.add_edge(a, b, /*is_virtual=*/true);
    mask.push_back(1);
  };

  // Chain the odd components into one connected G_odd.
  for (std::size_t i = 0; i + 1 < odd_comp_ids.size(); ++i) {
    const auto& from =
        unsaturated[static_cast<std::size_t>(odd_comp_ids[i])];
    const auto& to =
        unsaturated[static_cast<std::size_t>(odd_comp_ids[i + 1])];
    TGROOM_DCHECK(from.size() >= 2 && to.size() >= 2);
    add_virtual(from[1], to[0]);
  }

  // Pair all but two of the remaining odd-degree nodes so G_odd has an
  // Euler path.
  if (!odd_comp_ids.empty()) {
    std::vector<NodeId> odd_now;
    std::vector<NodeId> deg_now = masked_degrees(working, mask);
    for (NodeId v = 0; v < working.node_count(); ++v) {
      if (deg_now[static_cast<std::size_t>(v)] % 2 == 1) odd_now.push_back(v);
    }
    TGROOM_DCHECK(odd_now.size() >= 2 && odd_now.size() % 2 == 0);
    for (std::size_t j = 2; j + 1 < odd_now.size(); j += 2) {
      add_virtual(odd_now[j], odd_now[j + 1]);
    }
  }

  // Euler walks: one open path through G_odd plus a tour per even
  // component; deleting virtual edges splits G_odd's walk into segments.
  std::vector<Walk> walks = euler_decomposition(working, mask);
  std::vector<Walk> segments;
  for (const Walk& walk : walks) {
    for (Walk& seg : split_walk_on_virtual(working, walk)) {
      segments.push_back(std::move(seg));
    }
  }

  SkeletonCover cover = cover_from_segments(g, std::move(segments), matching);
  if (trace) {
    trace->matching = matching;
    trace->even_components = even_comp_count;
    trace->odd_components = static_cast<int>(odd_comp_ids.size());
    trace->cover = cover;
  }
  return partition_from_cover(g, cover, k);
}

long long lemma9_cover_bound(NodeId n, NodeId r) {
  TGROOM_CHECK(r >= 3 && r % 2 == 1);
  // ceil(3n / (r+1)) from Lemma 9: s + (n - 2|M|) with s <= 2|M|/r and
  // |M| >= nr/(2(r+1)).
  return (3LL * n + r) / (r + 1);
}

long long regular_euler_cost_bound(NodeId n, NodeId r, long long real_edges,
                                   int k, int components) {
  if (real_edges == 0) return 0;
  if (r % 2 == 0) {
    return prop2_cost_bound(real_edges, k,
                            static_cast<std::size_t>(std::max(1, components)));
  }
  if (r == 1) {
    return 2 * real_edges;
  }
  return prop2_cost_bound(real_edges, k,
                          static_cast<std::size_t>(lemma9_cover_bound(n, r)));
}

}  // namespace tgroom
