// Random r-regular simple graphs.
//
// The paper's §5 experiments use the GenReg generator [23]; as an
// open-source substitute we implement the configuration (pairing) model
// with restarts, followed by random edge swaps for extra mixing.  At the
// paper's scale (n = 36, r <= 16) restarts are cheap and the generator
// reliably produces uniform-support simple r-regular graphs.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace tgroom {

/// Random simple r-regular graph on n nodes; requires n*r even, r < n.
/// Throws CheckError if the parameters are infeasible or generation fails
/// after `max_restarts` attempts (default is ample for r << n).
Graph random_regular(NodeId n, NodeId r, Rng& rng, int max_restarts = 2000);

/// True iff an r-regular simple graph on n nodes exists.
bool regular_feasible(NodeId n, NodeId r);

}  // namespace tgroom
