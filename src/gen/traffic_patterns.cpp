#include "gen/traffic_patterns.hpp"

#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"

namespace tgroom {

DemandSet all_to_all_traffic(NodeId ring_size) {
  return DemandSet::from_traffic_graph(complete_graph(ring_size));
}

DemandSet regular_traffic(NodeId ring_size, NodeId r, Rng& rng) {
  return DemandSet::from_traffic_graph(random_regular(ring_size, r, rng));
}

DemandSet random_traffic(NodeId ring_size, double dense_ratio, Rng& rng) {
  return DemandSet::from_traffic_graph(
      random_dense_ratio(ring_size, dense_ratio, rng));
}

DemandSet hub_traffic(NodeId ring_size, NodeId hub_count) {
  TGROOM_CHECK_MSG(hub_count >= 1 && hub_count < ring_size,
                   "hub count must be in [1, ring_size)");
  DemandSet demands(ring_size);
  for (NodeId hub = 0; hub < hub_count; ++hub) {
    for (NodeId v = 0; v < ring_size; ++v) {
      if (v == hub) continue;
      if (v < hub && v < hub_count) continue;  // hub-hub pair added once
      demands.add_pair(hub, v);
    }
  }
  return demands;
}

}  // namespace tgroom
