#include "gen/regular_graph.hpp"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

namespace tgroom {

bool regular_feasible(NodeId n, NodeId r) {
  if (r < 0 || n < 0) return false;
  if (r >= n && !(r == 0 && n <= 1)) return false;
  return (static_cast<long long>(n) * r) % 2 == 0;
}

namespace {
using Pair = std::pair<NodeId, NodeId>;

Pair norm(NodeId a, NodeId b) { return a < b ? Pair{a, b} : Pair{b, a}; }

// Deterministic circulant r-regular graph: offsets 1..floor(r/2), plus the
// antipodal offset n/2 when r is odd (feasibility then forces n even).
std::vector<Pair> circulant_edges(NodeId n, NodeId r) {
  std::vector<Pair> edges;
  std::set<Pair> seen;
  auto add = [&](NodeId a, NodeId b) {
    Pair p = norm(a, b);
    if (seen.insert(p).second) edges.push_back(p);
  };
  for (NodeId off = 1; off <= r / 2; ++off) {
    for (NodeId v = 0; v < n; ++v) add(v, static_cast<NodeId>((v + off) % n));
  }
  if (r % 2 == 1) {
    for (NodeId v = 0; v < n / 2; ++v) add(v, static_cast<NodeId>(v + n / 2));
  }
  return edges;
}
}  // namespace

Graph random_regular(NodeId n, NodeId r, Rng& rng, int max_restarts) {
  (void)max_restarts;  // the swap-based construction cannot fail
  TGROOM_CHECK_MSG(regular_feasible(n, r),
                   "no simple r-regular graph with these parameters");
  Graph g(n);
  if (r == 0 || n == 0) return g;

  std::vector<Pair> edges = circulant_edges(n, r);
  std::set<Pair> present(edges.begin(), edges.end());
  TGROOM_CHECK(static_cast<long long>(edges.size()) ==
               static_cast<long long>(n) * r / 2);

  // Randomize with double-edge swaps: a degree-preserving Markov chain on
  // simple graphs whose stationary distribution is uniform over r-regular
  // graphs when run long enough; 30*m proposals is ample mixing at this
  // scale.
  const std::size_t proposals = 30 * edges.size() + 64;
  for (std::size_t step = 0; step < proposals; ++step) {
    std::size_t i = static_cast<std::size_t>(rng.below(edges.size()));
    std::size_t j = static_cast<std::size_t>(rng.below(edges.size()));
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    if (rng.chance(0.5)) std::swap(c, d);
    // Proposed rewire: {a,b},{c,d} -> {a,c},{b,d}.
    if (a == c || a == d || b == c || b == d) continue;
    Pair e1 = norm(a, c), e2 = norm(b, d);
    if (present.count(e1) || present.count(e2)) continue;
    present.erase(norm(a, b));
    present.erase(norm(c, d));
    present.insert(e1);
    present.insert(e2);
    edges[i] = e1;
    edges[j] = e2;
  }

  g.reserve_edges(static_cast<EdgeId>(edges.size()));
  for (NodeId v = 0; v < n; ++v) g.reserve_degree(v, r);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

}  // namespace tgroom
