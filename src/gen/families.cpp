#include "gen/families.hpp"

namespace tgroom {

Graph complete_graph(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph cycle_graph(NodeId n) {
  TGROOM_CHECK_MSG(n >= 3, "cycle needs at least 3 nodes");
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return g;
}

Graph path_graph(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph star_graph(NodeId n) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph complete_bipartite(NodeId a, NodeId b) {
  Graph g(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) g.add_edge(u, static_cast<NodeId>(a + v));
  }
  return g;
}

Graph petersen_graph() {
  Graph g(10);
  // Outer 5-cycle, inner 5-cycle with step 2, spokes.
  for (NodeId v = 0; v < 5; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % 5));
    g.add_edge(static_cast<NodeId>(5 + v),
               static_cast<NodeId>(5 + (v + 2) % 5));
    g.add_edge(v, static_cast<NodeId>(5 + v));
  }
  return g;
}

Graph grid_graph(NodeId width, NodeId height) {
  TGROOM_CHECK(width >= 1 && height >= 1);
  Graph g(width * height);
  auto id = [width](NodeId x, NodeId y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) g.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) g.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return g;
}

Graph caterpillar_graph(NodeId spine, NodeId legs) {
  TGROOM_CHECK(spine >= 1 && legs >= 0);
  Graph g(spine + spine * legs);
  for (NodeId s = 0; s + 1 < spine; ++s) g.add_edge(s, s + 1);
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId leg = 0; leg < legs; ++leg) g.add_edge(s, next++);
  }
  return g;
}

Graph triangle_forest(NodeId count) {
  Graph g(3 * count);
  for (NodeId t = 0; t < count; ++t) {
    NodeId base = static_cast<NodeId>(3 * t);
    g.add_edge(base, base + 1);
    g.add_edge(base + 1, base + 2);
    g.add_edge(base, base + 2);
  }
  return g;
}

}  // namespace tgroom
