// Deterministic graph families for tests, examples, and edge cases.
#pragma once

#include "graph/graph.hpp"

namespace tgroom {

/// Complete graph K_n — the all-to-all traffic pattern (r = n-1 regular).
Graph complete_graph(NodeId n);

/// Cycle C_n (n >= 3).
Graph cycle_graph(NodeId n);

/// Simple path with n nodes, n-1 edges.
Graph path_graph(NodeId n);

/// Star K_{1,n-1}: node 0 joined to all others.
Graph star_graph(NodeId n);

/// Complete bipartite K_{a,b}: nodes 0..a-1 vs a..a+b-1.
Graph complete_bipartite(NodeId a, NodeId b);

/// The Petersen graph (10 nodes, 3-regular, no Euler circuit, non-planar) —
/// a classic stress case for matching and skeleton code.
Graph petersen_graph();

/// w x h grid graph.
Graph grid_graph(NodeId width, NodeId height);

/// Caterpillar: a spine path of `spine` nodes with `legs` pendant nodes on
/// each spine node — a natural single-skeleton graph.
Graph caterpillar_graph(NodeId spine, NodeId legs);

/// Disjoint union of `count` triangles.
Graph triangle_forest(NodeId count);

}  // namespace tgroom
