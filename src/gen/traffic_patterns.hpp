// Demand-set level generators: the traffic patterns named in the paper.
#pragma once

#include "grooming/demand.hpp"
#include "util/rng.hpp"

namespace tgroom {

/// All-to-all traffic: every pair of ring nodes exchanges one unit demand
/// (the r = n-1 regular pattern of the paper's introduction).
DemandSet all_to_all_traffic(NodeId ring_size);

/// Regular traffic: each node appears in exactly r symmetric demand pairs
/// (models per-node transceiver limits).  Requires n*r even, r < n.
DemandSet regular_traffic(NodeId ring_size, NodeId r, Rng& rng);

/// The paper's §5 random traffic: m = ring_size^(1+dense_ratio) random
/// pairs.
DemandSet random_traffic(NodeId ring_size, double dense_ratio, Rng& rng);

/// Hub-and-spoke traffic: every node exchanges a demand with each of the
/// `hub_count` hub nodes (a realistic metro-access pattern for examples).
DemandSet hub_traffic(NodeId ring_size, NodeId hub_count);

}  // namespace tgroom
