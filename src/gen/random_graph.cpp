#include "gen/random_graph.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

namespace tgroom {

namespace {

// Open-addressing insert-only set of 64-bit keys (linear probing, load
// factor <= 1/2, ~0 reserved as empty).  The big-graph generators use it
// in place of std::set: same membership semantics, O(1) expected insert,
// one flat allocation.
class FlatKeySet {
 public:
  explicit FlatKeySet(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < 2 * expected + 1) cap <<= 1;
    table_.assign(cap, kEmpty);
  }

  /// True when newly inserted; false when already present.
  bool insert(std::uint64_t key) {
    // splitmix64 finalizer scrambles the sequentially-structured pair keys.
    std::uint64_t h = key + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    std::size_t i = static_cast<std::size_t>(h) & (table_.size() - 1);
    while (table_[i] != kEmpty) {
      if (table_[i] == key) return false;
      i = (i + 1) & (table_.size() - 1);
    }
    table_[i] = key;
    return true;
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  std::vector<std::uint64_t> table_;
};

}  // namespace

Graph random_gnm(NodeId n, long long m, Rng& rng) {
  TGROOM_CHECK(n >= 0);
  const long long max_edges =
      static_cast<long long>(n) * (n - 1) / 2;
  TGROOM_CHECK_MSG(m >= 0 && m <= max_edges,
                   "edge count out of range for simple graph");
  Graph g(n);
  if (m == 0) return g;
  g.reserve_edges(static_cast<EdgeId>(m));

  if (m * 3 >= max_edges) {
    // Dense regime: sample by shuffling the full pair list.
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(static_cast<std::size_t>(max_edges));
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) pairs.push_back({u, v});
    }
    rng.shuffle(pairs);
    for (long long i = 0; i < m; ++i) {
      g.add_edge(pairs[static_cast<std::size_t>(i)].first,
                 pairs[static_cast<std::size_t>(i)].second);
    }
    return g;
  }

  // Sparse regime: rejection sampling of distinct pairs.
  std::set<std::pair<NodeId, NodeId>> chosen;
  while (static_cast<long long>(chosen.size()) < m) {
    auto u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.insert({u, v});
  }
  for (const auto& [u, v] : chosen) g.add_edge(u, v);
  return g;
}

long long edges_for_dense_ratio(NodeId n, double dense_ratio) {
  const long long max_edges = static_cast<long long>(n) * (n - 1) / 2;
  auto m = static_cast<long long>(
      std::llround(std::pow(static_cast<double>(n), 1.0 + dense_ratio)));
  return std::clamp(m, 0LL, max_edges);
}

Graph random_dense_ratio(NodeId n, double dense_ratio, Rng& rng) {
  return random_gnm(n, edges_for_dense_ratio(n, dense_ratio), rng);
}

Graph random_gnm_big(NodeId n, long long m, Rng& rng) {
  TGROOM_CHECK(n >= 0);
  const long long max_edges = static_cast<long long>(n) * (n - 1) / 2;
  TGROOM_CHECK_MSG(m >= 0 && m <= max_edges,
                   "edge count out of range for simple graph");
  TGROOM_CHECK_MSG(m * 3 < max_edges || m == 0,
                   "random_gnm_big requires the sparse regime (3m < max)");
  Graph g(n);
  if (m == 0) return g;
  g.reserve_edges(static_cast<EdgeId>(m));

  // Identical draw sequence to random_gnm's sparse path (sample, reject
  // self-loops and duplicates), so for the same rng state the two produce
  // the same graph; only the dedup structure differs.
  FlatKeySet seen(static_cast<std::size_t>(m));
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(m));
  while (static_cast<long long>(keys.size()) < m) {
    auto u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    // 64-bit pair key: u*n+v never overflows for int32 node counts.
    std::uint64_t key = static_cast<std::uint64_t>(u) *
                            static_cast<std::uint64_t>(n) +
                        static_cast<std::uint64_t>(v);
    if (seen.insert(key)) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());  // = std::set's (u, v) order
  for (std::uint64_t key : keys) {
    g.add_edge(static_cast<NodeId>(key / static_cast<std::uint64_t>(n)),
               static_cast<NodeId>(key % static_cast<std::uint64_t>(n)));
  }
  return g;
}

Graph ring_cluster_graph(NodeId n, int rings, long long chords, Rng& rng) {
  TGROOM_CHECK(rings >= 1);
  TGROOM_CHECK_MSG(n >= static_cast<long long>(rings) * 3,
                   "every ring needs at least 3 nodes");
  TGROOM_CHECK(chords >= 0);

  const NodeId base = n / rings;
  const NodeId rem = n % rings;
  Graph g(n);
  g.reserve_edges(static_cast<EdgeId>(static_cast<long long>(n) + chords));

  NodeId off = 0;
  for (int r = 0; r < rings; ++r) {
    const NodeId size = base + (r < rem ? 1 : 0);
    const long long share =
        chords / rings + (r < static_cast<int>(chords % rings) ? 1 : 0);
    // Non-adjacent in-ring pairs: all pairs minus the cycle edges.
    const long long free_pairs =
        static_cast<long long>(size) * (size - 1) / 2 - size;
    TGROOM_CHECK_MSG(share <= free_pairs,
                     "too many chords for the ring size");

    for (NodeId i = 0; i < size; ++i) {
      g.add_edge(off + i, off + (i + 1) % size);
    }
    if (share > 0) {
      FlatKeySet seen(static_cast<std::size_t>(share));
      std::vector<std::uint64_t> keys;
      keys.reserve(static_cast<std::size_t>(share));
      while (static_cast<long long>(keys.size()) < share) {
        auto a = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(size)));
        auto b = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(size)));
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        if (b - a == 1 || b - a == size - 1) continue;  // cycle edge
        std::uint64_t key = static_cast<std::uint64_t>(a) *
                                static_cast<std::uint64_t>(size) +
                            static_cast<std::uint64_t>(b);
        if (seen.insert(key)) keys.push_back(key);
      }
      std::sort(keys.begin(), keys.end());
      for (std::uint64_t key : keys) {
        g.add_edge(off + static_cast<NodeId>(
                             key / static_cast<std::uint64_t>(size)),
                   off + static_cast<NodeId>(
                             key % static_cast<std::uint64_t>(size)));
      }
    }
    off += size;
  }
  return g;
}

}  // namespace tgroom
