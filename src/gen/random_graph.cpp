#include "gen/random_graph.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace tgroom {

Graph random_gnm(NodeId n, long long m, Rng& rng) {
  TGROOM_CHECK(n >= 0);
  const long long max_edges =
      static_cast<long long>(n) * (n - 1) / 2;
  TGROOM_CHECK_MSG(m >= 0 && m <= max_edges,
                   "edge count out of range for simple graph");
  Graph g(n);
  if (m == 0) return g;
  g.reserve_edges(static_cast<EdgeId>(m));

  if (m * 3 >= max_edges) {
    // Dense regime: sample by shuffling the full pair list.
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(static_cast<std::size_t>(max_edges));
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) pairs.push_back({u, v});
    }
    rng.shuffle(pairs);
    for (long long i = 0; i < m; ++i) {
      g.add_edge(pairs[static_cast<std::size_t>(i)].first,
                 pairs[static_cast<std::size_t>(i)].second);
    }
    return g;
  }

  // Sparse regime: rejection sampling of distinct pairs.
  std::set<std::pair<NodeId, NodeId>> chosen;
  while (static_cast<long long>(chosen.size()) < m) {
    auto u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    chosen.insert({u, v});
  }
  for (const auto& [u, v] : chosen) g.add_edge(u, v);
  return g;
}

long long edges_for_dense_ratio(NodeId n, double dense_ratio) {
  const long long max_edges = static_cast<long long>(n) * (n - 1) / 2;
  auto m = static_cast<long long>(
      std::llround(std::pow(static_cast<double>(n), 1.0 + dense_ratio)));
  return std::clamp(m, 0LL, max_edges);
}

Graph random_dense_ratio(NodeId n, double dense_ratio, Rng& rng) {
  return random_gnm(n, edges_for_dense_ratio(n, dense_ratio), rng);
}

}  // namespace tgroom
