// Text edge-list IO for traffic graphs.
//
// Format (one graph per stream):
//   line 1: "<node_count> <edge_count>"
//   next edge_count lines: "<u> <v>"      (0-based node ids)
// Comment lines starting with '#' and blank lines are skipped.  Virtual
// edges are never serialized — they are algorithm-internal.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace tgroom {

/// Parses a graph; throws CheckError on malformed input.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_string(const std::string& text);
Graph read_edge_list_file(const std::string& path);

/// Serializes real edges only.
void write_edge_list(std::ostream& out, const Graph& g);
std::string write_edge_list_string(const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

}  // namespace tgroom
