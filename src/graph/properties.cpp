#include "graph/properties.hpp"

#include <algorithm>
#include <set>

namespace tgroom {

NodeId max_degree(const Graph& g) {
  NodeId best = 0;
  for (NodeId v = 0; v < g.node_count(); ++v)
    best = std::max(best, g.degree(v));
  return best;
}

NodeId min_degree(const Graph& g) {
  if (g.node_count() == 0) return 0;
  NodeId best = g.degree(0);
  for (NodeId v = 1; v < g.node_count(); ++v)
    best = std::min(best, g.degree(v));
  return best;
}

std::optional<NodeId> regularity(const Graph& g) {
  if (g.node_count() == 0) return 0;
  NodeId r = g.degree(0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    if (g.degree(v) != r) return std::nullopt;
  }
  return r;
}

std::vector<NodeId> odd_degree_nodes(const Graph& g, bool real_only) {
  std::vector<NodeId> odd;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    NodeId d = real_only ? g.real_degree(v) : g.degree(v);
    if (d % 2 == 1) odd.push_back(v);
  }
  return odd;
}

bool is_simple(const Graph& g) {
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : g.edges()) {
    if (e.is_virtual) continue;
    auto key = std::minmax(e.u, e.v);
    if (!seen.insert({key.first, key.second}).second) return false;
  }
  return true;
}

NodeId spanned_node_count(const Graph& g, const std::vector<EdgeId>& edges) {
  return static_cast<NodeId>(spanned_nodes(g, edges).size());
}

std::vector<NodeId> spanned_nodes(const Graph& g,
                                  const std::vector<EdgeId>& edges) {
  std::vector<NodeId> nodes;
  nodes.reserve(edges.size() * 2);
  for (EdgeId e : edges) {
    nodes.push_back(g.edge(e).u);
    nodes.push_back(g.edge(e).v);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

namespace {

template <typename G>
std::vector<NodeId> masked_degrees_impl(const G& g,
                                        const std::vector<char>& edge_mask) {
  TGROOM_CHECK(edge_mask.size() ==
               static_cast<std::size_t>(g.edge_count()));
  std::vector<NodeId> deg(static_cast<std::size_t>(g.node_count()), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!edge_mask[static_cast<std::size_t>(e)]) continue;
    ++deg[static_cast<std::size_t>(g.edge(e).u)];
    ++deg[static_cast<std::size_t>(g.edge(e).v)];
  }
  return deg;
}

}  // namespace

std::vector<NodeId> masked_degrees(const Graph& g,
                                   const std::vector<char>& edge_mask) {
  return masked_degrees_impl(g, edge_mask);
}

std::vector<NodeId> masked_degrees(const CsrGraph& g,
                                   const std::vector<char>& edge_mask) {
  return masked_degrees_impl(g, edge_mask);
}

NodeId active_node_count(const Graph& g) {
  NodeId count = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) > 0) ++count;
  }
  return count;
}

}  // namespace tgroom
