#include "graph/io.hpp"

#include <fstream>
#include <sstream>

namespace tgroom {

namespace {
/// Reads the next non-comment, non-blank line into `line`; false at EOF.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#') continue;
    return true;
  }
  return false;
}
}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  TGROOM_CHECK_MSG(next_content_line(in, line), "edge list: missing header");
  std::istringstream header(line);
  long long n = -1, m = -1;
  header >> n >> m;
  TGROOM_CHECK_MSG(n >= 0 && m >= 0, "edge list: bad header '" + line + "'");
  Graph g(static_cast<NodeId>(n));
  for (long long i = 0; i < m; ++i) {
    TGROOM_CHECK_MSG(next_content_line(in, line),
                     "edge list: expected " + std::to_string(m) + " edges");
    std::istringstream row(line);
    long long u = -1, v = -1;
    row >> u >> v;
    TGROOM_CHECK_MSG(u >= 0 && v >= 0 && u < n && v < n,
                     "edge list: bad edge '" + line + "'");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return g;
}

Graph read_edge_list_string(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  TGROOM_CHECK_MSG(in.good(), "cannot open graph file: " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.node_count() << ' ' << g.real_edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    if (e.is_virtual) continue;
    out << e.u << ' ' << e.v << '\n';
  }
}

std::string write_edge_list_string(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  TGROOM_CHECK_MSG(out.good(), "cannot open graph file for write: " + path);
  write_edge_list(out, g);
}

}  // namespace tgroom
