#include "graph/graph.hpp"

namespace tgroom {

NodeId Graph::add_node() {
  adj_.emplace_back();
  return node_count() - 1;
}

void Graph::resize_nodes(NodeId node_count) {
  TGROOM_CHECK(node_count >= 0);
  if (node_count > this->node_count()) {
    adj_.resize(static_cast<std::size_t>(node_count));
  }
}

EdgeId Graph::add_edge(NodeId u, NodeId v, bool is_virtual) {
  TGROOM_CHECK_MSG(valid_node(u) && valid_node(v), "edge endpoint out of range");
  TGROOM_CHECK_MSG(u != v, "self-loops are not allowed");
  TGROOM_CHECK_MSG(edge_count() < kMaxEdgeCount,
                   "edge count would exceed kMaxEdgeCount");
  EdgeId id = edge_count();
  edges_.push_back(Edge{u, v, is_virtual});
  adj_[static_cast<std::size_t>(u)].push_back(Incidence{v, id});
  adj_[static_cast<std::size_t>(v)].push_back(Incidence{u, id});
  if (!is_virtual) ++real_edges_;
  return id;
}

void Graph::reserve_edges(EdgeId edge_count) {
  TGROOM_CHECK(edge_count >= 0);
  TGROOM_CHECK_MSG(edge_count <= kMaxEdgeCount,
                   "reserve_edges: edge count exceeds kMaxEdgeCount");
  edges_.reserve(static_cast<std::size_t>(edge_count));
}

void Graph::reserve_degree(NodeId v, NodeId degree) {
  TGROOM_CHECK_MSG(valid_node(v), "reserve_degree: node out of range");
  TGROOM_CHECK(degree >= 0);
  adj_[static_cast<std::size_t>(v)].reserve(static_cast<std::size_t>(degree));
}

NodeId Graph::real_degree(NodeId v) const {
  NodeId d = 0;
  for (const Incidence& inc : incident(v)) {
    if (!edge(inc.edge).is_virtual) ++d;
  }
  return d;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return find_edge(u, v) != kInvalidEdge;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  TGROOM_DCHECK(valid_node(u) && valid_node(v));
  const NodeId a = degree(u) <= degree(v) ? u : v;
  const NodeId b = (a == u) ? v : u;
  for (const Incidence& inc : incident(a)) {
    if (inc.neighbor == b) return inc.edge;
  }
  return kInvalidEdge;
}

Graph make_graph(NodeId n,
                 const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Graph g(n);
  g.reserve_edges(static_cast<EdgeId>(edges.size()));
  // Two passes: count degrees first so each adjacency list is allocated
  // exactly once.
  std::vector<NodeId> degree(static_cast<std::size_t>(n), 0);
  for (const auto& [u, v] : edges) {
    if (g.valid_node(u)) ++degree[static_cast<std::size_t>(u)];
    if (g.valid_node(v)) ++degree[static_cast<std::size_t>(v)];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.reserve_degree(v, degree[static_cast<std::size_t>(v)]);
  }
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

}  // namespace tgroom
