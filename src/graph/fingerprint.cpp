#include "graph/fingerprint.hpp"

#include "util/rng.hpp"

namespace tgroom {

namespace {

constexpr std::uint64_t kFingerprintSeed = 0x7467726f6f6d2e31ULL;  // "tgroom.1"

/// Works for Graph and CsrGraph alike: both expose the same incidence
/// interface and the same per-node ascending-edge-id order, so the absorbed
/// word sequence — node/edge counts, cumulative degrees (the CSR offset
/// table), incidences, edge table — is identical across representations.
template <typename G>
std::uint64_t fingerprint_impl(const G& g) {
  std::uint64_t h = kFingerprintSeed;
  auto absorb = [&h](std::uint64_t word) {
    std::uint64_t state = h ^ word;
    h = splitmix64(state);
  };
  absorb(static_cast<std::uint64_t>(g.node_count()));
  absorb(static_cast<std::uint64_t>(g.edge_count()));
  absorb(static_cast<std::uint64_t>(g.real_edge_count()));
  std::uint64_t offset = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    offset += static_cast<std::uint64_t>(g.degree(v));
    absorb(offset);
    for (const Incidence& inc : g.incident(v)) {
      absorb((static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  inc.neighbor))
              << 32) |
             static_cast<std::uint32_t>(inc.edge));
    }
  }
  for (const Edge& e : g.edges()) {
    absorb((static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u))
            << 32) |
           static_cast<std::uint32_t>(e.v));
    absorb(e.is_virtual ? 1 : 0);
  }
  // Top byte = format version, low 56 bits = hash material.
  return (h >> 8) |
         (static_cast<std::uint64_t>(kFingerprintFormatVersion) << 56);
}

}  // namespace

std::uint64_t graph_fingerprint(const Graph& g) { return fingerprint_impl(g); }

std::uint64_t graph_fingerprint(const CsrGraph& g) {
  return fingerprint_impl(g);
}

}  // namespace tgroom
