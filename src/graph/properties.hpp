// Structural queries on graphs used throughout the algorithms and tests.
#pragma once

#include <optional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"

namespace tgroom {

/// Maximum degree Δ(G) over all nodes (0 for an empty node set).
NodeId max_degree(const Graph& g);

/// Minimum degree over all nodes.
NodeId min_degree(const Graph& g);

/// If every node has the same degree r, returns r; otherwise nullopt.
std::optional<NodeId> regularity(const Graph& g);

/// Nodes of odd degree (virtual edges included unless `real_only`).
std::vector<NodeId> odd_degree_nodes(const Graph& g, bool real_only = false);

/// True when no two real edges share both endpoints (no parallel real
/// edges); virtual edges are ignored.
bool is_simple(const Graph& g);

/// Number of distinct nodes touched by the given edge ids.
NodeId spanned_node_count(const Graph& g, const std::vector<EdgeId>& edges);

/// The distinct nodes touched by the given edge ids, in ascending order.
std::vector<NodeId> spanned_nodes(const Graph& g,
                                  const std::vector<EdgeId>& edges);

/// Per-node degree restricted to edges where mask[e] is true.
std::vector<NodeId> masked_degrees(const Graph& g,
                                   const std::vector<char>& edge_mask);
std::vector<NodeId> masked_degrees(const CsrGraph& g,
                                   const std::vector<char>& edge_mask);

/// Number of nodes with degree > 0.
NodeId active_node_count(const Graph& g);

}  // namespace tgroom
