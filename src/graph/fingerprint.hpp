// 64-bit identity fingerprint of a labeled graph.
//
// The service's plan cache needs a cheap, stable key for "the same request
// graph again".  The fingerprint absorbs exactly the data CsrGraph
// snapshots — the per-node offset table (cumulative degrees) and the
// incidence array in per-node ascending-edge-id order, plus the edge
// endpoint/virtual table — through a splitmix64 sponge.  Both overloads
// walk that same canonical sequence, so fingerprinting a Graph and its
// CsrGraph snapshot yields the same value.
//
// This is a *labeled* identity: relabelling the nodes of an isomorphic
// graph changes the fingerprint (with overwhelming probability), which is
// the desired cache semantics — a request names nodes, not an isomorphism
// class.  Collisions between distinct graphs are possible in principle
// (64-bit pigeonhole) but the sponge mixes every word, so accidental
// collisions are a ~2^-64 event per pair.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"

namespace tgroom {

std::uint64_t graph_fingerprint(const Graph& g);
std::uint64_t graph_fingerprint(const CsrGraph& g);

}  // namespace tgroom
