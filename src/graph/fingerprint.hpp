// 64-bit identity fingerprint of a labeled graph.
//
// The service's plan cache needs a cheap, stable key for "the same request
// graph again".  The fingerprint absorbs exactly the data CsrGraph
// snapshots — the per-node offset table (cumulative degrees) and the
// incidence array in per-node ascending-edge-id order, plus the edge
// endpoint/virtual table — through a splitmix64 sponge.  Both overloads
// walk that same canonical sequence, so fingerprinting a Graph and its
// CsrGraph snapshot yields the same value.
//
// This is a *labeled* identity: relabelling the nodes of an isomorphic
// graph changes the fingerprint (with overwhelming probability), which is
// the desired cache semantics — a request names nodes, not an isomorphism
// class.  Collisions between distinct graphs are possible in principle
// (pigeonhole over the 56 hash bits) but the sponge mixes every word, so
// accidental collisions are a ~2^-56 event per pair.
//
// The top byte of the returned value is NOT hash material: it carries the
// fingerprint *format version*.  Fingerprints are persisted (the durable
// store's WAL and snapshots key cache-prewarm entries by them), and any
// change to the absorbed word sequence would silently re-key everything a
// store holds — so the absorption scheme is versioned, the version rides
// in the value itself, and store files written under a different version
// are rejected with a structured `store_incompatible` error instead of
// being replayed into garbage.  Bump kFingerprintFormatVersion whenever
// the absorbed sequence changes.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"

namespace tgroom {

/// Version of the fingerprint absorption scheme, carried in the top byte
/// of every fingerprint.
inline constexpr std::uint8_t kFingerprintFormatVersion = 1;

/// The format-version byte embedded in a fingerprint value.
inline constexpr std::uint8_t fingerprint_version(std::uint64_t fingerprint) {
  return static_cast<std::uint8_t>(fingerprint >> 56);
}

std::uint64_t graph_fingerprint(const Graph& g);
std::uint64_t graph_fingerprint(const CsrGraph& g);

}  // namespace tgroom
