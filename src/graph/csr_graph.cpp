#include "graph/csr_graph.hpp"

namespace tgroom {

void CsrGraph::rebuild_index() {
  const auto n = static_cast<std::size_t>(node_count_);

  offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];

  incidences_.resize(2 * edges_.size());
  fill_cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  // Filling in edge-id order reproduces Graph's per-node adjacency order.
  for (EdgeId id = 0; id < edge_count(); ++id) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    incidences_[static_cast<std::size_t>(
        fill_cursor_[static_cast<std::size_t>(e.u)]++)] = Incidence{e.v, id};
    incidences_[static_cast<std::size_t>(
        fill_cursor_[static_cast<std::size_t>(e.v)]++)] = Incidence{e.u, id};
  }
}

void CsrGraph::rebuild(const Graph& g) {
  node_count_ = g.node_count();
  real_edges_ = g.real_edge_count();
  edges_.assign(g.edges().begin(), g.edges().end());
  rebuild_index();
}

void CsrGraph::rebuild_subgraph(const CsrGraph& parent,
                                std::span<const NodeId> nodes,
                                std::span<const EdgeId> edges,
                                std::span<const NodeId> local_node) {
  node_count_ = static_cast<NodeId>(nodes.size());
  real_edges_ = 0;
  edges_.clear();
  edges_.reserve(edges.size());
  for (EdgeId ge : edges) {
    const Edge& e = parent.edge(ge);
    TGROOM_DCHECK(local_node[static_cast<std::size_t>(e.u)] != kInvalidNode &&
                  local_node[static_cast<std::size_t>(e.v)] != kInvalidNode);
    edges_.push_back(Edge{local_node[static_cast<std::size_t>(e.u)],
                          local_node[static_cast<std::size_t>(e.v)],
                          e.is_virtual});
    if (!e.is_virtual) ++real_edges_;
  }
  rebuild_index();
}

}  // namespace tgroom
