#include "graph/csr_graph.hpp"

namespace tgroom {

void CsrGraph::rebuild(const Graph& g) {
  node_count_ = g.node_count();
  real_edges_ = g.real_edge_count();
  const auto n = static_cast<std::size_t>(node_count_);

  edges_.assign(g.edges().begin(), g.edges().end());

  offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];

  incidences_.resize(2 * edges_.size());
  fill_cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  // Filling in edge-id order reproduces Graph's per-node adjacency order.
  for (EdgeId id = 0; id < edge_count(); ++id) {
    const Edge& e = edges_[static_cast<std::size_t>(id)];
    incidences_[static_cast<std::size_t>(
        fill_cursor_[static_cast<std::size_t>(e.u)]++)] = Incidence{e.v, id};
    incidences_[static_cast<std::size_t>(
        fill_cursor_[static_cast<std::size_t>(e.v)]++)] = Incidence{e.u, id};
  }
}

}  // namespace tgroom
