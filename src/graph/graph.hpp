// Core undirected graph type for traffic graphs.
//
// Design notes:
//  - Edges have stable, dense ids (0..edge_count()-1); algorithms refer to
//    edges by id and keep their own masks instead of mutating the graph.
//    This makes partitions, skeleton covers, and the SONET mapping cheap to
//    express as vectors of EdgeId.
//  - Parallel edges are permitted because grooming algorithms add *virtual*
//    edges (Brauner's Euler-path method, Regular_Euler's component chaining)
//    that may duplicate existing adjacencies.  Traffic graphs themselves are
//    simple; `is_simple()` (properties.hpp) verifies that for real edges.
//  - Self-loops are rejected: a symmetric demand pair {x,x} is meaningless.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace tgroom {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Largest representable edge count.  CSR snapshots store 2*m incidence
/// offsets in EdgeId arithmetic, so m is capped at 2^30 - 1 to keep every
/// derived index (2*m, m+1) inside int32; the n=10^6 / m≈4*10^6 scale
/// target sits ~250x below the cap.  add_edge/reserve_edges enforce it so
/// an overflow surfaces as a CheckError at construction, not as a
/// wrapped-negative offset deep inside a traversal kernel.
inline constexpr EdgeId kMaxEdgeCount = (EdgeId{1} << 30) - 1;

/// An undirected edge; `is_virtual` marks helper edges added by algorithms
/// that must never appear in an output partition.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  bool is_virtual = false;

  /// The endpoint that is not `x`; precondition: x is an endpoint.
  NodeId other(NodeId x) const {
    TGROOM_DCHECK(x == u || x == v);
    return x == u ? v : u;
  }

  bool has_endpoint(NodeId x) const { return x == u || x == v; }
};

/// Incidence record stored in adjacency lists.
struct Incidence {
  NodeId neighbor;
  EdgeId edge;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId node_count) { resize_nodes(node_count); }

  NodeId node_count() const { return static_cast<NodeId>(adj_.size()); }
  EdgeId edge_count() const { return static_cast<EdgeId>(edges_.size()); }

  /// Number of non-virtual edges.
  EdgeId real_edge_count() const { return real_edges_; }

  /// Adds an isolated node and returns its id.
  NodeId add_node();

  /// Grows the node set to `node_count` nodes (no-op if already larger).
  void resize_nodes(NodeId node_count);

  /// Adds edge {u, v}; returns its id.  Throws on self-loops or bad ids.
  EdgeId add_edge(NodeId u, NodeId v, bool is_virtual = false);

  /// Pre-sizes the edge table for `edge_count` edges (generators know their
  /// edge count up front; this avoids growth reallocations in hot loops).
  void reserve_edges(EdgeId edge_count);

  /// Pre-sizes node v's adjacency list for `degree` incidences.
  void reserve_degree(NodeId v, NodeId degree);

  const Edge& edge(EdgeId e) const {
    TGROOM_DCHECK(e >= 0 && e < edge_count());
    return edges_[static_cast<std::size_t>(e)];
  }

  /// All edges in id order.
  std::span<const Edge> edges() const { return edges_; }

  /// Incidences of `v` (includes virtual edges).
  std::span<const Incidence> incident(NodeId v) const {
    TGROOM_DCHECK(valid_node(v));
    return adj_[static_cast<std::size_t>(v)];
  }

  /// Degree counting all incident edges (virtual included).
  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(incident(v).size());
  }

  /// Degree counting only non-virtual edges.
  NodeId real_degree(NodeId v) const;

  /// True if some edge (real or virtual) joins u and v.  O(min degree).
  bool has_edge(NodeId u, NodeId v) const;

  /// Finds an edge id joining u and v, or kInvalidEdge.
  EdgeId find_edge(NodeId u, NodeId v) const;

  bool valid_node(NodeId v) const { return v >= 0 && v < node_count(); }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adj_;
  EdgeId real_edges_ = 0;
};

/// Builds a graph with `n` nodes from an explicit edge list (tests/IO).
Graph make_graph(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges);

}  // namespace tgroom
