// Flat, immutable CSR snapshot of a Graph for the traversal hot path.
//
// Graph stores adjacency as vector<vector<Incidence>>, which is convenient
// while edges are being added but pointer-chasing to traverse: every
// incident() call lands in a separately allocated inner vector.  CsrGraph
// packs all incidences into one contiguous array indexed by a per-node
// offset table, so BFS/DFS/Euler sweeps walk memory linearly.
//
// Determinism contract: incidences appear in ascending edge-id order per
// node — exactly the order Graph::incident() yields (each add_edge appends
// to both endpoint lists) — so every traversal kernel produces
// bit-identical output on either representation.  csr_test.cpp pins this.
//
// rebuild() reuses the snapshot's storage, so a long-lived CsrGraph (e.g.
// inside a GroomingWorkspace) makes repeat runs allocation-free once its
// buffers have grown to the working-set size.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

class CsrGraph {
 public:
  CsrGraph() = default;
  explicit CsrGraph(const Graph& g) { rebuild(g); }

  /// Re-snapshots `g`, reusing existing capacity.
  void rebuild(const Graph& g);

  /// Rebuilds this snapshot as the subgraph of `parent` induced by `nodes`
  /// and `edges` (every edge's endpoints must be listed in `nodes`),
  /// renumbered to local ids 0..nodes.size()-1 / 0..edges.size()-1 by list
  /// position.  `local_node[v]` gives the local id of a listed global node
  /// (entries for unlisted ids are ignored).  Both lists must be
  /// ascending; because the renumbering is then rank-preserving, every
  /// traversal kernel run on the local snapshot visits nodes and edges in
  /// the same relative order as on `parent` — the property the
  /// per-component parallel SpanT_Euler path relies on for bit-identical
  /// output.  Reuses existing capacity like rebuild().
  void rebuild_subgraph(const CsrGraph& parent, std::span<const NodeId> nodes,
                        std::span<const EdgeId> edges,
                        std::span<const NodeId> local_node);

  NodeId node_count() const { return node_count_; }
  EdgeId edge_count() const { return static_cast<EdgeId>(edges_.size()); }

  /// Number of non-virtual edges.
  EdgeId real_edge_count() const { return real_edges_; }

  const Edge& edge(EdgeId e) const {
    TGROOM_DCHECK(e >= 0 && e < edge_count());
    return edges_[static_cast<std::size_t>(e)];
  }

  /// All edges in id order.
  std::span<const Edge> edges() const { return edges_; }

  /// Incidences of `v`, ascending by edge id (same order as Graph).
  std::span<const Incidence> incident(NodeId v) const {
    TGROOM_DCHECK(valid_node(v));
    const auto lo =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto hi =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {incidences_.data() + lo, hi - lo};
  }

  /// Degree counting all incident edges (virtual included).
  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(incident(v).size());
  }

  bool valid_node(NodeId v) const { return v >= 0 && v < node_count_; }

 private:
  /// Rebuilds offsets_/incidences_ from the current edges_ / node_count_.
  void rebuild_index();

  NodeId node_count_ = 0;
  EdgeId real_edges_ = 0;
  std::vector<EdgeId> offsets_;        // node_count_ + 1 entries
  std::vector<Incidence> incidences_;  // 2 * edge_count entries
  std::vector<Edge> edges_;            // edge copy, id order
  std::vector<EdgeId> fill_cursor_;    // rebuild scratch, kept for reuse
};

}  // namespace tgroom
