#include "cluster/cluster_map.hpp"

#include <cctype>

#include "grooming/demand.hpp"

namespace tgroom::cluster {

namespace {

bool parse_address(std::string_view token, BackendAddress& addr,
                   std::string& error) {
  const std::size_t colon = token.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == token.size()) {
    error = "expected host:port, got '" + std::string(token) + "'";
    return false;
  }
  long port = 0;
  for (std::size_t i = colon + 1; i < token.size(); ++i) {
    const char c = token[i];
    if (c < '0' || c > '9') {
      error = "non-numeric port in '" + std::string(token) + "'";
      return false;
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      error = "port out of range in '" + std::string(token) + "'";
      return false;
    }
  }
  if (port == 0) {
    error = "port 0 in '" + std::string(token) +
            "' (the map needs concrete ports; use --port-file on the "
            "backends to learn ephemeral ones)";
    return false;
  }
  addr.host = std::string(token.substr(0, colon));
  addr.port = static_cast<int>(port);
  return true;
}

}  // namespace

bool parse_cluster_map(const std::string& spec, ClusterMap& map,
                       std::string& error) {
  map.shards.clear();
  if (spec.empty()) {
    error = "empty cluster map";
    return false;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string_view group(spec.data() + start, end - start);
    ShardSpec shard;
    std::size_t mstart = 0;
    while (mstart <= group.size()) {
      std::size_t mend = group.find(',', mstart);
      if (mend == std::string_view::npos) mend = group.size();
      const std::string_view token = group.substr(mstart, mend - mstart);
      if (token.empty()) {
        error = "empty member in shard group " +
                std::to_string(map.shards.size());
        return false;
      }
      BackendAddress addr;
      if (!parse_address(token, addr, error)) return false;
      shard.members.push_back(std::move(addr));
      if (mend == group.size()) break;
      mstart = mend + 1;
    }
    if (shard.members.empty()) {
      error = "empty shard group " + std::to_string(map.shards.size());
      return false;
    }
    map.shards.push_back(std::move(shard));
    if (end == spec.size()) break;
    start = end + 1;
  }
  if (map.shards.size() > 65536) {
    error = "too many shard groups (max 65536)";
    return false;
  }
  // One address serving two positions is always a misconfiguration: the
  // router would route distinct keys to the same store.
  for (std::size_t i = 0; i < map.shards.size(); ++i) {
    for (std::size_t j = 0; j < map.shards[i].members.size(); ++j) {
      for (std::size_t k = 0; k < map.shards.size(); ++k) {
        for (std::size_t l = 0; l < map.shards[k].members.size(); ++l) {
          if ((i != k || j != l) &&
              map.shards[i].members[j] == map.shards[k].members[l]) {
            error = "duplicate address " + map.shards[i].members[j].str() +
                    " in cluster map";
            return false;
          }
        }
      }
    }
  }
  return true;
}

std::uint64_t pairs_route_key(const std::vector<DemandPair>& pairs) {
  // A splitmix sponge over (a, b) in request order.  The constant seed
  // keeps inline provision/release keys disjoint from graph fingerprints
  // in expectation; exactness doesn't matter — any stable function of
  // the request works, it only has to agree with itself.
  std::uint64_t h = 0x7067726f6f6d6b65ULL;  // "pgroomke"
  for (const DemandPair& p : pairs) {
    h = route_mix(h ^ (static_cast<std::uint64_t>(p.a) << 32 |
                       static_cast<std::uint64_t>(p.b)));
  }
  return h;
}

namespace {

/// Advances past one JSON value starting at `i`; returns one past its
/// last byte, or npos on malformed input.  Only the structure needed to
/// find member boundaries: strings honor escapes, containers balance.
std::size_t skip_value(std::string_view s, std::size_t i) {
  const std::size_t n = s.size();
  while (i < n && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  if (i >= n) return std::string_view::npos;
  const char c = s[i];
  if (c == '"') {
    ++i;
    while (i < n) {
      if (s[i] == '\\') {
        i += 2;
      } else if (s[i] == '"') {
        return i + 1;
      } else {
        ++i;
      }
    }
    return std::string_view::npos;
  }
  if (c == '{' || c == '[') {
    int depth = 0;
    while (i < n) {
      const char d = s[i];
      if (d == '"') {
        i = skip_value(s, i);
        if (i == std::string_view::npos) return i;
        continue;
      }
      if (d == '{' || d == '[') ++depth;
      if (d == '}' || d == ']') {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return std::string_view::npos;
  }
  // Scalar: number / true / false / null — runs to the next delimiter.
  while (i < n && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         !std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return i;
}

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

}  // namespace

std::string strip_top_level_id(std::string_view line) {
  std::size_t i = skip_ws(line, 0);
  if (i >= line.size() || line[i] != '{') return std::string(line);
  std::size_t pos = i + 1;  // first byte after '{'
  bool first = true;
  while (true) {
    std::size_t member_start = skip_ws(line, pos);
    if (member_start >= line.size() || line[member_start] == '}') break;
    if (!first) {
      // member_start sits on the ',' separating members.
      if (line[member_start] != ',') break;
      member_start = skip_ws(line, member_start + 1);
    }
    if (member_start >= line.size() || line[member_start] != '"') break;
    const std::size_t key_end = skip_value(line, member_start);
    if (key_end == std::string_view::npos) break;
    const std::string_view key =
        line.substr(member_start + 1, key_end - member_start - 2);
    std::size_t colon = skip_ws(line, key_end);
    if (colon >= line.size() || line[colon] != ':') break;
    const std::size_t value_end = skip_value(line, colon + 1);
    if (value_end == std::string_view::npos) break;
    if (key == "id") {
      // Remove the member plus one adjacent comma: the leading one when
      // this is not the first member, the trailing one otherwise.
      std::size_t cut_begin = first ? member_start : pos;
      std::size_t cut_end = value_end;
      if (first) {
        const std::size_t after = skip_ws(line, value_end);
        if (after < line.size() && line[after] == ',') cut_end = after + 1;
      }
      std::string out;
      out.reserve(line.size());
      out.append(line.substr(0, cut_begin));
      out.append(line.substr(cut_end));
      return out;
    }
    pos = value_end;
    first = false;
  }
  return std::string(line);
}

std::string compose_with_id(std::string_view stripped,
                            std::int64_t internal_id) {
  const std::size_t open = skip_ws(stripped, 0);
  std::string out;
  out.reserve(stripped.size() + 24);
  if (open >= stripped.size() || stripped[open] != '{') {
    // Not an object (cannot happen for a parsed request); pass through.
    return std::string(stripped);
  }
  const std::size_t next = skip_ws(stripped, open + 1);
  out.append("{\"id\":").append(std::to_string(internal_id));
  if (next < stripped.size() && stripped[next] != '}') out.push_back(',');
  out.append(stripped.substr(open + 1));
  return out;
}

bool restore_response_id(std::string_view response, bool client_has_id,
                         std::int64_t client_id, std::string& out) {
  out.clear();
  constexpr std::string_view kPrefix = "{\"id\":";
  if (response.substr(0, kPrefix.size()) != kPrefix) return false;
  std::size_t i = kPrefix.size();
  // The id value is an integer or null — it ends at the ',' before the
  // next member or the '}' of an (improbable) id-only object.
  while (i < response.size() && response[i] != ',' && response[i] != '}') {
    ++i;
  }
  if (i >= response.size()) return false;
  out.reserve(response.size() + 8);
  out.append(kPrefix);
  if (client_has_id) {
    out.append(std::to_string(client_id));
  } else {
    out.append("null");
  }
  out.append(response.substr(i));
  return true;
}

}  // namespace tgroom::cluster
