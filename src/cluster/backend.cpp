#include "cluster/backend.hpp"

#include <chrono>
#include <cstring>

#if defined(__unix__)
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#include <fcntl.h>
#endif

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace tgroom::cluster {

const char* BackendChannel::status_name(SendStatus s) {
  switch (s) {
    case SendStatus::kOk: return "ok";
    case SendStatus::kNoConnection: return "no_connection";
    case SendStatus::kSendFailed: return "send_failed";
    case SendStatus::kConnectionLost: return "connection_lost";
    case SendStatus::kTimedOut: return "timed_out";
  }
  return "?";
}

BackendChannel::BackendChannel(BackendAddress address,
                               BackendChannelConfig config)
    : address_(std::move(address)), config_(config) {}

BackendChannel::~BackendChannel() { stop(); }

void BackendChannel::start() {
#if defined(__unix__)
  reader_ = std::thread([this] { reader_loop(); });
#endif
}

void BackendChannel::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopping_) {
      // Already stopped (stop() is called from both the router's drain
      // path and the destructor).
    }
    stopping_ = true;
#if defined(__unix__)
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
#endif
  }
  state_cv_.notify_all();
  if (reader_.joinable()) reader_.join();
}

bool BackendChannel::connected() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return fd_ >= 0;
}

bool BackendChannel::wait_connected(int timeout_ms) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                     [this] { return fd_ >= 0 || stopping_; });
  return fd_ >= 0;
}

#if defined(__unix__)

namespace {

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// The internal id of one response line ({"id":<int>,...); false for
/// null ids or anything that is not a service response prefix.
bool parse_response_id(std::string_view line, std::int64_t& id) {
  constexpr std::string_view kPrefix = "{\"id\":";
  if (line.substr(0, kPrefix.size()) != kPrefix) return false;
  std::size_t i = kPrefix.size();
  bool negative = false;
  if (i < line.size() && line[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  std::int64_t value = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + (line[i] - '0');
    ++i;
  }
  id = negative ? -value : value;
  return true;
}

}  // namespace

int BackendChannel::connect_once() {
  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const std::string port = std::to_string(address_.port);
  if (::getaddrinfo(address_.host.c_str(), port.c_str(), &hints, &result) !=
      0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS) {
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      if (::poll(&pfd, 1, config_.connect_timeout_ms) == 1) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
            err == 0) {
          break;
        }
      }
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) return -1;
  // Back to blocking for the reader's recv loop and the senders' writes.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void BackendChannel::reader_loop() {
  int backoff_ms = config_.backoff_initial_ms;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (stopping_) return;
    }
    const int fd = connect_once();
    if (fd < 0) {
      std::unique_lock<std::mutex> lock(state_mutex_);
      state_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                         [this] { return stopping_; });
      if (stopping_) return;
      backoff_ms = std::min(backoff_ms * 2, config_.backoff_max_ms);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      fd_ = fd;
    }
    state_cv_.notify_all();
    backoff_ms = config_.backoff_initial_ms;

    std::string buffer;
    char chunk[64 * 1024];
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      while (true) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        std::string_view line(buffer.data() + start, nl - start);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        std::int64_t id = 0;
        if (parse_response_id(line, id)) {
          std::lock_guard<std::mutex> lock(state_mutex_);
          const auto it = waiters_.find(id);
          if (it != waiters_.end()) {
            Waiter* waiter = it->second;
            waiter->response.assign(line);
            waiter->done = true;
            waiters_.erase(it);
            waiter->cv.notify_one();
          }
          // No waiter: the caller timed out and deregistered, or this is
          // a one-way send's response — either way, drop it.
        }
        start = nl + 1;
      }
      buffer.erase(0, start);
    }

    // Teardown: unpublish the fd, unblock senders mid-write, close only
    // once the last fd lease drops, then fail whatever was in flight.
    std::unique_lock<std::mutex> lock(state_mutex_);
    fd_ = -1;
    ::shutdown(fd, SHUT_RDWR);
    while (senders_inflight_ > 0) state_cv_.wait(lock);
    ::close(fd);
    fail_inflight_locked();
    if (stopping_) return;
  }
}

BackendChannel::SendStatus BackendChannel::send_line(const std::string& line,
                                                     std::int64_t id,
                                                     Waiter* waiter) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopping_ || fd_ < 0) return SendStatus::kNoConnection;
    fd = fd_;
    if (waiter != nullptr) waiters_[id] = waiter;
    ++senders_inflight_;
  }
  bool ok;
  {
    // One mutex-serialized write per line keeps lines atomic on the wire
    // even when many router workers pipeline through this channel.
    std::lock_guard<std::mutex> wl(write_mutex_);
    ok = write_all(fd, line.data(), line.size());
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  --senders_inflight_;
  if (senders_inflight_ == 0) state_cv_.notify_all();
  if (!ok) {
    if (waiter != nullptr) waiters_.erase(id);
    return SendStatus::kSendFailed;
  }
  return SendStatus::kOk;
}

BackendChannel::SendStatus BackendChannel::call(std::string_view stripped,
                                                int timeout_ms,
                                                std::string& response) {
  std::int64_t id;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopping_ || fd_ < 0) return SendStatus::kNoConnection;
    id = next_id_++;
  }
  std::string line = compose_with_id(stripped, id);
  line.push_back('\n');
  Waiter waiter;
  const SendStatus sent = send_line(line, id, &waiter);
  if (sent != SendStatus::kOk) return sent;
  std::unique_lock<std::mutex> lock(state_mutex_);
  const bool finished = waiter.cv.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&waiter] { return waiter.done || waiter.lost; });
  if (!finished) {
    waiters_.erase(id);  // a late response is dropped by the reader
    return SendStatus::kTimedOut;
  }
  if (waiter.lost) return SendStatus::kConnectionLost;
  response = std::move(waiter.response);
  return SendStatus::kOk;
}

void BackendChannel::send_one_way(std::string_view stripped) {
  std::int64_t id;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (fd_ < 0) return;
    id = next_id_++;
  }
  std::string line = compose_with_id(stripped, id);
  line.push_back('\n');
  send_line(line, id, nullptr);
}

void BackendChannel::fail_inflight_locked() {
  for (auto& [id, waiter] : waiters_) {
    waiter->lost = true;
    waiter->cv.notify_one();
  }
  waiters_.clear();
}

#else  // !defined(__unix__)

int BackendChannel::connect_once() { return -1; }
void BackendChannel::reader_loop() {}
BackendChannel::SendStatus BackendChannel::send_line(const std::string&,
                                                     std::int64_t, Waiter*) {
  return SendStatus::kNoConnection;
}
BackendChannel::SendStatus BackendChannel::call(std::string_view, int,
                                                std::string&) {
  return SendStatus::kNoConnection;
}
void BackendChannel::send_one_way(std::string_view) {}
void BackendChannel::fail_inflight_locked() {}

#endif

}  // namespace tgroom::cluster
