#include "cluster/router.hpp"

#include <algorithm>
#include <ostream>
#include <thread>

#include "graph/fingerprint.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "store/format.hpp"
#include "util/json.hpp"

namespace tgroom::cluster {

namespace {

constexpr std::string_view kHealthLine = "{\"op\":\"health\"}";
constexpr std::string_view kStatsLine = "{\"op\":\"stats\"}";
constexpr std::string_view kPromoteLine = "{\"op\":\"promote\"}";
constexpr std::string_view kShutdownLine = "{\"op\":\"shutdown\"}";

bool response_says(const std::string& response, std::string_view needle) {
  return response.find(needle) != std::string::npos;
}

}  // namespace

ClusterRouter::ClusterRouter(RouterConfig config)
    : config_(std::move(config)) {
  for (const ShardSpec& spec : config_.map.shards) {
    auto shard = std::make_unique<Shard>();
    for (const BackendAddress& address : spec.members) {
      auto member = std::make_unique<Member>();
      member->address = address;
      BackendChannelConfig channel_config;
      channel_config.connect_timeout_ms = config_.connect_wait_ms;
      member->channel =
          std::make_unique<BackendChannel>(address, channel_config);
      shard->members.push_back(std::move(member));
    }
    shards_.push_back(std::move(shard));
  }
}

ClusterRouter::~ClusterRouter() { stop_backends(); }

bool ClusterRouter::drain_requested() const {
  return GroomingService::stop_requested();
}

bool ClusterRouter::start(std::ostream& log, std::string& error) {
  // Start every channel first so connects overlap, then wait and
  // validate one by one.
  for (auto& shard : shards_) {
    for (auto& member : shard->members) member->channel->start();
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    for (auto& member : shard.members) {
      if (!member->channel->wait_connected(config_.connect_wait_ms)) {
        // Down, not fatal: the prober keeps dialing, and two strikes are
        // already on the board so the first sweep can fail over.
        member->probe_failures.store(2, std::memory_order_relaxed);
        log << "tgroom route: shard " << i << " member "
            << member->address.str() << " unreachable at startup\n";
        continue;
      }
      if (!validate_member(i, *member, error)) return false;
    }
    // Initial primary: the first member answering as primary (the
    // configured one, members[0], in a healthy cluster).
    for (std::size_t m = 0; m < shard.members.size(); ++m) {
      if (shard.members[m]->healthy.load(std::memory_order_relaxed) &&
          shard.members[m]->is_primary.load(std::memory_order_relaxed)) {
        shard.active_primary.store(m, std::memory_order_relaxed);
        break;
      }
    }
  }
  prober_ = std::thread([this] { prober_loop(); });
  return true;
}

bool ClusterRouter::validate_member(std::size_t shard_index, Member& member,
                                    std::string& error) {
  std::string response;
  const BackendChannel::SendStatus status = member.channel->call(
      kHealthLine, config_.probe_timeout_ms, response);
  if (status != BackendChannel::SendStatus::kOk) {
    member.probe_failures.store(2, std::memory_order_relaxed);
    return true;  // connected but not answering: down, prober's problem
  }
  try {
    const JsonValue doc = parse_json(response);
    const JsonValue* store_version = doc.find("store_version");
    if (store_version != nullptr &&
        store_version->as_int() !=
            static_cast<std::int64_t>(kStoreFormatVersion)) {
      error = "shard " + std::to_string(shard_index) + " member " +
              member.address.str() + ": store format version " +
              std::to_string(store_version->as_int()) + " != compiled " +
              std::to_string(kStoreFormatVersion);
      return false;
    }
    const JsonValue* fp_version = doc.find("fingerprint_version");
    if (fp_version != nullptr &&
        fp_version->as_int() !=
            static_cast<std::int64_t>(kFingerprintFormatVersion)) {
      error = "shard " + std::to_string(shard_index) + " member " +
              member.address.str() + ": fingerprint format version " +
              std::to_string(fp_version->as_int()) + " != compiled " +
              std::to_string(static_cast<int>(kFingerprintFormatVersion));
      return false;
    }
    // Topology echo: a node that believes it sits elsewhere in the
    // cluster would serve (and store) the wrong key range — fatal.
    const JsonValue* shard_count = doc.find("shard_count");
    if (shard_count != nullptr) {
      if (shard_count->as_int() !=
          static_cast<std::int64_t>(config_.map.size())) {
        error = "shard " + std::to_string(shard_index) + " member " +
                member.address.str() + ": node configured for " +
                std::to_string(shard_count->as_int()) +
                " shards, map has " + std::to_string(config_.map.size());
        return false;
      }
      const JsonValue* node_shard = doc.find("shard_index");
      if (node_shard != nullptr &&
          node_shard->as_int() != static_cast<std::int64_t>(shard_index)) {
        error = "shard " + std::to_string(shard_index) + " member " +
                member.address.str() + ": node reports shard_index " +
                std::to_string(node_shard->as_int());
        return false;
      }
    }
    const JsonValue* role = doc.find("role");
    member.is_primary.store(
        role != nullptr && role->is_string() && role->string == "primary",
        std::memory_order_relaxed);
    const JsonValue* last_seq = doc.find("last_seq");
    if (last_seq != nullptr) {
      member.applied_seq.store(
          static_cast<std::uint64_t>(last_seq->as_int()),
          std::memory_order_relaxed);
    }
    member.healthy.store(true, std::memory_order_relaxed);
    member.probe_failures.store(0, std::memory_order_relaxed);
  } catch (const CheckError&) {
    member.probe_failures.store(2, std::memory_order_relaxed);
  }
  return true;
}

void ClusterRouter::stop_backends() {
  if (backends_stopped_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  for (auto& shard : shards_) {
    for (auto& member : shard->members) member->channel->stop();
  }
}

// ---- request path ---------------------------------------------------------

int ClusterRouter::shard_for_request(const ServiceRequest& request,
                                     std::string& error) const {
  std::uint64_t key;
  if (request.has_route_key) {
    key = static_cast<std::uint64_t>(request.route_key);
  } else {
    switch (request.op) {
      case ServiceOp::kGroom:
        key = graph_fingerprint(request.graph);
        break;
      case ServiceOp::kProvision:
      case ServiceOp::kRelease:
        if (!request.plan.has_value()) {
          // A held-plan reference without a routing key: plan ids are
          // per-shard counters, so only a one-shard map can resolve it.
          if (config_.map.size() == 1) return 0;
          error =
              "held-plan operations need \"route_key\" in a multi-shard "
              "cluster (send the same route_key you held the plan with)";
          return -1;
        }
        key = pairs_route_key(request.op == ServiceOp::kProvision
                                  ? request.add
                                  : request.remove);
        break;
      default:
        error = "op is not routable";
        return -1;
    }
  }
  return static_cast<int>(shard_for_key(key, config_.map.size()));
}

int ClusterRouter::forward_timeout_ms(const ServiceRequest& request) const {
  if (request.deadline_ms > 0 &&
      request.deadline_ms < config_.backend_timeout_ms) {
    // The backend enforces the deadline itself (the raw line carries it);
    // the slack keeps the backend's own deadline_exceeded answer the one
    // the client sees.
    return static_cast<int>(request.deadline_ms) + 1000;
  }
  return config_.backend_timeout_ms;
}

void ClusterRouter::execute_into(ServiceRequest& request,
                                 GroomingWorkspace& workspace, JsonWriter& w) {
  (void)workspace;  // the router grooms nothing
  if (request.admitted == std::chrono::steady_clock::time_point{}) {
    request.admitted = std::chrono::steady_clock::now();
  }
  w.clear();
  switch (request.op) {
    case ServiceOp::kHealth:
      handle_health(request, w);
      break;
    case ServiceOp::kStats:
      handle_stats(request, w);
      break;
    case ServiceOp::kShutdown:
      // The event loop intercepts shutdown before it reaches a worker;
      // answering here keeps direct (in-process) callers working.
      begin_ok_response(w, request.id, request.has_id, ServiceOp::kShutdown);
      w.end_object();
      metrics_.increment(ServiceMetrics::Counter::kOk);
      break;
    case ServiceOp::kPromote:
    case ServiceOp::kReplHandshake:
    case ServiceOp::kReplFetch:
    case ServiceOp::kReplSnapshot:
      bad_request_response(
          request,
          std::string(service_op_name(request.op)) +
              " is not routable; send it to the shard node directly",
          w);
      break;
    default:
      forward(request, w);
      break;
  }
  metrics_.observe_latency(std::chrono::steady_clock::now() -
                           request.admitted);
}

void ClusterRouter::forward(ServiceRequest& request, JsonWriter& w) {
  std::string error;
  const int shard_index = shard_for_request(request, error);
  if (shard_index < 0) return bad_request_response(request, error, w);
  if (request.raw.empty()) {
    return bad_request_response(
        request, "router needs the original request line to forward", w);
  }
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  if (GroomingService::is_mutating(request)) {
    forward_mutation(request, shard, w);
  } else {
    forward_read(request, shard, w);
  }
}

void ClusterRouter::forward_read(ServiceRequest& request, Shard& shard,
                                 JsonWriter& w) {
  const std::string stripped = strip_top_level_id(request.raw);
  const int timeout = forward_timeout_ms(request);
  // Preference order: healthy replicas (they exist to absorb reads),
  // then the active primary, then anything that still has a connection.
  const std::size_t active =
      shard.active_primary.load(std::memory_order_relaxed);
  std::vector<std::size_t> order;
  order.reserve(shard.members.size());
  for (std::size_t m = 0; m < shard.members.size(); ++m) {
    if (m != active && shard.members[m]->healthy.load(std::memory_order_relaxed))
      order.push_back(m);
  }
  order.push_back(active);
  for (std::size_t m = 0; m < shard.members.size(); ++m) {
    if (m != active && !shard.members[m]->healthy.load(std::memory_order_relaxed))
      order.push_back(m);
  }
  BackendChannel::SendStatus last = BackendChannel::SendStatus::kNoConnection;
  bool first_attempt = true;
  // Reads are idempotent: every failure mode retries, across two passes
  // with a breather in between so a mid-failover shard gets a chance.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::size_t m : order) {
      if (!first_attempt) {
        metrics_.increment(ServiceMetrics::Counter::kForwardRetries);
      }
      first_attempt = false;
      std::string response;
      last = shard.members[m]->channel->call(stripped, timeout, response);
      if (last == BackendChannel::SendStatus::kOk) {
        return emit_forwarded(request, response, w);
      }
    }
    if (pass == 0 && !draining_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.retry_backoff_ms));
    }
  }
  std::size_t shard_index = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].get() == &shard) shard_index = i;
  }
  shard_down_response(request, shard_index,
                      std::string("no member answered (last: ") +
                          BackendChannel::status_name(last) + ")",
                      w);
}

void ClusterRouter::forward_mutation(ServiceRequest& request, Shard& shard,
                                     JsonWriter& w) {
  const std::string stripped = strip_top_level_id(request.raw);
  const int timeout = forward_timeout_ms(request);
  std::size_t shard_index = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].get() == &shard) shard_index = i;
  }
  BackendChannel::SendStatus last = BackendChannel::SendStatus::kNoConnection;
  for (int attempt = 0; attempt < config_.mutation_attempts; ++attempt) {
    if (attempt > 0) {
      metrics_.increment(ServiceMetrics::Counter::kForwardRetries);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.retry_backoff_ms));
    }
    const std::size_t active =
        shard.active_primary.load(std::memory_order_relaxed);
    std::string response;
    last = shard.members[active]->channel->call(stripped, timeout, response);
    switch (last) {
      case BackendChannel::SendStatus::kOk:
        if (response_says(response, "\"error\":\"read_only\"") &&
            attempt + 1 < config_.mutation_attempts) {
          // The target was a replica (we raced a failover, or the
          // cluster was brought up pointing at one).  Nothing executed,
          // so retrying after the prober re-elects is safe.
          continue;
        }
        return emit_forwarded(request, response, w);
      case BackendChannel::SendStatus::kNoConnection:
      case BackendChannel::SendStatus::kSendFailed:
        // Nothing reached the backend as a complete line: the request
        // did not and will not execute there.  Safe to retry.
        continue;
      case BackendChannel::SendStatus::kConnectionLost:
      case BackendChannel::SendStatus::kTimedOut:
        // The full line was sent; the mutation MAY have executed.  A
        // blind retry could execute it twice, so surface the ambiguity.
        return shard_down_response(
            request, shard_index,
            std::string("primary ") +
                shard.members[active]->address.str() + " " +
                BackendChannel::status_name(last) +
                " mid-request; the mutation may or may not have applied",
            w);
    }
  }
  shard_down_response(request, shard_index,
                      std::string("no reachable primary (last: ") +
                          BackendChannel::status_name(last) + ")",
                      w);
}

void ClusterRouter::emit_forwarded(const ServiceRequest& request,
                                   const std::string& response,
                                   JsonWriter& w) {
  std::string restored;
  if (!restore_response_id(response, request.has_id, request.id, restored)) {
    metrics_.increment(ServiceMetrics::Counter::kError);
    return write_error_response(w, request.id, request.has_id,
                                ServiceError::kInternal,
                                "malformed backend response");
  }
  metrics_.increment(ServiceMetrics::Counter::kForwarded);
  metrics_.increment(response_says(restored, "\"ok\":false")
                         ? ServiceMetrics::Counter::kError
                         : ServiceMetrics::Counter::kOk);
  w.raw(restored);
}

void ClusterRouter::shard_down_response(const ServiceRequest& request,
                                        std::size_t shard_index,
                                        const std::string& detail,
                                        JsonWriter& w) {
  metrics_.increment(ServiceMetrics::Counter::kError);
  metrics_.increment(ServiceMetrics::Counter::kShardDownErrors);
  write_error_response(w, request.id, request.has_id,
                       ServiceError::kShardDown,
                       "shard " + std::to_string(shard_index) + ": " + detail);
}

void ClusterRouter::bad_request_response(const ServiceRequest& request,
                                         const std::string& message,
                                         JsonWriter& w) {
  metrics_.increment(ServiceMetrics::Counter::kError);
  write_error_response(w, request.id, request.has_id,
                       ServiceError::kBadRequest, message);
}

// ---- aggregate ops --------------------------------------------------------

void ClusterRouter::handle_health(const ServiceRequest& request,
                                  JsonWriter& w) {
  // Inline on the loop thread (EventLoopHandler contract): probed
  // atomics only, never a backend round trip.
  begin_ok_response(w, request.id, request.has_id, ServiceOp::kHealth);
  w.kv("role", "router");
  w.kv("shard_count", static_cast<long long>(shards_.size()));
  w.key("shards").begin_array();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    const std::size_t active =
        shard.active_primary.load(std::memory_order_relaxed);
    long long up = 0;
    for (const auto& member : shard.members) {
      if (member->healthy.load(std::memory_order_relaxed)) ++up;
    }
    w.begin_object();
    w.kv("shard", static_cast<long long>(i));
    w.kv("primary", shard.members[active]->address.str());
    w.kv("primary_healthy",
         shard.members[active]->healthy.load(std::memory_order_relaxed));
    w.kv("members", static_cast<long long>(shard.members.size()));
    w.kv("members_up", up);
    w.end_object();
  }
  w.end_array();
  w.kv("uptime_s",
       static_cast<long long>(std::chrono::duration_cast<std::chrono::seconds>(
                                  std::chrono::steady_clock::now() - started_)
                                  .count()));
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

void ClusterRouter::handle_stats(ServiceRequest& request, JsonWriter& w) {
  begin_ok_response(w, request.id, request.has_id, ServiceOp::kStats);
  w.kv("role", "router");
  w.kv("shard_count", static_cast<long long>(shards_.size()));
  w.key("router");
  metrics_.write_json(w);
  w.key("shards").begin_array();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    const std::size_t active =
        shard.active_primary.load(std::memory_order_relaxed);
    w.begin_object();
    w.kv("shard", static_cast<long long>(i));
    w.kv("primary", shard.members[active]->address.str());
    std::string response;
    const BackendChannel::SendStatus status =
        shard.members[active]->channel->call(
            kStatsLine, config_.backend_timeout_ms, response);
    if (status == BackendChannel::SendStatus::kOk) {
      std::string nulled;
      if (restore_response_id(response, false, 0, nulled)) {
        w.key("response").raw(nulled);
      } else {
        w.kv("error", "malformed backend response");
      }
    } else {
      w.kv("error", BackendChannel::status_name(status));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  metrics_.increment(ServiceMetrics::Counter::kOk);
}

// ---- drain ----------------------------------------------------------------

void ClusterRouter::on_drain_begin() {
  // Stop electing: a failover mid-drain would promote a replica on a
  // cluster that is about to be told to shut down.
  draining_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
}

void ClusterRouter::finalize() {
  // Called after the loop fully drained: every accepted client request
  // has its response, so shutting the shards down now cannot turn an
  // in-flight forward into a spurious `shutting_down`.
  if (prober_.joinable()) prober_.join();
  for (auto& shard : shards_) {
    for (auto& member : shard->members) {
      if (!member->channel->connected()) continue;
      std::string response;
      member->channel->call(kShutdownLine, config_.promote_timeout_ms,
                            response);
    }
  }
  stop_backends();
}

void ClusterRouter::write_exit_metrics(JsonWriter& w) {
  w.clear();
  w.begin_object();
  w.kv("event", "exit");
  w.kv("role", "router");
  w.kv("shard_count", static_cast<long long>(shards_.size()));
  w.key("metrics");
  metrics_.write_json(w);
  w.end_object();
}

// ---- prober ---------------------------------------------------------------

void ClusterRouter::prober_loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(prober_mutex_);
      prober_cv_.wait_for(lock,
                          std::chrono::milliseconds(config_.probe_interval_ms),
                          [this] { return prober_stop_; });
      if (prober_stop_) return;
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = *shards_[i];
      for (auto& member : shard.members) probe_member(*member);
      resolve_primary(i, shard);
    }
  }
}

void ClusterRouter::probe_member(Member& member) {
  std::string response;
  const BackendChannel::SendStatus status =
      member.channel->call(kHealthLine, config_.probe_timeout_ms, response);
  if (status != BackendChannel::SendStatus::kOk) {
    const int failures =
        member.probe_failures.fetch_add(1, std::memory_order_relaxed) + 1;
    if (failures >= 2) member.healthy.store(false, std::memory_order_relaxed);
    return;
  }
  try {
    const JsonValue doc = parse_json(response);
    const JsonValue* role = doc.find("role");
    member.is_primary.store(
        role != nullptr && role->is_string() && role->string == "primary",
        std::memory_order_relaxed);
    const JsonValue* last_seq = doc.find("last_seq");
    if (last_seq != nullptr) {
      member.applied_seq.store(static_cast<std::uint64_t>(last_seq->as_int()),
                               std::memory_order_relaxed);
    }
    member.probe_failures.store(0, std::memory_order_relaxed);
    member.healthy.store(true, std::memory_order_relaxed);
  } catch (const CheckError&) {
    const int failures =
        member.probe_failures.fetch_add(1, std::memory_order_relaxed) + 1;
    if (failures >= 2) member.healthy.store(false, std::memory_order_relaxed);
  }
}

void ClusterRouter::resolve_primary(std::size_t shard_index, Shard& shard) {
  const std::size_t active =
      shard.active_primary.load(std::memory_order_relaxed);
  Member& current = *shard.members[active];
  if (current.healthy.load(std::memory_order_relaxed) &&
      current.is_primary.load(std::memory_order_relaxed)) {
    return;
  }
  // Adopt an externally-promoted member first: if someone (an operator,
  // another router) already ran the promotion, electing again would try
  // to promote a second primary.
  for (std::size_t m = 0; m < shard.members.size(); ++m) {
    Member& member = *shard.members[m];
    if (m != active && member.healthy.load(std::memory_order_relaxed) &&
        member.is_primary.load(std::memory_order_relaxed)) {
      shard.active_primary.store(m, std::memory_order_relaxed);
      metrics_.increment(ServiceMetrics::Counter::kFailovers);
      return;
    }
  }
  if (current.healthy.load(std::memory_order_relaxed)) {
    // Reachable but answering as replica with no primary anywhere —
    // fall through to an election that may well pick it.
  }
  // Elect: the healthy member with the most applied state loses the
  // least history.  (No quorum — the prober's two-strike rule is the
  // only guard against promoting beside a live-but-slow primary, which
  // is the documented single-router limitation, DESIGN.md §17.)
  std::size_t best = shard.members.size();
  std::uint64_t best_seq = 0;
  for (std::size_t m = 0; m < shard.members.size(); ++m) {
    Member& member = *shard.members[m];
    if (!member.healthy.load(std::memory_order_relaxed)) continue;
    const std::uint64_t seq =
        member.applied_seq.load(std::memory_order_relaxed);
    if (best == shard.members.size() || seq > best_seq) {
      best = m;
      best_seq = seq;
    }
  }
  if (best == shard.members.size()) return;  // whole shard dark
  Member& candidate = *shard.members[best];
  if (candidate.is_primary.load(std::memory_order_relaxed)) {
    // The current active member already answers as primary (it *is* the
    // best candidate); just keep it.
    shard.active_primary.store(best, std::memory_order_relaxed);
    return;
  }
  std::string response;
  const BackendChannel::SendStatus status = candidate.channel->call(
      kPromoteLine, config_.promote_timeout_ms, response);
  if (status == BackendChannel::SendStatus::kOk &&
      response_says(response, "\"ok\":true")) {
    candidate.is_primary.store(true, std::memory_order_relaxed);
    shard.active_primary.store(best, std::memory_order_relaxed);
    metrics_.increment(ServiceMetrics::Counter::kFailovers);
  }
  (void)shard_index;
}

}  // namespace tgroom::cluster
