// The cluster front-end: a stateless NDJSON router over N shard groups.
//
// ClusterRouter implements EventLoopHandler, so `tgroom route` serves the
// exact same epoll front-end as `tgroom serve` — connections, pipelining,
// admission control, drain — but execute_into() forwards instead of
// grooming: it picks the owning shard from the request's routing key
// (cluster_map.hpp), picks a member by the read/mutation split, and
// relays the original request bytes over that member's BackendChannel,
// splicing the client's id back into the response (the router owns no
// grooming state — every byte of payload is the backend's).
//
// Member selection:
//  - mutations (held grooms, held-plan provision/release — the same
//    GroomingService::is_mutating rule replicas enforce) go to the
//    shard's active primary; retried only while nothing reached the wire
//    (kNoConnection/kSendFailed) or on a `read_only` answer from a
//    just-demoted target, so a mutation can never execute twice.
//  - reads (stateless groom/provision/release) prefer healthy replicas
//    and fall back to the primary; they are idempotent, so every failure
//    mode retries across the member list.
//  - stats fans out to every shard primary and merges; health is
//    answered inline by the router itself from probed state (never
//    blocks on a backend); shutdown drains the router, then every shard.
//
// Failover: a prober thread health-checks every member each
// probe_interval_ms.  When the active primary misses two consecutive
// probes, the router adopts an externally-promoted member if one answers
// as primary, otherwise promotes the healthy replica with the highest
// applied seq and switches to it.  Requests that race the dead window
// get a structured `shard_down` error — clients retry until failover
// lands (scripts/cluster_harness.py exercises exactly this).
//
// Startup: start() connects every channel and validates each reachable
// backend's health echo against the compiled format versions and the
// static map (shard_index/shard_count).  A *mismatch* is fatal — a wrong
// build or a misplaced node must never serve a key — while an
// *unreachable* backend is only marked down (the prober keeps trying, so
// a cluster can start before all of its shards).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend.hpp"
#include "cluster/cluster_map.hpp"
#include "service/handler.hpp"
#include "service/metrics.hpp"

namespace tgroom {

struct ServiceRequest;
struct GroomingWorkspace;
class JsonWriter;

namespace cluster {

struct RouterConfig {
  ClusterMap map;

  // Front-end admission (same knobs as ServiceConfig; workers block on
  // backend round trips, so more workers = more useful pipelining).
  std::size_t workers = 8;
  std::size_t queue_capacity = 256;
  std::int64_t default_deadline_ms = 0;
  bool metrics_on_exit = true;

  int probe_interval_ms = 200;   // prober cadence per full sweep
  int probe_timeout_ms = 1000;   // per-member health round trip
  int connect_wait_ms = 2000;    // startup wait for each channel
  int backend_timeout_ms = 10000;  // forwarded request round trip
  int promote_timeout_ms = 5000;   // failover promote round trip
  int retry_backoff_ms = 25;     // between forward attempts
  int mutation_attempts = 4;     // bounded by never-reached-the-wire rule
};

class ClusterRouter : public EventLoopHandler {
 public:
  explicit ClusterRouter(RouterConfig config);
  ~ClusterRouter() override;

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Connects and validates every backend, then starts the prober.
  /// False (with `error` set) on a fatal handshake mismatch; unreachable
  /// backends only log to `log` and stay down until the prober finds
  /// them.
  bool start(std::ostream& log, std::string& error);

  /// Stops the prober and every channel.  Idempotent; finalize() calls
  /// it after the shutdown fan-out.
  void stop_backends();

  // ---- EventLoopHandler --------------------------------------------------
  ServiceMetrics& metrics() override { return metrics_; }
  std::size_t worker_count() const override { return config_.workers; }
  std::size_t handler_queue_capacity() const override {
    return config_.queue_capacity;
  }
  std::int64_t handler_default_deadline_ms() const override {
    return config_.default_deadline_ms;
  }
  bool metrics_on_exit() const override { return config_.metrics_on_exit; }
  bool drain_requested() const override;
  bool wants_raw_line() const override { return true; }
  const char* log_name() const override { return "tgroom route"; }
  void execute_into(ServiceRequest& request, GroomingWorkspace& workspace,
                    JsonWriter& w) override;
  void on_drain_begin() override;
  void finalize() override;
  void write_exit_metrics(JsonWriter& w) override;

  /// The routing decision alone (exposed for tests): the shard index
  /// execute_into would forward this request to, or -1 with `error` set
  /// when the request cannot be routed (held-plan op without route_key
  /// in a multi-shard map).
  int shard_for_request(const ServiceRequest& request,
                        std::string& error) const;

 private:
  struct Member {
    BackendAddress address;
    std::unique_ptr<BackendChannel> channel;
    std::atomic<bool> healthy{false};
    std::atomic<int> probe_failures{0};
    std::atomic<bool> is_primary{false};
    std::atomic<std::uint64_t> applied_seq{0};
  };
  struct Shard {
    std::vector<std::unique_ptr<Member>> members;
    std::atomic<std::size_t> active_primary{0};
  };

  void forward(ServiceRequest& request, JsonWriter& w);
  void forward_read(ServiceRequest& request, Shard& shard, JsonWriter& w);
  void forward_mutation(ServiceRequest& request, Shard& shard, JsonWriter& w);
  /// Emits the backend's response with the client id spliced back in,
  /// and counts it (kOk unless the payload says "ok":false).
  void emit_forwarded(const ServiceRequest& request,
                      const std::string& response, JsonWriter& w);
  void shard_down_response(const ServiceRequest& request,
                           std::size_t shard_index, const std::string& detail,
                           JsonWriter& w);
  void bad_request_response(const ServiceRequest& request,
                            const std::string& message, JsonWriter& w);
  int forward_timeout_ms(const ServiceRequest& request) const;

  void handle_health(const ServiceRequest& request, JsonWriter& w);
  void handle_stats(ServiceRequest& request, JsonWriter& w);

  void prober_loop();
  /// One health round trip; updates the member's probed state.
  void probe_member(Member& member);
  /// Re-elects shard.active_primary after the current one went dark.
  void resolve_primary(std::size_t shard_index, Shard& shard);
  /// Startup handshake check for one reachable member; false = fatal.
  bool validate_member(std::size_t shard_index, Member& member,
                       std::string& error);

  RouterConfig config_;
  ServiceMetrics metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> backends_stopped_{false};
  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;

  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

}  // namespace cluster
}  // namespace tgroom
