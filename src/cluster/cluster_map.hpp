// Static topology and routing math for the sharded grooming cluster.
//
// A cluster is N shard groups, each a primary plus zero or more replicas,
// all running `tgroom serve --shard-index i --shard-count N`.  The router
// (`tgroom route`, src/cluster/router.hpp) holds one immutable ClusterMap
// parsed from the --shards flag:
//
//   host:port[,host:port...];host:port[,host:port...];...
//
// — shard groups separated by ';', members by ',', the first member of
// each group the configured primary.  The map is static: membership never
// changes at runtime (failover re-elects a primary *within* a group, it
// never moves keys between groups), so routing is a pure function of the
// request and needs no coordination.
//
// Routing: every request reduces to a 64-bit key (an explicit `route_key`
// when the client sent one, the graph fingerprint for groom, a canonical
// pair hash for inline provision/release).  The key is finalized through
// splitmix64 — fingerprints carry a constant format-version top byte, so
// raw top bits would land every request on one shard — and the top 16
// mixed bits are range-mapped onto the N groups:
//
//   shard = (mix(key) >> 48) * N >> 16
//
// which is uniform for any N (not just powers of two) and, unlike mod,
// keeps the map monotone in the hash — adjacent hash space stays adjacent
// in shard space, which makes the pinned-mapping test's goldens stable to
// reason about.
//
// This header also owns the id-splice helpers the router forwards with:
// the router multiplexes many client requests over one pipelined backend
// connection, and backends answer in completion order, so every forwarded
// line carries a router-assigned id and the client's own id is spliced
// back into the response prefix before it leaves (responses always begin
// {"id":<int|null>, — service/protocol.cpp writes the id first precisely
// so this splice is an exact prefix operation, keeping the rest of the
// backend's bytes untouched).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tgroom {

struct DemandPair;

namespace cluster {

struct BackendAddress {
  std::string host;
  int port = 0;

  std::string str() const { return host + ":" + std::to_string(port); }
  bool operator==(const BackendAddress& o) const {
    return port == o.port && host == o.host;
  }
};

/// One shard group; members[0] is the configured primary, the rest are
/// replicas (failover may elect a different member at runtime, but the
/// map itself never changes).
struct ShardSpec {
  std::vector<BackendAddress> members;
};

struct ClusterMap {
  std::vector<ShardSpec> shards;
  std::size_t size() const { return shards.size(); }
};

/// Parses the --shards flag grammar above.  False with `error` set on a
/// malformed spec (empty group, missing port, port out of range, or a
/// duplicate address — one node serving two positions is always a
/// misconfiguration).
bool parse_cluster_map(const std::string& spec, ClusterMap& map,
                       std::string& error);

/// splitmix64 finalizer: the bijective mixer routing keys pass through so
/// structured keys (fingerprints with their constant version byte,
/// small-integer route_keys) spread over the whole 64-bit space.
inline std::uint64_t route_mix(std::uint64_t key) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The owning shard for a routing key: top 16 mixed bits range-mapped
/// onto [0, nshards).  nshards must be in [1, 65536].
inline std::size_t shard_for_key(std::uint64_t key, std::size_t nshards) {
  return static_cast<std::size_t>((route_mix(key) >> 48) * nshards >> 16);
}

/// Canonical routing key for an inline (stateless) provision/release:
/// absorbs the demand pairs order-independently of nothing — pairs are
/// hashed in request order, which is deterministic because the router
/// hashes the same parsed request a single node would execute.
std::uint64_t pairs_route_key(const std::vector<DemandPair>& pairs);

// ---- id splice ----------------------------------------------------------

/// Removes the top-level "id" member from one request line, leaving valid
/// JSON (the adjacent comma goes with it).  Lines without a top-level id
/// come back unchanged.  The scan is a real top-level walk — strings,
/// escapes, and nested containers are skipped, so {"plan":{"id":1}} keeps
/// its inner member.
std::string strip_top_level_id(std::string_view line);

/// The forwarded line: `stripped` (a strip_top_level_id result) with
/// `"id":<internal_id>` injected as the first member.
std::string compose_with_id(std::string_view stripped,
                            std::int64_t internal_id);

/// Splices the client's id back into a backend response.  `response`
/// must begin with {"id":<int|null> (every service response does); the
/// prefix through the id value is replaced with the client's id — or
/// null when the client sent none — and the remaining bytes pass through
/// untouched.  Returns false (leaving `out` empty) on a malformed prefix.
bool restore_response_id(std::string_view response, bool client_has_id,
                         std::int64_t client_id, std::string& out);

}  // namespace cluster
}  // namespace tgroom
