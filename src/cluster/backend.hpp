// One pooled, pipelined connection from the router to one backend node.
//
// The router multiplexes every client's traffic for a given backend over
// a single persistent TCP connection: each forwarded line carries a
// channel-assigned internal id, and because backends answer in completion
// order (the event loop's workers deliver as they finish), responses are
// matched back to callers through an id-keyed in-flight table, not a
// FIFO.  call() is synchronous for the caller — a router worker blocks on
// its waiter's condition variable — but many workers pipeline through the
// same socket concurrently, which is what makes one connection enough.
//
// Connection lifecycle is owned by a single reader thread: it connects
// (with exponential backoff), reads response lines, completes waiters,
// and on any error fails every in-flight call with kConnectionLost and
// reconnects.  Senders never open or close the socket; they take a short
// lease on the fd (a counter under the state mutex) so the reader can
// shutdown() a dead socket immediately — unblocking any sender mid-
// write() — but close() the descriptor only after the last lease drops,
// which is what makes fd reuse races impossible.
//
// Failure taxonomy (the router's retry policy is built on it):
//   kNoConnection    nothing sent — always safe to retry anywhere
//   kSendFailed      write() failed mid-line: the backend can never see a
//                    complete line, so the request did not execute —
//                    safe to retry
//   kConnectionLost  the full line was sent, the connection died before
//                    the response — the request MAY have executed;
//                    idempotent reads retry, mutations must not
//   kTimedOut        same ambiguity as kConnectionLost, by deadline
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "cluster/cluster_map.hpp"

namespace tgroom::cluster {

struct BackendChannelConfig {
  int connect_timeout_ms = 1000;
  int backoff_initial_ms = 50;  // reconnect backoff: initial...
  int backoff_max_ms = 1000;    // ...doubling up to this cap
};

class BackendChannel {
 public:
  enum class SendStatus {
    kOk,
    kNoConnection,
    kSendFailed,
    kConnectionLost,
    kTimedOut,
  };
  static const char* status_name(SendStatus s);

  BackendChannel(BackendAddress address, BackendChannelConfig config);
  ~BackendChannel();

  BackendChannel(const BackendChannel&) = delete;
  BackendChannel& operator=(const BackendChannel&) = delete;

  /// Starts the reader thread (which owns connecting).  Call once.
  void start();
  /// Fails in-flight calls, closes the socket, joins the reader.
  void stop();

  /// One round trip: `stripped` is a request line WITHOUT a top-level id
  /// (strip_top_level_id output, no trailing newline); the channel
  /// injects its internal id, sends, and waits up to `timeout_ms` for
  /// the matching response line, returned in `response` verbatim (the
  /// caller splices the client id back).  Thread-safe; concurrent calls
  /// pipeline over the one socket.
  SendStatus call(std::string_view stripped, int timeout_ms,
                  std::string& response);

  /// Best-effort fire-and-forget (the shutdown fan-out): sends and
  /// returns without waiting for a response.
  void send_one_way(std::string_view stripped);

  bool connected() const;
  const BackendAddress& address() const { return address_; }

  /// Waits until connected or `timeout_ms` elapsed (startup validation).
  bool wait_connected(int timeout_ms);

 private:
  struct Waiter {
    std::string response;
    bool done = false;
    bool lost = false;
    std::condition_variable cv;
  };

  void reader_loop();
  int connect_once();
  /// Registers a waiter (when `waiter` is non-null) and writes the line.
  SendStatus send_line(const std::string& line, std::int64_t id,
                       Waiter* waiter);
  void fail_inflight_locked();

  const BackendAddress address_;
  const BackendChannelConfig config_;

  mutable std::mutex state_mutex_;  // guards everything below
  std::condition_variable state_cv_;
  int fd_ = -1;
  bool stopping_ = false;
  int senders_inflight_ = 0;  // fd leases held by senders mid-write
  std::int64_t next_id_ = 1;
  std::map<std::int64_t, Waiter*> waiters_;

  std::mutex write_mutex_;  // serializes whole-line writes on the socket

  std::thread reader_;
};

}  // namespace tgroom::cluster
