// Tiny command-line flag parser used by examples and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unrecognized google-benchmark flags (--benchmark_*) are passed through so
// bench binaries can mix figure-table printing with timing runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tgroom {

class CliArgs {
 public:
  /// Parses argv; flags must start with `--`.  Positional arguments are
  /// collected in order.  `--benchmark_*` flags are recorded but also kept
  /// in `passthrough()` for benchmark::Initialize.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Parse a comma-separated integer list flag, e.g. --k=4,8,16.
  std::vector<int> get_int_list(const std::string& name,
                                std::vector<int> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tgroom
