#include "util/rng.hpp"

namespace tgroom {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro requires a nonzero state; splitmix64 of anything is nonzero with
  // overwhelming probability, but guard the degenerate case anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  if (bound <= 1) return 0;
  while (true) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TGROOM_CHECK_MSG(lo <= hi, "uniform_int: empty range");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  std::uint64_t draw = (span == 0) ? (*this)() : below(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng Rng::split() noexcept {
  Rng child(0);
  child.s_ = {(*this)(), (*this)(), (*this)(), (*this)()};
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace tgroom
