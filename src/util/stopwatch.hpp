// Monotonic wall-clock stopwatch for coarse experiment timing (the fine
// timing in bench binaries uses google-benchmark; this is for sweep
// bookkeeping and examples).
#pragma once

#include <chrono>

namespace tgroom {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tgroom
