// Minimal CSV writer for exporting experiment series (one file per figure)
// so results can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace tgroom {

/// Streams rows to a CSV file; fields containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws CheckError on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);

  /// Flush and close; also called by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
};

}  // namespace tgroom
