// Plain-text table rendering for experiment reports.
//
// Bench binaries print paper figures as aligned text tables (rows = grooming
// factors, columns = algorithms) so the reproduction series can be eyeballed
// and diffed against the paper's plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tgroom {

/// A simple column-aligned text table with a title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string num(double value, int precision = 1);
  static std::string num(long long value);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a rule under the header.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tgroom
