// Monotonic arena allocation for the grooming hot path.
//
// A MonotonicArena hands out bump-pointer allocations from large blocks
// and frees nothing until reset().  reset() rewinds the cursor but KEEPS
// the blocks, so a warm arena serves any number of allocate()/reset()
// cycles without touching the heap — the allocation cost of a request
// becomes a pointer increment, and the arena's footprint is bounded by
// the high-water mark of a single request.
//
// ArenaAllocator<T> adapts an arena to the std allocator interface so
// standard containers (ArenaVector<T>) can live on it.  deallocate() is a
// no-op — memory is reclaimed wholesale by reset().  Contract: containers
// backed by an arena must be emptied (or destroyed) before the arena is
// reset; GroomingWorkspace::reset() sequences this correctly.
//
// Thread-safety: an arena belongs to one thread at a time, exactly like
// the workspace that owns it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace tgroom {

class MonotonicArena {
 public:
  /// `first_block` is the size of the first block allocated on demand;
  /// later blocks double (geometric growth caps the block count).
  explicit MonotonicArena(std::size_t first_block = 1u << 12)
      : next_block_size_(first_block < 64 ? 64 : first_block) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two).  Falls
  /// back to a new block — the only heap touch — when the current block
  /// is exhausted.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::uintptr_t cursor = (cursor_ + (align - 1)) & ~(align - 1);
    if (cursor + bytes > limit_) {
      add_block(bytes + align);
      cursor = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = cursor + bytes;
    used_ += bytes;
    return reinterpret_cast<void*>(cursor);
  }

  /// Rewinds to empty but keeps every block for reuse.  All memory handed
  /// out so far becomes invalid.
  void reset() {
    if (used_ > peak_) peak_ = used_;
    block_index_ = 0;
    used_ = 0;
    if (blocks_.empty()) {
      cursor_ = limit_ = 0;
    } else {
      set_current(0);
    }
  }

  /// Bytes held across all blocks (the reusable footprint).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes handed out since the last reset (excludes alignment padding).
  std::size_t bytes_used() const { return used_; }

  /// High-water mark of bytes_used() over the arena's whole lifetime (all
  /// reset() cycles included) — the memory-bound observable exported into
  /// service stats and bench JSON.  Maintained only at reset()/query time,
  /// so allocate() stays a pure bump.
  std::size_t peak_bytes() const { return used_ > peak_ ? used_ : peak_; }

  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void set_current(std::size_t index) {
    block_index_ = index;
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_[index].data.get());
    limit_ = cursor_ + blocks_[index].size;
  }

  void add_block(std::size_t at_least) {
    // Advance through retained blocks first; allocate only past the end.
    while (!blocks_.empty() && block_index_ + 1 < blocks_.size()) {
      set_current(block_index_ + 1);
      if (limit_ - cursor_ >= at_least) return;
    }
    std::size_t size = next_block_size_;
    while (size < at_least) size *= 2;
    next_block_size_ = size * 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    set_current(blocks_.size() - 1);
  }

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::size_t next_block_size_;
};

/// std-compatible allocator over a MonotonicArena.  A default-constructed
/// ArenaAllocator (arena == nullptr) falls back to the heap so containers
/// remain movable/default-constructible in contexts with no arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(MonotonicArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t count) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(count * sizeof(T)));
    }
    return static_cast<T*>(arena_->allocate(count * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, std::size_t) {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory is reclaimed wholesale by MonotonicArena::reset().
  }

  MonotonicArena* arena() const { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator<U>& b) {
    return a.arena() == b.arena();
  }

 private:
  MonotonicArena* arena_ = nullptr;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace tgroom
