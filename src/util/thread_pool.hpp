// Fixed-size worker pool for fanning out independent experiment cells
// (seed × parameter combinations) across cores.
//
// Following CP.4 ("think in terms of tasks") the interface is task-based:
// submit() returns a std::future, and parallel_for_index() runs an index
// range with automatic partitioning.  With `workers == 0` everything runs
// inline on the calling thread, which keeps single-core CI deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tgroom {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means run tasks inline in submit().
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Schedule a task; the returned future reports completion/value.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (threads_.empty()) {
      (*task)();
      return result;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, count); blocks until all complete.  Exceptions
  /// from tasks are rethrown (first one wins).  The range is dispatched in
  /// contiguous chunks (one queued task per chunk, not per index) so fine-
  /// grained loops do not pay a std::function dispatch per element.
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& fn);

  /// Runs fn(begin, end) over a contiguous chunking of [0, count); blocks
  /// until all complete.  Lets callers keep per-chunk state (scratch
  /// buffers, workspaces) alive across the indices a chunk covers.  With no
  /// workers the whole range is one inline chunk.
  void parallel_for_chunks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace tgroom
