#include "util/csv.hpp"

#include "util/check.hpp"

namespace tgroom {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  TGROOM_CHECK_MSG(out_.good(), "cannot open CSV file: " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace tgroom
