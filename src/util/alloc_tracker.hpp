// Thread-local heap-allocation counting.
//
// The zero-allocation request path (DESIGN.md §11) is a measurable
// invariant, not a code-review claim: the library replaces the global
// operator new/delete with forwarding versions that bump a thread-local
// counter (alloc_tracker.cpp, compiled in when TGROOM_ALLOC_TRACKER is
// on, the default).  The counter costs one thread-local increment per
// allocation — noise against malloc itself — and lets both tests and the
// service observe exactly how many heap allocations a request performed:
//
//   AllocCounter before = thread_alloc_counter();
//   ... work ...
//   long long allocs = thread_alloc_counter().count - before.count;
//
// When the tracker is compiled out the counter reads 0 forever, so all
// consumers degrade to reporting zeros rather than breaking.
#pragma once

namespace tgroom {

struct AllocCounter {
  long long count = 0;  // operator new calls on this thread
  long long bytes = 0;  // bytes requested by those calls
};

/// This thread's cumulative allocation counter since thread start.
AllocCounter thread_alloc_counter();

/// True when the counting operator new/delete replacement is linked in.
bool alloc_tracking_enabled();

}  // namespace tgroom
