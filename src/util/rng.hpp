// Deterministic, seedable random number generation for reproducible
// experiments.  All randomized algorithms and generators in tgroom take a
// `Rng&` so that a single seed fixes an entire experiment run.
//
// The engine is xoshiro256** (public domain, Blackman & Vigna), seeded via
// splitmix64 so that small consecutive seeds give decorrelated streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace tgroom {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine with a std::uniform_random_bit_generator interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound), bound > 0.  Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    using std::swap;
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child stream (for per-task RNGs in sweeps).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace tgroom
