// Minimal JSON support for the service protocol and machine-readable CLI
// output.
//
// Two halves, both dependency-free:
//  - JsonWriter: a streaming writer with automatic comma/nesting handling
//    and full string escaping.  Key order is exactly the call order, so
//    serialized output is byte-deterministic — the service's parity tests
//    and the bench harness diff response lines directly.
//  - JsonValue / parse_json: a recursive-descent parser for the subset the
//    protocol needs (objects, arrays, strings, numbers, bools, null).
//    Objects preserve member order in a flat vector; lookups are linear,
//    which is the right trade for request-sized documents.
//
// Numbers are held as double: integers are exact up to 2^53, far beyond
// any node count, seed, or counter the protocol carries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace tgroom {

/// Appends a JSON-escaped copy of `text` (no surrounding quotes) to `out`.
void json_escape(std::string_view text, std::string& out);

class JsonWriter {
 public:
  /// Rewinds to an empty document but keeps every buffer's capacity, so a
  /// reused writer serializes without heap allocation once warm.  The
  /// service workers keep one writer per thread and clear() it between
  /// responses.
  void clear() {
    out_.clear();
    stack_.clear();
    first_.clear();
    key_pending_ = false;
  }

  /// Pre-grows the output buffer (capacity survives clear()).
  void reserve(std::size_t bytes) { out_.reserve(bytes); }

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool b);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(long long v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& null();

  /// Injects pre-serialized JSON verbatim in value position (comma and
  /// key handling as for value()).  The caller vouches that `json` is one
  /// complete, well-formed JSON value — the cluster router uses this to
  /// embed backend response payloads without a parse/re-serialize round
  /// trip, keeping forwarded bytes exactly the backend's bytes.
  JsonWriter& raw(std::string_view json) {
    comma();
    out_.append(json);
    return *this;
  }

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The document built so far; valid once every container is closed.
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  std::vector<char> stack_;  // 'o' / 'a' per open container
  std::vector<bool> first_;  // first element pending in each container
  bool key_pending_ = false;
};

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // member order kept

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view name) const;

  /// The number as an integer; throws CheckError unless the value is a
  /// number that is integral and representable.
  std::int64_t as_int() const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws CheckError with a position-annotated message on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace tgroom
