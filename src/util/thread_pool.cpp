#include "util/thread_pool.hpp"

namespace tgroom {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([i, &fn] { fn(i); }));
  }
  // get() propagates the first stored exception; remaining futures are
  // still joined by their destructors.
  for (auto& f : futures) f.get();
}

}  // namespace tgroom
