#include "util/thread_pool.hpp"

namespace tgroom {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(count, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    fn(0, count);
    return;
  }
  // 4 chunks per worker balances load without drowning the queue.
  const std::size_t chunks = std::min(count, threads_.size() * 4);
  const std::size_t base = count / chunks;
  const std::size_t remainder = count % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < remainder ? 1 : 0);
    futures.push_back(submit([begin, end, &fn] { fn(begin, end); }));
    begin = end;
  }
  // Wait for EVERY chunk before rethrowing: a packaged_task future's
  // destructor does not block, so bailing out at the first exceptional
  // get() would return while later chunks still run — and still
  // reference `fn`, which dies with this frame.  (That dangling call was
  // a real intermittent failure: a follow-up batch's fn at the same
  // stack address received the dead batch's index ranges.)
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

}  // namespace tgroom
