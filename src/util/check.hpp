// Lightweight contract checking for the tgroom library.
//
// TGROOM_CHECK is always on (cheap invariants guarding public API misuse);
// TGROOM_DCHECK compiles away in release builds and is used for internal
// algorithm invariants that are expensive to evaluate.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tgroom {

/// Thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace tgroom

#define TGROOM_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::tgroom::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define TGROOM_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::tgroom::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifndef NDEBUG
#define TGROOM_DCHECK(expr) TGROOM_CHECK(expr)
#else
#define TGROOM_DCHECK(expr) \
  do {                      \
  } while (0)
#endif
