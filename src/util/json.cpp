#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tgroom {

void json_escape(std::string_view text, std::string& out) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::comma() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already placed the comma
  }
  if (!stack_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  stack_.push_back('o');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  TGROOM_CHECK_MSG(!stack_.empty() && stack_.back() == 'o',
                   "end_object outside an object");
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  stack_.push_back('a');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  TGROOM_CHECK_MSG(!stack_.empty() && stack_.back() == 'a',
                   "end_array outside an array");
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  TGROOM_CHECK_MSG(!stack_.empty() && stack_.back() == 'o',
                   "key outside an object");
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
  out_ += '"';
  json_escape(name, out_);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  json_escape(text, out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  comma();
  // snprintf into a stack buffer: no std::string temporary, so number-heavy
  // documents (partition arrays) serialize allocation-free once the output
  // buffer is warm.
  char buf[24];
  int len = std::snprintf(buf, sizeof buf, "%lld", v);
  out_.append(buf, static_cast<std::size_t>(len));
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  int len = std::snprintf(buf, sizeof buf, "%llu",
                          static_cast<unsigned long long>(v));
  out_.append(buf, static_cast<std::size_t>(len));
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (std::nearbyint(v) == v && std::abs(v) < 1e15) {
    // Integral doubles print without an exponent so counters stay readable.
    out_ += std::to_string(static_cast<long long>(v));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ += buf;
  }
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::find(std::string_view name) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [key, value] : object) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::int64_t JsonValue::as_int() const {
  TGROOM_CHECK_MSG(type == Type::kNumber, "JSON value is not a number");
  TGROOM_CHECK_MSG(std::nearbyint(number) == number &&
                       std::abs(number) <= 9.007199254740992e15,
                   "JSON number is not an exact integer");
  return static_cast<std::int64_t>(number);
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw CheckError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    char c = peek();
    JsonValue value;
    switch (c) {
      case '{': {
        value.type = JsonValue::Type::kObject;
        expect('{');
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return value;
        }
        while (true) {
          skip_ws();
          if (peek() != '"') fail("expected object key string");
          std::string key = parse_string_body();
          skip_ws();
          expect(':');
          value.object.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return value;
        }
      }
      case '[': {
        value.type = JsonValue::Type::kArray;
        expect('[');
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return value;
        }
        while (true) {
          value.array.push_back(parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return value;
        }
      }
      case '"':
        value.type = JsonValue::Type::kString;
        value.string = parse_string_body();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return value;
      default:
        return parse_number();
    }
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out); break;
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  void append_codepoint(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: must pair with \uDC00..\uDFFF.
      if (!consume_literal("\\u")) fail("unpaired surrogate");
      unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    // strtod is lenient about leading zeros; JSON is not ("01" is invalid).
    std::size_t digits = token[0] == '-' ? 1 : 0;
    if (token.size() > digits + 1 && token[digits] == '0' &&
        token[digits + 1] >= '0' && token[digits + 1] <= '9') {
      fail("malformed number (leading zero)");
    }
    char* end = nullptr;
    double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = number;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace tgroom
