#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace tgroom {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  TGROOM_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::num(long long value) { return std::to_string(value); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "  ") << std::setw(static_cast<int>(width[i]))
         << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i)
      total += width[i] + (i == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace tgroom
