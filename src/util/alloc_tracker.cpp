#include "util/alloc_tracker.hpp"

#include <cstdlib>
#include <new>

// Global operator new/delete replacement that counts allocations into a
// thread-local counter and forwards to malloc/free.  Replacing these is
// sanctioned by [replacement.functions]; ASan/TSan/UBSan intercept the
// underlying malloc/free, so the sanitizer jobs keep full coverage.
//
// The replacement lives in the same translation unit as
// thread_alloc_counter() on purpose: any binary that reads the counter
// pulls this object out of the static library, which makes the linker
// prefer these definitions over libstdc++'s.

namespace tgroom {
namespace {

thread_local AllocCounter t_counter;

inline void* counted_alloc(std::size_t size) noexcept {
  ++t_counter.count;
  t_counter.bytes += static_cast<long long>(size);
  return std::malloc(size == 0 ? 1 : size);
}

inline void* counted_aligned_alloc(std::size_t size,
                                   std::size_t align) noexcept {
  ++t_counter.count;
  t_counter.bytes += static_cast<long long>(size);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  return p;
}

}  // namespace

AllocCounter thread_alloc_counter() { return t_counter; }

bool alloc_tracking_enabled() {
#if defined(TGROOM_ALLOC_TRACKER)
  return true;
#else
  return false;
#endif
}

}  // namespace tgroom

#if defined(TGROOM_ALLOC_TRACKER)

void* operator new(std::size_t size) {
  void* p = tgroom::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = tgroom::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tgroom::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tgroom::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = tgroom::counted_aligned_alloc(size,
                                          static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = tgroom::counted_aligned_alloc(size,
                                          static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return tgroom::counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return tgroom::counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // TGROOM_ALLOC_TRACKER
