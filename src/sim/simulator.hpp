// Event-driven dynamic-traffic simulator over a live GroomingPlan.
//
// Plays a DemandScript against one plan: arrivals go through
// extend_plan_incremental (with trial-and-rollback admission when the
// wavelength budget is finite), departures through release_demands with
// local repair, and the Proposition 2 fragment bound
// (plan_within_prop2_bound) is asserted after every mutation.  The
// simulation outcome is a pure function of (script, options) — wall-clock
// latency collection is opt-in and reported separately precisely so the
// deterministic part stays byte-reproducible.
//
// run_load_sweep mirrors the blocking-rate-vs-load methodology of the OTN
// grooming simulators: each load point simulates an independent script
// (per-point seed derived from the base seed by index) and the sweep
// reports where the blocking rate first crosses a threshold.  Points fan
// out across a ThreadPool into index-addressed slots, so the result is
// bit-identical for any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/traffic.hpp"

namespace tgroom {

struct SimOptions {
  int k = 16;                // grooming factor of the simulated ring
  int max_wavelengths = 0;   // 0 = unbounded (nothing ever blocks)
  bool repair = true;        // local repair on departures
  bool check_bound = true;   // assert Prop-2 fragment bound per event
  bool collect_latency = false;  // wall-clock percentiles (nondeterministic)
};

/// Percentiles over one operation class, in microseconds.
struct LatencySummary {
  long long count = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct SimResult {
  std::size_t arrivals = 0;
  std::size_t accepted = 0;
  std::size_t blocked = 0;
  std::size_t departures = 0;       // releases actually performed
  double blocking_rate = 0.0;       // blocked / arrivals

  // SADM churn: installs at arrivals, removals at departures.
  long long sadms_added = 0;
  long long sadms_removed = 0;
  long long repair_moves = 0;
  long long freed_wavelengths = 0;

  long long peak_sadms = 0;
  int peak_wavelengths = 0;
  long long final_sadms = 0;
  int final_wavelengths = 0;
  std::size_t residual_demands = 0;  // circuits still up at script end

  bool bound_ok = true;  // Prop-2 fragment bound held after every event

  // Populated only with options.collect_latency.
  LatencySummary arrival_latency;
  LatencySummary release_latency;
};

/// Runs the whole script against a fresh plan.  Deterministic up to the
/// latency summaries (see header comment).
SimResult simulate_script(const DemandScript& script,
                          const SimOptions& options);

struct LoadSweepOptions {
  TrafficConfig traffic;  // base config; `load` and `seed` set per point
  SimOptions sim;
  double load_start = 0.5;
  double load_step = 0.5;
  int load_steps = 8;
  double blocking_threshold = 0.01;  // sweep "saturation" criterion
  std::size_t workers = 0;           // 0 = inline
};

struct LoadPoint {
  double load = 0.0;
  SimResult result;
};

struct LoadSweepResult {
  std::vector<LoadPoint> points;
  int threshold_index = -1;  // first point at/over the threshold, or -1
};

/// Per-point seed: decorrelated stream derived from (base_seed, index),
/// so every load point is an independent but reproducible script.
std::uint64_t load_point_seed(std::uint64_t base_seed, std::size_t index);

LoadSweepResult run_load_sweep(const LoadSweepOptions& options);

}  // namespace tgroom
