#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace tgroom {

const char* traffic_model_name(TrafficModel model) {
  switch (model) {
    case TrafficModel::kPoisson: return "poisson";
    case TrafficModel::kDiurnal: return "diurnal";
    case TrafficModel::kFlash: return "flash";
  }
  return "?";
}

std::optional<TrafficModel> parse_traffic_model(const std::string& name) {
  if (name == "poisson") return TrafficModel::kPoisson;
  if (name == "diurnal") return TrafficModel::kDiurnal;
  if (name == "flash") return TrafficModel::kFlash;
  return std::nullopt;
}

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Exponential variate with the given mean; 1 - u keeps the argument of
/// log strictly positive (uniform01 can return 0, never 1).
double exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform01());
}

double peak_rate(const TrafficConfig& config) {
  const double base = config.arrival_rate * config.load;
  if (config.model == TrafficModel::kFlash) {
    return base * std::max(1.0, config.flash_multiplier);
  }
  return base;
}

}  // namespace

double traffic_rate_at(const TrafficConfig& config, double t) {
  const double base = config.arrival_rate * config.load;
  switch (config.model) {
    case TrafficModel::kPoisson:
      return base;
    case TrafficModel::kDiurnal: {
      // Swings between base and (1 - depth) * base over one period.
      const double phase =
          0.5 + 0.5 * std::sin(kTwoPi * t / config.diurnal_period);
      return base * (1.0 - config.diurnal_depth * phase);
    }
    case TrafficModel::kFlash: {
      const bool in_burst = t >= config.flash_start &&
                            t < config.flash_start + config.flash_duration;
      return in_burst ? base * config.flash_multiplier : base;
    }
  }
  return base;
}

DemandScript generate_script(const TrafficConfig& config) {
  TGROOM_CHECK_MSG(config.ring_size >= 2,
                   "traffic needs at least two ring nodes");
  TGROOM_CHECK_MSG(config.arrival_rate > 0.0 && config.load > 0.0,
                   "arrival rate and load must be positive");
  TGROOM_CHECK_MSG(config.mean_holding > 0.0,
                   "mean holding time must be positive");
  TGROOM_CHECK_MSG(config.diurnal_depth >= 0.0 && config.diurnal_depth < 1.0,
                   "diurnal depth must be in [0, 1)");
  TGROOM_CHECK_MSG(config.diurnal_period > 0.0 && config.flash_duration >= 0.0,
                   "traffic periods must be positive");
  TGROOM_CHECK_MSG(config.flash_multiplier >= 1.0,
                   "flash multiplier must be >= 1");

  DemandScript script;
  script.config = config;
  script.demands.reserve(config.arrivals);
  script.arrival_time.reserve(config.arrivals);
  script.departure_time.reserve(config.arrivals);

  Rng rng(config.seed);
  const double peak = peak_rate(config);
  double t = 0.0;
  while (script.demands.size() < config.arrivals) {
    // Lewis–Shedler thinning: candidate points at the peak rate, each
    // kept with probability rate(t) / peak.
    t += exponential(rng, 1.0 / peak);
    if (rng.uniform01() * peak > traffic_rate_at(config, t)) continue;
    const auto a = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(config.ring_size)));
    auto b = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(config.ring_size - 1)));
    if (b >= a) ++b;  // uniform over nodes != a
    script.demands.push_back(DemandPair{std::min(a, b), std::max(a, b)});
    script.arrival_time.push_back(t);
    script.departure_time.push_back(t + exponential(rng, config.mean_holding));
  }

  script.events.reserve(2 * config.arrivals);
  for (std::uint32_t i = 0; i < script.demands.size(); ++i) {
    script.events.push_back(
        SimEvent{script.arrival_time[i], SimEvent::Kind::kArrival, i});
    script.events.push_back(
        SimEvent{script.departure_time[i], SimEvent::Kind::kDeparture, i});
  }
  std::sort(script.events.begin(), script.events.end(),
            [](const SimEvent& x, const SimEvent& y) {
              return std::tie(x.time, x.kind, x.demand) <
                     std::tie(y.time, y.kind, y.demand);
            });
  return script;
}

}  // namespace tgroom
