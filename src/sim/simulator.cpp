#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "grooming/incremental.hpp"
#include "grooming/repair.hpp"
#include "util/thread_pool.hpp"

namespace tgroom {

namespace {

LatencySummary summarize_latency(std::vector<double>& samples_us) {
  LatencySummary summary;
  summary.count = static_cast<long long>(samples_us.size());
  if (samples_us.empty()) return summary;
  std::sort(samples_us.begin(), samples_us.end());
  auto percentile = [&](double p) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(samples_us.size())));
    return samples_us[std::min(samples_us.size() - 1,
                               rank == 0 ? 0 : rank - 1)];
  };
  summary.p50_us = percentile(0.50);
  summary.p90_us = percentile(0.90);
  summary.p99_us = percentile(0.99);
  summary.max_us = samples_us.back();
  return summary;
}

}  // namespace

SimResult simulate_script(const DemandScript& script,
                          const SimOptions& options) {
  TGROOM_CHECK(options.k >= 1);
  TGROOM_CHECK(options.max_wavelengths >= 0);

  SimResult result;
  GroomingPlan plan;
  plan.ring_size = script.config.ring_size;
  plan.grooming_factor = options.k;

  // Demands blocked at arrival have no circuit to release at departure.
  std::vector<bool> active(script.demands.size(), false);
  std::vector<double> arrival_us;
  std::vector<double> release_us;
  if (options.collect_latency) {
    arrival_us.reserve(script.demands.size());
    release_us.reserve(script.demands.size());
  }
  using Clock = std::chrono::steady_clock;

  std::vector<DemandPair> one(1);
  for (const SimEvent& event : script.events) {
    const DemandPair pair = script.demands[event.demand];
    one[0] = pair;
    if (event.kind == SimEvent::Kind::kArrival) {
      ++result.arrivals;
      const Clock::time_point start =
          options.collect_latency ? Clock::now() : Clock::time_point{};
      const IncrementalStats stats = extend_plan_incremental(plan, one);
      // Admission control: extend appends exactly one circuit, so a plan
      // that now exceeds the wavelength budget rolls back with pop_back
      // and the demand is blocked.
      if (options.max_wavelengths > 0 &&
          plan.wavelength_count() > options.max_wavelengths) {
        plan.pairs.pop_back();
        ++result.blocked;
        active[event.demand] = false;
      } else {
        ++result.accepted;
        active[event.demand] = true;
        result.sadms_added += stats.new_sadms;
      }
      if (options.collect_latency) {
        arrival_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
      }
    } else {
      if (!active[event.demand]) continue;
      active[event.demand] = false;
      const Clock::time_point start =
          options.collect_latency ? Clock::now() : Clock::time_point{};
      const ReleaseStats stats =
          release_demands(plan, one, options.repair);
      if (options.collect_latency) {
        release_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
      }
      ++result.departures;
      result.sadms_removed += stats.sadms_removed;
      result.repair_moves += stats.repair_moves;
      result.freed_wavelengths += stats.freed_wavelengths;
    }
    const long long sadms = plan_sadm_count(plan);
    result.peak_sadms = std::max(result.peak_sadms, sadms);
    result.peak_wavelengths =
        std::max(result.peak_wavelengths, plan.wavelength_count());
    if (options.check_bound && !plan_within_prop2_bound(plan)) {
      result.bound_ok = false;
    }
  }

  result.blocking_rate =
      result.arrivals == 0
          ? 0.0
          : static_cast<double>(result.blocked) /
                static_cast<double>(result.arrivals);
  result.final_sadms = plan_sadm_count(plan);
  result.final_wavelengths = plan.wavelength_count();
  result.residual_demands = plan.pairs.size();
  result.arrival_latency = summarize_latency(arrival_us);
  result.release_latency = summarize_latency(release_us);
  return result;
}

std::uint64_t load_point_seed(std::uint64_t base_seed, std::size_t index) {
  std::uint64_t state =
      base_seed ^ (0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(index) + 1));
  return splitmix64(state);
}

LoadSweepResult run_load_sweep(const LoadSweepOptions& options) {
  TGROOM_CHECK_MSG(options.load_steps >= 1,
                   "load sweep needs at least one step");
  TGROOM_CHECK_MSG(options.load_start > 0.0 && options.load_step > 0.0,
                   "load grid must be positive and increasing");

  LoadSweepResult sweep;
  sweep.points.resize(static_cast<std::size_t>(options.load_steps));
  // Each point is an independent cell written to its own slot — the
  // BatchGroomer determinism pattern — so worker count cannot affect the
  // output bytes.
  ThreadPool pool(options.workers);
  pool.parallel_for_index(
      sweep.points.size(), [&](std::size_t i) {
        TrafficConfig config = options.traffic;
        config.load =
            options.load_start + options.load_step * static_cast<double>(i);
        config.seed = load_point_seed(options.traffic.seed, i);
        LoadPoint& point = sweep.points[i];
        point.load = config.load;
        point.result = simulate_script(generate_script(config), options.sim);
      });
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    if (sweep.points[i].result.blocking_rate >=
        options.blocking_threshold) {
      sweep.threshold_index = static_cast<int>(i);
      break;
    }
  }
  return sweep;
}

}  // namespace tgroom
