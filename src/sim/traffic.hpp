// Seeded dynamic-traffic generation for the event-driven simulator.
//
// A DemandScript is the whole workload decided up front: every demand's
// endpoints, arrival time, and departure time, plus the merged event
// timeline.  Pre-generating (rather than drawing randomness during the
// simulation) keeps the simulator itself deterministic and lets a load
// sweep re-run the identical script family at different load multipliers.
//
// Three arrival processes, all driven by one Rng stream via Lewis–Shedler
// thinning against the model's peak rate:
//  - poisson: homogeneous rate `arrival_rate * load`.
//  - diurnal: sinusoidal modulation between (1 - depth) and 1 of the base
//    rate with period `diurnal_period` (the day/night cycle).
//  - flash:   base rate, except `flash_multiplier` x inside the window
//    [flash_start, flash_start + flash_duration) (the flash crowd).
// Holding times are exponential with mean `mean_holding`; endpoints are
// uniform distinct ring nodes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "grooming/demand.hpp"
#include "util/rng.hpp"

namespace tgroom {

enum class TrafficModel { kPoisson, kDiurnal, kFlash };

const char* traffic_model_name(TrafficModel model);
/// Parses "poisson" / "diurnal" / "flash"; nullopt otherwise.
std::optional<TrafficModel> parse_traffic_model(const std::string& name);

struct TrafficConfig {
  TrafficModel model = TrafficModel::kPoisson;
  NodeId ring_size = 16;
  double arrival_rate = 4.0;     // base arrivals per unit time
  double mean_holding = 4.0;     // mean circuit lifetime
  double load = 1.0;             // multiplier on arrival_rate (sweep axis)
  double diurnal_depth = 0.5;    // trough rate = (1 - depth) * base
  double diurnal_period = 64.0;  // one day, in sim time units
  double flash_start = 32.0;
  double flash_duration = 8.0;
  double flash_multiplier = 4.0;
  std::size_t arrivals = 1000;   // demands to generate
  std::uint64_t seed = 1;
};

struct SimEvent {
  // Departures sort before arrivals at equal timestamps so capacity is
  // freed before it is asked for; the demand index breaks remaining ties
  // for a total deterministic order.
  enum class Kind : std::uint8_t { kDeparture = 0, kArrival = 1 };

  double time = 0.0;
  Kind kind = Kind::kArrival;
  std::uint32_t demand = 0;  // index into DemandScript::demands
};

struct DemandScript {
  TrafficConfig config;
  std::vector<DemandPair> demands;      // demand i's endpoints
  std::vector<double> arrival_time;     // per demand
  std::vector<double> departure_time;   // per demand
  std::vector<SimEvent> events;         // merged, totally ordered
};

/// The instantaneous arrival rate at time `t` under `config` (exposed for
/// tests pinning the modulation shapes).
double traffic_rate_at(const TrafficConfig& config, double t);

/// Generates the full script for `config`.  Deterministic: a pure
/// function of the config (including the seed).
DemandScript generate_script(const TrafficConfig& config);

}  // namespace tgroom
