// Follower side of WAL-shipping replication.
//
// A ReplicationClient owns one background thread that tails a primary's
// WAL over the NDJSON service protocol and applies every shipped record
// to the local GroomingService (live table + this node's own durable
// store, byte-for-byte — see GroomingService::apply_replication_record).
// The session shape:
//
//   repl_handshake   version check (store + fingerprint format) and
//                    start-seq negotiation.  `mode:"snapshot"` means the
//                    records after our cursor were compacted away on the
//                    primary, so we bootstrap from repl_snapshot first.
//   repl_snapshot    full held-plan table; installed wholesale via
//                    GroomingService::install_replication_snapshot.
//   repl_fetch ...   the steady state: batched records, each fetch also
//                    acking our applied seq back to the primary.  When
//                    caught up the client polls at `poll_interval_ms`.
//
// Failure policy: connection loss and transient errors reconnect with
// exponential backoff (the counter is visible in stats); a format-version
// rejection from the handshake is *fatal* — retrying cannot fix it, so
// the client parks with `fatal() == true` and the error in last_error().
// Apply-side corruption (decode failure, stream gap) is fatal too:
// re-streaming diverged history would silently fork the store.
//
// stop_and_drain() is the promotion path: the thread finishes applying
// the batch it already holds, then exits; nothing is left half-applied.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "service/server.hpp"

namespace tgroom {

struct ReplicationClientConfig {
  std::string primary;          // "host:port" of the primary's TCP service
  std::string follower_id;      // sent as `follower` in repl_fetch so the
                                // primary can report per-replica ack lag
  std::size_t batch_records = 512;  // max_records per repl_fetch
  int poll_interval_ms = 20;    // caught-up re-poll cadence
  int backoff_initial_ms = 100;  // reconnect backoff: initial...
  int backoff_max_ms = 2000;     // ...doubling up to this cap
  int io_timeout_ms = 5000;      // per-recv socket timeout
};

class ReplicationClient : public ReplicaLink {
 public:
  ReplicationClient(GroomingService& service, ReplicationClientConfig config);
  ~ReplicationClient() override;

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Starts the tailing thread.  Call once, after the service's store is
  /// open and set_replica_link() points at this object.
  void start();

  // ReplicaLink -----------------------------------------------------------
  void stop_and_drain() override;
  void write_status_json(JsonWriter& w) const override;
  std::uint64_t applied_seq() const override {
    return applied_.load(std::memory_order_relaxed);
  }
  std::uint64_t primary_last_seq() const override {
    return primary_last_.load(std::memory_order_relaxed);
  }

  /// True once the client has given up permanently (version mismatch or
  /// apply-side corruption).  The error is in last_error().
  bool fatal() const { return fatal_.load(std::memory_order_relaxed); }
  std::string last_error() const;

 private:
  void run();
  /// One connected session: handshake, optional snapshot bootstrap, fetch
  /// loop.  Returns true on clean stop, false to reconnect (or park, when
  /// fatal_ got set).
  bool stream_session(int fd);
  bool handshake(int fd, std::string& mode);
  bool bootstrap_snapshot(int fd);
  bool send_line(int fd, const std::string& line);
  bool recv_line(int fd, std::string& line);
  int connect_to_primary(std::string& error);
  /// Sleeps up to `ms`, waking early on stop; returns stop_requested.
  bool wait_stop(int ms);
  void note_error(const std::string& message);

  GroomingService& service_;
  ReplicationClientConfig config_;
  std::thread thread_;

  std::atomic<bool> stop_{false};  // always *set* under mutex_, so a
                                   // wait_stop waiter cannot miss the wakeup
  std::atomic<bool> fatal_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> primary_last_{0};
  std::atomic<long long> reconnects_{0};
  std::atomic<long long> snapshot_bootstraps_{0};

  mutable std::mutex mutex_;  // guards last_error_, fd_, and the
                              // stop_/stop_cv_ handoff
  int fd_ = -1;  // live socket, for shutdown() on stop; store/close (run)
                 // and load/shutdown (stop_and_drain) all under mutex_ so
                 // a recycled descriptor can never be shut down
  std::condition_variable stop_cv_;
  std::string last_error_;
  std::string recv_buffer_;  // carry-over bytes between recv_line calls
};

}  // namespace tgroom
