#include "replication/replica.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <utility>

#include "graph/fingerprint.hpp"
#include "service/protocol.hpp"
#include "store/format.hpp"
#include "store/snapshot.hpp"
#include "util/json.hpp"

namespace tgroom {

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool hex_decode(std::string_view hex, std::string& out) {
  if (hex.size() % 2 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

/// The "message" (or "error" code, or a fallback) out of a failed
/// response — for last_error reporting.
std::string error_text(const JsonValue& resp) {
  if (const JsonValue* message = resp.find("message");
      message != nullptr && message->is_string()) {
    return message->string;
  }
  if (const JsonValue* code = resp.find("error");
      code != nullptr && code->is_string()) {
    return code->string;
  }
  return "primary returned an error";
}

bool response_ok(const JsonValue& resp) {
  const JsonValue* ok = resp.find("ok");
  return ok != nullptr && ok->is_bool() && ok->boolean;
}

}  // namespace

ReplicationClient::ReplicationClient(GroomingService& service,
                                     ReplicationClientConfig config)
    : service_(service), config_(std::move(config)) {
  applied_.store(service_.applied_seq(), std::memory_order_relaxed);
}

ReplicationClient::~ReplicationClient() { stop_and_drain(); }

void ReplicationClient::start() {
  thread_ = std::thread([this] { run(); });
}

void ReplicationClient::stop_and_drain() {
  {
    // stop_ is set under mutex_ so a wait_stop waiter that has checked
    // the predicate but not yet blocked cannot miss the notification;
    // the socket shutdown shares the lock with run()'s store/close of
    // fd_ so it can never hit a recycled descriptor.
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
    // A recv blocked on a quiet primary returns immediately once the
    // socket is shut down; records already received keep applying — the
    // fetch loop only checks the stop flag between batches.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string ReplicationClient::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

void ReplicationClient::note_error(const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_error_ = message;
}

void ReplicationClient::write_status_json(JsonWriter& w) const {
  const std::uint64_t applied = applied_.load(std::memory_order_relaxed);
  const std::uint64_t primary_last =
      primary_last_.load(std::memory_order_relaxed);
  w.kv("connected", connected_.load(std::memory_order_relaxed));
  w.kv("applied_seq", applied);
  w.kv("primary_last_seq", primary_last);
  w.kv("lag", primary_last > applied ? primary_last - applied : 0);
  w.kv("reconnects", reconnects_.load(std::memory_order_relaxed));
  w.kv("snapshot_bootstraps",
       snapshot_bootstraps_.load(std::memory_order_relaxed));
  if (fatal_.load(std::memory_order_relaxed)) w.kv("fatal", true);
  const std::string error = last_error();
  if (!error.empty()) w.kv("last_error", error);
}

bool ReplicationClient::wait_stop(int ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  stop_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                    [this] { return stop_.load(std::memory_order_acquire); });
  return stop_.load(std::memory_order_acquire);
}

int ReplicationClient::connect_to_primary(std::string& error) {
  const std::size_t colon = config_.primary.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == config_.primary.size()) {
    error = "bad primary address '" + config_.primary + "' (want host:port)";
    return -1;
  }
  const std::string host = config_.primary.substr(0, colon);
  const std::string port = config_.primary.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints,
                                   &result);
      rc != 0) {
    error = "resolve " + config_.primary + ": " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    error = "connect " + config_.primary + ": " + std::strerror(errno);
    return -1;
  }
  timeval timeout{};
  timeout.tv_sec = config_.io_timeout_ms / 1000;
  timeout.tv_usec = (config_.io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool ReplicationClient::send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReplicationClient::recv_line(int fd, std::string& line) {
  char chunk[65536];
  while (true) {
    const std::size_t newline = recv_buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(recv_buffer_, 0, newline);
      recv_buffer_.erase(0, newline + 1);
      return true;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout (EAGAIN) or hard error: reconnect
    }
    recv_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void ReplicationClient::run() {
  int backoff = config_.backoff_initial_ms;
  while (!stop_.load(std::memory_order_acquire)) {
    std::string error;
    const int fd = connect_to_primary(error);
    if (fd < 0) {
      note_error(error);
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (wait_stop(backoff)) break;
      backoff = std::min(backoff * 2, config_.backoff_max_ms);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      fd_ = fd;
    }
    connected_.store(true, std::memory_order_relaxed);
    recv_buffer_.clear();
    backoff = config_.backoff_initial_ms;

    const bool clean = stream_session(fd);

    connected_.store(false, std::memory_order_relaxed);
    {
      // Close under the same lock stop_and_drain shuts down under: once
      // fd_ is -1 and the descriptor closed, no late shutdown() can
      // reach a recycled fd.
      std::lock_guard<std::mutex> lock(mutex_);
      fd_ = -1;
      ::close(fd);
    }
    if (clean || fatal_.load(std::memory_order_relaxed)) break;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    if (wait_stop(backoff)) break;
    backoff = std::min(backoff * 2, config_.backoff_max_ms);
  }
  connected_.store(false, std::memory_order_relaxed);
}

bool ReplicationClient::handshake(int fd, std::string& mode) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "repl_handshake");
  w.kv("store_version", static_cast<long long>(kStoreFormatVersion));
  w.kv("fingerprint_version",
       static_cast<long long>(kFingerprintFormatVersion));
  const std::uint64_t start = applied_.load(std::memory_order_relaxed);
  w.kv("start_seq", start);
  std::uint32_t crc = 0;
  if (start > 0 && service_.wal_crc_at(start, crc)) {
    // History-identity probe: lets the primary verify its record at our
    // cursor is byte-identical to ours.  A mismatch (diverged history
    // after a failover) comes back as mode "snapshot", wiping our fork
    // instead of silently appending past it.
    w.kv("last_crc", static_cast<long long>(crc));
  }
  w.end_object();
  if (!send_line(fd, w.str())) return false;
  std::string line;
  if (!recv_line(fd, line)) return false;
  const JsonValue resp = parse_json(line);
  if (!response_ok(resp)) {
    note_error("handshake rejected: " + error_text(resp));
    if (const JsonValue* code = resp.find("error");
        code != nullptr && code->is_string() &&
        code->string == "store_incompatible") {
      // Retrying cannot change either side's format version: park.
      fatal_.store(true, std::memory_order_relaxed);
    }
    return false;
  }
  if (const JsonValue* last = resp.find("last_seq");
      last != nullptr && last->is_number()) {
    primary_last_.store(static_cast<std::uint64_t>(last->as_int()),
                        std::memory_order_relaxed);
  }
  const JsonValue* m = resp.find("mode");
  if (m == nullptr || !m->is_string()) {
    note_error("handshake response missing mode");
    return false;
  }
  mode = m->string;
  return true;
}

bool ReplicationClient::bootstrap_snapshot(int fd) {
  if (!send_line(fd, "{\"op\":\"repl_snapshot\"}")) return false;
  std::string line;
  if (!recv_line(fd, line)) return false;
  const JsonValue resp = parse_json(line);
  if (!response_ok(resp)) {
    note_error("snapshot bootstrap rejected: " + error_text(resp));
    return false;
  }
  const JsonValue* last = resp.find("last_seq");
  const JsonValue* next_id = resp.find("next_plan_id");
  const JsonValue* plans = resp.find("plans");
  if (last == nullptr || !last->is_number() || next_id == nullptr ||
      !next_id->is_number() || plans == nullptr || !plans->is_array()) {
    note_error("malformed snapshot response");
    return false;
  }
  SnapshotData snap;
  snap.last_seq = static_cast<std::uint64_t>(last->as_int());
  snap.next_plan_id = next_id->as_int();
  snap.plans.reserve(plans->array.size());
  for (const JsonValue& entry : plans->array) {
    if (!entry.is_array() || entry.array.size() != 2 ||
        !entry.array[0].is_number()) {
      note_error("malformed snapshot plan entry");
      return false;
    }
    snap.plans.emplace_back(entry.array[0].as_int(),
                            plan_from_json(entry.array[1]));
  }
  service_.install_replication_snapshot(snap);
  applied_.store(snap.last_seq, std::memory_order_relaxed);
  snapshot_bootstraps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ReplicationClient::stream_session(int fd) {
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      std::string mode;
      if (!handshake(fd, mode)) {
        return stop_.load(std::memory_order_acquire);
      }
      if (mode == "snapshot") {
        if (!bootstrap_snapshot(fd)) {
          return stop_.load(std::memory_order_acquire);
        }
      }

      // The steady state: fetch, apply the whole batch, ack, repeat.
      // `compacted` breaks back out to the handshake (our cursor fell off
      // the primary's WAL — it will hand us a snapshot).
      while (true) {
        const std::uint64_t from = applied_.load(std::memory_order_relaxed);
        JsonWriter w;
        w.begin_object();
        w.kv("op", "repl_fetch");
        if (!config_.follower_id.empty()) {
          w.kv("follower", config_.follower_id);
        }
        w.kv("from_seq", from);
        w.kv("ack_seq", from);
        w.kv("max_records", static_cast<long long>(config_.batch_records));
        w.end_object();
        if (!send_line(fd, w.str())) {
          return stop_.load(std::memory_order_acquire);
        }
        std::string line;
        if (!recv_line(fd, line)) {
          return stop_.load(std::memory_order_acquire);
        }
        const JsonValue resp = parse_json(line);
        if (!response_ok(resp)) {
          note_error("fetch rejected: " + error_text(resp));
          return stop_.load(std::memory_order_acquire);
        }
        if (const JsonValue* last = resp.find("last_seq");
            last != nullptr && last->is_number()) {
          primary_last_.store(static_cast<std::uint64_t>(last->as_int()),
                              std::memory_order_relaxed);
        }
        const JsonValue* records = resp.find("records");
        if (records == nullptr || !records->is_array()) {
          note_error("malformed fetch response");
          return stop_.load(std::memory_order_acquire);
        }
        // Drain semantics: everything in this batch is applied even if
        // stop_and_drain() fires mid-loop — the stop check sits between
        // batches, never between a record and its neighbor.
        std::string body;
        for (const JsonValue& entry : records->array) {
          if (!entry.is_array() || entry.array.size() != 3 ||
              !entry.array[0].is_number() || !entry.array[1].is_number() ||
              !entry.array[2].is_string() ||
              !hex_decode(entry.array[2].string, body)) {
            throw CheckError("malformed shipped record");
          }
          const std::uint64_t seq =
              static_cast<std::uint64_t>(entry.array[0].as_int());
          const std::int64_t type = entry.array[1].as_int();
          if (type < 1 || type > 3) {
            throw CheckError("shipped record " + std::to_string(seq) +
                             " has unknown type " + std::to_string(type));
          }
          service_.apply_replication_record(
              seq, static_cast<WalRecordType>(type), body);
          applied_.store(seq, std::memory_order_relaxed);
        }
        const JsonValue* compacted = resp.find("compacted");
        if (compacted != nullptr && compacted->is_bool() &&
            compacted->boolean) {
          break;  // back to the handshake for a snapshot bootstrap
        }
        if (stop_.load(std::memory_order_acquire)) return true;
        if (records->array.empty()) {
          // Caught up (or the primary is mid-append): poll gently.
          if (wait_stop(config_.poll_interval_ms)) return true;
        }
      }
    }
    return true;
  } catch (const std::exception& e) {
    // Decode failures, stream gaps, local store errors: re-streaming the
    // same bytes would fail the same way — park instead of crash-looping.
    note_error(std::string("replication apply failed: ") + e.what());
    fatal_.store(true, std::memory_order_relaxed);
    return false;
  }
}

}  // namespace tgroom
