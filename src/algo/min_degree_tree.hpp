// Fürer–Raghavachari-style local search for a spanning tree of small
// maximum degree [6 in the paper].
//
// The exact FR algorithm guarantees Δ(T) <= Δ* + 1; this implementation is
// the standard local-search core (swap a non-tree edge for a tree edge
// incident to a maximum-degree node on the induced cycle) iterated to a
// fixed point or an iteration cap.  It is used as an ablation policy for
// SpanT_Euler, where a low-degree tree tends to leave G\T with fewer
// components.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"

namespace tgroom {

/// Spanning forest whose maximum degree is locally minimal under single
/// edge swaps.
std::vector<EdgeId> min_max_degree_forest(const Graph& g);
std::vector<EdgeId> min_max_degree_forest(const CsrGraph& g);

/// Maximum degree of the forest given by `tree_edges`.
NodeId forest_max_degree(const Graph& g, const std::vector<EdgeId>& tree_edges);
NodeId forest_max_degree(const CsrGraph& g,
                         const std::vector<EdgeId>& tree_edges);

}  // namespace tgroom
