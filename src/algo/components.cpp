#include "algo/components.hpp"

#include <algorithm>
#include <queue>

namespace tgroom {

std::vector<std::vector<NodeId>> Components::groups() const {
  std::vector<std::vector<NodeId>> out(static_cast<std::size_t>(count));
  for (NodeId v = 0; v < static_cast<NodeId>(label.size()); ++v) {
    out[static_cast<std::size_t>(label[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  return out;
}

namespace {
template <typename G>
Components bfs_components(const G& g, const std::vector<char>* mask) {
  const auto n = static_cast<std::size_t>(g.node_count());
  Components comp;
  comp.label.assign(n, -1);
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (comp.label[static_cast<std::size_t>(start)] != -1) continue;
    int id = comp.count++;
    comp.label[static_cast<std::size_t>(start)] = id;
    frontier.push(start);
    while (!frontier.empty()) {
      NodeId v = frontier.front();
      frontier.pop();
      for (const Incidence& inc : g.incident(v)) {
        if (mask && !(*mask)[static_cast<std::size_t>(inc.edge)]) continue;
        if (comp.label[static_cast<std::size_t>(inc.neighbor)] != -1) continue;
        comp.label[static_cast<std::size_t>(inc.neighbor)] = id;
        frontier.push(inc.neighbor);
      }
    }
  }
  return comp;
}
}  // namespace

Components connected_components(const Graph& g) {
  return bfs_components(g, nullptr);
}

Components connected_components(const CsrGraph& g) {
  return bfs_components(g, nullptr);
}

Components connected_components_masked(const Graph& g,
                                       const std::vector<char>& edge_mask) {
  TGROOM_CHECK(edge_mask.size() == static_cast<std::size_t>(g.edge_count()));
  return bfs_components(g, &edge_mask);
}

Components connected_components_masked(const CsrGraph& g,
                                       const std::vector<char>& edge_mask) {
  TGROOM_CHECK(edge_mask.size() == static_cast<std::size_t>(g.edge_count()));
  return bfs_components(g, &edge_mask);
}

bool is_connected(const Graph& g) {
  return connected_components(g).count <= 1;
}

namespace {
// Unit-capacity max flow via BFS augmentation (Edmonds–Karp).  Each
// undirected edge becomes a pair of directed arcs with capacity 1.
struct UnitFlow {
  struct Arc {
    NodeId to;
    int cap;
  };
  std::vector<Arc> arcs;
  std::vector<std::vector<int>> out;  // per node: arc indices

  explicit UnitFlow(const Graph& g)
      : out(static_cast<std::size_t>(g.node_count())) {
    for (const Edge& e : g.edges()) {
      add_arc(e.u, e.v);
      add_arc(e.v, e.u);
    }
  }

  void add_arc(NodeId from, NodeId to) {
    out[static_cast<std::size_t>(from)].push_back(
        static_cast<int>(arcs.size()));
    arcs.push_back({to, 1});
  }

  int max_flow(NodeId s, NodeId t) {
    int flow = 0;
    const auto n = out.size();
    while (true) {
      std::vector<int> via(n, -1);  // arc used to reach node
      std::vector<char> seen(n, 0);
      std::queue<NodeId> q;
      q.push(s);
      seen[static_cast<std::size_t>(s)] = 1;
      while (!q.empty() && !seen[static_cast<std::size_t>(t)]) {
        NodeId v = q.front();
        q.pop();
        for (int ai : out[static_cast<std::size_t>(v)]) {
          const Arc& a = arcs[static_cast<std::size_t>(ai)];
          if (a.cap == 0 || seen[static_cast<std::size_t>(a.to)]) continue;
          seen[static_cast<std::size_t>(a.to)] = 1;
          via[static_cast<std::size_t>(a.to)] = ai;
          q.push(a.to);
        }
      }
      if (!seen[static_cast<std::size_t>(t)]) break;
      for (NodeId v = t; v != s;) {
        int ai = via[static_cast<std::size_t>(v)];
        arcs[static_cast<std::size_t>(ai)].cap -= 1;
        arcs[static_cast<std::size_t>(ai ^ 1)].cap += 1;
        // paired arcs are adjacent because add_arc is called in pairs
        NodeId from = arcs[static_cast<std::size_t>(ai ^ 1)].to;
        v = from;
      }
      ++flow;
    }
    return flow;
  }
};
}  // namespace

int edge_connectivity(const Graph& g) {
  if (g.node_count() <= 1) return 0;
  if (!is_connected(g)) return 0;
  int best = g.edge_count();
  for (NodeId t = 1; t < g.node_count(); ++t) {
    UnitFlow flow(g);
    best = std::min(best, flow.max_flow(0, t));
    if (best == 0) break;
  }
  return best;
}

}  // namespace tgroom
