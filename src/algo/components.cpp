#include "algo/components.hpp"

#include <algorithm>
#include <queue>

namespace tgroom {

std::vector<std::vector<NodeId>> Components::groups() const {
  std::vector<std::vector<NodeId>> out(static_cast<std::size_t>(count));
  for (NodeId v = 0; v < static_cast<NodeId>(label.size()); ++v) {
    out[static_cast<std::size_t>(label[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  return out;
}

namespace {
// Flat-frontier BFS: an append-only array with a read head visits nodes in
// exactly the order the classic std::queue form does, but touches one
// contiguous buffer instead of a deque's chunk list.  Labelling (and so
// every caller's output) is unchanged.
template <typename G>
void bfs_components_into(const G& g, const std::vector<char>* mask,
                         Components& comp, MonotonicArena* arena) {
  const auto n = static_cast<std::size_t>(g.node_count());
  comp.count = 0;
  comp.label.assign(n, -1);
  ArenaVector<NodeId> frontier{ArenaAllocator<NodeId>(arena)};
  frontier.reserve(n);
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (comp.label[static_cast<std::size_t>(start)] != -1) continue;
    int id = comp.count++;
    comp.label[static_cast<std::size_t>(start)] = id;
    std::size_t head = frontier.size();
    frontier.push_back(start);
    while (head < frontier.size()) {
      NodeId v = frontier[head++];
      for (const Incidence& inc : g.incident(v)) {
        if (mask && !(*mask)[static_cast<std::size_t>(inc.edge)]) continue;
        if (comp.label[static_cast<std::size_t>(inc.neighbor)] != -1) continue;
        comp.label[static_cast<std::size_t>(inc.neighbor)] = id;
        frontier.push_back(inc.neighbor);
      }
    }
  }
}

template <typename G>
Components bfs_components(const G& g, const std::vector<char>* mask) {
  Components comp;
  bfs_components_into(g, mask, comp, nullptr);
  return comp;
}
}  // namespace

Components connected_components(const Graph& g) {
  return bfs_components(g, nullptr);
}

Components connected_components(const CsrGraph& g) {
  return bfs_components(g, nullptr);
}

void connected_components(const CsrGraph& g, Components& out,
                          MonotonicArena* arena) {
  bfs_components_into(g, nullptr, out, arena);
}

Components connected_components_masked(const Graph& g,
                                       const std::vector<char>& edge_mask) {
  TGROOM_CHECK(edge_mask.size() == static_cast<std::size_t>(g.edge_count()));
  return bfs_components(g, &edge_mask);
}

Components connected_components_masked(const CsrGraph& g,
                                       const std::vector<char>& edge_mask) {
  TGROOM_CHECK(edge_mask.size() == static_cast<std::size_t>(g.edge_count()));
  return bfs_components(g, &edge_mask);
}

ComponentSplit split_components(const CsrGraph& g, const Components& comp) {
  const auto n = static_cast<std::size_t>(g.node_count());
  const auto m = static_cast<std::size_t>(g.edge_count());
  const auto count = static_cast<std::size_t>(comp.count);
  TGROOM_CHECK(comp.label.size() == n);

  ComponentSplit split;
  split.node_offset.assign(count + 1, 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ++split.node_offset[static_cast<std::size_t>(
                            comp.label[static_cast<std::size_t>(v)]) +
                        1];
  }
  for (std::size_t c = 0; c < count; ++c) {
    split.node_offset[c + 1] += split.node_offset[c];
  }
  split.nodes.resize(n);
  split.local_node.assign(n, kInvalidNode);
  {
    std::vector<std::size_t> cursor(split.node_offset.begin(),
                                    split.node_offset.end() - 1);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      auto c = static_cast<std::size_t>(comp.label[static_cast<std::size_t>(v)]);
      split.local_node[static_cast<std::size_t>(v)] =
          static_cast<NodeId>(cursor[c] - split.node_offset[c]);
      split.nodes[cursor[c]++] = v;
    }
  }

  split.edge_offset.assign(count + 1, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    ++split.edge_offset[static_cast<std::size_t>(comp.label[static_cast<std::size_t>(
                            g.edge(e).u)]) +
                        1];
  }
  for (std::size_t c = 0; c < count; ++c) {
    split.edge_offset[c + 1] += split.edge_offset[c];
  }
  split.edges.resize(m);
  {
    std::vector<std::size_t> cursor(split.edge_offset.begin(),
                                    split.edge_offset.end() - 1);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      auto c = static_cast<std::size_t>(
          comp.label[static_cast<std::size_t>(g.edge(e).u)]);
      split.edges[cursor[c]++] = e;
    }
  }
  return split;
}

bool is_connected(const Graph& g) {
  return connected_components(g).count <= 1;
}

namespace {
// Unit-capacity max flow via BFS augmentation (Edmonds–Karp).  Each
// undirected edge becomes a pair of directed arcs with capacity 1.
struct UnitFlow {
  struct Arc {
    NodeId to;
    int cap;
  };
  std::vector<Arc> arcs;
  std::vector<std::vector<int>> out;  // per node: arc indices

  explicit UnitFlow(const Graph& g)
      : out(static_cast<std::size_t>(g.node_count())) {
    for (const Edge& e : g.edges()) {
      add_arc(e.u, e.v);
      add_arc(e.v, e.u);
    }
  }

  void add_arc(NodeId from, NodeId to) {
    out[static_cast<std::size_t>(from)].push_back(
        static_cast<int>(arcs.size()));
    arcs.push_back({to, 1});
  }

  int max_flow(NodeId s, NodeId t) {
    int flow = 0;
    const auto n = out.size();
    while (true) {
      std::vector<int> via(n, -1);  // arc used to reach node
      std::vector<char> seen(n, 0);
      std::queue<NodeId> q;
      q.push(s);
      seen[static_cast<std::size_t>(s)] = 1;
      while (!q.empty() && !seen[static_cast<std::size_t>(t)]) {
        NodeId v = q.front();
        q.pop();
        for (int ai : out[static_cast<std::size_t>(v)]) {
          const Arc& a = arcs[static_cast<std::size_t>(ai)];
          if (a.cap == 0 || seen[static_cast<std::size_t>(a.to)]) continue;
          seen[static_cast<std::size_t>(a.to)] = 1;
          via[static_cast<std::size_t>(a.to)] = ai;
          q.push(a.to);
        }
      }
      if (!seen[static_cast<std::size_t>(t)]) break;
      for (NodeId v = t; v != s;) {
        int ai = via[static_cast<std::size_t>(v)];
        arcs[static_cast<std::size_t>(ai)].cap -= 1;
        arcs[static_cast<std::size_t>(ai ^ 1)].cap += 1;
        // paired arcs are adjacent because add_arc is called in pairs
        NodeId from = arcs[static_cast<std::size_t>(ai ^ 1)].to;
        v = from;
      }
      ++flow;
    }
    return flow;
  }
};
}  // namespace

int edge_connectivity(const Graph& g) {
  if (g.node_count() <= 1) return 0;
  if (!is_connected(g)) return 0;
  int best = g.edge_count();
  for (NodeId t = 1; t < g.node_count(); ++t) {
    UnitFlow flow(g);
    best = std::min(best, flow.max_flow(0, t));
    if (best == 0) break;
  }
  return best;
}

}  // namespace tgroom
