#include "algo/edge_coloring.hpp"

#include <algorithm>

#include "graph/properties.hpp"

namespace tgroom {

namespace {

class MisraGries {
 public:
  explicit MisraGries(const Graph& g)
      : g_(g), n_(static_cast<std::size_t>(g.node_count())) {
    NodeId delta = 0;
    for (NodeId v = 0; v < g.node_count(); ++v)
      delta = std::max(delta, g.real_degree(v));
    palette_ = static_cast<std::size_t>(delta) + 1;
    at_.assign(n_ * palette_, kInvalidEdge);
    color_.assign(static_cast<std::size_t>(g.edge_count()), -1);
  }

  EdgeColoring run() {
    for (EdgeId e = 0; e < g_.edge_count(); ++e) {
      if (g_.edge(e).is_virtual) continue;
      color_one(e);
    }
    EdgeColoring out;
    out.color = color_;
    int max_color = -1;
    for (EdgeId e = 0; e < g_.edge_count(); ++e)
      max_color = std::max(max_color, color_[static_cast<std::size_t>(e)]);
    out.color_count = max_color + 1;
    return out;
  }

 private:
  EdgeId& at(NodeId v, int c) {
    return at_[static_cast<std::size_t>(v) * palette_ +
               static_cast<std::size_t>(c)];
  }

  int free_color(NodeId v) {
    for (int c = 0; c < static_cast<int>(palette_); ++c) {
      if (at(v, c) == kInvalidEdge) return c;
    }
    TGROOM_CHECK_MSG(false, "no free color; degree exceeds palette");
    return -1;
  }

  void set_color(EdgeId e, int c) {
    const Edge& edge = g_.edge(e);
    TGROOM_DCHECK(at(edge.u, c) == kInvalidEdge);
    TGROOM_DCHECK(at(edge.v, c) == kInvalidEdge);
    at(edge.u, c) = e;
    at(edge.v, c) = e;
    color_[static_cast<std::size_t>(e)] = c;
  }

  void unset_color(EdgeId e) {
    int c = color_[static_cast<std::size_t>(e)];
    if (c < 0) return;
    const Edge& edge = g_.edge(e);
    at(edge.u, c) = kInvalidEdge;
    at(edge.v, c) = kInvalidEdge;
    color_[static_cast<std::size_t>(e)] = -1;
  }

  /// Swap colors c and d along the maximal alternating path starting at u
  /// with a d-colored edge.  No-op when u has no d edge.
  void invert_cd_path(NodeId u, int c, int d) {
    std::vector<EdgeId> path;
    NodeId x = u;
    int want = d;
    while (at(x, want) != kInvalidEdge) {
      EdgeId e = at(x, want);
      path.push_back(e);
      x = g_.edge(e).other(x);
      want = (want == d) ? c : d;
    }
    for (EdgeId e : path) unset_color(e);
    int assign = d;
    for (EdgeId e : path) {
      set_color(e, assign == d ? c : d);
      assign = (assign == d) ? c : d;
    }
  }

  bool prefix_is_fan(const std::vector<NodeId>& fan, std::size_t j) {
    for (std::size_t i = 1; i <= j; ++i) {
      EdgeId e = fan_edge_[i];
      int ci = color_[static_cast<std::size_t>(e)];
      if (ci < 0) return false;
      if (at(fan[i - 1], ci) != kInvalidEdge) return false;
    }
    return true;
  }

  void rotate_and_finish(std::size_t j, int d) {
    // Shift: edge(u, fan[i]) takes the old color of edge(u, fan[i+1]).
    std::vector<int> old_color(j + 1, -1);
    for (std::size_t i = 1; i <= j; ++i) {
      old_color[i] = color_[static_cast<std::size_t>(fan_edge_[i])];
      unset_color(fan_edge_[i]);
    }
    for (std::size_t i = 0; i + 1 <= j; ++i) {
      set_color(fan_edge_[i], old_color[i + 1]);
    }
    set_color(fan_edge_[j], d);
  }

  void color_one(EdgeId e0) {
    const Edge& edge0 = g_.edge(e0);
    NodeId u = edge0.u;
    NodeId v = edge0.v;

    std::vector<NodeId> fan{v};
    fan_edge_.assign(1, e0);
    std::vector<char> in_fan(n_, 0);
    in_fan[static_cast<std::size_t>(v)] = 1;

    while (true) {
      NodeId back = fan.back();
      int d = free_color(back);
      if (at(u, d) == kInvalidEdge) {
        // d free at both ends of the rotated fan: rotate the whole fan.
        rotate_and_finish(fan.size() - 1, d);
        return;
      }
      EdgeId ed = at(u, d);
      NodeId w = g_.edge(ed).other(u);
      if (!in_fan[static_cast<std::size_t>(w)]) {
        fan.push_back(w);
        fan_edge_.push_back(ed);
        in_fan[static_cast<std::size_t>(w)] = 1;
        continue;
      }
      // d is free on fan.back() but used at u on an edge inside the fan:
      // invert the cd_u path, then rotate the longest prefix that is still
      // a fan and whose tip has d free (Misra–Gries guarantees one exists).
      int c = free_color(u);
      invert_cd_path(u, c, d);
      TGROOM_DCHECK(at(u, d) == kInvalidEdge);
      for (std::size_t j = fan.size(); j-- > 0;) {
        if (at(fan[j], d) != kInvalidEdge) continue;
        if (!prefix_is_fan(fan, j)) continue;
        rotate_and_finish(j, d);
        return;
      }
      TGROOM_CHECK_MSG(false, "Misra–Gries invariant violated: no prefix fan");
    }
  }

  const Graph& g_;
  std::size_t n_;
  std::size_t palette_;
  std::vector<EdgeId> at_;
  std::vector<int> color_;
  std::vector<EdgeId> fan_edge_;  // fan_edge_[i] joins u and fan[i]
};

}  // namespace

EdgeColoring misra_gries_edge_coloring(const Graph& g) {
  TGROOM_CHECK_MSG(is_simple(g),
                   "edge coloring requires a simple graph (real edges)");
  return MisraGries(g).run();
}

bool is_proper_edge_coloring(const Graph& g, const EdgeColoring& coloring) {
  if (coloring.color.size() != static_cast<std::size_t>(g.edge_count()))
    return false;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::vector<char> seen(static_cast<std::size_t>(coloring.color_count), 0);
    for (const Incidence& inc : g.incident(v)) {
      if (g.edge(inc.edge).is_virtual) continue;
      int c = coloring.color[static_cast<std::size_t>(inc.edge)];
      if (c < 0 || c >= coloring.color_count) return false;
      if (seen[static_cast<std::size_t>(c)]) return false;
      seen[static_cast<std::size_t>(c)] = 1;
    }
  }
  return true;
}

}  // namespace tgroom
