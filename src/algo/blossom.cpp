#include "algo/blossom.hpp"

#include <numeric>
#include <queue>

namespace tgroom {

namespace {

// Classic array-based blossom contraction (after Edmonds; formulation as in
// competitive-programming folklore, e.g. e-maxx).  All ids are node ids.
class BlossomSolver {
 public:
  explicit BlossomSolver(const Graph& g)
      : g_(g), n_(static_cast<std::size_t>(g.node_count())) {
    adj_.resize(n_);
    for (const Edge& e : g.edges()) {
      if (e.is_virtual) continue;
      if (e.u == e.v) continue;
      adj_[static_cast<std::size_t>(e.u)].push_back(e.v);
      adj_[static_cast<std::size_t>(e.v)].push_back(e.u);
    }
    match_.assign(n_, kInvalidNode);
  }

  std::vector<NodeId> solve() {
    // Greedy warm start halves the number of augmenting phases.
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (match_[static_cast<std::size_t>(v)] != kInvalidNode) continue;
      for (NodeId to : adj_[static_cast<std::size_t>(v)]) {
        if (match_[static_cast<std::size_t>(to)] == kInvalidNode) {
          match_[static_cast<std::size_t>(v)] = to;
          match_[static_cast<std::size_t>(to)] = v;
          break;
        }
      }
    }
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (match_[static_cast<std::size_t>(v)] != kInvalidNode) continue;
      NodeId exposed = find_augmenting_path(v);
      while (exposed != kInvalidNode) {
        NodeId prev = parent_[static_cast<std::size_t>(exposed)];
        NodeId prev_mate = match_[static_cast<std::size_t>(prev)];
        match_[static_cast<std::size_t>(exposed)] = prev;
        match_[static_cast<std::size_t>(prev)] = exposed;
        exposed = prev_mate;
      }
    }
    return match_;
  }

 private:
  NodeId lca(NodeId a, NodeId b) {
    std::vector<char> on_path(n_, 0);
    NodeId x = a;
    while (true) {
      x = base_[static_cast<std::size_t>(x)];
      on_path[static_cast<std::size_t>(x)] = 1;
      if (match_[static_cast<std::size_t>(x)] == kInvalidNode) break;
      x = parent_[static_cast<std::size_t>(
          match_[static_cast<std::size_t>(x)])];
    }
    NodeId y = b;
    while (true) {
      y = base_[static_cast<std::size_t>(y)];
      if (on_path[static_cast<std::size_t>(y)]) return y;
      y = parent_[static_cast<std::size_t>(
          match_[static_cast<std::size_t>(y)])];
    }
  }

  void mark_path(NodeId v, NodeId blossom_base, NodeId child) {
    while (base_[static_cast<std::size_t>(v)] != blossom_base) {
      NodeId mate = match_[static_cast<std::size_t>(v)];
      in_blossom_[static_cast<std::size_t>(
          base_[static_cast<std::size_t>(v)])] = 1;
      in_blossom_[static_cast<std::size_t>(
          base_[static_cast<std::size_t>(mate)])] = 1;
      parent_[static_cast<std::size_t>(v)] = child;
      child = mate;
      v = parent_[static_cast<std::size_t>(mate)];
    }
  }

  /// BFS from an exposed root; returns an exposed node whose parent chain
  /// encodes an augmenting path, or kInvalidNode.
  NodeId find_augmenting_path(NodeId root) {
    in_forest_.assign(n_, 0);
    parent_.assign(n_, kInvalidNode);
    base_.resize(n_);
    std::iota(base_.begin(), base_.end(), NodeId{0});

    in_forest_[static_cast<std::size_t>(root)] = 1;
    std::queue<NodeId> q;
    q.push(root);
    while (!q.empty()) {
      NodeId v = q.front();
      q.pop();
      for (NodeId to : adj_[static_cast<std::size_t>(v)]) {
        if (base_[static_cast<std::size_t>(v)] ==
                base_[static_cast<std::size_t>(to)] ||
            match_[static_cast<std::size_t>(v)] == to) {
          continue;
        }
        if (to == root ||
            (match_[static_cast<std::size_t>(to)] != kInvalidNode &&
             parent_[static_cast<std::size_t>(
                 match_[static_cast<std::size_t>(to)])] != kInvalidNode)) {
          // Odd cycle: contract the blossom.
          NodeId blossom_base = lca(v, to);
          in_blossom_.assign(n_, 0);
          mark_path(v, blossom_base, to);
          mark_path(to, blossom_base, v);
          for (NodeId i = 0; i < g_.node_count(); ++i) {
            if (in_blossom_[static_cast<std::size_t>(
                    base_[static_cast<std::size_t>(i)])]) {
              base_[static_cast<std::size_t>(i)] = blossom_base;
              if (!in_forest_[static_cast<std::size_t>(i)]) {
                in_forest_[static_cast<std::size_t>(i)] = 1;
                q.push(i);
              }
            }
          }
        } else if (parent_[static_cast<std::size_t>(to)] == kInvalidNode) {
          parent_[static_cast<std::size_t>(to)] = v;
          NodeId mate = match_[static_cast<std::size_t>(to)];
          if (mate == kInvalidNode) return to;  // augmenting path found
          in_forest_[static_cast<std::size_t>(mate)] = 1;
          q.push(mate);
        }
      }
    }
    return kInvalidNode;
  }

  const Graph& g_;
  std::size_t n_;
  std::vector<std::vector<NodeId>> adj_;
  std::vector<NodeId> match_, parent_, base_;
  std::vector<char> in_forest_, in_blossom_;
};

}  // namespace

std::vector<NodeId> maximum_matching_mates(const Graph& g) {
  return BlossomSolver(g).solve();
}

std::vector<EdgeId> maximum_matching(const Graph& g) {
  std::vector<NodeId> mates = maximum_matching_mates(g);
  std::vector<EdgeId> edges;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    NodeId mate = mates[static_cast<std::size_t>(v)];
    if (mate == kInvalidNode || mate < v) continue;
    // Find a real edge joining v and mate.
    EdgeId found = kInvalidEdge;
    for (const Incidence& inc : g.incident(v)) {
      if (inc.neighbor == mate && !g.edge(inc.edge).is_virtual) {
        found = inc.edge;
        break;
      }
    }
    TGROOM_CHECK(found != kInvalidEdge);
    edges.push_back(found);
  }
  return edges;
}

}  // namespace tgroom
