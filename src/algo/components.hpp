// Connected components over the whole graph or a masked edge subset.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"

namespace tgroom {

/// Component labelling: every node gets a label in [0, count); nodes with no
/// (masked) incident edge form singleton components.
struct Components {
  int count = 0;
  std::vector<int> label;  // size = node_count

  /// Node lists per component, in node order.
  std::vector<std::vector<NodeId>> groups() const;
};

/// Components using every edge of g (virtual included).
Components connected_components(const Graph& g);
Components connected_components(const CsrGraph& g);

/// Components using only edges where edge_mask[e] != 0.
Components connected_components_masked(const Graph& g,
                                       const std::vector<char>& edge_mask);
Components connected_components_masked(const CsrGraph& g,
                                       const std::vector<char>& edge_mask);

/// True when the whole node set is one component (n <= 1 counts as
/// connected; isolated nodes make a graph with n >= 2 disconnected).
bool is_connected(const Graph& g);

/// Edge connectivity λ(G) of a simple graph, by max-flow between a fixed
/// node and all others (O(n * m^2) worst case; intended for tests and small
/// instances, e.g. checking Jaeger's λ >= 4 condition from the paper).
int edge_connectivity(const Graph& g);

}  // namespace tgroom
