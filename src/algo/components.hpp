// Connected components over the whole graph or a masked edge subset.
#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "util/arena.hpp"

namespace tgroom {

/// Component labelling: every node gets a label in [0, count); nodes with no
/// (masked) incident edge form singleton components.
struct Components {
  int count = 0;
  std::vector<int> label;  // size = node_count

  /// Node lists per component, in node order.
  std::vector<std::vector<NodeId>> groups() const;
};

/// Components using every edge of g (virtual included).
Components connected_components(const Graph& g);
Components connected_components(const CsrGraph& g);

/// Components using only edges where edge_mask[e] != 0.
Components connected_components_masked(const Graph& g,
                                       const std::vector<char>& edge_mask);
Components connected_components_masked(const CsrGraph& g,
                                       const std::vector<char>& edge_mask);

/// In-place overload for the big-graph hot path: labels into `out`
/// (capacity retained across runs) with traversal scratch drawn from
/// `arena` (heap fallback when null).  Labelling is identical to
/// connected_components(g).
void connected_components(const CsrGraph& g, Components& out,
                          MonotonicArena* arena);

/// Flat component grouping for per-component task parallelism: the nodes
/// and edges of each component as contiguous ascending-id runs, plus each
/// node's rank within its component (the local id rebuild_subgraph uses).
/// An edge belongs to the component of its endpoints.
struct ComponentSplit {
  std::vector<std::size_t> node_offset;  // count + 1 entries
  std::vector<NodeId> nodes;             // grouped by component, ascending
  std::vector<std::size_t> edge_offset;  // count + 1 entries
  std::vector<EdgeId> edges;             // grouped by component, ascending
  std::vector<NodeId> local_node;        // size n: rank of v within its comp

  std::span<const NodeId> component_nodes(std::size_t c) const {
    return {nodes.data() + node_offset[c], node_offset[c + 1] - node_offset[c]};
  }
  std::span<const EdgeId> component_edges(std::size_t c) const {
    return {edges.data() + edge_offset[c], edge_offset[c + 1] - edge_offset[c]};
  }
};

/// Groups g's nodes and edges by the labelling in `comp` (one counting
/// sort each; O(n + m), deterministic).
ComponentSplit split_components(const CsrGraph& g, const Components& comp);

/// True when the whole node set is one component (n <= 1 counts as
/// connected; isolated nodes make a graph with n >= 2 disconnected).
bool is_connected(const Graph& g);

/// Edge connectivity λ(G) of a simple graph, by max-flow between a fixed
/// node and all others (O(n * m^2) worst case; intended for tests and small
/// instances, e.g. checking Jaeger's λ >= 4 condition from the paper).
int edge_connectivity(const Graph& g);

}  // namespace tgroom
