// Matching strategies.
//
// Regular_Euler (paper §4) needs a large matching of the r-regular traffic
// graph; Lemma 8 guarantees a maximum matching of size >= n*r/(2(r+1)).
// Three strategies are provided as an ablation axis (ABL-MATCH):
//   - kGreedy:     maximal matching by scanning edges (fast, no guarantee
//                  beyond maximality).
//   - kBlossom:    true maximum matching (Edmonds' blossom algorithm).
//   - kColorClass: largest color class of a (Δ+1)-edge-coloring, the
//                  constructive proof of Lemma 8 via Vizing's theorem.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace tgroom {

enum class MatchingPolicy { kGreedy, kBlossom, kColorClass };

const char* matching_policy_name(MatchingPolicy policy);

/// Edge ids of a matching under the chosen policy.  Virtual edges are
/// ignored.  `rng` randomizes the greedy scan order when provided.
std::vector<EdgeId> find_matching(const Graph& g, MatchingPolicy policy,
                                  Rng* rng = nullptr);

/// Maximal matching by greedy scan (edge id order, or shuffled with rng).
std::vector<EdgeId> greedy_matching(const Graph& g, Rng* rng = nullptr);

/// True when no two listed edges share an endpoint and none is virtual.
bool is_matching(const Graph& g, const std::vector<EdgeId>& edges);

/// Lemma 8 lower bound on maximum matching size for an r-regular graph on
/// n nodes: ceil(n*r / (2*(r+1))).
long long lemma8_matching_lower_bound(NodeId n, NodeId r);

}  // namespace tgroom
