#include "algo/min_degree_tree.hpp"

#include <algorithm>
#include <queue>

#include "algo/spanning_tree.hpp"

namespace tgroom {

namespace {

// Tree path between u and v inside the masked forest, as edge ids; empty if
// disconnected (cannot happen for endpoints of a non-tree edge).
template <typename G>
std::vector<EdgeId> tree_path(const G& g, const std::vector<char>& in_tree,
                              NodeId u, NodeId v) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<EdgeId> via(n, kInvalidEdge);
  std::vector<char> seen(n, 0);
  std::queue<NodeId> q;
  q.push(u);
  seen[static_cast<std::size_t>(u)] = 1;
  while (!q.empty() && !seen[static_cast<std::size_t>(v)]) {
    NodeId x = q.front();
    q.pop();
    for (const Incidence& inc : g.incident(x)) {
      if (!in_tree[static_cast<std::size_t>(inc.edge)]) continue;
      if (seen[static_cast<std::size_t>(inc.neighbor)]) continue;
      seen[static_cast<std::size_t>(inc.neighbor)] = 1;
      via[static_cast<std::size_t>(inc.neighbor)] = inc.edge;
      q.push(inc.neighbor);
    }
  }
  std::vector<EdgeId> path;
  if (!seen[static_cast<std::size_t>(v)]) return path;
  for (NodeId x = v; x != u;) {
    EdgeId e = via[static_cast<std::size_t>(x)];
    path.push_back(e);
    x = g.edge(e).other(x);
  }
  return path;
}

template <typename G>
NodeId forest_max_degree_impl(const G& g,
                              const std::vector<EdgeId>& tree_edges) {
  std::vector<NodeId> deg(static_cast<std::size_t>(g.node_count()), 0);
  NodeId best = 0;
  for (EdgeId e : tree_edges) {
    const Edge& edge = g.edge(e);
    best = std::max(best, ++deg[static_cast<std::size_t>(edge.u)]);
    best = std::max(best, ++deg[static_cast<std::size_t>(edge.v)]);
  }
  return best;
}

template <typename G>
std::vector<EdgeId> min_max_degree_forest_impl(const G& g) {
  std::vector<EdgeId> tree = spanning_forest(g, TreePolicy::kBfs);
  std::vector<char> in_tree(static_cast<std::size_t>(g.edge_count()), 0);
  std::vector<NodeId> deg(static_cast<std::size_t>(g.node_count()), 0);
  for (EdgeId e : tree) {
    in_tree[static_cast<std::size_t>(e)] = 1;
    ++deg[static_cast<std::size_t>(g.edge(e).u)];
    ++deg[static_cast<std::size_t>(g.edge(e).v)];
  }

  const int iteration_cap = 4 * g.edge_count() + 64;
  for (int iter = 0; iter < iteration_cap; ++iter) {
    NodeId delta = 0;
    for (NodeId v = 0; v < g.node_count(); ++v)
      delta = std::max(delta, deg[static_cast<std::size_t>(v)]);
    if (delta <= 2) break;  // a Hamiltonian path; cannot improve

    bool improved = false;
    for (EdgeId e = 0; e < g.edge_count() && !improved; ++e) {
      if (in_tree[static_cast<std::size_t>(e)]) continue;
      const Edge& cand = g.edge(e);
      // The swap must strictly help: both endpoints stay below Δ after +1.
      if (deg[static_cast<std::size_t>(cand.u)] + 1 >= delta) continue;
      if (deg[static_cast<std::size_t>(cand.v)] + 1 >= delta) continue;
      std::vector<EdgeId> cycle = tree_path(g, in_tree, cand.u, cand.v);
      for (EdgeId path_edge : cycle) {
        const Edge& pe = g.edge(path_edge);
        if (deg[static_cast<std::size_t>(pe.u)] == delta ||
            deg[static_cast<std::size_t>(pe.v)] == delta) {
          in_tree[static_cast<std::size_t>(path_edge)] = 0;
          --deg[static_cast<std::size_t>(pe.u)];
          --deg[static_cast<std::size_t>(pe.v)];
          in_tree[static_cast<std::size_t>(e)] = 1;
          ++deg[static_cast<std::size_t>(cand.u)];
          ++deg[static_cast<std::size_t>(cand.v)];
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }

  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (in_tree[static_cast<std::size_t>(e)]) out.push_back(e);
  }
  return out;
}

}  // namespace

NodeId forest_max_degree(const Graph& g,
                         const std::vector<EdgeId>& tree_edges) {
  return forest_max_degree_impl(g, tree_edges);
}

NodeId forest_max_degree(const CsrGraph& g,
                         const std::vector<EdgeId>& tree_edges) {
  return forest_max_degree_impl(g, tree_edges);
}

std::vector<EdgeId> min_max_degree_forest(const Graph& g) {
  return min_max_degree_forest_impl(g);
}

std::vector<EdgeId> min_max_degree_forest(const CsrGraph& g) {
  return min_max_degree_forest_impl(g);
}

}  // namespace tgroom
