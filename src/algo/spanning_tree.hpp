// Spanning forest construction with pluggable policies.
//
// The choice of spanning tree affects SpanT_Euler through c, the number of
// connected components of G\T (Theorem 5); the paper's concluding remarks
// call out tree selection as the lever for tightening the bound, so the
// policy is a first-class parameter and an ablation axis (ABL-TREE).
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace tgroom {

enum class TreePolicy {
  kBfs,           // breadth-first tree (shallow, high-degree roots)
  kDfs,           // depth-first tree (path-like, few leaves)
  kRandom,        // random-order Kruskal (uniformly scrambled edge order)
  kMinMaxDegree,  // Fürer–Raghavachari-style local search minimizing Δ(T)
};

const char* tree_policy_name(TreePolicy policy);

/// Returns tree edge ids of a spanning forest of g (n - #components edges).
/// `rng` is required for kRandom and optional elsewhere.  Both overloads
/// produce identical trees for the same input graph and seed.
std::vector<EdgeId> spanning_forest(const Graph& g, TreePolicy policy,
                                    Rng* rng = nullptr);
std::vector<EdgeId> spanning_forest(const CsrGraph& g, TreePolicy policy,
                                    Rng* rng = nullptr);

/// Same forest, written into `out` (cleared first, capacity retained) with
/// traversal scratch drawn from `arena` when given — the zero-allocation
/// form the grooming hot path uses.  kMinMaxDegree still allocates
/// internally (its local search is not on the hot path).
void spanning_forest(const CsrGraph& g, TreePolicy policy, Rng* rng,
                     std::vector<EdgeId>& out, MonotonicArena* arena);

/// True when `tree_edges` forms a spanning forest (acyclic, spans every
/// component).
bool is_spanning_forest(const Graph& g, const std::vector<EdgeId>& tree_edges);

}  // namespace tgroom
