#include "algo/matching.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "algo/blossom.hpp"
#include "algo/edge_coloring.hpp"

namespace tgroom {

const char* matching_policy_name(MatchingPolicy policy) {
  switch (policy) {
    case MatchingPolicy::kGreedy:
      return "greedy";
    case MatchingPolicy::kBlossom:
      return "blossom";
    case MatchingPolicy::kColorClass:
      return "color-class";
  }
  return "?";
}

std::vector<EdgeId> greedy_matching(const Graph& g, Rng* rng) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  if (rng) rng->shuffle(order);
  std::vector<char> saturated(static_cast<std::size_t>(g.node_count()), 0);
  std::vector<EdgeId> matching;
  for (EdgeId e : order) {
    const Edge& edge = g.edge(e);
    if (edge.is_virtual) continue;
    if (saturated[static_cast<std::size_t>(edge.u)] ||
        saturated[static_cast<std::size_t>(edge.v)])
      continue;
    saturated[static_cast<std::size_t>(edge.u)] = 1;
    saturated[static_cast<std::size_t>(edge.v)] = 1;
    matching.push_back(e);
  }
  return matching;
}

namespace {
std::vector<EdgeId> color_class_matching(const Graph& g) {
  EdgeColoring coloring = misra_gries_edge_coloring(g);
  // Bucket real edges by color and return the largest bucket; each color
  // class of a proper edge coloring is a matching.
  std::map<int, std::vector<EdgeId>> classes;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).is_virtual) continue;
    classes[coloring.color[static_cast<std::size_t>(e)]].push_back(e);
  }
  std::vector<EdgeId> best;
  for (auto& [color, edges] : classes) {
    if (edges.size() > best.size()) best = std::move(edges);
  }
  return best;
}
}  // namespace

std::vector<EdgeId> find_matching(const Graph& g, MatchingPolicy policy,
                                  Rng* rng) {
  switch (policy) {
    case MatchingPolicy::kGreedy:
      return greedy_matching(g, rng);
    case MatchingPolicy::kBlossom:
      return maximum_matching(g);
    case MatchingPolicy::kColorClass:
      return color_class_matching(g);
  }
  TGROOM_CHECK_MSG(false, "unknown matching policy");
  return {};
}

bool is_matching(const Graph& g, const std::vector<EdgeId>& edges) {
  std::vector<char> saturated(static_cast<std::size_t>(g.node_count()), 0);
  for (EdgeId e : edges) {
    if (e < 0 || e >= g.edge_count()) return false;
    const Edge& edge = g.edge(e);
    if (edge.is_virtual) return false;
    if (saturated[static_cast<std::size_t>(edge.u)] ||
        saturated[static_cast<std::size_t>(edge.v)])
      return false;
    saturated[static_cast<std::size_t>(edge.u)] = 1;
    saturated[static_cast<std::size_t>(edge.v)] = 1;
  }
  return true;
}

long long lemma8_matching_lower_bound(NodeId n, NodeId r) {
  if (r <= 0) return 0;
  long long num = static_cast<long long>(n) * r;
  long long den = 2LL * (r + 1);
  return (num + den - 1) / den;
}

}  // namespace tgroom
