// Rooted-forest utilities over an explicit tree-edge set.
//
// Used by SpanT_Euler to compute the E_odd parity labels: a tree edge
// belongs to E_odd iff the subtree below it contains an odd number of
// odd-degree (in G\T) nodes — the pairing-independent form of the paper's
// "edges appearing in an odd number of pairing paths".
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "util/arena.hpp"

namespace tgroom {

struct RootedForest {
  std::vector<NodeId> parent;       // kInvalidNode for roots
  std::vector<EdgeId> parent_edge;  // kInvalidEdge for roots
  std::vector<NodeId> preorder;     // roots first, parents before children
  std::vector<NodeId> root_of;      // root of each node's tree
};

/// Roots the forest given by `tree_edges`; every node appears (isolated
/// nodes become their own roots).
RootedForest root_forest(const Graph& g, const std::vector<EdgeId>& tree_edges);
RootedForest root_forest(const CsrGraph& g,
                         const std::vector<EdgeId>& tree_edges);

/// Same rooting written into `out` (buffers resized in place, capacity
/// retained) with the throwaway tree adjacency drawn from `arena` when
/// given — the zero-allocation form the grooming hot path uses.
void root_forest(const CsrGraph& g, const std::vector<EdgeId>& tree_edges,
                 RootedForest& out, MonotonicArena* arena);

/// For each node, sums `weight` over its subtree (weight has one entry per
/// node); returns per-node subtree totals.  Linear via reverse preorder.
std::vector<long long> subtree_sums(const RootedForest& forest,
                                    const std::vector<long long>& weight);

/// Tree edges whose below-subtree weight sum is odd.  With weight = 1 on
/// odd-degree nodes of G\T, this is exactly E_odd of the paper's Lemma 4.
std::vector<EdgeId> odd_subtree_edges(const Graph& g,
                                      const RootedForest& forest,
                                      const std::vector<long long>& weight);
std::vector<EdgeId> odd_subtree_edges(const CsrGraph& g,
                                      const RootedForest& forest,
                                      const std::vector<long long>& weight);

/// Same edge set appended to a cleared `out`, subtree totals drawn from
/// `arena` when given.
void odd_subtree_edges(const CsrGraph& g, const RootedForest& forest,
                       const std::vector<long long>& weight,
                       std::vector<EdgeId>& out, MonotonicArena* arena);

/// Number of 64-bit words a packed per-node parity bitset needs.
inline std::size_t parity_word_count(std::size_t node_count) {
  return (node_count + 63) / 64;
}

inline void parity_flip(std::vector<std::uint64_t>& bits, NodeId v) {
  bits[static_cast<std::size_t>(v) >> 6] ^=
      std::uint64_t{1} << (static_cast<std::size_t>(v) & 63);
}

inline bool parity_test(const std::vector<std::uint64_t>& bits, NodeId v) {
  return (bits[static_cast<std::size_t>(v) >> 6] >>
          (static_cast<std::size_t>(v) & 63)) &
         1;
}

/// Parity-only form of odd_subtree_edges for the big-graph hot path:
/// `parity` is a packed bitset (parity_word_count(n) words, bit v set when
/// node v has odd weight).  Output is identical, in the same edge order,
/// to the long long overloads with 0/1 weights, at 1/64th the scratch
/// footprint (the subtree sweep XORs bits instead of summing 64-bit
/// counters).
void odd_subtree_edges_parity(const CsrGraph& g, const RootedForest& forest,
                              const std::vector<std::uint64_t>& parity,
                              std::vector<EdgeId>& out, MonotonicArena* arena);

}  // namespace tgroom
