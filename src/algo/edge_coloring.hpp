// Proper edge coloring with at most Δ+1 colors (Vizing's bound) via the
// Misra–Gries constructive algorithm.
//
// Lemma 8 of the paper derives the matching lower bound n*r/(2(r+1)) from
// exactly this construction: color the r-regular graph with r+1 colors and
// take the largest color class.  The coloring is also independently useful
// for wavelength-style assignment experiments.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

struct EdgeColoring {
  int color_count = 0;      // number of distinct colors actually used
  std::vector<int> color;   // per edge id; -1 for virtual edges
};

/// Colors all real edges properly with colors in [0, Δ].  Requires a simple
/// graph (no parallel real edges).  Throws CheckError otherwise.
EdgeColoring misra_gries_edge_coloring(const Graph& g);

/// True when no two real edges sharing an endpoint have the same color and
/// every real edge is colored.
bool is_proper_edge_coloring(const Graph& g, const EdgeColoring& coloring);

}  // namespace tgroom
