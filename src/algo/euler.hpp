// Euler walks (Hierholzer's algorithm) over masked edge subsets.
//
// The paper's algorithms all reduce to "build Euler paths of pieces of the
// traffic graph and use them as skeleton backbones"; this module is the
// shared engine.  Walks are closed (circuits) when every masked degree is
// even, open when a component has exactly two odd-degree nodes.
#pragma once

#include <functional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"
#include "util/arena.hpp"

namespace tgroom {

/// A walk: nodes.size() == edges.size() + 1; edges[i] joins nodes[i] and
/// nodes[i+1].  No edge repeats; nodes may repeat.
struct Walk {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;

  bool empty() const { return edges.empty(); }
  std::size_t length() const { return edges.size(); }
};

/// Euler walk of a single component starting at `start`, consuming exactly
/// the masked edges reachable from it.  Preconditions: `start` has masked
/// degree > 0 unless the component is a single node; the component has at
/// most two odd-degree nodes, and if it has two, `start` must be one of
/// them.  Throws CheckError if the component is not Eulerian from `start`.
Walk euler_walk_from(const Graph& g, const std::vector<char>& edge_mask,
                     NodeId start);
Walk euler_walk_from(const CsrGraph& g, const std::vector<char>& edge_mask,
                     NodeId start);

/// Decomposes the masked subgraph into Euler walks, one per component with
/// at least one edge.  Every component must have 0 or 2 odd-degree nodes.
/// Scratch buffers are shared across components, so multi-component masks
/// cost O(n + m) total rather than O(components * (n + m)).
std::vector<Walk> euler_decomposition(const Graph& g,
                                      const std::vector<char>& edge_mask);
std::vector<Walk> euler_decomposition(const CsrGraph& g,
                                      const std::vector<char>& edge_mask);

/// A Walk whose storage lives on a MonotonicArena (zero heap allocation
/// once the arena is warm).  Same invariants as Walk; must not outlive the
/// arena's next reset().
struct ArenaWalk {
  ArenaVector<NodeId> nodes;
  ArenaVector<EdgeId> edges;

  explicit ArenaWalk(MonotonicArena* arena)
      : nodes(ArenaAllocator<NodeId>(arena)),
        edges(ArenaAllocator<EdgeId>(arena)) {}

  bool empty() const { return edges.empty(); }
  std::size_t length() const { return edges.size(); }
};

using ArenaWalkList = ArenaVector<ArenaWalk>;

/// Decomposition identical walk-for-walk to the heap overloads, with every
/// temporary and every walk drawn from `arena` — the grooming hot path.
ArenaWalkList euler_decomposition(const CsrGraph& g,
                                  const std::vector<char>& edge_mask,
                                  MonotonicArena& arena);

/// Consumer for euler_decomposition_stream: invoked once per walk, in walk
/// order.  The walk references a buffer that is REUSED for the next walk,
/// so the consumer must copy anything it needs to retain.
using WalkConsumer = std::function<void(const ArenaWalk& walk)>;

/// Streaming decomposition: emits exactly the walks (same content, same
/// order) the materializing overloads return, but through `consume` with a
/// single reused buffer instead of a walk list.  Peak arena footprint
/// drops from O(Σ walk length) = O(m) to O(longest walk) + the O(n + m)
/// cursor/used scratch — on multi-component instances (many rings) the
/// walk storage is the dominant term, and this is the memory-bound path
/// bench_scale measures (DESIGN.md §16).
void euler_decomposition_stream(const CsrGraph& g,
                                const std::vector<char>& edge_mask,
                                MonotonicArena& arena,
                                const WalkConsumer& consume);

/// Checks walk consistency: edge endpoints match consecutive nodes and no
/// edge repeats.
bool is_valid_walk(const Graph& g, const Walk& walk);
bool is_valid_walk(const CsrGraph& g, const Walk& walk);

/// Splits a walk at its virtual edges into maximal real sub-walks ("delete
/// the virtual edges" in the paper's constructions).  Empty segments
/// between consecutive virtual edges are dropped.
std::vector<Walk> split_walk_on_virtual(const Graph& g, const Walk& walk);

}  // namespace tgroom
