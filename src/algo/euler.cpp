#include "algo/euler.hpp"

#include <algorithm>

#include "algo/components.hpp"
#include "graph/properties.hpp"

namespace tgroom {

Walk euler_walk_from(const Graph& g, const std::vector<char>& edge_mask,
                     NodeId start) {
  TGROOM_CHECK(g.valid_node(start));
  TGROOM_CHECK(edge_mask.size() == static_cast<std::size_t>(g.edge_count()));

  std::vector<std::size_t> cursor(static_cast<std::size_t>(g.node_count()), 0);
  std::vector<char> used(static_cast<std::size_t>(g.edge_count()), 0);

  // Hierholzer with an explicit stack of (node, edge used to reach it).
  std::vector<std::pair<NodeId, EdgeId>> stack{{start, kInvalidEdge}};
  std::vector<std::pair<NodeId, EdgeId>> out;
  while (!stack.empty()) {
    NodeId v = stack.back().first;
    auto inc = g.incident(v);
    auto& cur = cursor[static_cast<std::size_t>(v)];
    while (cur < inc.size() &&
           (!edge_mask[static_cast<std::size_t>(inc[cur].edge)] ||
            used[static_cast<std::size_t>(inc[cur].edge)])) {
      ++cur;
    }
    if (cur < inc.size()) {
      const Incidence& step = inc[cur];
      used[static_cast<std::size_t>(step.edge)] = 1;
      stack.push_back({step.neighbor, step.edge});
    } else {
      out.push_back(stack.back());
      stack.pop_back();
    }
  }
  std::reverse(out.begin(), out.end());

  Walk walk;
  walk.nodes.reserve(out.size());
  walk.edges.reserve(out.size() - 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    walk.nodes.push_back(out[i].first);
    if (i > 0) walk.edges.push_back(out[i].second);
  }
  TGROOM_CHECK_MSG(is_valid_walk(g, walk),
                   "component is not Eulerian from the given start node");
  return walk;
}

std::vector<Walk> euler_decomposition(const Graph& g,
                                      const std::vector<char>& edge_mask) {
  std::vector<NodeId> deg = masked_degrees(g, edge_mask);
  Components comp = connected_components_masked(g, edge_mask);

  // Per component: an odd-degree start node if one exists, else any node
  // with positive degree.
  std::vector<NodeId> start(static_cast<std::size_t>(comp.count),
                            kInvalidNode);
  std::vector<int> odd_count(static_cast<std::size_t>(comp.count), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto c = static_cast<std::size_t>(comp.label[static_cast<std::size_t>(v)]);
    NodeId d = deg[static_cast<std::size_t>(v)];
    if (d == 0) continue;
    if (d % 2 == 1) {
      ++odd_count[c];
      start[c] = v;  // odd node wins as the start
    } else if (start[c] == kInvalidNode) {
      start[c] = v;
    }
  }

  std::vector<Walk> walks;
  for (std::size_t c = 0; c < static_cast<std::size_t>(comp.count); ++c) {
    if (start[c] == kInvalidNode) continue;  // edgeless component
    TGROOM_CHECK_MSG(odd_count[c] == 0 || odd_count[c] == 2,
                     "component has " + std::to_string(odd_count[c]) +
                         " odd-degree nodes; not Eulerian");
    walks.push_back(euler_walk_from(g, edge_mask, start[c]));
  }
  return walks;
}

std::vector<Walk> split_walk_on_virtual(const Graph& g, const Walk& walk) {
  std::vector<Walk> segments;
  Walk current;
  for (std::size_t i = 0; i < walk.edges.size(); ++i) {
    EdgeId e = walk.edges[i];
    if (g.edge(e).is_virtual) {
      if (!current.edges.empty()) segments.push_back(std::move(current));
      current = Walk{};
      continue;
    }
    if (current.nodes.empty()) current.nodes.push_back(walk.nodes[i]);
    current.nodes.push_back(walk.nodes[i + 1]);
    current.edges.push_back(e);
  }
  if (!current.edges.empty()) segments.push_back(std::move(current));
  return segments;
}

bool is_valid_walk(const Graph& g, const Walk& walk) {
  if (walk.nodes.empty()) return false;
  if (walk.nodes.size() != walk.edges.size() + 1) return false;
  std::vector<char> seen(static_cast<std::size_t>(g.edge_count()), 0);
  for (std::size_t i = 0; i < walk.edges.size(); ++i) {
    EdgeId e = walk.edges[i];
    if (e < 0 || e >= g.edge_count()) return false;
    if (seen[static_cast<std::size_t>(e)]) return false;
    seen[static_cast<std::size_t>(e)] = 1;
    const Edge& edge = g.edge(e);
    NodeId a = walk.nodes[i];
    NodeId b = walk.nodes[i + 1];
    if (!((edge.u == a && edge.v == b) || (edge.u == b && edge.v == a)))
      return false;
  }
  return true;
}

}  // namespace tgroom
