#include "algo/euler.hpp"

#include <algorithm>
#include <string>

#include "graph/properties.hpp"

namespace tgroom {

namespace {

// Shared scratch for one decomposition: cursors and the used-edge mask
// survive across components (disjoint, so no interference), and the
// stack/out vectors keep their capacity between walks.  All four draw
// from the arena (heap fallback when null).
struct HierholzerScratch {
  ArenaVector<std::size_t> cursor;               // per node
  ArenaVector<char> used;                        // per edge
  ArenaVector<std::pair<NodeId, EdgeId>> stack;  // (node, arriving edge)
  ArenaVector<std::pair<NodeId, EdgeId>> out;

  explicit HierholzerScratch(MonotonicArena* arena)
      : cursor(ArenaAllocator<std::size_t>(arena)),
        used(ArenaAllocator<char>(arena)),
        stack(ArenaAllocator<std::pair<NodeId, EdgeId>>(arena)),
        out(ArenaAllocator<std::pair<NodeId, EdgeId>>(arena)) {}

  template <typename G>
  void reset(const G& g) {
    cursor.assign(static_cast<std::size_t>(g.node_count()), 0);
    used.assign(static_cast<std::size_t>(g.edge_count()), 0);
  }
};

// Hierholzer with an explicit stack; consumes the masked, not-yet-used
// edges reachable from `start` and appends nothing outside them.  WalkT is
// Walk or ArenaWalk — anything with nodes/edges vectors.
template <typename G, typename WalkT>
void euler_walk_into(const G& g, const std::vector<char>& edge_mask,
                     NodeId start, HierholzerScratch& scratch, WalkT& walk) {
  scratch.stack.clear();
  scratch.out.clear();
  scratch.stack.push_back({start, kInvalidEdge});
  while (!scratch.stack.empty()) {
    NodeId v = scratch.stack.back().first;
    auto inc = g.incident(v);
    auto& cur = scratch.cursor[static_cast<std::size_t>(v)];
    while (cur < inc.size() &&
           (!edge_mask[static_cast<std::size_t>(inc[cur].edge)] ||
            scratch.used[static_cast<std::size_t>(inc[cur].edge)])) {
      ++cur;
    }
    if (cur < inc.size()) {
      const Incidence& step = inc[cur];
      scratch.used[static_cast<std::size_t>(step.edge)] = 1;
      scratch.stack.push_back({step.neighbor, step.edge});
    } else {
      scratch.out.push_back(scratch.stack.back());
      scratch.stack.pop_back();
    }
  }
  std::reverse(scratch.out.begin(), scratch.out.end());

  walk.nodes.clear();
  walk.edges.clear();
  walk.nodes.reserve(scratch.out.size());
  walk.edges.reserve(scratch.out.size() - 1);
  for (std::size_t i = 0; i < scratch.out.size(); ++i) {
    walk.nodes.push_back(scratch.out[i].first);
    if (i > 0) walk.edges.push_back(scratch.out[i].second);
  }
}

template <typename G>
Walk euler_walk_from_impl(const G& g, const std::vector<char>& edge_mask,
                          NodeId start) {
  TGROOM_CHECK(g.valid_node(start));
  TGROOM_CHECK(edge_mask.size() == static_cast<std::size_t>(g.edge_count()));
  HierholzerScratch scratch(nullptr);
  scratch.reset(g);
  Walk walk;
  euler_walk_into(g, edge_mask, start, scratch, walk);
  TGROOM_CHECK_MSG(is_valid_walk(g, walk),
                   "component is not Eulerian from the given start node");
  return walk;
}

// The decomposition body, generic over where walks land.  Per component
// `acquire()` returns a WalkT& to fill and `commit()` runs once it is
// complete — the materializing overloads append to a list with a no-op
// commit, the streaming overload hands back one reused buffer and commits
// by invoking the consumer.  Component labels are assigned by BFS from the
// lowest unlabelled node (identical to algo/components.cpp), so walk order
// is the same for every overload.
template <typename G, typename Acquire, typename Commit>
void euler_decomposition_visit(const G& g, const std::vector<char>& edge_mask,
                               MonotonicArena* arena, Acquire acquire,
                               Commit commit) {
  TGROOM_CHECK(edge_mask.size() == static_cast<std::size_t>(g.edge_count()));
  const auto n = static_cast<std::size_t>(g.node_count());

  ArenaVector<NodeId> deg(n, 0, ArenaAllocator<NodeId>(arena));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!edge_mask[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = g.edge(e);
    ++deg[static_cast<std::size_t>(edge.u)];
    ++deg[static_cast<std::size_t>(edge.v)];
  }

  ArenaVector<int> label(n, -1, ArenaAllocator<int>(arena));
  ArenaVector<NodeId> frontier{ArenaAllocator<NodeId>(arena)};
  frontier.reserve(n);
  int component_count = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (label[static_cast<std::size_t>(s)] != -1) continue;
    int id = component_count++;
    label[static_cast<std::size_t>(s)] = id;
    std::size_t head = frontier.size();
    frontier.push_back(s);
    while (head < frontier.size()) {
      NodeId v = frontier[head++];
      for (const Incidence& inc : g.incident(v)) {
        if (!edge_mask[static_cast<std::size_t>(inc.edge)]) continue;
        if (label[static_cast<std::size_t>(inc.neighbor)] != -1) continue;
        label[static_cast<std::size_t>(inc.neighbor)] = id;
        frontier.push_back(inc.neighbor);
      }
    }
  }

  // Per component: an odd-degree start node if one exists, else any node
  // with positive degree.
  ArenaVector<NodeId> start(static_cast<std::size_t>(component_count),
                            kInvalidNode, ArenaAllocator<NodeId>(arena));
  ArenaVector<int> odd_count(static_cast<std::size_t>(component_count), 0,
                             ArenaAllocator<int>(arena));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto c = static_cast<std::size_t>(label[static_cast<std::size_t>(v)]);
    NodeId d = deg[static_cast<std::size_t>(v)];
    if (d == 0) continue;
    if (d % 2 == 1) {
      ++odd_count[c];
      start[c] = v;  // odd node wins as the start
    } else if (start[c] == kInvalidNode) {
      start[c] = v;
    }
  }

  HierholzerScratch scratch(arena);
  scratch.reset(g);
  std::size_t consumed = 0;
  std::size_t masked = 0;
  for (char bit : edge_mask) masked += bit ? 1 : 0;

  for (std::size_t c = 0; c < static_cast<std::size_t>(component_count);
       ++c) {
    if (start[c] == kInvalidNode) continue;  // edgeless component
    TGROOM_CHECK_MSG(odd_count[c] == 0 || odd_count[c] == 2,
                     "component has " + std::to_string(odd_count[c]) +
                         " odd-degree nodes; not Eulerian");
    auto& walk = acquire();
    euler_walk_into(g, edge_mask, start[c], scratch, walk);
    consumed += walk.edges.size();
    commit();
  }
  // Connected + 0/2 odd degrees per component means every walk consumed its
  // whole component; this guards the invariant without re-validating each
  // walk edge-by-edge.
  TGROOM_CHECK_MSG(consumed == masked,
                   "Euler decomposition left masked edges unconsumed");
}

template <typename G>
bool is_valid_walk_impl(const G& g, const Walk& walk) {
  if (walk.nodes.empty()) return false;
  if (walk.nodes.size() != walk.edges.size() + 1) return false;
  std::vector<char> seen(static_cast<std::size_t>(g.edge_count()), 0);
  for (std::size_t i = 0; i < walk.edges.size(); ++i) {
    EdgeId e = walk.edges[i];
    if (e < 0 || e >= g.edge_count()) return false;
    if (seen[static_cast<std::size_t>(e)]) return false;
    seen[static_cast<std::size_t>(e)] = 1;
    const Edge& edge = g.edge(e);
    NodeId a = walk.nodes[i];
    NodeId b = walk.nodes[i + 1];
    if (!((edge.u == a && edge.v == b) || (edge.u == b && edge.v == a)))
      return false;
  }
  return true;
}

}  // namespace

Walk euler_walk_from(const Graph& g, const std::vector<char>& edge_mask,
                     NodeId start) {
  return euler_walk_from_impl(g, edge_mask, start);
}

Walk euler_walk_from(const CsrGraph& g, const std::vector<char>& edge_mask,
                     NodeId start) {
  return euler_walk_from_impl(g, edge_mask, start);
}

std::vector<Walk> euler_decomposition(const Graph& g,
                                      const std::vector<char>& edge_mask) {
  std::vector<Walk> walks;
  euler_decomposition_visit(
      g, edge_mask, nullptr,
      [&walks]() -> Walk& {
        walks.emplace_back();
        return walks.back();
      },
      [] {});
  return walks;
}

std::vector<Walk> euler_decomposition(const CsrGraph& g,
                                      const std::vector<char>& edge_mask) {
  std::vector<Walk> walks;
  euler_decomposition_visit(
      g, edge_mask, nullptr,
      [&walks]() -> Walk& {
        walks.emplace_back();
        return walks.back();
      },
      [] {});
  return walks;
}

ArenaWalkList euler_decomposition(const CsrGraph& g,
                                  const std::vector<char>& edge_mask,
                                  MonotonicArena& arena) {
  ArenaWalkList walks{ArenaAllocator<ArenaWalk>(&arena)};
  euler_decomposition_visit(
      g, edge_mask, &arena,
      [&walks, &arena]() -> ArenaWalk& {
        walks.emplace_back(&arena);
        return walks.back();
      },
      [] {});
  return walks;
}

void euler_decomposition_stream(const CsrGraph& g,
                                const std::vector<char>& edge_mask,
                                MonotonicArena& arena,
                                const WalkConsumer& consume) {
  ArenaWalk buffer(&arena);
  euler_decomposition_visit(
      g, edge_mask, &arena, [&buffer]() -> ArenaWalk& { return buffer; },
      [&buffer, &consume] { consume(buffer); });
}

std::vector<Walk> split_walk_on_virtual(const Graph& g, const Walk& walk) {
  std::vector<Walk> segments;
  Walk current;
  for (std::size_t i = 0; i < walk.edges.size(); ++i) {
    EdgeId e = walk.edges[i];
    if (g.edge(e).is_virtual) {
      if (!current.edges.empty()) segments.push_back(std::move(current));
      current = Walk{};
      continue;
    }
    if (current.nodes.empty()) current.nodes.push_back(walk.nodes[i]);
    current.nodes.push_back(walk.nodes[i + 1]);
    current.edges.push_back(e);
  }
  if (!current.edges.empty()) segments.push_back(std::move(current));
  return segments;
}

bool is_valid_walk(const Graph& g, const Walk& walk) {
  return is_valid_walk_impl(g, walk);
}

bool is_valid_walk(const CsrGraph& g, const Walk& walk) {
  return is_valid_walk_impl(g, walk);
}

}  // namespace tgroom
