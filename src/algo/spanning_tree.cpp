#include "algo/spanning_tree.hpp"

#include <numeric>
#include <utility>

#include "algo/components.hpp"
#include "algo/min_degree_tree.hpp"

namespace tgroom {

const char* tree_policy_name(TreePolicy policy) {
  switch (policy) {
    case TreePolicy::kBfs:
      return "bfs";
    case TreePolicy::kDfs:
      return "dfs";
    case TreePolicy::kRandom:
      return "random";
    case TreePolicy::kMinMaxDegree:
      return "min-max-degree";
  }
  return "?";
}

namespace {

// Every traversal below draws its scratch from `arena` (heap when null via
// the allocator's fallback) and appends tree edges to `tree`; visit order
// is identical to the classic queue/stack forms, so outputs are unchanged.

template <typename G>
void bfs_forest_into(const G& g, std::vector<EdgeId>& tree,
                     MonotonicArena* arena) {
  const auto n = static_cast<std::size_t>(g.node_count());
  ArenaVector<char> visited(n, 0, ArenaAllocator<char>(arena));
  ArenaVector<NodeId> frontier{ArenaAllocator<NodeId>(arena)};
  frontier.reserve(n);
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    visited[static_cast<std::size_t>(start)] = 1;
    std::size_t head = frontier.size();
    frontier.push_back(start);
    while (head < frontier.size()) {
      NodeId v = frontier[head++];
      for (const Incidence& inc : g.incident(v)) {
        if (visited[static_cast<std::size_t>(inc.neighbor)]) continue;
        visited[static_cast<std::size_t>(inc.neighbor)] = 1;
        tree.push_back(inc.edge);
        frontier.push_back(inc.neighbor);
      }
    }
  }
}

template <typename G>
void dfs_forest_into(const G& g, std::vector<EdgeId>& tree,
                     MonotonicArena* arena) {
  const auto n = static_cast<std::size_t>(g.node_count());
  ArenaVector<char> visited(n, 0, ArenaAllocator<char>(arena));
  // Explicit stack of (node, incidence cursor) to avoid deep recursion.
  using Frame = std::pair<NodeId, std::size_t>;
  ArenaVector<Frame> stack{ArenaAllocator<Frame>(arena)};
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    visited[static_cast<std::size_t>(start)] = 1;
    stack.push_back({start, 0});
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      auto inc = g.incident(v);
      if (cursor >= inc.size()) {
        stack.pop_back();
        continue;
      }
      const Incidence& step = inc[cursor++];
      if (visited[static_cast<std::size_t>(step.neighbor)]) continue;
      visited[static_cast<std::size_t>(step.neighbor)] = 1;
      tree.push_back(step.edge);
      stack.push_back({step.neighbor, 0});
    }
  }
}

// Union-find for Kruskal.
class Dsu {
 public:
  explicit Dsu(std::size_t n, MonotonicArena* arena = nullptr)
      : parent_(n, NodeId{0}, ArenaAllocator<NodeId>(arena)) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    return true;
  }

 private:
  ArenaVector<NodeId> parent_;
};

template <typename G>
void random_kruskal_forest_into(const G& g, Rng& rng,
                                std::vector<EdgeId>& tree,
                                MonotonicArena* arena) {
  ArenaVector<EdgeId> order(static_cast<std::size_t>(g.edge_count()),
                            EdgeId{0}, ArenaAllocator<EdgeId>(arena));
  std::iota(order.begin(), order.end(), EdgeId{0});
  rng.shuffle(order);
  Dsu dsu(static_cast<std::size_t>(g.node_count()), arena);
  for (EdgeId e : order) {
    const Edge& edge = g.edge(e);
    if (dsu.unite(edge.u, edge.v)) tree.push_back(e);
  }
}

template <typename G>
void spanning_forest_into(const G& g, TreePolicy policy, Rng* rng,
                          std::vector<EdgeId>& out, MonotonicArena* arena) {
  out.clear();
  switch (policy) {
    case TreePolicy::kBfs:
      return bfs_forest_into(g, out, arena);
    case TreePolicy::kDfs:
      return dfs_forest_into(g, out, arena);
    case TreePolicy::kRandom: {
      TGROOM_CHECK_MSG(rng != nullptr, "random tree policy needs an Rng");
      return random_kruskal_forest_into(g, *rng, out, arena);
    }
    case TreePolicy::kMinMaxDegree: {
      out = min_max_degree_forest(g);
      return;
    }
  }
  TGROOM_CHECK_MSG(false, "unknown tree policy");
}

}  // namespace

std::vector<EdgeId> spanning_forest(const Graph& g, TreePolicy policy,
                                    Rng* rng) {
  std::vector<EdgeId> tree;
  spanning_forest_into(g, policy, rng, tree, nullptr);
  return tree;
}

std::vector<EdgeId> spanning_forest(const CsrGraph& g, TreePolicy policy,
                                    Rng* rng) {
  std::vector<EdgeId> tree;
  spanning_forest_into(g, policy, rng, tree, nullptr);
  return tree;
}

void spanning_forest(const CsrGraph& g, TreePolicy policy, Rng* rng,
                     std::vector<EdgeId>& out, MonotonicArena* arena) {
  spanning_forest_into(g, policy, rng, out, arena);
}

bool is_spanning_forest(const Graph& g,
                        const std::vector<EdgeId>& tree_edges) {
  Dsu dsu(static_cast<std::size_t>(g.node_count()));
  for (EdgeId e : tree_edges) {
    if (e < 0 || e >= g.edge_count()) return false;
    const Edge& edge = g.edge(e);
    if (!dsu.unite(edge.u, edge.v)) return false;  // cycle
  }
  // Acyclic with (n - #components) edges spans every component.
  int components = connected_components(g).count;
  return static_cast<int>(tree_edges.size()) ==
         g.node_count() - components;
}

}  // namespace tgroom
