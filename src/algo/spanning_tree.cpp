#include "algo/spanning_tree.hpp"

#include <numeric>
#include <queue>
#include <stack>

#include "algo/components.hpp"
#include "algo/min_degree_tree.hpp"

namespace tgroom {

const char* tree_policy_name(TreePolicy policy) {
  switch (policy) {
    case TreePolicy::kBfs:
      return "bfs";
    case TreePolicy::kDfs:
      return "dfs";
    case TreePolicy::kRandom:
      return "random";
    case TreePolicy::kMinMaxDegree:
      return "min-max-degree";
  }
  return "?";
}

namespace {

template <typename G>
std::vector<EdgeId> bfs_forest(const G& g) {
  std::vector<EdgeId> tree;
  std::vector<char> visited(static_cast<std::size_t>(g.node_count()), 0);
  std::queue<NodeId> q;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    visited[static_cast<std::size_t>(start)] = 1;
    q.push(start);
    while (!q.empty()) {
      NodeId v = q.front();
      q.pop();
      for (const Incidence& inc : g.incident(v)) {
        if (visited[static_cast<std::size_t>(inc.neighbor)]) continue;
        visited[static_cast<std::size_t>(inc.neighbor)] = 1;
        tree.push_back(inc.edge);
        q.push(inc.neighbor);
      }
    }
  }
  return tree;
}

template <typename G>
std::vector<EdgeId> dfs_forest(const G& g) {
  std::vector<EdgeId> tree;
  std::vector<char> visited(static_cast<std::size_t>(g.node_count()), 0);
  // Explicit stack of (node, incidence cursor) to avoid deep recursion.
  std::stack<std::pair<NodeId, std::size_t>> stack;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    visited[static_cast<std::size_t>(start)] = 1;
    stack.push({start, 0});
    while (!stack.empty()) {
      auto& [v, cursor] = stack.top();
      auto inc = g.incident(v);
      if (cursor >= inc.size()) {
        stack.pop();
        continue;
      }
      const Incidence& step = inc[cursor++];
      if (visited[static_cast<std::size_t>(step.neighbor)]) continue;
      visited[static_cast<std::size_t>(step.neighbor)] = 1;
      tree.push_back(step.edge);
      stack.push({step.neighbor, 0});
    }
  }
  return tree;
}

// Union-find for Kruskal.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<NodeId> parent_;
};

template <typename G>
std::vector<EdgeId> random_kruskal_forest(const G& g, Rng& rng) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  rng.shuffle(order);
  Dsu dsu(static_cast<std::size_t>(g.node_count()));
  std::vector<EdgeId> tree;
  for (EdgeId e : order) {
    const Edge& edge = g.edge(e);
    if (dsu.unite(edge.u, edge.v)) tree.push_back(e);
  }
  return tree;
}

template <typename G>
std::vector<EdgeId> spanning_forest_impl(const G& g, TreePolicy policy,
                                         Rng* rng) {
  switch (policy) {
    case TreePolicy::kBfs:
      return bfs_forest(g);
    case TreePolicy::kDfs:
      return dfs_forest(g);
    case TreePolicy::kRandom: {
      TGROOM_CHECK_MSG(rng != nullptr, "random tree policy needs an Rng");
      return random_kruskal_forest(g, *rng);
    }
    case TreePolicy::kMinMaxDegree:
      return min_max_degree_forest(g);
  }
  TGROOM_CHECK_MSG(false, "unknown tree policy");
  return {};
}

}  // namespace

std::vector<EdgeId> spanning_forest(const Graph& g, TreePolicy policy,
                                    Rng* rng) {
  return spanning_forest_impl(g, policy, rng);
}

std::vector<EdgeId> spanning_forest(const CsrGraph& g, TreePolicy policy,
                                    Rng* rng) {
  return spanning_forest_impl(g, policy, rng);
}

bool is_spanning_forest(const Graph& g,
                        const std::vector<EdgeId>& tree_edges) {
  Dsu dsu(static_cast<std::size_t>(g.node_count()));
  for (EdgeId e : tree_edges) {
    if (e < 0 || e >= g.edge_count()) return false;
    const Edge& edge = g.edge(e);
    if (!dsu.unite(edge.u, edge.v)) return false;  // cycle
  }
  // Acyclic with (n - #components) edges spans every component.
  int components = connected_components(g).count;
  return static_cast<int>(tree_edges.size()) ==
         g.node_count() - components;
}

}  // namespace tgroom
