// Maximum matching in general graphs: Edmonds' blossom algorithm.
//
// O(V^3) contract-and-augment formulation (base/parent arrays, BFS forest).
// Traffic graphs in the paper's experiments are tiny (n = 36), so the
// simple cubic variant is the right trade-off over Micali–Vazirani.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

/// Edge ids of a maximum matching (virtual edges ignored).
std::vector<EdgeId> maximum_matching(const Graph& g);

/// Node-indexed mate array (kInvalidNode when unmatched).
std::vector<NodeId> maximum_matching_mates(const Graph& g);

}  // namespace tgroom
