#include "algo/rooted_tree.hpp"

#include <stack>

namespace tgroom {

RootedForest root_forest(const Graph& g,
                         const std::vector<EdgeId>& tree_edges) {
  const auto n = static_cast<std::size_t>(g.node_count());
  // Adjacency restricted to the tree edges.
  std::vector<std::vector<Incidence>> adj(n);
  for (EdgeId e : tree_edges) {
    const Edge& edge = g.edge(e);
    adj[static_cast<std::size_t>(edge.u)].push_back({edge.v, e});
    adj[static_cast<std::size_t>(edge.v)].push_back({edge.u, e});
  }

  RootedForest forest;
  forest.parent.assign(n, kInvalidNode);
  forest.parent_edge.assign(n, kInvalidEdge);
  forest.root_of.assign(n, kInvalidNode);
  forest.preorder.reserve(n);

  std::vector<char> visited(n, 0);
  std::stack<NodeId> stack;
  for (NodeId root = 0; root < g.node_count(); ++root) {
    if (visited[static_cast<std::size_t>(root)]) continue;
    visited[static_cast<std::size_t>(root)] = 1;
    forest.root_of[static_cast<std::size_t>(root)] = root;
    stack.push(root);
    while (!stack.empty()) {
      NodeId v = stack.top();
      stack.pop();
      forest.preorder.push_back(v);
      for (const Incidence& inc : adj[static_cast<std::size_t>(v)]) {
        if (visited[static_cast<std::size_t>(inc.neighbor)]) continue;
        visited[static_cast<std::size_t>(inc.neighbor)] = 1;
        forest.parent[static_cast<std::size_t>(inc.neighbor)] = v;
        forest.parent_edge[static_cast<std::size_t>(inc.neighbor)] = inc.edge;
        forest.root_of[static_cast<std::size_t>(inc.neighbor)] = root;
        stack.push(inc.neighbor);
      }
    }
  }
  return forest;
}

std::vector<long long> subtree_sums(const RootedForest& forest,
                                    const std::vector<long long>& weight) {
  TGROOM_CHECK(weight.size() == forest.parent.size());
  std::vector<long long> total = weight;
  // Children appear after parents in preorder, so a reverse sweep pushes
  // subtree totals upward in one pass.
  for (auto it = forest.preorder.rbegin(); it != forest.preorder.rend();
       ++it) {
    NodeId v = *it;
    NodeId p = forest.parent[static_cast<std::size_t>(v)];
    if (p != kInvalidNode) {
      total[static_cast<std::size_t>(p)] += total[static_cast<std::size_t>(v)];
    }
  }
  return total;
}

std::vector<EdgeId> odd_subtree_edges(const Graph& g,
                                      const RootedForest& forest,
                                      const std::vector<long long>& weight) {
  (void)g;
  std::vector<long long> total = subtree_sums(forest, weight);
  std::vector<EdgeId> odd_edges;
  for (NodeId v = 0; v < static_cast<NodeId>(forest.parent.size()); ++v) {
    EdgeId pe = forest.parent_edge[static_cast<std::size_t>(v)];
    if (pe == kInvalidEdge) continue;
    if (total[static_cast<std::size_t>(v)] % 2 != 0) odd_edges.push_back(pe);
  }
  return odd_edges;
}

}  // namespace tgroom
