#include "algo/rooted_tree.hpp"

namespace tgroom {

namespace {

// The tree adjacency is a throwaway touched once per node, so it is built
// as a flat counting-sorted array (offset table + incidence array) rather
// than a vector-of-vectors; per-node order matches the order nodes appear
// in `tree_edges`, preserving the DFS visit order of the old nested form.
// All throwaway scratch draws from `arena` (heap fallback when null).
template <typename G>
void root_forest_into(const G& g, const std::vector<EdgeId>& tree_edges,
                      RootedForest& forest, MonotonicArena* arena) {
  const auto n = static_cast<std::size_t>(g.node_count());

  ArenaVector<std::size_t> offset(n + 1, 0, ArenaAllocator<std::size_t>(arena));
  for (EdgeId e : tree_edges) {
    const Edge& edge = g.edge(e);
    ++offset[static_cast<std::size_t>(edge.u) + 1];
    ++offset[static_cast<std::size_t>(edge.v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offset[v + 1] += offset[v];
  ArenaVector<Incidence> inc(2 * tree_edges.size(), Incidence{},
                             ArenaAllocator<Incidence>(arena));
  ArenaVector<std::size_t> cursor(offset.begin(), offset.end() - 1,
                                  ArenaAllocator<std::size_t>(arena));
  for (EdgeId e : tree_edges) {
    const Edge& edge = g.edge(e);
    inc[cursor[static_cast<std::size_t>(edge.u)]++] = Incidence{edge.v, e};
    inc[cursor[static_cast<std::size_t>(edge.v)]++] = Incidence{edge.u, e};
  }

  forest.parent.assign(n, kInvalidNode);
  forest.parent_edge.assign(n, kInvalidEdge);
  forest.root_of.assign(n, kInvalidNode);
  forest.preorder.clear();
  forest.preorder.reserve(n);

  ArenaVector<char> visited(n, 0, ArenaAllocator<char>(arena));
  ArenaVector<NodeId> stack{ArenaAllocator<NodeId>(arena)};
  for (NodeId root = 0; root < g.node_count(); ++root) {
    if (visited[static_cast<std::size_t>(root)]) continue;
    visited[static_cast<std::size_t>(root)] = 1;
    forest.root_of[static_cast<std::size_t>(root)] = root;
    stack.push_back(root);
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      forest.preorder.push_back(v);
      const auto lo = offset[static_cast<std::size_t>(v)];
      const auto hi = offset[static_cast<std::size_t>(v) + 1];
      for (std::size_t i = lo; i < hi; ++i) {
        const Incidence& step = inc[i];
        if (visited[static_cast<std::size_t>(step.neighbor)]) continue;
        visited[static_cast<std::size_t>(step.neighbor)] = 1;
        forest.parent[static_cast<std::size_t>(step.neighbor)] = v;
        forest.parent_edge[static_cast<std::size_t>(step.neighbor)] =
            step.edge;
        forest.root_of[static_cast<std::size_t>(step.neighbor)] = root;
        stack.push_back(step.neighbor);
      }
    }
  }
}

}  // namespace

RootedForest root_forest(const Graph& g,
                         const std::vector<EdgeId>& tree_edges) {
  RootedForest forest;
  root_forest_into(g, tree_edges, forest, nullptr);
  return forest;
}

RootedForest root_forest(const CsrGraph& g,
                         const std::vector<EdgeId>& tree_edges) {
  RootedForest forest;
  root_forest_into(g, tree_edges, forest, nullptr);
  return forest;
}

void root_forest(const CsrGraph& g, const std::vector<EdgeId>& tree_edges,
                 RootedForest& out, MonotonicArena* arena) {
  root_forest_into(g, tree_edges, out, arena);
}

std::vector<long long> subtree_sums(const RootedForest& forest,
                                    const std::vector<long long>& weight) {
  TGROOM_CHECK(weight.size() == forest.parent.size());
  std::vector<long long> total = weight;
  // Children appear after parents in preorder, so a reverse sweep pushes
  // subtree totals upward in one pass.
  for (auto it = forest.preorder.rbegin(); it != forest.preorder.rend();
       ++it) {
    NodeId v = *it;
    NodeId p = forest.parent[static_cast<std::size_t>(v)];
    if (p != kInvalidNode) {
      total[static_cast<std::size_t>(p)] += total[static_cast<std::size_t>(v)];
    }
  }
  return total;
}

namespace {

void odd_subtree_edges_into(const RootedForest& forest,
                            const std::vector<long long>& weight,
                            std::vector<EdgeId>& odd_edges,
                            MonotonicArena* arena) {
  TGROOM_CHECK(weight.size() == forest.parent.size());
  ArenaVector<long long> total(weight.begin(), weight.end(),
                               ArenaAllocator<long long>(arena));
  for (auto it = forest.preorder.rbegin(); it != forest.preorder.rend();
       ++it) {
    NodeId v = *it;
    NodeId p = forest.parent[static_cast<std::size_t>(v)];
    if (p != kInvalidNode) {
      total[static_cast<std::size_t>(p)] += total[static_cast<std::size_t>(v)];
    }
  }
  odd_edges.clear();
  for (NodeId v = 0; v < static_cast<NodeId>(forest.parent.size()); ++v) {
    EdgeId pe = forest.parent_edge[static_cast<std::size_t>(v)];
    if (pe == kInvalidEdge) continue;
    if (total[static_cast<std::size_t>(v)] % 2 != 0) odd_edges.push_back(pe);
  }
}

}  // namespace

void odd_subtree_edges_parity(const CsrGraph& g, const RootedForest& forest,
                              const std::vector<std::uint64_t>& parity,
                              std::vector<EdgeId>& out, MonotonicArena* arena) {
  (void)g;
  const std::size_t n = forest.parent.size();
  TGROOM_CHECK(parity.size() >= parity_word_count(n));
  ArenaVector<std::uint64_t> total(parity.begin(),
                                   parity.begin() + static_cast<long>(
                                                        parity_word_count(n)),
                                   ArenaAllocator<std::uint64_t>(arena));
  // Same reverse-preorder sweep as the weighted form, with XOR in place of
  // addition: a subtree's parity is the XOR of its nodes' parities.
  for (auto it = forest.preorder.rbegin(); it != forest.preorder.rend();
       ++it) {
    NodeId v = *it;
    NodeId p = forest.parent[static_cast<std::size_t>(v)];
    if (p == kInvalidNode) continue;
    std::uint64_t bit =
        (total[static_cast<std::size_t>(v) >> 6] >>
         (static_cast<std::size_t>(v) & 63)) &
        1;
    total[static_cast<std::size_t>(p) >> 6] ^=
        bit << (static_cast<std::size_t>(p) & 63);
  }
  out.clear();
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    EdgeId pe = forest.parent_edge[static_cast<std::size_t>(v)];
    if (pe == kInvalidEdge) continue;
    if ((total[static_cast<std::size_t>(v) >> 6] >>
         (static_cast<std::size_t>(v) & 63)) &
        1) {
      out.push_back(pe);
    }
  }
}

std::vector<EdgeId> odd_subtree_edges(const Graph& g,
                                      const RootedForest& forest,
                                      const std::vector<long long>& weight) {
  (void)g;
  std::vector<EdgeId> odd_edges;
  odd_subtree_edges_into(forest, weight, odd_edges, nullptr);
  return odd_edges;
}

std::vector<EdgeId> odd_subtree_edges(const CsrGraph& g,
                                      const RootedForest& forest,
                                      const std::vector<long long>& weight) {
  (void)g;
  std::vector<EdgeId> odd_edges;
  odd_subtree_edges_into(forest, weight, odd_edges, nullptr);
  return odd_edges;
}

void odd_subtree_edges(const CsrGraph& g, const RootedForest& forest,
                       const std::vector<long long>& weight,
                       std::vector<EdgeId>& out, MonotonicArena* arena) {
  (void)g;
  odd_subtree_edges_into(forest, weight, out, arena);
}

}  // namespace tgroom
