// Durable state store for the grooming service: recovery + WAL +
// snapshots + compaction behind one object.
//
// Lifecycle:
//   1. Construction recovers: load the newest valid snapshot, replay the
//      WAL tail (seq > snapshot seq), truncating a torn final record.
//      The recovered held-plan table, next plan id, and cache-prewarm
//      entries are handed to the service via take_recovered().
//   2. The service appends a record for every mutation (hold /
//      provision) *before* acking the request, then sync()s it under
//      the configured fsync policy.
//   3. Every `snapshot_every` records the service snapshots its table;
//      write_snapshot() persists it atomically and then compacts: older
//      snapshots and WAL segments wholly covered by the new snapshot
//      are deleted (never the active segment).
//
// Mutation replay recomputes provisions through
// extend_plan_incremental, which is deterministic and sequentially
// composable — so a recovered table is byte-identical to the live table
// the crashed process held (for every acked-durable mutation).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "grooming/plan.hpp"
#include "service/cache.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "util/json.hpp"

namespace tgroom {

struct DurableStoreOptions {
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Snapshot after this many appended records; 0 disables periodic
  /// snapshots (one is still written at clean shutdown).
  std::uint64_t snapshot_every = 1024;
  std::uint64_t segment_bytes = 4ull << 20;
  std::uint64_t batch_bytes = 64ull << 10;
};

/// What recovery found, for stats/logging.
struct StoreRecovery {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;
  std::size_t snapshots_skipped = 0;  // corrupt snapshots fallen past
  std::size_t wal_segments = 0;
  std::size_t wal_records_replayed = 0;
  std::size_t wal_records_skipped = 0;  // already covered by the snapshot
  // Replayed-record breakdown by type (`tgroom store-dump` triage).
  std::size_t hold_records = 0;
  std::size_t provision_records = 0;
  std::size_t release_records = 0;
  bool torn_truncated = false;
  std::uint64_t wal_first_seq = 0;  // first record seq on disk (0 = none)
  std::uint64_t last_seq = 0;       // the WAL resumes at last_seq + 1
};

/// A groom-cache entry recovered from a WAL hold record, for pre-warming
/// the PlanCache.  Best-effort: only hold records in the replayed WAL
/// tail carry one (snapshots store plans, not cache payloads).
struct PrewarmEntry {
  GroomCacheKey key;
  std::shared_ptr<const GroomCacheValue> value;
};

struct RecoveredState {
  std::unordered_map<std::int64_t, GroomingPlan> plans;
  std::int64_t next_plan_id = 1;
  std::vector<PrewarmEntry> prewarm;
};

/// Pure recovery: snapshot load + WAL replay, no writer opened.  With
/// `repair` false the store directory is left byte-untouched (a torn
/// tail still stops replay, it just isn't truncated) — `tgroom
/// store-dump` uses that to inspect a live or dead store read-only.
RecoveredState recover_store_state(const std::string& dir,
                                   StoreRecovery* recovery, bool repair);

/// One WAL record decoded but not yet applied.  The replication follower
/// decodes each shipped record once, applies it to the live held-plan
/// table under the service's plans lock, and persists the original bytes
/// verbatim via DurableStore::append_raw — so replica WAL == primary WAL.
struct DecodedWalRecord {
  WalRecordType type = WalRecordType::kHoldPlan;
  std::int64_t plan_id = 0;
  GroomingPlan plan;             // kHoldPlan
  bool has_cache_entry = false;  // kHoldPlan: prewarm payload present
  GroomCacheKey cache_key;
  GroomCacheValue cache_value;
  std::vector<DemandPair> pairs;  // kProvision / kRelease
  bool drop_all = false;          // kRelease
  bool repair = false;            // kRelease
};

/// Decodes a record body (the part after [seq][type]).  Throws
/// StoreCorruptError on trailing bytes, like recovery replay does.
DecodedWalRecord decode_wal_record(std::uint64_t seq, WalRecordType type,
                                   std::string_view body);

/// Best-effort sidecar (`store-meta.json`) recording the active fsync
/// policy of the most recent writer; `store-dump` reports it without a
/// store-format version bump.  Reading a dir without one yields "".
void write_store_meta(const std::string& dir, FsyncPolicy fsync);
std::string read_store_meta_fsync(const std::string& dir);

class DurableStore {
 public:
  /// Recovers (creating `options.dir` if needed, repairing a torn tail)
  /// and opens a fresh WAL segment at last_seq + 1.  Throws
  /// StoreIncompatibleError on a format-version mismatch and
  /// StoreCorruptError on unrepairable damage.
  explicit DurableStore(DurableStoreOptions options);

  /// Moves the recovered table out (valid once, right after construction).
  RecoveredState take_recovered() { return std::move(recovered_); }
  const StoreRecovery& recovery() const { return recovery_; }
  StoreMetrics& metrics() { return metrics_; }

  /// Appends a hold-plan record (plan + cache-prewarm payload).  Returns
  /// the record's sequence number; pass it to sync() before acking.
  std::uint64_t append_hold(std::int64_t plan_id, const GroomingPlan& plan,
                            const GroomCacheKey& key,
                            const GroomCacheValue& value);
  /// Appends a provision record (pairs added to an existing plan).
  std::uint64_t append_provision(std::int64_t plan_id,
                                 const std::vector<DemandPair>& pairs);
  /// Appends a release record.  With `drop_all` the plan leaves the table
  /// entirely (`pairs` is ignored and encoded empty); otherwise the pairs
  /// are released through release_demands with the given repair flag.
  std::uint64_t append_release(std::int64_t plan_id,
                               const std::vector<DemandPair>& pairs,
                               bool drop_all, bool repair);
  /// Appends an already-encoded record body verbatim — the replication
  /// follower persists exactly the bytes the primary shipped, so the two
  /// stores stay byte-comparable record for record.
  std::uint64_t append_raw(WalRecordType type, std::string_view body);

  void sync(std::uint64_t seq) { wal_->sync(seq); }
  /// Forces all appended records durable (drain / shutdown path).
  void flush() { wal_->flush(); }
  /// fflush without fsync — makes appended records visible to tail_wal
  /// (replication shipping) without paying for durability.
  void flush_os() { wal_->flush_to_os(); }

  std::uint64_t last_seq() const { return wal_->last_appended_seq(); }
  const std::string& dir() const { return options_.dir; }

  /// True once snapshot_every records have been appended since the last
  /// snapshot (callers then build a SnapshotData and call
  /// write_snapshot).
  bool snapshot_due() const;

  /// Persists `snap` and compacts superseded snapshots/WAL segments.
  /// Returns false (doing nothing) if another snapshot write is in
  /// flight or `snap` does not advance past the previous one.
  bool write_snapshot(const SnapshotData& snap);

  /// Store stats object for the `stats` op / exit metrics (appends,
  /// fsyncs, batch sizes, snapshots, recovery summary).
  void write_json(JsonWriter& w) const;

  FsyncPolicy fsync_policy() const { return options_.fsync; }

 private:
  const DurableStoreOptions options_;
  StoreMetrics metrics_;
  StoreRecovery recovery_;
  RecoveredState recovered_;
  std::unique_ptr<WalWriter> wal_;

  std::mutex encode_mutex_;  // guards body_ scratch across appenders
  ByteWriter body_;

  std::mutex snapshot_mutex_;  // single snapshot writer + compactor
  std::uint64_t last_snapshot_seq_ = 0;
  std::atomic<std::uint64_t> records_appended_{0};
  std::atomic<std::uint64_t> records_at_last_snapshot_{0};
};

}  // namespace tgroom
