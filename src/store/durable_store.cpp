#include "store/durable_store.hpp"

#include <algorithm>
#include <filesystem>

#include "grooming/incremental.hpp"
#include "grooming/repair.hpp"

namespace tgroom {

namespace fs = std::filesystem;

namespace {

void apply_record(RecoveredState& state, std::uint64_t seq,
                  WalRecordType type, std::string_view body) {
  DecodedWalRecord rec = decode_wal_record(seq, type, body);
  switch (rec.type) {
    case WalRecordType::kHoldPlan: {
      if (rec.has_cache_entry) {
        state.prewarm.push_back(PrewarmEntry{
            rec.cache_key, std::make_shared<const GroomCacheValue>(
                               std::move(rec.cache_value))});
      }
      state.plans[rec.plan_id] = std::move(rec.plan);
      state.next_plan_id = std::max(state.next_plan_id, rec.plan_id + 1);
      break;
    }
    case WalRecordType::kProvision: {
      auto it = state.plans.find(rec.plan_id);
      if (it == state.plans.end()) {
        throw StoreCorruptError(
            "WAL record " + std::to_string(seq) +
            " provisions unknown plan " + std::to_string(rec.plan_id));
      }
      // Deterministic recomputation — replaying the added pairs through
      // the same placement logic reproduces the live table exactly.
      extend_plan_incremental(it->second, rec.pairs);
      break;
    }
    case WalRecordType::kRelease: {
      auto it = state.plans.find(rec.plan_id);
      if (it == state.plans.end()) {
        throw StoreCorruptError(
            "WAL record " + std::to_string(seq) +
            " releases unknown plan " + std::to_string(rec.plan_id));
      }
      if (rec.drop_all) {
        state.plans.erase(it);
      } else {
        // Same deterministic-replay contract as provisions: the record
        // logs the released pairs, release_demands recomputes the repair.
        release_demands(it->second, rec.pairs, rec.repair);
      }
      break;
    }
  }
}

}  // namespace

DecodedWalRecord decode_wal_record(std::uint64_t seq, WalRecordType type,
                                   std::string_view body) {
  DecodedWalRecord rec;
  rec.type = type;
  ByteReader r(body);
  switch (type) {
    case WalRecordType::kHoldPlan: {
      rec.plan_id = r.i64();
      rec.plan = decode_plan(r);
      rec.has_cache_entry = r.u8() != 0;
      if (rec.has_cache_entry) {
        decode_cache_entry(r, rec.cache_key, rec.cache_value);
      }
      break;
    }
    case WalRecordType::kProvision: {
      rec.plan_id = r.i64();
      rec.pairs = decode_demand_pairs(r);
      break;
    }
    case WalRecordType::kRelease: {
      rec.plan_id = r.i64();
      const std::uint8_t flags = r.u8();
      rec.drop_all = (flags & 1u) != 0;
      rec.repair = (flags & 2u) != 0;
      rec.pairs = decode_demand_pairs(r);
      break;
    }
  }
  if (!r.at_end()) {
    throw StoreCorruptError("WAL record " + std::to_string(seq) +
                            " has trailing bytes");
  }
  return rec;
}

void write_store_meta(const std::string& dir, FsyncPolicy fsync) {
  JsonWriter w;
  w.begin_object();
  w.kv("store_version", static_cast<long long>(kStoreFormatVersion));
  w.kv("fsync_policy", fsync_policy_name(fsync));
  w.end_object();
  const std::string text = w.str() + "\n";
  // Best-effort informational sidecar: recovery never reads it, so a
  // torn write here can at worst make store-dump print "unknown".
  std::FILE* f = std::fopen((dir + "/store-meta.json").c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

std::string read_store_meta_fsync(const std::string& dir) {
  std::FILE* f = std::fopen((dir + "/store-meta.json").c_str(), "rb");
  if (f == nullptr) return "";
  std::string text(256, '\0');
  const std::size_t got = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  text.resize(got);
  try {
    const JsonValue doc = parse_json(text);
    const JsonValue* policy = doc.find("fsync_policy");
    if (policy != nullptr && policy->is_string()) return policy->string;
  } catch (const CheckError&) {
    // Fall through: unreadable sidecar reads as unknown.
  }
  return "";
}

RecoveredState recover_store_state(const std::string& dir,
                                   StoreRecovery* recovery, bool repair) {
  RecoveredState state;
  StoreRecovery rec;
  std::optional<SnapshotData> snap =
      load_latest_snapshot(dir, &rec.snapshots_skipped);
  std::uint64_t after_seq = 0;
  if (snap.has_value()) {
    rec.snapshot_loaded = true;
    rec.snapshot_seq = snap->last_seq;
    after_seq = snap->last_seq;
    state.next_plan_id = snap->next_plan_id;
    state.plans.reserve(snap->plans.size());
    for (auto& [id, plan] : snap->plans) {
      state.plans[id] = std::move(plan);
    }
  }
  const WalReplayStats stats = replay_wal(
      dir, after_seq,
      [&state, &rec](std::uint64_t seq, WalRecordType type,
                     std::string_view body) {
        switch (type) {
          case WalRecordType::kHoldPlan: ++rec.hold_records; break;
          case WalRecordType::kProvision: ++rec.provision_records; break;
          case WalRecordType::kRelease: ++rec.release_records; break;
        }
        apply_record(state, seq, type, body);
      },
      repair);
  rec.wal_segments = stats.segments;
  rec.wal_records_replayed = stats.records;
  rec.wal_records_skipped = stats.records_skipped;
  rec.torn_truncated = stats.torn_truncated;
  rec.wal_first_seq = stats.first_seq;
  rec.last_seq = std::max(after_seq, stats.last_seq);
  if (recovery != nullptr) *recovery = rec;
  return state;
}

DurableStore::DurableStore(DurableStoreOptions options)
    : options_(std::move(options)) {
  TGROOM_CHECK_MSG(!options_.dir.empty(), "durable store needs a directory");
  fs::create_directories(options_.dir);
  recovered_ = recover_store_state(options_.dir, &recovery_, /*repair=*/true);
  WalOptions wal_options;
  wal_options.fsync = options_.fsync;
  wal_options.segment_bytes = options_.segment_bytes;
  wal_options.batch_bytes = options_.batch_bytes;
  wal_ = std::make_unique<WalWriter>(options_.dir, recovery_.last_seq + 1,
                                     wal_options, &metrics_);
  last_snapshot_seq_ = recovery_.snapshot_seq;
  // Replayed-but-unsnapshotted records count toward the next snapshot
  // trigger, so a crash loop cannot grow the WAL without bound.
  records_appended_.store(recovery_.last_seq - recovery_.snapshot_seq,
                          std::memory_order_relaxed);
  write_store_meta(options_.dir, options_.fsync);
}

std::uint64_t DurableStore::append_hold(std::int64_t plan_id,
                                        const GroomingPlan& plan,
                                        const GroomCacheKey& key,
                                        const GroomCacheValue& value) {
  std::lock_guard<std::mutex> lock(encode_mutex_);
  body_.clear();
  body_.i64(plan_id);
  encode_plan(body_, plan);
  body_.u8(1);
  encode_cache_entry(body_, key, value);
  const std::uint64_t seq = wal_->append(WalRecordType::kHoldPlan,
                                         body_.str());
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

std::uint64_t DurableStore::append_provision(
    std::int64_t plan_id, const std::vector<DemandPair>& pairs) {
  std::lock_guard<std::mutex> lock(encode_mutex_);
  body_.clear();
  body_.i64(plan_id);
  encode_demand_pairs(body_, pairs);
  const std::uint64_t seq =
      wal_->append(WalRecordType::kProvision, body_.str());
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

std::uint64_t DurableStore::append_release(
    std::int64_t plan_id, const std::vector<DemandPair>& pairs,
    bool drop_all, bool repair) {
  static const std::vector<DemandPair> kNone;
  std::lock_guard<std::mutex> lock(encode_mutex_);
  body_.clear();
  body_.i64(plan_id);
  body_.u8(static_cast<std::uint8_t>((drop_all ? 1u : 0u) |
                                     (repair ? 2u : 0u)));
  encode_demand_pairs(body_, drop_all ? kNone : pairs);
  const std::uint64_t seq =
      wal_->append(WalRecordType::kRelease, body_.str());
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

std::uint64_t DurableStore::append_raw(WalRecordType type,
                                       std::string_view body) {
  const std::uint64_t seq = wal_->append(type, body);
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

bool DurableStore::snapshot_due() const {
  if (options_.snapshot_every == 0) return false;
  return records_appended_.load(std::memory_order_relaxed) -
             records_at_last_snapshot_.load(std::memory_order_relaxed) >=
         options_.snapshot_every;
}

bool DurableStore::write_snapshot(const SnapshotData& snap) {
  std::unique_lock<std::mutex> lock(snapshot_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return false;  // already being written
  if (snap.last_seq == 0 || snap.last_seq <= last_snapshot_seq_) {
    return false;
  }
  // Everything the snapshot covers must be durable before the snapshot
  // can supersede (and compact away) its WAL records.
  wal_->flush();
  write_snapshot_file(options_.dir, snap);
  metrics_.snapshots_written.fetch_add(1, std::memory_order_relaxed);
  last_snapshot_seq_ = snap.last_seq;
  records_at_last_snapshot_.store(
      records_appended_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);

  // Compaction: older snapshots are strictly worse than the one just
  // written; a WAL segment is retired once every record in it is <=
  // snap.last_seq, i.e. the NEXT segment starts at or before
  // last_seq + 1.  The final (active) segment is never touched.
  for (const std::string& path : list_snapshot_files(options_.dir)) {
    if (snapshot_file_last_seq(path) < snap.last_seq) fs::remove(path);
  }
  const std::vector<std::string> segments = list_wal_segments(options_.dir);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (wal_segment_first_seq(segments[i + 1]) <= snap.last_seq + 1) {
      fs::remove(segments[i]);
      metrics_.segments_retired.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return true;
}

void DurableStore::write_json(JsonWriter& w) const {
  const long long fsyncs = metrics_.fsyncs.load(std::memory_order_relaxed);
  const long long batch_total =
      metrics_.sync_batch_total.load(std::memory_order_relaxed);
  w.begin_object();
  w.kv("fsync_policy", fsync_policy_name(options_.fsync));
  w.kv("last_seq", wal_->last_appended_seq());
  w.kv("appends", metrics_.appends.load(std::memory_order_relaxed));
  w.kv("appended_bytes",
       metrics_.appended_bytes.load(std::memory_order_relaxed));
  w.kv("fsyncs", fsyncs);
  w.kv("sync_batch_max",
       metrics_.sync_batch_max.load(std::memory_order_relaxed));
  w.kv("sync_batch_mean",
       fsyncs > 0 ? static_cast<double>(batch_total) /
                        static_cast<double>(fsyncs)
                  : 0.0);
  w.kv("snapshots_written",
       metrics_.snapshots_written.load(std::memory_order_relaxed));
  w.kv("segments_retired",
       metrics_.segments_retired.load(std::memory_order_relaxed));
  w.key("recovery");
  w.begin_object();
  w.kv("snapshot_loaded", recovery_.snapshot_loaded);
  w.kv("snapshot_seq", recovery_.snapshot_seq);
  w.kv("snapshots_skipped",
       static_cast<std::uint64_t>(recovery_.snapshots_skipped));
  w.kv("wal_segments", static_cast<std::uint64_t>(recovery_.wal_segments));
  w.kv("wal_records_replayed",
       static_cast<std::uint64_t>(recovery_.wal_records_replayed));
  w.kv("wal_records_skipped",
       static_cast<std::uint64_t>(recovery_.wal_records_skipped));
  w.kv("hold_records", static_cast<std::uint64_t>(recovery_.hold_records));
  w.kv("provision_records",
       static_cast<std::uint64_t>(recovery_.provision_records));
  w.kv("release_records",
       static_cast<std::uint64_t>(recovery_.release_records));
  w.kv("torn_truncated", recovery_.torn_truncated);
  w.kv("wal_first_seq", recovery_.wal_first_seq);
  w.kv("last_seq", recovery_.last_seq);
  w.end_object();
  w.end_object();
}

}  // namespace tgroom
