// On-disk format shared by the durable store's WAL segments and snapshots.
//
// Everything the store writes is little-endian, length-prefixed, and
// CRC32C-framed, so recovery can tell "the machine died mid-write" (a
// torn tail, truncated and survived) from "the bytes rotted" (a hard
// corruption error).  Two version numbers guard replay:
//
//  - kStoreFormatVersion: the framing + record/snapshot body layout.
//  - kFingerprintFormatVersion (graph/fingerprint.hpp): fingerprints are
//    persisted as cache-prewarm keys, and a fingerprint computed by a
//    different absorption scheme would silently mismatch every key.
//
// Both are written into every file header; a mismatch on open raises
// StoreIncompatibleError, which the service surfaces as a structured
// `store_incompatible` error instead of replaying garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "grooming/plan.hpp"
#include "service/cache.hpp"
#include "util/check.hpp"

namespace tgroom {

/// Layout version of WAL records and snapshot bodies.  v2 added the
/// kRelease WAL record (demand release with local repair) — a v1 reader
/// would replay a v2 log into the wrong held-plan table, so the bump is
/// a hard gate.
inline constexpr std::uint32_t kStoreFormatVersion = 2;

/// A store file was written by a different store or fingerprint format
/// version.  Deliberate hard stop: replaying it could only produce a
/// plausible-looking wrong held-plan table.
class StoreIncompatibleError : public CheckError {
 public:
  explicit StoreIncompatibleError(const std::string& what)
      : CheckError(what) {}
};

/// A store file is damaged somewhere recovery cannot repair (CRC failure
/// or truncation that is not the tail of the final WAL segment).
class StoreCorruptError : public CheckError {
 public:
  explicit StoreCorruptError(const std::string& what) : CheckError(what) {}
};

/// CRC32C (Castagnoli) over `size` bytes, continuing from `seed` (pass the
/// previous return value to checksum in pieces; 0 starts fresh).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

/// Append-only little-endian encoder.  The backing string is retained
/// across clear(), so a reused writer encodes without heap allocation
/// once warm (same contract as JsonWriter).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }

  void clear() { out_.clear(); }
  std::size_t size() const { return out_.size(); }
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked decoder over a borrowed buffer; any read past the end
/// throws StoreCorruptError (a framed record that decodes short is
/// damage, never a tear — tears are caught by the length prefix).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- shared body codecs ------------------------------------------------
// Used by both WAL records (hold/provision mutations) and snapshots, so
// the two paths can never disagree on a plan's byte layout.

void encode_plan(ByteWriter& w, const GroomingPlan& plan);
GroomingPlan decode_plan(ByteReader& r);

void encode_demand_pairs(ByteWriter& w, const std::vector<DemandPair>& pairs);
std::vector<DemandPair> decode_demand_pairs(ByteReader& r);

/// Groom-cache key + value payload persisted with a hold record so
/// recovery can pre-warm the PlanCache.
void encode_cache_entry(ByteWriter& w, const GroomCacheKey& key,
                        const GroomCacheValue& value);
void decode_cache_entry(ByteReader& r, GroomCacheKey& key,
                        GroomCacheValue& value);

/// Shared file-header helper: magic (8 bytes) + store version +
/// fingerprint version.  check_file_header throws StoreIncompatibleError
/// on a version mismatch and StoreCorruptError on a magic mismatch.
void write_file_header(ByteWriter& w, std::string_view magic);
void check_file_header(ByteReader& r, std::string_view magic,
                       const std::string& path);

}  // namespace tgroom
