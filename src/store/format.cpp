#include "store/format.hpp"

#include <array>

#include "graph/fingerprint.hpp"

namespace tgroom {

namespace {

// Software CRC32C, slice-by-4 over the reflected Castagnoli polynomial.
// ~1.5 GB/s on commodity cores — framing is nowhere near the WAL's fsync
// or serialization costs, so a hardware (SSE4.2) path is not worth the
// portability surface.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32cTables& crc_tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& t = crc_tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

void ByteWriter::u32(std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out_.append(buf, 4);
}

void ByteWriter::u64(std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out_.append(buf, 8);
}

void ByteReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw StoreCorruptError("store record decodes past its framed length");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

void encode_plan(ByteWriter& w, const GroomingPlan& plan) {
  w.u32(static_cast<std::uint32_t>(plan.ring_size));
  w.u32(static_cast<std::uint32_t>(plan.grooming_factor));
  w.u32(static_cast<std::uint32_t>(plan.pairs.size()));
  for (const GroomedPair& gp : plan.pairs) {
    w.u32(static_cast<std::uint32_t>(gp.pair.a));
    w.u32(static_cast<std::uint32_t>(gp.pair.b));
    w.u32(static_cast<std::uint32_t>(gp.wavelength));
    w.u32(static_cast<std::uint32_t>(gp.timeslot));
  }
}

GroomingPlan decode_plan(ByteReader& r) {
  GroomingPlan plan;
  plan.ring_size = static_cast<NodeId>(r.u32());
  plan.grooming_factor = static_cast<int>(r.u32());
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 16) {
    throw StoreCorruptError("plan pair count exceeds record size");
  }
  plan.pairs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    GroomedPair gp;
    gp.pair.a = static_cast<NodeId>(r.u32());
    gp.pair.b = static_cast<NodeId>(r.u32());
    gp.wavelength = static_cast<int>(r.u32());
    gp.timeslot = static_cast<int>(r.u32());
    plan.pairs.push_back(gp);
  }
  return plan;
}

void encode_demand_pairs(ByteWriter& w,
                         const std::vector<DemandPair>& pairs) {
  w.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const DemandPair& p : pairs) {
    w.u32(static_cast<std::uint32_t>(p.a));
    w.u32(static_cast<std::uint32_t>(p.b));
  }
}

std::vector<DemandPair> decode_demand_pairs(ByteReader& r) {
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 8) {
    throw StoreCorruptError("demand pair count exceeds record size");
  }
  std::vector<DemandPair> pairs;
  pairs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DemandPair p;
    p.a = static_cast<NodeId>(r.u32());
    p.b = static_cast<NodeId>(r.u32());
    pairs.push_back(p);
  }
  return pairs;
}

void encode_cache_entry(ByteWriter& w, const GroomCacheKey& key,
                        const GroomCacheValue& value) {
  w.u64(key.fingerprint);
  w.u32(static_cast<std::uint32_t>(key.algorithm));
  w.u32(static_cast<std::uint32_t>(key.k));
  w.u64(key.seed);
  w.u32(key.flags);
  w.i64(value.sadms);
  w.u32(static_cast<std::uint32_t>(value.wavelengths));
  w.i64(value.lower_bound);
  w.u32(static_cast<std::uint32_t>(value.parts.size()));
  for (const auto& part : value.parts) {
    w.u32(static_cast<std::uint32_t>(part.size()));
    for (EdgeId e : part) w.u32(static_cast<std::uint32_t>(e));
  }
}

void decode_cache_entry(ByteReader& r, GroomCacheKey& key,
                        GroomCacheValue& value) {
  key.fingerprint = r.u64();
  key.algorithm = static_cast<int>(r.u32());
  key.k = static_cast<int>(r.u32());
  key.seed = r.u64();
  key.flags = r.u32();
  value.sadms = r.i64();
  value.wavelengths = static_cast<int>(r.u32());
  value.lower_bound = r.i64();
  const std::uint32_t parts = r.u32();
  if (parts > r.remaining() / 4) {
    throw StoreCorruptError("cache entry part count exceeds record size");
  }
  value.parts.clear();
  value.parts.reserve(parts);
  for (std::uint32_t i = 0; i < parts; ++i) {
    const std::uint32_t len = r.u32();
    if (len > r.remaining() / 4) {
      throw StoreCorruptError("cache entry part length exceeds record size");
    }
    std::vector<EdgeId> part;
    part.reserve(len);
    for (std::uint32_t j = 0; j < len; ++j) {
      part.push_back(static_cast<EdgeId>(r.u32()));
    }
    value.parts.push_back(std::move(part));
  }
}

void write_file_header(ByteWriter& w, std::string_view magic) {
  TGROOM_CHECK(magic.size() == 8);
  w.bytes(magic.data(), magic.size());
  w.u32(kStoreFormatVersion);
  w.u32(kFingerprintFormatVersion);
}

void check_file_header(ByteReader& r, std::string_view magic,
                       const std::string& path) {
  char got[8];
  for (char& c : got) c = static_cast<char>(r.u8());
  if (std::string_view(got, 8) != magic) {
    throw StoreCorruptError(path + ": bad magic (not a tgroom store file)");
  }
  const std::uint32_t store_version = r.u32();
  const std::uint32_t fp_version = r.u32();
  if (store_version != kStoreFormatVersion) {
    throw StoreIncompatibleError(
        path + ": store format version " + std::to_string(store_version) +
        ", this build reads version " + std::to_string(kStoreFormatVersion));
  }
  if (fp_version != kFingerprintFormatVersion) {
    throw StoreIncompatibleError(
        path + ": fingerprint format version " + std::to_string(fp_version) +
        ", this build computes version " +
        std::to_string(kFingerprintFormatVersion));
  }
}

}  // namespace tgroom
