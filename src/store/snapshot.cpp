#include "store/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tgroom {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kSnapshotMagic = "TGROOMSN";
// magic(8) + versions(8) + last_seq(8) + body_len(4) + body_crc(4).
constexpr std::size_t kSnapshotHeaderBytes = 32;

std::string snapshot_path(const std::string& dir, std::uint64_t last_seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "snap-%020llu.snap",
                static_cast<unsigned long long>(last_seq));
  return dir + "/" + name;
}

void fsync_dir(const std::string& dir) {
#ifdef __unix__
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)dir;
#endif
}

SnapshotData load_snapshot_file(const std::string& path) {
  std::string data;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      throw StoreCorruptError(path + ": cannot open snapshot");
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    data.resize(static_cast<std::size_t>(size));
    const std::size_t got = std::fread(data.data(), 1, data.size(), f);
    std::fclose(f);
    if (got != data.size()) {
      throw StoreCorruptError(path + ": short read");
    }
  }
  if (data.size() < kSnapshotHeaderBytes) {
    throw StoreCorruptError(path + ": truncated snapshot header");
  }
  ByteReader header(std::string_view(data).substr(0, kSnapshotHeaderBytes));
  check_file_header(header, kSnapshotMagic, path);
  SnapshotData snap;
  snap.last_seq = header.u64();
  if (snap.last_seq != snapshot_file_last_seq(path)) {
    throw StoreCorruptError(path + ": filename does not match header seq");
  }
  const std::uint32_t body_len = header.u32();
  const std::uint32_t body_crc = header.u32();
  if (data.size() - kSnapshotHeaderBytes != body_len) {
    throw StoreCorruptError(path + ": body length mismatch");
  }
  const std::string_view body =
      std::string_view(data).substr(kSnapshotHeaderBytes);
  if (crc32c(body.data(), body.size()) != body_crc) {
    throw StoreCorruptError(path + ": body CRC mismatch");
  }
  ByteReader r(body);
  snap.next_plan_id = r.i64();
  const std::uint32_t count = r.u32();
  snap.plans.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int64_t id = r.i64();
    snap.plans.emplace_back(id, decode_plan(r));
  }
  if (!r.at_end()) {
    throw StoreCorruptError(path + ": trailing bytes after plan table");
  }
  return snap;
}

}  // namespace

std::uint64_t snapshot_file_last_seq(const std::string& path) {
  const std::string name = fs::path(path).filename().string();
  constexpr std::string_view kPrefix = "snap-";
  constexpr std::string_view kSuffix = ".snap";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return 0;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return 0;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return 0;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

std::vector<std::string> list_snapshot_files(const std::string& dir) {
  std::vector<std::string> paths;
  if (!fs::exists(dir)) return paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (snapshot_file_last_seq(path) != 0) paths.push_back(path);
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string write_snapshot_file(const std::string& dir,
                                const SnapshotData& snap) {
  ByteWriter body;
  body.i64(snap.next_plan_id);
  body.u32(static_cast<std::uint32_t>(snap.plans.size()));
  for (const auto& [id, plan] : snap.plans) {
    body.i64(id);
    encode_plan(body, plan);
  }
  ByteWriter file;
  write_file_header(file, kSnapshotMagic);
  file.u64(snap.last_seq);
  file.u32(static_cast<std::uint32_t>(body.size()));
  file.u32(crc32c(body.str().data(), body.size()));
  TGROOM_CHECK(file.size() == kSnapshotHeaderBytes);

  const std::string path = snapshot_path(dir, snap.last_seq);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  TGROOM_CHECK_MSG(f != nullptr, "cannot create snapshot: " + tmp);
  std::size_t wrote = std::fwrite(file.str().data(), 1, file.size(), f);
  wrote += std::fwrite(body.str().data(), 1, body.size(), f);
  std::fflush(f);
#ifdef __unix__
  ::fsync(fileno(f));
#endif
  std::fclose(f);
  TGROOM_CHECK_MSG(wrote == file.size() + body.size(),
                   "short write to snapshot: " + tmp);
  fs::rename(tmp, path);
  fsync_dir(dir);
  return path;
}

std::optional<SnapshotData> load_latest_snapshot(
    const std::string& dir, std::size_t* skipped_corrupt) {
  std::vector<std::string> paths = list_snapshot_files(dir);
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    try {
      return load_snapshot_file(*it);
    } catch (const StoreIncompatibleError&) {
      throw;
    } catch (const StoreCorruptError&) {
      if (skipped_corrupt != nullptr) *skipped_corrupt += 1;
    }
  }
  return std::nullopt;
}

}  // namespace tgroom
