#include "store/wal.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#ifdef __unix__
#include <unistd.h>
#endif

namespace tgroom {

namespace fs = std::filesystem;

namespace {

// magic(8) + store version(4) + fingerprint version(4) + first_seq(8).
constexpr std::size_t kSegmentHeaderBytes = 24;
constexpr std::size_t kRecordPrefixBytes = 8;  // u32 len + u32 crc
constexpr std::size_t kPayloadMinBytes = 9;    // u64 seq + u8 type
// A record longer than this is framing damage, not a real record: the
// writer rolls segments at a few MiB, so nothing legitimate approaches it.
constexpr std::uint32_t kMaxPayloadBytes = 256u << 20;

void fsync_stream(std::FILE* file) {
#ifdef __unix__
  ::fsync(fileno(file));
#else
  (void)file;
#endif
}

std::uint32_t read_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::string segment_path(const std::string& dir, std::uint64_t first_seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%020llu.log",
                static_cast<unsigned long long>(first_seq));
  return dir + "/" + name;
}

}  // namespace

const char* fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

FsyncPolicy parse_fsync_policy(const std::string& text) {
  if (text == "none") return FsyncPolicy::kNone;
  if (text == "batch") return FsyncPolicy::kBatch;
  if (text == "always") return FsyncPolicy::kAlways;
  throw CheckError("unknown fsync policy '" + text +
                   "' (expected always, batch, or none)");
}

std::uint64_t wal_segment_first_seq(const std::string& path) {
  const std::string name = fs::path(path).filename().string();
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return 0;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return 0;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return 0;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

std::vector<std::string> list_wal_segments(const std::string& dir) {
  std::vector<std::string> paths;
  if (!fs::exists(dir)) return paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (wal_segment_first_seq(path) != 0) paths.push_back(path);
  }
  // Zero-padded fixed-width sequence numbers make lexicographic order
  // equal to numeric order.
  std::sort(paths.begin(), paths.end());
  return paths;
}

WalWriter::WalWriter(std::string dir, std::uint64_t next_seq,
                     WalOptions options, StoreMetrics* metrics)
    : dir_(std::move(dir)),
      options_(options),
      metrics_(metrics),
      next_seq_(next_seq) {
  TGROOM_CHECK_MSG(next_seq >= 1, "WAL sequence numbers start at 1");
  written_seq_ = next_seq - 1;
  synced_seq_ = written_seq_;
  open_segment_locked(next_seq_);
}

WalWriter::~WalWriter() {
  try {
    flush();
  } catch (...) {
    // Destructor: nothing sensible to do beyond closing the stream.
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void WalWriter::open_segment_locked(std::uint64_t first_seq) {
  file_path_ = segment_path(dir_, first_seq);
  TGROOM_CHECK_MSG(!fs::exists(file_path_),
                   "WAL segment already exists: " + file_path_);
  file_ = std::fopen(file_path_.c_str(), "wb");
  TGROOM_CHECK_MSG(file_ != nullptr,
                   "cannot create WAL segment: " + file_path_);
  frame_.clear();
  write_file_header(frame_, kSegmentMagic);
  frame_.u64(first_seq);
  TGROOM_CHECK(frame_.size() == kSegmentHeaderBytes);
  const std::size_t wrote =
      std::fwrite(frame_.str().data(), 1, frame_.size(), file_);
  TGROOM_CHECK_MSG(wrote == frame_.size(),
                   "short write to WAL segment: " + file_path_);
  segments_.push_back(file_path_);
  segment_bytes_written_ = kSegmentHeaderBytes;
  bytes_written_total_ += kSegmentHeaderBytes;
}

void WalWriter::roll_locked(std::unique_lock<std::mutex>& lock) {
  // The caller guarantees no group-commit leader holds the current FILE*
  // outside the lock, and we keep the mutex for the whole roll.
  (void)lock;
  TGROOM_DCHECK(!sync_in_progress_);
  std::fflush(file_);
  if (options_.fsync != FsyncPolicy::kNone) {
    fsync_stream(file_);
    if (metrics_ != nullptr) {
      metrics_->fsyncs.fetch_add(1, std::memory_order_relaxed);
      const long long batch =
          static_cast<long long>(written_seq_ - synced_seq_);
      if (batch > 0) {
        metrics_->sync_batch_total.fetch_add(batch, std::memory_order_relaxed);
        long long prev_max =
            metrics_->sync_batch_max.load(std::memory_order_relaxed);
        while (batch > prev_max &&
               !metrics_->sync_batch_max.compare_exchange_weak(
                   prev_max, batch, std::memory_order_relaxed)) {
        }
      }
    }
    synced_seq_ = written_seq_;
    bytes_synced_total_ = bytes_written_total_;
  }
  std::fclose(file_);
  file_ = nullptr;
  open_segment_locked(written_seq_ + 1);
  sync_cv_.notify_all();
}

std::uint64_t WalWriter::append(WalRecordType type, std::string_view body) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t record_bytes =
      kRecordPrefixBytes + kPayloadMinBytes + body.size();
  // Roll BEFORE assigning the sequence number or touching the shared
  // frame_ scratch: waiting out a group-commit leader releases the
  // mutex, and a concurrent append must not write a later seq ahead of
  // ours or reuse frame_ under us.  Re-check fullness after every wait —
  // another thread may have rolled while we slept.
  while (segment_bytes_written_ > kSegmentHeaderBytes &&
         segment_bytes_written_ + record_bytes > options_.segment_bytes) {
    if (sync_in_progress_) {
      sync_cv_.wait(lock);
      continue;
    }
    roll_locked(lock);
  }
  frame_.clear();
  const std::uint64_t seq = next_seq_++;
  frame_.u64(seq);
  frame_.u8(static_cast<std::uint8_t>(type));
  frame_.bytes(body.data(), body.size());
  char prefix[kRecordPrefixBytes];
  const std::uint32_t len = static_cast<std::uint32_t>(frame_.size());
  const std::uint32_t crc = crc32c(frame_.str().data(), frame_.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>(len >> (8 * i));
    prefix[4 + i] = static_cast<char>(crc >> (8 * i));
  }
  std::size_t wrote = std::fwrite(prefix, 1, sizeof(prefix), file_);
  wrote += std::fwrite(frame_.str().data(), 1, frame_.size(), file_);
  TGROOM_CHECK_MSG(wrote == record_bytes,
                   "short write to WAL segment: " + file_path_);
  segment_bytes_written_ += record_bytes;
  bytes_written_total_ += record_bytes;
  written_seq_ = seq;
  if (metrics_ != nullptr) {
    metrics_->appends.fetch_add(1, std::memory_order_relaxed);
    metrics_->appended_bytes.fetch_add(static_cast<long long>(record_bytes),
                                       std::memory_order_relaxed);
  }
  return seq;
}

void WalWriter::sync_to_locked(std::unique_lock<std::mutex>& lock,
                               std::uint64_t target_seq) {
  sync_in_progress_ = true;
  const std::uint64_t prev_synced = synced_seq_;
  const std::uint64_t target_bytes = bytes_written_total_;
  std::FILE* file = file_;
  lock.unlock();
  std::fflush(file);
  fsync_stream(file);
  lock.lock();
  sync_in_progress_ = false;
  // Rolls wait for !sync_in_progress_, so nobody advanced synced_seq_
  // while we were out of the lock.
  synced_seq_ = target_seq;
  bytes_synced_total_ = target_bytes;
  if (metrics_ != nullptr) {
    metrics_->fsyncs.fetch_add(1, std::memory_order_relaxed);
    const long long batch = static_cast<long long>(target_seq - prev_synced);
    if (batch > 0) {
      metrics_->sync_batch_total.fetch_add(batch, std::memory_order_relaxed);
      long long prev_max =
          metrics_->sync_batch_max.load(std::memory_order_relaxed);
      while (batch > prev_max &&
             !metrics_->sync_batch_max.compare_exchange_weak(
                 prev_max, batch, std::memory_order_relaxed)) {
      }
    }
  }
  sync_cv_.notify_all();
}

void WalWriter::sync(std::uint64_t seq) {
  if (options_.fsync == FsyncPolicy::kNone) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (options_.fsync == FsyncPolicy::kBatch) {
    if (bytes_written_total_ - bytes_synced_total_ < options_.batch_bytes) {
      return;
    }
    if (sync_in_progress_) return;  // someone else is already flushing
    sync_to_locked(lock, written_seq_);
    return;
  }
  // kAlways: group commit.  The first waiter becomes the leader and
  // fsyncs everything written so far; later callers whose seq that fsync
  // covers just wake up and leave.
  while (synced_seq_ < seq) {
    if (sync_in_progress_) {
      sync_cv_.wait(lock);
    } else {
      sync_to_locked(lock, written_seq_);
    }
  }
}

void WalWriter::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  if (options_.fsync == FsyncPolicy::kNone) {
    std::fflush(file_);
    return;
  }
  while (synced_seq_ < written_seq_ || bytes_synced_total_ <
                                           bytes_written_total_) {
    if (sync_in_progress_) {
      sync_cv_.wait(lock);
    } else {
      sync_to_locked(lock, written_seq_);
    }
  }
}

void WalWriter::flush_to_os() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Holding the mutex keeps file_ from being closed by a roll; stdio
  // streams are internally locked, so a concurrent group-commit leader
  // fflushing the same FILE* outside our mutex is safe.
  if (file_ != nullptr) std::fflush(file_);
}

std::uint64_t WalWriter::last_appended_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_seq_;
}

std::vector<std::string> WalWriter::segment_paths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_;
}

WalReplayStats replay_wal(
    const std::string& dir, std::uint64_t after_seq,
    const std::function<void(std::uint64_t seq, WalRecordType type,
                             std::string_view body)>& callback,
    bool repair) {
  WalReplayStats stats;
  const std::vector<std::string> segments = list_wal_segments(dir);
  std::uint64_t next_expected = 0;  // 0 = not yet pinned by a header
  for (std::size_t si = 0; si < segments.size(); ++si) {
    const std::string& path = segments[si];
    const bool final_segment = (si + 1 == segments.size());
    std::string data;
    {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      TGROOM_CHECK_MSG(f != nullptr, "cannot open WAL segment: " + path);
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      std::fseek(f, 0, SEEK_SET);
      data.resize(static_cast<std::size_t>(size));
      const std::size_t got = std::fread(data.data(), 1, data.size(), f);
      std::fclose(f);
      TGROOM_CHECK_MSG(got == data.size(),
                       "short read from WAL segment: " + path);
    }
    if (data.size() < kSegmentHeaderBytes) {
      // The writer emits the 24-byte header in one buffered write, so a
      // short header means the process died before the first flush of a
      // brand-new segment — a tear, but only if this is the last file.
      if (!final_segment) {
        throw StoreCorruptError(path + ": truncated segment header");
      }
      stats.torn_truncated = true;
      if (repair) fs::remove(path);
      break;
    }
    ByteReader header(std::string_view(data).substr(0, kSegmentHeaderBytes));
    check_file_header(header, "TGROOMWL", path);
    const std::uint64_t first_seq = header.u64();
    if (first_seq != wal_segment_first_seq(path)) {
      throw StoreCorruptError(path + ": filename does not match header seq");
    }
    if (next_expected != 0 && first_seq != next_expected) {
      throw StoreCorruptError(path + ": sequence gap (expected " +
                              std::to_string(next_expected) + ", segment " +
                              "starts at " + std::to_string(first_seq) + ")");
    }
    if (next_expected == 0) next_expected = first_seq;
    stats.segments += 1;
    std::size_t pos = kSegmentHeaderBytes;
    std::size_t records_in_segment = 0;
    bool torn_here = false;
    while (pos < data.size()) {
      const std::size_t record_start = pos;
      const std::size_t avail = data.size() - pos;
      std::uint32_t len = 0;
      std::uint32_t crc = 0;
      bool whole = avail >= kRecordPrefixBytes;
      if (whole) {
        len = read_u32le(data.data() + pos);
        crc = read_u32le(data.data() + pos + 4);
        whole = len >= kPayloadMinBytes && len <= kMaxPayloadBytes &&
                avail - kRecordPrefixBytes >= len;
      }
      std::string_view payload;
      if (whole) {
        payload =
            std::string_view(data).substr(pos + kRecordPrefixBytes, len);
        whole = crc32c(payload.data(), payload.size()) == crc;
      }
      if (!whole) {
        if (!final_segment) {
          throw StoreCorruptError(path + ": damaged record at offset " +
                                  std::to_string(record_start) +
                                  " in a non-final segment");
        }
        // Torn tail: the machine died mid-append.  Everything before
        // this offset is intact; drop the tear and recover.
        stats.torn_truncated = true;
        torn_here = true;
        if (repair) {
          if (records_in_segment == 0) {
            // No whole record survives.  Delete the segment so the
            // restarted writer can reuse this first_seq filename.
            fs::remove(path);
          } else {
            fs::resize_file(path, record_start);
          }
        }
        break;
      }
      pos += kRecordPrefixBytes + len;
      ByteReader r(payload);
      const std::uint64_t seq = r.u64();
      const std::uint8_t type_byte = r.u8();
      if (seq != next_expected) {
        throw StoreCorruptError(path + ": sequence gap (expected " +
                                std::to_string(next_expected) + ", record " +
                                "has " + std::to_string(seq) + ")");
      }
      if (type_byte != static_cast<std::uint8_t>(WalRecordType::kHoldPlan) &&
          type_byte != static_cast<std::uint8_t>(WalRecordType::kProvision) &&
          type_byte != static_cast<std::uint8_t>(WalRecordType::kRelease)) {
        throw StoreCorruptError(path + ": unknown record type " +
                                std::to_string(type_byte));
      }
      next_expected = seq + 1;
      records_in_segment += 1;
      if (stats.first_seq == 0) stats.first_seq = seq;
      stats.last_seq = seq;
      if (seq <= after_seq) {
        stats.records_skipped += 1;
      } else {
        stats.records += 1;
        stats.bytes += kRecordPrefixBytes + len;
        callback(seq, static_cast<WalRecordType>(type_byte),
                 std::string_view(payload).substr(kPayloadMinBytes));
      }
    }
    if (torn_here) break;
  }
  return stats;
}

WalTailStats tail_wal(
    const std::string& dir, std::uint64_t after_seq, std::size_t max_records,
    const std::function<void(std::uint64_t seq, WalRecordType type,
                             std::string_view body)>& callback) {
  WalTailStats stats;
  stats.last_seq = after_seq;
  const std::vector<std::string> segments = list_wal_segments(dir);
  if (segments.empty()) return stats;
  stats.first_available = wal_segment_first_seq(segments.front());
  if (stats.first_available > after_seq + 1) {
    // Every record the caller still needs sat in a segment compaction has
    // already retired: no amount of polling will produce seq after_seq+1.
    stats.compacted = true;
    return stats;
  }
  // Skip segments wholly covered by after_seq: records > after_seq start
  // in the last segment whose first_seq <= after_seq + 1.
  std::size_t start = 0;
  for (std::size_t si = 1; si < segments.size(); ++si) {
    if (wal_segment_first_seq(segments[si]) <= after_seq + 1) start = si;
  }
  std::uint64_t next_expected = 0;
  for (std::size_t si = start; si < segments.size(); ++si) {
    const std::string& path = segments[si];
    const bool final_segment = (si + 1 == segments.size());
    std::string data;
    {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      if (f == nullptr) {
        // Listed a moment ago but gone now: compaction retired it while
        // we were tailing.  The records it held were <= a snapshot seq;
        // re-polling resolves to either fresh segments or `compacted`.
        stats.incomplete = true;
        return stats;
      }
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      std::fseek(f, 0, SEEK_SET);
      data.resize(static_cast<std::size_t>(size));
      const std::size_t got = std::fread(data.data(), 1, data.size(), f);
      std::fclose(f);
      TGROOM_CHECK_MSG(got == data.size(),
                       "short read from WAL segment: " + path);
    }
    if (data.size() < kSegmentHeaderBytes) {
      // The writer is still inside its first buffered flush of a fresh
      // segment.  Mid-log that would be corruption; at the live end it
      // just means "not yet".
      if (!final_segment) {
        throw StoreCorruptError(path + ": truncated segment header");
      }
      stats.incomplete = true;
      return stats;
    }
    ByteReader header(std::string_view(data).substr(0, kSegmentHeaderBytes));
    check_file_header(header, "TGROOMWL", path);
    const std::uint64_t first_seq = header.u64();
    if (first_seq != wal_segment_first_seq(path)) {
      throw StoreCorruptError(path + ": filename does not match header seq");
    }
    if (next_expected != 0 && first_seq != next_expected) {
      throw StoreCorruptError(path + ": sequence gap (expected " +
                              std::to_string(next_expected) + ", segment " +
                              "starts at " + std::to_string(first_seq) + ")");
    }
    if (next_expected == 0) next_expected = first_seq;
    std::size_t pos = kSegmentHeaderBytes;
    while (pos < data.size()) {
      const std::size_t record_start = pos;
      const std::size_t avail = data.size() - pos;
      std::uint32_t len = 0;
      std::uint32_t crc = 0;
      bool whole = avail >= kRecordPrefixBytes;
      if (whole) {
        len = read_u32le(data.data() + pos);
        crc = read_u32le(data.data() + pos + 4);
        whole = len >= kPayloadMinBytes && len <= kMaxPayloadBytes &&
                avail - kRecordPrefixBytes >= len;
      }
      std::string_view payload;
      if (whole) {
        payload =
            std::string_view(data).substr(pos + kRecordPrefixBytes, len);
        whole = crc32c(payload.data(), payload.size()) == crc;
      }
      if (!whole) {
        if (!final_segment) {
          throw StoreCorruptError(path + ": damaged record at offset " +
                                  std::to_string(record_start) +
                                  " in a non-final segment");
        }
        // The live writer is mid-append (or the bytes are still in its
        // stdio buffer).  Never truncate a file we don't own: report
        // incomplete and let the caller poll again.
        stats.incomplete = true;
        return stats;
      }
      pos += kRecordPrefixBytes + len;
      ByteReader r(payload);
      const std::uint64_t seq = r.u64();
      const std::uint8_t type_byte = r.u8();
      if (seq != next_expected) {
        throw StoreCorruptError(path + ": sequence gap (expected " +
                                std::to_string(next_expected) + ", record " +
                                "has " + std::to_string(seq) + ")");
      }
      if (type_byte != static_cast<std::uint8_t>(WalRecordType::kHoldPlan) &&
          type_byte != static_cast<std::uint8_t>(WalRecordType::kProvision) &&
          type_byte != static_cast<std::uint8_t>(WalRecordType::kRelease)) {
        throw StoreCorruptError(path + ": unknown record type " +
                                std::to_string(type_byte));
      }
      next_expected = seq + 1;
      if (seq > after_seq) {
        callback(seq, static_cast<WalRecordType>(type_byte),
                 std::string_view(payload).substr(kPayloadMinBytes));
        stats.records += 1;
        stats.last_seq = seq;
        if (max_records != 0 && stats.records >= max_records) return stats;
      }
    }
  }
  return stats;
}

bool wal_record_crc(const std::string& dir, std::uint64_t seq,
                    std::uint32_t& crc) {
  if (seq == 0) return false;
  bool found = false;
  std::uint32_t out = 0;
  tail_wal(dir, seq - 1, 1,
           [&](std::uint64_t got, WalRecordType type, std::string_view body) {
             if (got != seq) return;
             // Re-derive crc32c(payload): the framed payload is
             // [u64 seq][u8 type][body], encoded little-endian exactly as
             // ByteWriter lays it out.
             ByteWriter prefix;
             prefix.u64(got);
             prefix.u8(static_cast<std::uint8_t>(type));
             out = crc32c(prefix.str().data(), prefix.str().size());
             out = crc32c(body.data(), body.size(), out);
             found = true;
           });
  if (!found) return false;
  crc = out;
  return true;
}

}  // namespace tgroom
