// Point-in-time snapshots of the service's held-plan table.
//
// A snapshot file `snap-<last_seq>.snap` captures every held plan and
// the next plan id as of WAL sequence `last_seq`; recovery loads the
// newest valid snapshot and replays only WAL records with seq >
// last_seq.  Files are written to a `.tmp` sibling, fsynced, then
// renamed into place (and the directory fsynced), so a crash mid-write
// can never shadow an older good snapshot with a half-written one.
// Loading walks snapshots newest-first and falls back across corrupt
// files; a snapshot from another format version is a hard
// StoreIncompatibleError, never a silent skip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "store/format.hpp"

namespace tgroom {

struct SnapshotData {
  /// WAL sequence number this snapshot covers (replay resumes after it).
  std::uint64_t last_seq = 0;
  std::int64_t next_plan_id = 1;
  /// Held plans sorted by ascending plan id (writers sort, the loader
  /// checks nothing — the map insertion order is irrelevant).
  std::vector<std::pair<std::int64_t, GroomingPlan>> plans;
};

/// Writes `snap` into `dir` atomically (tmp + fsync + rename + dir
/// fsync) and returns the final path.
std::string write_snapshot_file(const std::string& dir,
                                const SnapshotData& snap);

/// Loads the newest snapshot in `dir` that passes CRC and framing
/// checks, skipping corrupt ones (counted into `*skipped_corrupt` when
/// non-null).  Returns nullopt if the directory holds no usable
/// snapshot.  Throws StoreIncompatibleError if a candidate was written
/// by a different store or fingerprint format version.
std::optional<SnapshotData> load_latest_snapshot(const std::string& dir,
                                                 std::size_t* skipped_corrupt);

/// Snapshot file paths in `dir`, sorted oldest-first (filename order).
std::vector<std::string> list_snapshot_files(const std::string& dir);

/// The last_seq encoded in a snapshot filename, or 0 if the name is not
/// a snapshot file.
std::uint64_t snapshot_file_last_seq(const std::string& path);

}  // namespace tgroom
