// Append-only write-ahead log of provisioning mutations.
//
// The log is a directory of segment files named `wal-<first_seq>.log`.
// Each segment starts with a versioned header (format.hpp) carrying the
// sequence number of its first record; records are framed as
//
//   [u32 payload_len][u32 crc32c(payload)][payload]
//   payload = [u64 seq][u8 record_type][type-specific body]
//
// Sequence numbers are monotonic from 1 across segments with no gaps, so
// replay can verify it saw every mutation.  Durability is tiered by
// FsyncPolicy:
//
//  - kAlways: sync(seq) blocks until an fsync covers seq.  Concurrent
//    callers group-commit — one leader fsyncs for everyone waiting, so
//    the fsync count stays far below the append count under load.
//  - kBatch: appends accumulate; a sync triggers fflush+fsync only once
//    `batch_bytes` of unsynced data has built up (flush() forces one).
//  - kNone: data reaches the kernel only via stdio's own buffering;
//    flush() still fflushes so a clean shutdown loses nothing.
//
// Replay distinguishes a *torn tail* (the machine died mid-append: the
// final records of the final segment are short or fail CRC) from hard
// corruption (the same damage anywhere else).  Tears are truncated away
// and recovery proceeds; corruption raises StoreCorruptError.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "store/format.hpp"

namespace tgroom {

enum class FsyncPolicy { kNone, kBatch, kAlways };

const char* fsync_policy_name(FsyncPolicy policy);
/// Parses "none" / "batch" / "always"; throws CheckError otherwise.
FsyncPolicy parse_fsync_policy(const std::string& text);

enum class WalRecordType : std::uint8_t {
  kHoldPlan = 1,   // body: i64 plan_id, plan, cache entry (prewarm payload)
  kProvision = 2,  // body: i64 plan_id, demand pairs appended to that plan
  kRelease = 3,    // body: i64 plan_id, u8 flags (bit0 = drop whole plan,
                   // bit1 = local repair), demand pairs released
};

/// Counters shared by the WAL writer, snapshotter, and compactor; read by
/// the service's stats op.  Relaxed atomics, same discipline as
/// ServiceMetrics.
struct StoreMetrics {
  std::atomic<long long> appends{0};
  std::atomic<long long> appended_bytes{0};
  std::atomic<long long> fsyncs{0};
  /// Records covered per fsync (sum and max) — the group-commit batch
  /// size distribution.  total / fsyncs = mean batch.
  std::atomic<long long> sync_batch_total{0};
  std::atomic<long long> sync_batch_max{0};
  std::atomic<long long> snapshots_written{0};
  std::atomic<long long> segments_retired{0};
};

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Roll to a new segment once the current one exceeds this size.
  std::uint64_t segment_bytes = 4ull << 20;
  /// kBatch: fsync once this many unsynced bytes accumulate.
  std::uint64_t batch_bytes = 64ull << 10;
};

class WalWriter {
 public:
  /// Opens a fresh segment `wal-<next_seq>.log` in `dir` (which must
  /// exist).  `next_seq` is the sequence number the first append gets —
  /// recovery passes last replayed seq + 1 so the writer never touches
  /// old segments.
  WalWriter(std::string dir, std::uint64_t next_seq, WalOptions options,
            StoreMetrics* metrics);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and returns its sequence number.  Thread-safe.
  /// The record is in stdio buffers after this call; call sync() with the
  /// returned seq to make it durable under the configured policy.
  std::uint64_t append(WalRecordType type, std::string_view body);

  /// Applies the fsync policy for a record previously appended as `seq`:
  /// kAlways blocks until an fsync covers it (group-committing with
  /// concurrent callers), kBatch fsyncs only past the byte threshold,
  /// kNone is a no-op.
  void sync(std::uint64_t seq);

  /// Forces everything appended so far to disk (fflush always; fsync
  /// unless the policy is kNone).  Used at snapshot, drain, and shutdown.
  void flush();

  /// Pushes stdio-buffered appends into the OS page cache (fflush only,
  /// no fsync, no durability bookkeeping).  The replication shipper calls
  /// this before tailing the live segment so tail_wal sees every acked
  /// record even under fsync=batch/none; it deliberately does not count
  /// as a sync for the fsync policy.
  void flush_to_os();

  std::uint64_t last_appended_seq() const;
  /// Segment files written by this writer, oldest first (for compaction).
  std::vector<std::string> segment_paths() const;

 private:
  void open_segment_locked(std::uint64_t first_seq);
  void roll_locked(std::unique_lock<std::mutex>& lock);
  void sync_to_locked(std::unique_lock<std::mutex>& lock,
                      std::uint64_t target_seq);

  const std::string dir_;
  const WalOptions options_;
  StoreMetrics* const metrics_;

  mutable std::mutex mutex_;
  std::condition_variable sync_cv_;
  std::FILE* file_ = nullptr;
  std::string file_path_;
  std::vector<std::string> segments_;
  std::uint64_t segment_bytes_written_ = 0;
  std::uint64_t next_seq_;
  std::uint64_t written_seq_ = 0;  // last appended
  std::uint64_t synced_seq_ = 0;   // last covered by an fsync
  std::uint64_t bytes_written_total_ = 0;
  std::uint64_t bytes_synced_total_ = 0;
  bool sync_in_progress_ = false;
  ByteWriter frame_;  // reused append scratch

  static constexpr std::string_view kSegmentMagic = "TGROOMWL";
  friend struct WalReplayAccess;
};

struct WalReplayStats {
  std::size_t segments = 0;
  std::size_t records = 0;          // delivered to the callback
  std::size_t records_skipped = 0;  // seq <= after_seq (covered by snapshot)
  std::uint64_t bytes = 0;
  bool torn_truncated = false;
  std::uint64_t first_seq = 0;  // first record seq present on disk (0 = none)
  std::uint64_t last_seq = 0;   // 0 if nothing replayed or skipped
};

/// Replays every record with seq > after_seq from the segments in `dir`,
/// in sequence order, into `callback(seq, type, body)`.
///
/// A short or CRC-failing record at the tail of the *final* segment is a
/// torn write: replay stops there and, when `repair` is true, truncates
/// the segment back to the last whole record (deleting the segment
/// entirely if no records survive, so a restarted writer can reuse the
/// sequence-numbered filename).  The same damage in any non-final
/// segment, a sequence gap, or a bad header raises StoreCorruptError;
/// a header from another format version raises StoreIncompatibleError.
WalReplayStats replay_wal(
    const std::string& dir, std::uint64_t after_seq,
    const std::function<void(std::uint64_t seq, WalRecordType type,
                             std::string_view body)>& callback,
    bool repair);

struct WalTailStats {
  std::size_t records = 0;            // delivered to the callback
  std::uint64_t last_seq = 0;         // cursor after the call (>= after_seq)
  bool incomplete = false;            // live tail mid-append: poll again
  std::uint64_t first_available = 0;  // first seq on disk (0 = no segments)
  bool compacted = false;  // after_seq predates first_available: the caller
                           // needs a snapshot bootstrap, not more records
};

/// Read-only tail of a *live* log: delivers up to `max_records` whole
/// records with seq > after_seq, in order, into `callback(seq, type,
/// body)` and never mutates any file.  Where replay_wal treats a short or
/// CRC-failing record at the end of the final segment as a torn write to
/// truncate, a live log reaches that exact byte state on every append the
/// writer has started but not finished — so tail_wal reports it as
/// `incomplete` (re-poll once the writer flushes more bytes).  A segment
/// that vanishes between listing and open (compaction race) is also just
/// `incomplete`.  Damage in a non-final segment, sequence gaps, and bad
/// headers raise StoreCorruptError exactly like replay; foreign format
/// versions raise StoreIncompatibleError.  `max_records == 0` means
/// unlimited.  Segments wholly covered by after_seq are skipped without
/// being read.
WalTailStats tail_wal(
    const std::string& dir, std::uint64_t after_seq, std::size_t max_records,
    const std::function<void(std::uint64_t seq, WalRecordType type,
                             std::string_view body)>& callback);

/// CRC32C of the framed payload ([seq][type][body]) of record `seq`,
/// read from `dir`'s segments — exactly the checksum the writer framed
/// the record with, so two WALs agree on it iff they hold byte-identical
/// records at that seq.  Returns false when the record is absent
/// (compacted away, beyond the tail, or still incomplete on disk).  The
/// replication handshake compares this across nodes to detect a
/// diverged history before appending past it.
bool wal_record_crc(const std::string& dir, std::uint64_t seq,
                    std::uint32_t& crc);

/// Segment paths in `dir`, sorted by first sequence number (filename
/// order).  Shared by replay, tailing, and compaction.
std::vector<std::string> list_wal_segments(const std::string& dir);

/// First sequence number encoded in a segment filename, or 0 if the name
/// is not a WAL segment.
std::uint64_t wal_segment_first_seq(const std::string& path);

}  // namespace tgroom
