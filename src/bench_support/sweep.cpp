#include "bench_support/sweep.hpp"

#include <limits>

#include "grooming/batch.hpp"

namespace tgroom {

SweepResult run_sweep(const WorkloadSpec& workload,
                      const std::vector<AlgorithmId>& algorithms,
                      const SweepConfig& config) {
  TGROOM_CHECK(config.seeds >= 1);
  SweepResult result;
  result.workload = workload;
  result.config = config;
  result.series.resize(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    result.series[a].algorithm = algorithms[a];
    result.series[a].cells.assign(config.grooming_factors.size(),
                                  SweepCell{});
    for (auto& cell : result.series[a].cells) {
      cell.min_sadms = std::numeric_limits<double>::infinity();
      cell.max_sadms = -std::numeric_limits<double>::infinity();
    }
  }

  const std::size_t seeds = static_cast<std::size_t>(config.seeds);
  const std::size_t algo_count = algorithms.size();
  const std::size_t k_count = config.grooming_factors.size();

  // One traffic graph per seed, shared by that seed's (algorithm, k) cells.
  // Each slot is written by exactly one index, so parallel generation stays
  // deterministic.
  std::vector<Graph> graphs(seeds);
  {
    ThreadPool pool(config.workers);
    pool.parallel_for_index(seeds, [&](std::size_t seed_index) {
      Rng rng(config.base_seed + seed_index);
      graphs[seed_index] = make_workload(workload, rng);
    });
  }

  // Flat (seed, algorithm, k) cell grid; the per-cell option seed formula
  // is pinned by the regression suite — keep it in sync with older sweeps.
  std::vector<BatchCell> cells;
  cells.reserve(seeds * algo_count * k_count);
  for (std::size_t s = 0; s < seeds; ++s) {
    for (std::size_t a = 0; a < algo_count; ++a) {
      for (std::size_t ki = 0; ki < k_count; ++ki) {
        BatchCell cell;
        cell.graph = &graphs[s];
        cell.algorithm = algorithms[a];
        cell.k = config.grooming_factors[ki];
        cell.options = config.options;
        cell.options.seed = config.base_seed ^ (s * 7919 + ki);
        cells.push_back(cell);
      }
    }
  }

  BatchGroomer groomer(
      BatchConfig{config.workers, /*validate=*/true,
                  /*keep_partitions=*/false});
  std::vector<BatchCellResult> cell_results = groomer.run(cells);

  // Aggregate in ascending seed order per (algorithm, k) cell so the double
  // sums are bit-identical for every worker count.
  double edge_total = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    edge_total += static_cast<double>(graphs[s].real_edge_count());
  }
  for (std::size_t a = 0; a < algo_count; ++a) {
    for (std::size_t ki = 0; ki < k_count; ++ki) {
      SweepCell& agg = result.series[a].cells[ki];
      for (std::size_t s = 0; s < seeds; ++s) {
        const BatchCellResult& one =
            cell_results[(s * algo_count + a) * k_count + ki];
        const double sadms = static_cast<double>(one.sadms);
        agg.mean_sadms += sadms;
        agg.mean_wavelengths += static_cast<double>(one.wavelengths);
        agg.mean_lower_bound += static_cast<double>(one.lower_bound);
        agg.min_sadms = std::min(agg.min_sadms, sadms);
        agg.max_sadms = std::max(agg.max_sadms, sadms);
      }
    }
  }

  const double denom = static_cast<double>(config.seeds);
  result.mean_edges = edge_total / denom;
  for (auto& series : result.series) {
    for (auto& cell : series.cells) {
      cell.mean_sadms /= denom;
      cell.mean_wavelengths /= denom;
      cell.mean_lower_bound /= denom;
    }
  }
  return result;
}

}  // namespace tgroom
