#include "bench_support/sweep.hpp"

#include <limits>
#include <mutex>

namespace tgroom {

SweepResult run_sweep(const WorkloadSpec& workload,
                      const std::vector<AlgorithmId>& algorithms,
                      const SweepConfig& config) {
  TGROOM_CHECK(config.seeds >= 1);
  SweepResult result;
  result.workload = workload;
  result.config = config;
  result.series.resize(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    result.series[a].algorithm = algorithms[a];
    result.series[a].cells.assign(config.grooming_factors.size(),
                                  SweepCell{});
    for (auto& cell : result.series[a].cells) {
      cell.min_sadms = std::numeric_limits<double>::infinity();
      cell.max_sadms = -std::numeric_limits<double>::infinity();
    }
  }

  std::mutex merge_mutex;
  double edge_total = 0;

  auto run_seed = [&](std::size_t seed_index) {
    Rng rng(config.base_seed + seed_index);
    Graph traffic = make_workload(workload, rng);

    // Local accumulation, merged under the lock at the end.
    std::vector<std::vector<SweepCell>> local(
        algorithms.size(),
        std::vector<SweepCell>(config.grooming_factors.size()));
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      for (std::size_t ki = 0; ki < config.grooming_factors.size(); ++ki) {
        int k = config.grooming_factors[ki];
        GroomingOptions options = config.options;
        options.seed = config.base_seed ^ (seed_index * 7919 + ki);
        EdgePartition partition =
            run_algorithm(algorithms[a], traffic, k, options);
        PartitionValidation valid = validate_partition(traffic, partition);
        TGROOM_CHECK_MSG(valid.ok, std::string("sweep produced an invalid "
                                               "partition: ") +
                                       valid.reason);
        SweepCell& cell = local[a][ki];
        cell.mean_sadms = static_cast<double>(sadm_cost(traffic, partition));
        cell.mean_wavelengths =
            static_cast<double>(partition.wavelength_count());
        cell.mean_lower_bound =
            static_cast<double>(partition_cost_lower_bound(traffic, k));
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    edge_total += static_cast<double>(traffic.real_edge_count());
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      for (std::size_t ki = 0; ki < config.grooming_factors.size(); ++ki) {
        SweepCell& agg = result.series[a].cells[ki];
        const SweepCell& one = local[a][ki];
        agg.mean_sadms += one.mean_sadms;
        agg.mean_wavelengths += one.mean_wavelengths;
        agg.mean_lower_bound += one.mean_lower_bound;
        agg.min_sadms = std::min(agg.min_sadms, one.mean_sadms);
        agg.max_sadms = std::max(agg.max_sadms, one.mean_sadms);
      }
    }
  };

  ThreadPool pool(config.workers);
  pool.parallel_for_index(static_cast<std::size_t>(config.seeds), run_seed);

  const double denom = static_cast<double>(config.seeds);
  result.mean_edges = edge_total / denom;
  for (auto& series : result.series) {
    for (auto& cell : series.cells) {
      cell.mean_sadms /= denom;
      cell.mean_wavelengths /= denom;
      cell.mean_lower_bound /= denom;
    }
  }
  return result;
}

}  // namespace tgroom
