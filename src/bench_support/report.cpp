#include "bench_support/report.hpp"

#include "util/csv.hpp"

namespace tgroom {

TextTable sweep_table(const SweepResult& result, const std::string& title) {
  TextTable table(title + "  [" + workload_label(result.workload) + ", m≈" +
                  TextTable::num(result.mean_edges, 1) + ", " +
                  std::to_string(result.config.seeds) + " seeds]");
  std::vector<std::string> header{"k"};
  for (const auto& series : result.series) {
    header.push_back(algorithm_name(series.algorithm));
  }
  header.push_back("LB");
  table.set_header(std::move(header));

  for (std::size_t ki = 0; ki < result.config.grooming_factors.size(); ++ki) {
    std::vector<std::string> row{
        std::to_string(result.config.grooming_factors[ki])};
    for (const auto& series : result.series) {
      row.push_back(TextTable::num(series.cells[ki].mean_sadms, 1));
    }
    row.push_back(
        TextTable::num(result.series.front().cells[ki].mean_lower_bound, 1));
    table.add_row(std::move(row));
  }
  return table;
}

void write_sweep_csv(const SweepResult& result, const std::string& path) {
  CsvWriter csv(path);
  csv.write_row({"workload", "k", "algorithm", "mean_sadms", "min_sadms",
                 "max_sadms", "mean_wavelengths", "mean_lower_bound"});
  for (const auto& series : result.series) {
    for (std::size_t ki = 0; ki < result.config.grooming_factors.size();
         ++ki) {
      const SweepCell& cell = series.cells[ki];
      csv.write_row({workload_label(result.workload),
                     std::to_string(result.config.grooming_factors[ki]),
                     algorithm_name(series.algorithm),
                     TextTable::num(cell.mean_sadms, 3),
                     TextTable::num(cell.min_sadms, 1),
                     TextTable::num(cell.max_sadms, 1),
                     TextTable::num(cell.mean_wavelengths, 3),
                     TextTable::num(cell.mean_lower_bound, 3)});
    }
  }
}

}  // namespace tgroom
