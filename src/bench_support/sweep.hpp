// Sweep runner: evaluates a set of algorithms over (workload seed ×
// grooming factor) grids and aggregates SADM counts — the engine behind
// the Figure 4 / Figure 5 reproductions.
#pragma once

#include <vector>

#include "algorithms/algorithm.hpp"
#include "bench_support/workload.hpp"
#include "util/thread_pool.hpp"

namespace tgroom {

struct SweepConfig {
  std::vector<int> grooming_factors{4, 8, 12, 16, 20, 24, 28, 32, 40, 48};
  int seeds = 20;
  std::uint64_t base_seed = 20060101;  // ICPP 2006 vintage
  GroomingOptions options;
  std::size_t workers = 0;  // 0 = run inline
};

struct SweepCell {
  double mean_sadms = 0;
  double min_sadms = 0;
  double max_sadms = 0;
  double mean_wavelengths = 0;
  double mean_lower_bound = 0;  // partition_cost_lower_bound average
};

struct SweepSeries {
  AlgorithmId algorithm;
  std::vector<SweepCell> cells;  // one per grooming factor
};

struct SweepResult {
  WorkloadSpec workload;
  SweepConfig config;
  double mean_edges = 0;
  std::vector<SweepSeries> series;
};

/// For each seed one traffic graph is generated and shared across all
/// (algorithm, k) cells, mirroring the paper's per-instance comparisons.
/// Every produced partition is validated; invalid output throws.
SweepResult run_sweep(const WorkloadSpec& workload,
                      const std::vector<AlgorithmId>& algorithms,
                      const SweepConfig& config);

}  // namespace tgroom
