// Rendering sweep results as the paper's figure series (text tables and
// CSV exports).
#pragma once

#include <string>

#include "bench_support/sweep.hpp"
#include "util/table.hpp"

namespace tgroom {

/// Rows = grooming factors, columns = algorithms (mean SADMs), plus the
/// average lower bound column for context.
TextTable sweep_table(const SweepResult& result, const std::string& title);

/// Writes the same data as CSV: workload, k, algorithm, mean/min/max SADMs,
/// wavelengths, lower bound.
void write_sweep_csv(const SweepResult& result, const std::string& path);

}  // namespace tgroom
