#include "bench_support/workload.hpp"

#include <sstream>

#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"

namespace tgroom {

WorkloadSpec WorkloadSpec::dense(NodeId n, double d) {
  WorkloadSpec spec;
  spec.kind = Kind::kDenseRatio;
  spec.n = n;
  spec.dense_ratio = d;
  return spec;
}

WorkloadSpec WorkloadSpec::regular(NodeId n, NodeId r) {
  WorkloadSpec spec;
  spec.kind = Kind::kRegular;
  spec.n = n;
  spec.r = r;
  return spec;
}

WorkloadSpec WorkloadSpec::all_to_all(NodeId n) {
  WorkloadSpec spec;
  spec.kind = Kind::kAllToAll;
  spec.n = n;
  return spec;
}

Graph make_workload(const WorkloadSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case WorkloadSpec::Kind::kDenseRatio:
      return random_dense_ratio(spec.n, spec.dense_ratio, rng);
    case WorkloadSpec::Kind::kRegular:
      return random_regular(spec.n, spec.r, rng);
    case WorkloadSpec::Kind::kAllToAll:
      return complete_graph(spec.n);
  }
  TGROOM_CHECK_MSG(false, "unknown workload kind");
  return Graph{};
}

std::string workload_label(const WorkloadSpec& spec) {
  std::ostringstream os;
  switch (spec.kind) {
    case WorkloadSpec::Kind::kDenseRatio:
      os << "n=" << spec.n << " d=" << spec.dense_ratio;
      break;
    case WorkloadSpec::Kind::kRegular:
      os << "n=" << spec.n << " r=" << spec.r;
      break;
    case WorkloadSpec::Kind::kAllToAll:
      os << "n=" << spec.n << " all-to-all";
      break;
  }
  return os.str();
}

}  // namespace tgroom
