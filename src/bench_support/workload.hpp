// Workload specifications for experiments: the paper's two instance
// families plus deterministic families for ablations.
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace tgroom {

struct WorkloadSpec {
  enum class Kind { kDenseRatio, kRegular, kAllToAll };
  Kind kind = Kind::kDenseRatio;
  NodeId n = 36;
  double dense_ratio = 0.5;  // kDenseRatio
  NodeId r = 8;              // kRegular

  static WorkloadSpec dense(NodeId n, double d);
  static WorkloadSpec regular(NodeId n, NodeId r);
  static WorkloadSpec all_to_all(NodeId n);
};

/// Instantiates the workload's traffic graph for one seed.
Graph make_workload(const WorkloadSpec& spec, Rng& rng);

/// Human-readable label, e.g. "n=36 d=0.5" or "n=36 r=7".
std::string workload_label(const WorkloadSpec& spec);

}  // namespace tgroom
