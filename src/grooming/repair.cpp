#include "grooming/repair.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "partition/cover_transform.hpp"

namespace tgroom {

namespace {

/// Renumbers wavelengths so empty ones disappear, preserving the relative
/// order of the non-empty ones.
void compact_wavelengths(GroomingPlan& plan) {
  const int wavelengths = plan.wavelength_count();
  if (wavelengths == 0) return;
  std::vector<bool> occupied(static_cast<std::size_t>(wavelengths), false);
  for (const GroomedPair& gp : plan.pairs) {
    occupied[static_cast<std::size_t>(gp.wavelength)] = true;
  }
  std::vector<int> remap(static_cast<std::size_t>(wavelengths), -1);
  int next = 0;
  for (int w = 0; w < wavelengths; ++w) {
    if (occupied[static_cast<std::size_t>(w)]) {
      remap[static_cast<std::size_t>(w)] = next++;
    }
  }
  for (GroomedPair& gp : plan.pairs) {
    gp.wavelength = remap[static_cast<std::size_t>(gp.wavelength)];
  }
}

/// Moves circuits off the affected wavelengths whenever the move strictly
/// lowers the total SADM count.  Every committed move lowers it by at
/// least one, so the fixpoint loop terminates.
void repair_affected(GroomingPlan& plan, const std::set<int>& affected,
                     ReleaseStats& stats) {
  const int k = plan.grooming_factor;
  const int wavelengths = plan.wavelength_count();
  if (wavelengths == 0 || affected.empty()) return;

  // Occupancy model kept in lockstep with the plan: per-wavelength slot
  // usage and per-wavelength SADM site reference counts.
  std::vector<std::vector<bool>> slot_used(
      static_cast<std::size_t>(wavelengths),
      std::vector<bool>(static_cast<std::size_t>(k), false));
  std::vector<std::map<NodeId, int>> site_refs(
      static_cast<std::size_t>(wavelengths));
  for (const GroomedPair& gp : plan.pairs) {
    auto w = static_cast<std::size_t>(gp.wavelength);
    slot_used[w][static_cast<std::size_t>(gp.timeslot)] = true;
    ++site_refs[w][gp.pair.a];
    ++site_refs[w][gp.pair.b];
  }
  std::vector<int> free_slots(static_cast<std::size_t>(wavelengths), 0);
  for (int w = 0; w < wavelengths; ++w) {
    for (int s = 0; s < k; ++s) {
      if (!slot_used[static_cast<std::size_t>(w)]
                    [static_cast<std::size_t>(s)]) {
        ++free_slots[static_cast<std::size_t>(w)];
      }
    }
  }
  auto ref_count = [&](int w, NodeId node) {
    const auto& refs = site_refs[static_cast<std::size_t>(w)];
    auto it = refs.find(node);
    return it == refs.end() ? 0 : it->second;
  };

  bool moved = true;
  while (moved) {
    moved = false;
    // Candidate circuits on affected wavelengths, in a fixed total order
    // (wavelength, timeslot, endpoints) so repair is deterministic.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < plan.pairs.size(); ++i) {
      if (affected.count(plan.pairs[i].wavelength) != 0) {
        candidates.push_back(i);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t x, std::size_t y) {
                const GroomedPair& a = plan.pairs[x];
                const GroomedPair& b = plan.pairs[y];
                return std::tie(a.wavelength, a.timeslot, a.pair.a,
                                a.pair.b) <
                       std::tie(b.wavelength, b.timeslot, b.pair.a,
                                b.pair.b);
              });
    for (std::size_t idx : candidates) {
      GroomedPair& gp = plan.pairs[idx];
      const int w = gp.wavelength;
      // SADMs freed at the source if this circuit leaves: endpoints no
      // other circuit on w terminates at.
      const int freed = (ref_count(w, gp.pair.a) == 1 ? 1 : 0) +
                        (ref_count(w, gp.pair.b) == 1 ? 1 : 0);
      if (freed == 0) continue;
      int best = -1;
      int best_cost = freed;  // strict improvement only: cost < freed
      for (int w2 = 0; w2 < wavelengths; ++w2) {
        if (w2 == w || free_slots[static_cast<std::size_t>(w2)] == 0) {
          continue;
        }
        const int cost = (ref_count(w2, gp.pair.a) > 0 ? 0 : 1) +
                         (ref_count(w2, gp.pair.b) > 0 ? 0 : 1);
        if (cost < best_cost) {
          best_cost = cost;
          best = w2;
          if (cost == 0) break;
        }
      }
      if (best < 0) continue;
      // Commit the move: free the source slot/sites, take the lowest
      // free slot at the target.
      auto src = static_cast<std::size_t>(w);
      auto dst = static_cast<std::size_t>(best);
      slot_used[src][static_cast<std::size_t>(gp.timeslot)] = false;
      ++free_slots[src];
      for (NodeId node : {gp.pair.a, gp.pair.b}) {
        if (--site_refs[src][node] == 0) site_refs[src].erase(node);
      }
      int slot = 0;
      while (slot_used[dst][static_cast<std::size_t>(slot)]) ++slot;
      slot_used[dst][static_cast<std::size_t>(slot)] = true;
      --free_slots[dst];
      ++site_refs[dst][gp.pair.a];
      ++site_refs[dst][gp.pair.b];
      gp.wavelength = best;
      gp.timeslot = slot;
      ++stats.repair_moves;
      moved = true;
    }
  }
}

}  // namespace

ReleaseStats release_demands(GroomingPlan& plan,
                             const std::vector<DemandPair>& remove,
                             bool repair) {
  ReleaseStats stats;
  TGROOM_CHECK(plan.grooming_factor >= 1);
  const long long sadms_before = plan_sadm_count(plan);
  const int wavelengths_before = plan.wavelength_count();

  // Locate every victim before mutating, so a bad release (pair not in
  // the plan) leaves the plan untouched.  Each removed pair claims the
  // lowest (wavelength, timeslot) match, which makes duplicate demands
  // release in a fixed order — WAL replay depends on that.
  std::vector<std::size_t> victims;
  std::vector<bool> claimed(plan.pairs.size(), false);
  victims.reserve(remove.size());
  for (DemandPair pair : remove) {
    if (pair.a > pair.b) std::swap(pair.a, pair.b);
    TGROOM_CHECK_MSG(pair.a >= 0 && pair.b < plan.ring_size &&
                         pair.a != pair.b,
                     "released demand outside the ring");
    std::size_t best = plan.pairs.size();
    for (std::size_t i = 0; i < plan.pairs.size(); ++i) {
      if (claimed[i] || plan.pairs[i].pair != pair) continue;
      if (best == plan.pairs.size() ||
          std::tie(plan.pairs[i].wavelength, plan.pairs[i].timeslot) <
              std::tie(plan.pairs[best].wavelength,
                       plan.pairs[best].timeslot)) {
        best = i;
      }
    }
    TGROOM_CHECK_MSG(best < plan.pairs.size(),
                     "released demand is not in the plan");
    claimed[best] = true;
    victims.push_back(best);
  }

  std::set<int> affected;
  for (std::size_t i : victims) affected.insert(plan.pairs[i].wavelength);
  std::sort(victims.begin(), victims.end(),
            std::greater<std::size_t>());
  for (std::size_t i : victims) {
    plan.pairs.erase(plan.pairs.begin() + static_cast<std::ptrdiff_t>(i));
    ++stats.released;
  }

  if (repair) repair_affected(plan, affected, stats);
  compact_wavelengths(plan);

  stats.sadms_removed = sadms_before - plan_sadm_count(plan);
  stats.freed_wavelengths = wavelengths_before - plan.wavelength_count();
  return stats;
}

long long plan_fragment_count(const GroomingPlan& plan) {
  const int wavelengths = plan.wavelength_count();
  long long fragments = 0;
  // Union-find per wavelength over that wavelength's endpoints.
  for (int w = 0; w < wavelengths; ++w) {
    std::map<NodeId, NodeId> parent;
    auto find = [&](NodeId x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    long long nodes = 0;
    long long merges = 0;
    for (const GroomedPair& gp : plan.pairs) {
      if (gp.wavelength != w) continue;
      for (NodeId node : {gp.pair.a, gp.pair.b}) {
        if (parent.emplace(node, node).second) ++nodes;
      }
      NodeId ra = find(gp.pair.a);
      NodeId rb = find(gp.pair.b);
      if (ra != rb) {
        parent[ra] = rb;
        ++merges;
      }
    }
    fragments += nodes - merges;
  }
  return fragments;
}

bool plan_within_prop2_bound(const GroomingPlan& plan) {
  const auto m = static_cast<long long>(plan.pairs.size());
  if (m == 0) return true;
  const long long fragments = plan_fragment_count(plan);
  return plan_sadm_count(plan) <=
         prop2_cost_bound(m, plan.grooming_factor,
                          static_cast<std::size_t>(fragments));
}

}  // namespace tgroom
