// Directed grooming: the general model the paper reduces FROM.
//
// On a UPSR a symmetric pair {x, y} is two directed demands (x, y) and
// (y, x), each routed on its clockwise arc.  In full generality the two
// directions could ride different wavelengths; the paper's §1 (citing the
// technical report [18]) asserts that assigning both to one wavelength
// never needs more SADMs, which is what justifies working with undirected
// traffic graphs.  This module makes that reduction executable: a directed
// plan model with arc-overlap timeslot feasibility, plus an exhaustive
// optimal solver for tiny instances so tests can compare the directed
// optimum against the paired (k-edge-partition) optimum.
#pragma once

#include <vector>

#include "grooming/demand.hpp"
#include "sonet/ring.hpp"

namespace tgroom {

struct DirectedDemand {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
};

/// The two directed demands of every pair, in pair order.
std::vector<DirectedDemand> directed_from_pairs(const DemandSet& demands);

struct DirectedAssignment {
  DirectedDemand demand;
  int wavelength = 0;
  int timeslot = 0;
};

struct DirectedPlan {
  NodeId ring_size = 0;
  int grooming_factor = 1;
  std::vector<DirectedAssignment> assignments;

  int wavelength_count() const;
};

/// True when the clockwise arcs of a and b share at least one span
/// (such demands on one wavelength need distinct timeslots).
bool arcs_overlap(const UpsrRing& ring, const DirectedDemand& a,
                  const DirectedDemand& b);

/// Validity: endpoints on the ring, timeslots within k, and no two
/// same-wavelength same-timeslot assignments with overlapping arcs.
bool validate_directed_plan(const UpsrRing& ring, const DirectedPlan& plan);

/// SADM count: distinct (wavelength, node) add/drop sites.
long long directed_plan_sadm_count(const DirectedPlan& plan);

struct DirectedExactResult {
  DirectedPlan plan;
  long long sadm_count = 0;
  long long nodes_explored = 0;
};

/// Exhaustive optimal directed grooming for tiny instances (at most 10
/// directed demands, i.e. 5 pairs).  Wavelength count is unconstrained;
/// timeslot feasibility per wavelength is decided by backtracking on the
/// arc-overlap graph.
DirectedExactResult directed_exact_optimum(const DemandSet& demands, int k);

}  // namespace tgroom
