// Symmetric unitary traffic demands on a UPSR ring.
//
// A demand pair {x, y} stands for the two unit-bandwidth directed demands
// (x, y) and (y, x); by the paper's §1 argument (citing [18]) both are
// always carried on the same wavelength, so the demand set is exactly an
// undirected simple graph — the *traffic graph* — and grooming is k-edge
// partitioning of that graph.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

struct DemandPair {
  NodeId a;  // a < b after normalization
  NodeId b;

  friend bool operator==(const DemandPair&, const DemandPair&) = default;
  friend auto operator<=>(const DemandPair&, const DemandPair&) = default;
};

class DemandSet {
 public:
  /// `ring_size` is the number of nodes on the UPSR ring.
  explicit DemandSet(NodeId ring_size);

  NodeId ring_size() const { return ring_size_; }
  std::size_t size() const { return pairs_.size(); }
  const std::vector<DemandPair>& pairs() const { return pairs_; }

  /// Adds symmetric pair {x, y}; rejects x == y and duplicates.
  void add_pair(NodeId x, NodeId y);

  bool contains(NodeId x, NodeId y) const;

  /// The traffic graph: ring nodes as vertices, one edge per pair, with
  /// edge id i corresponding to pairs()[i].
  Graph traffic_graph() const;

  /// Inverse mapping: one pair per real edge of g (in edge-id order).
  static DemandSet from_traffic_graph(const Graph& g);

  /// Text round-trip: "<ring_size> <pair_count>" then "x y" lines.
  static DemandSet parse(const std::string& text);
  std::string serialize() const;

 private:
  NodeId ring_size_;
  std::vector<DemandPair> pairs_;
};

}  // namespace tgroom
