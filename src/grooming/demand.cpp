#include "grooming/demand.hpp"

#include <algorithm>
#include <sstream>

#include "graph/io.hpp"

namespace tgroom {

DemandSet::DemandSet(NodeId ring_size) : ring_size_(ring_size) {
  TGROOM_CHECK_MSG(ring_size >= 0, "ring size must be non-negative");
}

void DemandSet::add_pair(NodeId x, NodeId y) {
  TGROOM_CHECK_MSG(x >= 0 && y >= 0 && x < ring_size_ && y < ring_size_,
                   "demand endpoint outside the ring");
  TGROOM_CHECK_MSG(x != y, "a demand pair needs two distinct nodes");
  if (x > y) std::swap(x, y);
  TGROOM_CHECK_MSG(!contains(x, y), "duplicate demand pair");
  pairs_.push_back(DemandPair{x, y});
}

bool DemandSet::contains(NodeId x, NodeId y) const {
  if (x > y) std::swap(x, y);
  return std::find(pairs_.begin(), pairs_.end(), DemandPair{x, y}) !=
         pairs_.end();
}

Graph DemandSet::traffic_graph() const {
  Graph g(ring_size_);
  g.reserve_edges(static_cast<EdgeId>(pairs_.size()));
  for (const DemandPair& p : pairs_) g.add_edge(p.a, p.b);
  return g;
}

DemandSet DemandSet::from_traffic_graph(const Graph& g) {
  DemandSet demands(g.node_count());
  for (const Edge& e : g.edges()) {
    if (e.is_virtual) continue;
    demands.add_pair(e.u, e.v);
  }
  return demands;
}

DemandSet DemandSet::parse(const std::string& text) {
  Graph g = read_edge_list_string(text);
  return from_traffic_graph(g);
}

std::string DemandSet::serialize() const {
  std::ostringstream out;
  out << ring_size_ << ' ' << pairs_.size() << '\n';
  for (const DemandPair& p : pairs_) out << p.a << ' ' << p.b << '\n';
  return out.str();
}

}  // namespace tgroom
