// Parallel batch-grooming engine.
//
// Grooming thousands of traffic graphs (sweeps over instance families,
// figure reproductions, capacity studies) is embarrassingly parallel, but
// naive fan-out either leaves determinism to thread timing or re-allocates
// every scratch buffer per instance.  BatchGroomer fans a flat list of
// (graph, algorithm, k, options) cells across a persistent ThreadPool in
// contiguous chunks, one warm GroomingWorkspace per worker thread, and
// writes results by cell index.
//
// The pool is created once in the constructor and reused by every run()
// call: repeated small batches (the service, the throughput bench) must
// not pay thread creation/join per batch.  Workspaces are thread_local, so
// they stay warm across runs too — after the first batch the steady state
// performs no allocation in the scratch buffers at all.
//
// Determinism contract: results[i] is a pure function of cells[i] — the
// RNG seed lives in each cell's options (derive it per cell, e.g. with
// cell_seed(), never per worker) and no state is shared across cells — so
// the output is bit-identical for any worker count, including 0 (inline).
// batch_test.cpp pins this for workers ∈ {0, 1, 4}.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "partition/edge_partition.hpp"
#include "util/thread_pool.hpp"

namespace tgroom {

/// One unit of work.  `graph` is borrowed and must outlive run(); many
/// cells may share one graph (e.g. a per-seed instance swept over k).
struct BatchCell {
  const Graph* graph = nullptr;
  AlgorithmId algorithm = AlgorithmId::kSpanTEuler;
  int k = 1;
  GroomingOptions options;
};

struct BatchCellResult {
  long long sadms = 0;
  int wavelengths = 0;
  long long lower_bound = 0;  // partition_cost_lower_bound for (graph, k)
  EdgePartition partition;    // empty unless config.keep_partitions
};

struct BatchConfig {
  std::size_t workers = 0;      // 0 = run inline on the calling thread
  bool validate = true;         // validate every partition (throws if bad)
  bool keep_partitions = true;  // false: drop partitions, keep the stats
};

class BatchGroomer {
 public:
  explicit BatchGroomer(BatchConfig config = {})
      : config_(config),
        pool_(std::make_unique<ThreadPool>(config.workers)) {}

  // Owns a ThreadPool, so the groomer is pinned in place like the pool is.
  BatchGroomer(const BatchGroomer&) = delete;
  BatchGroomer& operator=(const BatchGroomer&) = delete;

  /// Grooms every cell; results are indexed like `cells`.
  std::vector<BatchCellResult> run(const std::vector<BatchCell>& cells) const;

  /// Splitmix64-derived per-cell seed stream: decorrelated across indices,
  /// reproducible from (base_seed, index) alone.
  static std::uint64_t cell_seed(std::uint64_t base_seed, std::size_t index);

  const BatchConfig& config() const { return config_; }

 private:
  BatchConfig config_;
  std::unique_ptr<ThreadPool> pool_;  // persistent across run() calls
};

}  // namespace tgroom
