#include "grooming/batch.hpp"

#include <string>

#include "algorithms/workspace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tgroom {

std::vector<BatchCellResult> BatchGroomer::run(
    const std::vector<BatchCell>& cells) const {
  std::vector<BatchCellResult> results(cells.size());
  pool_->parallel_for_chunks(
      cells.size(), [&](std::size_t begin, std::size_t end) {
        // One warm workspace per thread, kept across chunks AND run()
        // calls; reset() rewinds it without dropping capacity.  Each chunk
        // runs on exactly one thread, so no sharing within a run; output
        // is workspace-independent by the GroomingWorkspace contract.
        thread_local GroomingWorkspace workspace;
        workspace.reset();
        for (std::size_t i = begin; i < end; ++i) {
          const BatchCell& cell = cells[i];
          TGROOM_CHECK_MSG(cell.graph != nullptr, "batch cell has no graph");
          EdgePartition partition = run_algorithm(
              cell.algorithm, *cell.graph, cell.k, cell.options, &workspace);
          if (config_.validate) {
            PartitionValidation valid =
                validate_partition(*cell.graph, partition);
            TGROOM_CHECK_MSG(valid.ok,
                             std::string("batch produced an invalid "
                                         "partition: ") +
                                 valid.reason);
          }
          BatchCellResult& result = results[i];
          result.sadms = sadm_cost(*cell.graph, partition);
          result.wavelengths = partition.wavelength_count();
          result.lower_bound =
              partition_cost_lower_bound(*cell.graph, cell.k);
          if (config_.keep_partitions) {
            result.partition = std::move(partition);
          }
        }
      });
  return results;
}

std::uint64_t BatchGroomer::cell_seed(std::uint64_t base_seed,
                                      std::size_t index) {
  std::uint64_t state =
      base_seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  return splitmix64(state);
}

}  // namespace tgroom
