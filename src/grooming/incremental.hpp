// Incremental provisioning: add demands to a live grooming plan without
// re-arranging existing circuits.
//
// Operators rarely get to re-groom a deployed ring from scratch — moving a
// live circuit to another wavelength is service-affecting.  This module
// places new symmetric pairs into existing wavelength slack (preferring
// wavelengths that already terminate at the new pair's endpoints, so no
// new SADMs are needed when possible) and opens new wavelengths only when
// no slack remains.  The result is generally costlier than grooming the
// union from scratch; `incremental_penalty` quantifies that gap, which is
// the operational argument for good initial grooming.
#pragma once

#include <vector>

#include "grooming/plan.hpp"

namespace tgroom {

struct IncrementalStats {
  int new_wavelengths = 0;    // wavelengths opened for the new demands
  int new_sadms = 0;          // SADM installs triggered
  int reused_sites = 0;       // endpoints that already had an SADM on the
                              // chosen wavelength
};

struct IncrementalResult {
  GroomingPlan plan;          // the extended plan
  int new_wavelengths = 0;
  int new_sadms = 0;
  int reused_sites = 0;
};

/// Adds `new_pairs` to `plan` in place.  Existing assignments are never
/// modified.  Each new pair goes to the feasible wavelength (free
/// timeslot) that needs the fewest new SADMs, ties broken toward lower
/// wavelength ids; a fresh wavelength is opened when nothing has slack.
///
/// Deterministic and sequentially composable: extending by A then by B
/// yields exactly the plan of extending by A+B in one call, which is
/// what lets the durable store's WAL replay mutations one record at a
/// time and land on the live table byte-for-byte.
IncrementalStats extend_plan_incremental(GroomingPlan& plan,
                                         const std::vector<DemandPair>& new_pairs);

/// Copying wrapper around extend_plan_incremental: leaves `plan`
/// untouched and returns the extended copy plus stats.
IncrementalResult add_demands_incremental(
    const GroomingPlan& plan, const std::vector<DemandPair>& new_pairs);

/// Cost gap of incremental operation vs. re-grooming from scratch:
/// (incremental SADMs) - (SADMs of `fresh`), where `fresh` is a plan for
/// the union demand set.  Non-negative whenever `fresh` is at least as
/// good as the incremental plan.
long long incremental_penalty(const IncrementalResult& incremental,
                              const GroomingPlan& fresh);

}  // namespace tgroom
