#include "grooming/incremental.hpp"

#include <algorithm>
#include <set>

namespace tgroom {

IncrementalStats extend_plan_incremental(
    GroomingPlan& plan, const std::vector<DemandPair>& new_pairs) {
  IncrementalStats result;
  const int k = plan.grooming_factor;
  TGROOM_CHECK(k >= 1);

  // Per-wavelength occupancy and SADM sites of the current plan.
  int wavelengths = plan.wavelength_count();
  std::vector<std::set<int>> used_slots(
      static_cast<std::size_t>(wavelengths));
  std::vector<std::set<NodeId>> sites(
      static_cast<std::size_t>(wavelengths));
  for (const GroomedPair& gp : plan.pairs) {
    used_slots[static_cast<std::size_t>(gp.wavelength)].insert(gp.timeslot);
    sites[static_cast<std::size_t>(gp.wavelength)].insert(gp.pair.a);
    sites[static_cast<std::size_t>(gp.wavelength)].insert(gp.pair.b);
  }
  auto free_slot = [&](int w) {
    const auto& used = used_slots[static_cast<std::size_t>(w)];
    for (int s = 0; s < k; ++s) {
      if (!used.count(s)) return s;
    }
    return -1;
  };

  for (DemandPair pair : new_pairs) {
    if (pair.a > pair.b) std::swap(pair.a, pair.b);
    TGROOM_CHECK_MSG(pair.a >= 0 && pair.b < plan.ring_size &&
                         pair.a != pair.b,
                     "new demand outside the ring");
    // Cheapest feasible wavelength: fewest new SADMs, then lowest id.
    int best = -1;
    int best_cost = 3;
    for (int w = 0; w < wavelengths; ++w) {
      if (free_slot(w) < 0) continue;
      int cost =
          (sites[static_cast<std::size_t>(w)].count(pair.a) ? 0 : 1) +
          (sites[static_cast<std::size_t>(w)].count(pair.b) ? 0 : 1);
      if (cost < best_cost) {
        best_cost = cost;
        best = w;
        if (cost == 0) break;
      }
    }
    if (best < 0) {
      best = wavelengths++;
      best_cost = 2;
      used_slots.emplace_back();
      sites.emplace_back();
      ++result.new_wavelengths;
    }
    result.new_sadms += best_cost;
    result.reused_sites += 2 - best_cost;
    int slot = free_slot(best);
    TGROOM_DCHECK(slot >= 0);
    used_slots[static_cast<std::size_t>(best)].insert(slot);
    sites[static_cast<std::size_t>(best)].insert(pair.a);
    sites[static_cast<std::size_t>(best)].insert(pair.b);
    plan.pairs.push_back(GroomedPair{pair, best, slot});
  }
  return result;
}

IncrementalResult add_demands_incremental(
    const GroomingPlan& plan, const std::vector<DemandPair>& new_pairs) {
  IncrementalResult result;
  result.plan = plan;
  const IncrementalStats stats =
      extend_plan_incremental(result.plan, new_pairs);
  result.new_wavelengths = stats.new_wavelengths;
  result.new_sadms = stats.new_sadms;
  result.reused_sites = stats.reused_sites;
  return result;
}

long long incremental_penalty(const IncrementalResult& incremental,
                              const GroomingPlan& fresh) {
  return plan_sadm_count(incremental.plan) - plan_sadm_count(fresh);
}

}  // namespace tgroom
