#include "grooming/weighted.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace tgroom {

WeightedDemandSet::WeightedDemandSet(NodeId ring_size)
    : ring_size_(ring_size) {
  TGROOM_CHECK(ring_size >= 0);
}

long long WeightedDemandSet::total_units() const {
  long long total = 0;
  for (const WeightedDemand& d : demands_) total += d.units;
  return total;
}

void WeightedDemandSet::add(NodeId x, NodeId y, int units) {
  TGROOM_CHECK_MSG(x >= 0 && y >= 0 && x < ring_size_ && y < ring_size_,
                   "demand endpoint outside the ring");
  TGROOM_CHECK_MSG(x != y, "a demand needs two distinct nodes");
  TGROOM_CHECK_MSG(units > 0, "units must be positive");
  if (x > y) std::swap(x, y);
  for (WeightedDemand& d : demands_) {
    if (d.a == x && d.b == y) {
      d.units += units;
      return;
    }
  }
  demands_.push_back(WeightedDemand{x, y, units});
}

Graph WeightedDemandSet::traffic_multigraph() const {
  Graph g(ring_size_);
  for (const WeightedDemand& d : demands_) {
    for (int unit = 0; unit < d.units; ++unit) g.add_edge(d.a, d.b);
  }
  return g;
}

std::size_t WeightedDemandSet::demand_of_edge(EdgeId e) const {
  TGROOM_CHECK(e >= 0);
  long long remaining = e;
  for (std::size_t i = 0; i < demands_.size(); ++i) {
    if (remaining < demands_[i].units) return i;
    remaining -= demands_[i].units;
  }
  TGROOM_CHECK_MSG(false, "edge id beyond the demand expansion");
  return 0;
}

WeightedDemandSet WeightedDemandSet::parse(const std::string& text) {
  std::istringstream in(text);
  long long n = -1, count = -1;
  in >> n >> count;
  TGROOM_CHECK_MSG(n >= 0 && count >= 0, "weighted demands: bad header");
  WeightedDemandSet set(static_cast<NodeId>(n));
  for (long long i = 0; i < count; ++i) {
    long long x, y, units;
    TGROOM_CHECK_MSG(static_cast<bool>(in >> x >> y >> units),
                     "weighted demands: truncated input");
    set.add(static_cast<NodeId>(x), static_cast<NodeId>(y),
            static_cast<int>(units));
  }
  return set;
}

std::string WeightedDemandSet::serialize() const {
  std::ostringstream out;
  out << ring_size_ << ' ' << demands_.size() << '\n';
  for (const WeightedDemand& d : demands_) {
    out << d.a << ' ' << d.b << ' ' << d.units << '\n';
  }
  return out.str();
}

GroomingPlan plan_from_weighted_partition(const WeightedDemandSet& demands,
                                          const Graph& multigraph,
                                          const EdgePartition& partition) {
  TGROOM_CHECK_MSG(
      multigraph.real_edge_count() ==
          static_cast<EdgeId>(demands.total_units()),
      "multigraph does not match the demand expansion");
  GroomingPlan plan;
  plan.ring_size = demands.ring_size();
  plan.grooming_factor = partition.k;
  for (std::size_t w = 0; w < partition.parts.size(); ++w) {
    const auto& part = partition.parts[w];
    TGROOM_CHECK_MSG(part.size() <= static_cast<std::size_t>(partition.k),
                     "part exceeds grooming factor");
    for (std::size_t slot = 0; slot < part.size(); ++slot) {
      const Edge& e = multigraph.edge(part[slot]);
      plan.pairs.push_back(GroomedPair{
          DemandPair{std::min(e.u, e.v), std::max(e.u, e.v)},
          static_cast<int>(w), static_cast<int>(slot)});
    }
  }
  return plan;
}

std::vector<int> demand_wavelength_spread(const WeightedDemandSet& demands,
                                          const Graph& multigraph,
                                          const EdgePartition& partition) {
  (void)multigraph;
  std::vector<std::set<int>> wavelengths(demands.size());
  for (std::size_t w = 0; w < partition.parts.size(); ++w) {
    for (EdgeId e : partition.parts[w]) {
      wavelengths[demands.demand_of_edge(e)].insert(static_cast<int>(w));
    }
  }
  std::vector<int> spread;
  spread.reserve(wavelengths.size());
  for (const auto& set : wavelengths) {
    spread.push_back(static_cast<int>(set.size()));
  }
  return spread;
}

}  // namespace tgroom
