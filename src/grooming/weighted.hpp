// Non-unitary (weighted) symmetric traffic — the §1 "other variants"
// extension ([4], [8], [17], [21] in the paper).
//
// A weighted demand {x, y, units} asks for `units` unit-bandwidth symmetric
// circuits between x and y.  On the UPSR each unit behaves exactly like a
// unitary pair (it consumes one timeslot on every span of its wavelength),
// so grooming reduces to k-edge partitioning of the traffic *multigraph*
// with one parallel edge per unit.  All partition algorithms in this
// library operate on edge ids and never require simplicity, so they apply
// unchanged; this module provides the expansion, the plan mapping, and the
// accounting.
#pragma once

#include <string>
#include <vector>

#include "grooming/plan.hpp"
#include "partition/edge_partition.hpp"

namespace tgroom {

struct WeightedDemand {
  NodeId a;  // normalized a < b
  NodeId b;
  int units = 1;

  friend bool operator==(const WeightedDemand&,
                         const WeightedDemand&) = default;
};

class WeightedDemandSet {
 public:
  explicit WeightedDemandSet(NodeId ring_size);

  NodeId ring_size() const { return ring_size_; }
  std::size_t size() const { return demands_.size(); }
  const std::vector<WeightedDemand>& demands() const { return demands_; }

  /// Total circuit units requested.
  long long total_units() const;

  /// Adds {x, y} with the given units; merges with an existing entry for
  /// the same pair.  Rejects x == y and units <= 0.
  void add(NodeId x, NodeId y, int units);

  /// The traffic multigraph: one parallel edge per unit; edge id order
  /// follows demand order, units contiguous.
  Graph traffic_multigraph() const;

  /// Demand index owning a given multigraph edge id.
  std::size_t demand_of_edge(EdgeId e) const;

  /// Text format: "<ring_size> <demand_count>" then "x y units" lines.
  static WeightedDemandSet parse(const std::string& text);
  std::string serialize() const;

 private:
  NodeId ring_size_;
  std::vector<WeightedDemand> demands_;
};

/// Builds a wavelength/timeslot plan from a k-edge partition of the
/// traffic multigraph.  Units of one demand may land on different
/// wavelengths (multi-wavelength splitting is allowed on the UPSR).
GroomingPlan plan_from_weighted_partition(const WeightedDemandSet& demands,
                                          const Graph& multigraph,
                                          const EdgePartition& partition);

/// Per-demand wavelength spread: how many distinct wavelengths each
/// demand's units occupy (1 = unsplit).  Indexed like demands().
std::vector<int> demand_wavelength_spread(const WeightedDemandSet& demands,
                                          const Graph& multigraph,
                                          const EdgePartition& partition);

}  // namespace tgroom
