// Demand release with local repair: the departure half of dynamic
// traffic.
//
// extend_plan_incremental (incremental.hpp) handles arrivals; this module
// handles the inverse.  Releasing a circuit leaves holes — a wavelength
// may keep an SADM at a node that no longer terminates traffic there, or
// carry one straggler circuit that would fit into another wavelength's
// slack.  Full re-grooming would fix that but is service-affecting for
// every live circuit, so release_demands instead runs a *local* repair:
// only circuits on the wavelengths the release touched are candidates to
// move, and a circuit moves only when the move strictly lowers the total
// SADM count.  The result is never worse than naive removal, and the
// whole operation is deterministic — the service WAL logs the released
// pairs and replays them through this same function.
#pragma once

#include <vector>

#include "grooming/plan.hpp"

namespace tgroom {

struct ReleaseStats {
  int released = 0;            // circuits removed from the plan
  int repair_moves = 0;        // circuits re-homed by local repair
  int freed_wavelengths = 0;   // wavelength_count drop (post-compaction)
  long long sadms_removed = 0; // SADM count drop (release + repair)
};

/// Removes each pair of `remove` from `plan` in place (the lowest
/// (wavelength, timeslot) match when duplicates exist), then — when
/// `repair` is true — re-homes circuits from the affected wavelengths
/// into existing slack wherever that strictly lowers the SADM count, and
/// finally renumbers wavelengths to drop empty ones (stable order).
///
/// Throws CheckError when a pair is outside the ring or not in the plan;
/// the plan is only mutated after every removed pair has been located,
/// so a failed release leaves it unchanged.
///
/// Deterministic and sequentially composable, like
/// extend_plan_incremental: the durable store replays release records
/// through this function and lands on the live table byte-for-byte.
ReleaseStats release_demands(GroomingPlan& plan,
                             const std::vector<DemandPair>& remove,
                             bool repair = true);

/// Total connected components over all per-wavelength subgraphs of the
/// plan (a "fragment" is one component on one wavelength).  A fragment
/// with e edges spans at most e + 1 nodes, so
///   plan_sadm_count <= m + fragments
/// for any plan with m circuits — which is within the Proposition 2 cost
/// bound prop2_cost_bound(m, k, fragments) whenever m >= 1.
long long plan_fragment_count(const GroomingPlan& plan);

/// True iff the plan's SADM count respects the Proposition 2 bound for a
/// cover of plan_fragment_count() parts (vacuously true for an empty
/// plan).  The dynamic simulator asserts this after every mutation.
bool plan_within_prop2_bound(const GroomingPlan& plan);

}  // namespace tgroom
