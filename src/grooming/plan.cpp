#include "grooming/plan.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace tgroom {

int GroomingPlan::wavelength_count() const {
  int count = 0;
  for (const GroomedPair& gp : pairs) {
    count = std::max(count, gp.wavelength + 1);
  }
  return count;
}

GroomingPlan plan_from_partition(const DemandSet& demands,
                                 const Graph& traffic_graph,
                                 const EdgePartition& partition) {
  TGROOM_CHECK_MSG(
      traffic_graph.real_edge_count() ==
          static_cast<EdgeId>(demands.size()),
      "traffic graph and demand set disagree");
  GroomingPlan plan;
  plan.ring_size = demands.ring_size();
  plan.grooming_factor = partition.k;
  for (std::size_t w = 0; w < partition.parts.size(); ++w) {
    const auto& part = partition.parts[w];
    TGROOM_CHECK_MSG(part.size() <= static_cast<std::size_t>(partition.k),
                     "part exceeds grooming factor");
    for (std::size_t slot = 0; slot < part.size(); ++slot) {
      const Edge& e = traffic_graph.edge(part[slot]);
      plan.pairs.push_back(GroomedPair{DemandPair{std::min(e.u, e.v),
                                                  std::max(e.u, e.v)},
                                       static_cast<int>(w),
                                       static_cast<int>(slot)});
    }
  }
  return plan;
}

long long plan_sadm_count(const GroomingPlan& plan) {
  std::set<std::pair<int, NodeId>> sadms;
  for (const GroomedPair& gp : plan.pairs) {
    sadms.insert({gp.wavelength, gp.pair.a});
    sadms.insert({gp.wavelength, gp.pair.b});
  }
  return static_cast<long long>(sadms.size());
}

std::vector<int> plan_sadms_per_wavelength(const GroomingPlan& plan) {
  std::vector<std::set<NodeId>> nodes(
      static_cast<std::size_t>(plan.wavelength_count()));
  for (const GroomedPair& gp : plan.pairs) {
    nodes[static_cast<std::size_t>(gp.wavelength)].insert(gp.pair.a);
    nodes[static_cast<std::size_t>(gp.wavelength)].insert(gp.pair.b);
  }
  std::vector<int> counts;
  counts.reserve(nodes.size());
  for (const auto& s : nodes) counts.push_back(static_cast<int>(s.size()));
  return counts;
}

long long plan_bypass_count(const GroomingPlan& plan) {
  return static_cast<long long>(plan.ring_size) * plan.wavelength_count() -
         plan_sadm_count(plan);
}

std::string serialize_plan(const GroomingPlan& plan) {
  std::ostringstream out;
  out << plan.ring_size << ' ' << plan.grooming_factor << ' '
      << plan.pairs.size() << '\n';
  for (const GroomedPair& gp : plan.pairs) {
    out << gp.pair.a << ' ' << gp.pair.b << ' ' << gp.wavelength << ' '
        << gp.timeslot << '\n';
  }
  return out.str();
}

GroomingPlan parse_plan(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  auto next_line = [&]() {
    while (std::getline(in, line)) {
      std::size_t i = line.find_first_not_of(" \t\r");
      if (i == std::string::npos || line[i] == '#') continue;
      return true;
    }
    return false;
  };
  TGROOM_CHECK_MSG(next_line(), "plan: missing header");
  std::istringstream header(line);
  long long ring = -1, k = -1, count = -1;
  header >> ring >> k >> count;
  TGROOM_CHECK_MSG(ring >= 0 && k >= 1 && count >= 0, "plan: bad header");
  GroomingPlan plan;
  plan.ring_size = static_cast<NodeId>(ring);
  plan.grooming_factor = static_cast<int>(k);
  for (long long i = 0; i < count; ++i) {
    TGROOM_CHECK_MSG(next_line(), "plan: truncated pair list");
    std::istringstream row(line);
    long long a = -1, b = -1, w = -1, slot = -1;
    row >> a >> b >> w >> slot;
    TGROOM_CHECK_MSG(a >= 0 && b >= 0 && w >= 0 && slot >= 0,
                     "plan: bad pair line '" + line + "'");
    plan.pairs.push_back(GroomedPair{
        DemandPair{static_cast<NodeId>(std::min(a, b)),
                   static_cast<NodeId>(std::max(a, b))},
        static_cast<int>(w), static_cast<int>(slot)});
  }
  return plan;
}

}  // namespace tgroom
