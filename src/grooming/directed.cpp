#include "grooming/directed.hpp"

#include <algorithm>
#include <set>

namespace tgroom {

std::vector<DirectedDemand> directed_from_pairs(const DemandSet& demands) {
  std::vector<DirectedDemand> out;
  out.reserve(demands.size() * 2);
  for (const DemandPair& p : demands.pairs()) {
    out.push_back({p.a, p.b});
    out.push_back({p.b, p.a});
  }
  return out;
}

int DirectedPlan::wavelength_count() const {
  int count = 0;
  for (const DirectedAssignment& a : assignments) {
    count = std::max(count, a.wavelength + 1);
  }
  return count;
}

bool arcs_overlap(const UpsrRing& ring, const DirectedDemand& a,
                  const DirectedDemand& b) {
  // Arc of (from, to) covers spans from, from+1, ..., to-1 (mod n).
  NodeId n = ring.node_count();
  NodeId ha = ring.hop_count(a.from, a.to);
  NodeId hb = ring.hop_count(b.from, b.to);
  // Span s is in arc a iff (s - a.from mod n) < ha.
  // Check whether any of b's spans lies in a's arc: b's spans form the
  // interval [b.from, b.from + hb).  The two circular intervals intersect
  // iff b.from is inside a's arc or a.from is inside b's arc.
  NodeId b_off = static_cast<NodeId>((b.from - a.from + n) % n);
  NodeId a_off = static_cast<NodeId>((a.from - b.from + n) % n);
  return b_off < ha || a_off < hb;
}

bool validate_directed_plan(const UpsrRing& ring, const DirectedPlan& plan) {
  if (plan.ring_size != ring.node_count()) return false;
  if (plan.grooming_factor < 1) return false;
  for (const DirectedAssignment& a : plan.assignments) {
    if (a.demand.from < 0 || a.demand.from >= ring.node_count()) return false;
    if (a.demand.to < 0 || a.demand.to >= ring.node_count()) return false;
    if (a.demand.from == a.demand.to) return false;
    if (a.wavelength < 0) return false;
    if (a.timeslot < 0 || a.timeslot >= plan.grooming_factor) return false;
  }
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.assignments.size(); ++j) {
      const DirectedAssignment& a = plan.assignments[i];
      const DirectedAssignment& b = plan.assignments[j];
      if (a.wavelength != b.wavelength || a.timeslot != b.timeslot) continue;
      if (arcs_overlap(ring, a.demand, b.demand)) return false;
    }
  }
  return true;
}

long long directed_plan_sadm_count(const DirectedPlan& plan) {
  std::set<std::pair<int, NodeId>> sites;
  for (const DirectedAssignment& a : plan.assignments) {
    sites.insert({a.wavelength, a.demand.from});
    sites.insert({a.wavelength, a.demand.to});
  }
  return static_cast<long long>(sites.size());
}

namespace {

class DirectedSearcher {
 public:
  DirectedSearcher(const UpsrRing& ring, std::vector<DirectedDemand> demands,
                   int k)
      : ring_(ring), demands_(std::move(demands)), k_(k) {}

  DirectedExactResult run() {
    best_cost_ = 2LL * static_cast<long long>(demands_.size()) + 1;
    assignment_.assign(demands_.size(), {0, 0});
    descend(0, 0);
    DirectedExactResult result;
    result.plan.ring_size = ring_.node_count();
    result.plan.grooming_factor = k_;
    for (std::size_t i = 0; i < demands_.size(); ++i) {
      result.plan.assignments.push_back(DirectedAssignment{
          demands_[i], best_assignment_[i].first,
          best_assignment_[i].second});
    }
    result.sadm_count = best_cost_;
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  bool slot_free(std::size_t index, int wavelength, int slot) const {
    for (std::size_t j = 0; j < index; ++j) {
      if (assignment_[j].first != wavelength ||
          assignment_[j].second != slot) {
        continue;
      }
      if (arcs_overlap(ring_, demands_[index], demands_[j])) return false;
    }
    return true;
  }

  void descend(std::size_t index, long long cost) {
    ++nodes_;
    if (cost >= best_cost_) return;
    if (index == demands_.size()) {
      best_cost_ = cost;
      best_assignment_ = assignment_;
      return;
    }
    int open_wavelengths = 0;
    for (std::size_t j = 0; j < index; ++j) {
      open_wavelengths =
          std::max(open_wavelengths, assignment_[j].first + 1);
    }
    // Existing wavelengths, every feasible slot (slot ids on a wavelength
    // are symmetric only when unused, so cap at used_slots+1).
    for (int w = 0; w < open_wavelengths; ++w) {
      int used_slots = 0;
      for (std::size_t j = 0; j < index; ++j) {
        if (assignment_[j].first == w) {
          used_slots = std::max(used_slots, assignment_[j].second + 1);
        }
      }
      int slot_cap = std::min(k_, used_slots + 1);
      int delta = site_delta(index, w);
      for (int s = 0; s < slot_cap; ++s) {
        if (!slot_free(index, w, s)) continue;
        assignment_[index] = {w, s};
        descend(index + 1, cost + delta);
      }
    }
    // One new wavelength (slot 0 by symmetry).
    assignment_[index] = {open_wavelengths, 0};
    descend(index + 1, cost + 2);
  }

  int site_delta(std::size_t index, int wavelength) const {
    bool from_seen = false, to_seen = false;
    for (std::size_t j = 0; j < index; ++j) {
      if (assignment_[j].first != wavelength) continue;
      for (NodeId endpoint : {demands_[j].from, demands_[j].to}) {
        from_seen |= (endpoint == demands_[index].from);
        to_seen |= (endpoint == demands_[index].to);
      }
    }
    return (from_seen ? 0 : 1) + (to_seen ? 0 : 1);
  }

  const UpsrRing& ring_;
  std::vector<DirectedDemand> demands_;
  int k_;
  std::vector<std::pair<int, int>> assignment_;
  std::vector<std::pair<int, int>> best_assignment_;
  long long best_cost_ = 0;
  long long nodes_ = 0;
};

}  // namespace

DirectedExactResult directed_exact_optimum(const DemandSet& demands, int k) {
  TGROOM_CHECK(k >= 1);
  TGROOM_CHECK_MSG(demands.size() <= 5,
                   "directed exact solver is restricted to <= 5 pairs");
  UpsrRing ring(std::max<NodeId>(2, demands.ring_size()));
  DirectedExactResult result;
  if (demands.size() == 0) {
    result.plan.ring_size = demands.ring_size();
    result.plan.grooming_factor = k;
    return result;
  }
  DirectedSearcher searcher(ring, directed_from_pairs(demands), k);
  result = searcher.run();
  TGROOM_DCHECK(validate_directed_plan(ring, result.plan));
  return result;
}

}  // namespace tgroom
