// Grooming plans: the network-facing form of a k-edge partition.
//
// A plan assigns every demand pair a wavelength and a timeslot within that
// wavelength.  On a UPSR a symmetric pair {x, y} occupies its timeslot on
// *every* link of the working ring (the two directed halves together wrap
// the full ring), so a wavelength carries at most k pairs and each pair
// needs a distinct timeslot — exactly the |E_i| <= k constraint.
#pragma once

#include <vector>

#include "grooming/demand.hpp"
#include "partition/edge_partition.hpp"

namespace tgroom {

struct GroomedPair {
  DemandPair pair;
  int wavelength = 0;
  int timeslot = 0;
};

struct GroomingPlan {
  NodeId ring_size = 0;
  int grooming_factor = 1;
  std::vector<GroomedPair> pairs;

  int wavelength_count() const;
};

/// Builds a plan from a k-edge partition of the demand set's traffic graph:
/// part i becomes wavelength i; timeslots are positions within the part.
GroomingPlan plan_from_partition(const DemandSet& demands,
                                 const Graph& traffic_graph,
                                 const EdgePartition& partition);

/// SADM count of a plan: number of distinct (node, wavelength) pairs where
/// the node adds/drops traffic on that wavelength.
long long plan_sadm_count(const GroomingPlan& plan);

/// Per-wavelength SADM counts (index = wavelength).
std::vector<int> plan_sadms_per_wavelength(const GroomingPlan& plan);

/// Optical bypass count: ring_size * wavelengths - SADMs (node-wavelength
/// incidences where the wavelength passes through optically).
long long plan_bypass_count(const GroomingPlan& plan);

/// Text round-trip.  Format:
///   line 1: "<ring_size> <grooming_factor> <pair_count>"
///   then one "<a> <b> <wavelength> <timeslot>" line per groomed pair.
/// Comment lines starting with '#' and blank lines are skipped on parse.
std::string serialize_plan(const GroomingPlan& plan);
GroomingPlan parse_plan(const std::string& text);

}  // namespace tgroom
