// Skeletons and skeleton covers (paper §2).
//
// A skeleton is a connected subgraph made of a *backbone* (a walk — the
// paper's "path": edge-distinct, node repeats allowed) plus *branches*
// (edges with at least one endpoint on the backbone).  Skeleton covers are
// the intermediate representation both paper algorithms build before
// cutting into the final k-edge partition.
//
// Branches are stored per backbone *position* (not per node) so that any
// contiguous range of the canonical edge order induces a connected
// subgraph; that property is what makes Proposition 1 splits and the
// Proposition 2 transform produce parts with at most (#edges + 1) nodes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "algo/euler.hpp"
#include "graph/graph.hpp"
#include "util/arena.hpp"

namespace tgroom {

class Skeleton {
 public:
  /// Single-node skeleton (the paper's degenerate Euler path of one node).
  static Skeleton single_node(NodeId v);

  /// Skeleton whose backbone is the given walk (no branches yet).
  static Skeleton from_walk(Walk walk);

  const std::vector<NodeId>& walk_nodes() const { return walk_nodes_; }
  const std::vector<EdgeId>& walk_edges() const { return walk_edges_; }
  const std::vector<std::vector<EdgeId>>& branches_at() const {
    return branches_at_;
  }

  /// Attach a branch edge at backbone position `pos` (its attachment node
  /// is walk_nodes()[pos], which must be an endpoint of the edge).
  void add_branch(std::size_t pos, EdgeId e);

  /// Number of edges (backbone + branches) — the paper's skeleton size s(S).
  std::size_t size() const;

  bool empty() const { return size() == 0; }

  /// Edges in canonical order: branches at position 0, backbone edge 0,
  /// branches at position 1, backbone edge 1, …, branches at the last
  /// position.  Every prefix and every contiguous range of this order is a
  /// connected subgraph.
  std::vector<EdgeId> canonical_order() const;

  /// Structural check against g: walk validity, branch attachment, no
  /// duplicate edges.
  bool validate(const Graph& g) const;

 private:
  std::vector<NodeId> walk_nodes_;                // p >= 1
  std::vector<EdgeId> walk_edges_;                // p - 1
  std::vector<std::vector<EdgeId>> branches_at_;  // size p
};

using SkeletonCover = std::vector<Skeleton>;

/// Arena-backed skeleton for the zero-allocation grooming hot path: same
/// structure and canonical order as Skeleton, every vector (including the
/// per-position branch buckets) bump-allocated from a MonotonicArena.
/// Must not outlive the arena's next reset(); SpanT_Euler builds one cover
/// per run and consumes it before the workspace rewinds.
class ArenaSkeleton {
 public:
  /// Single-node skeleton (the paper's degenerate Euler path of one node).
  static ArenaSkeleton single_node(NodeId v, MonotonicArena* arena);

  /// Skeleton whose backbone is the given walk (no branches yet).  The
  /// walk's storage is adopted, not copied.
  static ArenaSkeleton from_walk(ArenaWalk&& walk, MonotonicArena* arena);

  const ArenaVector<NodeId>& walk_nodes() const { return walk_nodes_; }
  const ArenaVector<EdgeId>& walk_edges() const { return walk_edges_; }

  /// Attach a branch edge at backbone position `pos`.
  void add_branch(std::size_t pos, EdgeId e);

  /// Number of edges (backbone + branches) — the paper's skeleton size s(S).
  std::size_t size() const;

  /// Appends the canonical edge order (branches at position 0, backbone
  /// edge 0, branches at position 1, …) to `out`.
  void append_canonical_order(ArenaVector<EdgeId>& out) const;

  /// Heap copy with the same structure, for traces and debugging.
  Skeleton to_skeleton() const;

 private:
  explicit ArenaSkeleton(MonotonicArena* arena);

  ArenaVector<NodeId> walk_nodes_;                 // p >= 1
  ArenaVector<EdgeId> walk_edges_;                 // p - 1
  ArenaVector<ArenaVector<EdgeId>> branches_at_;   // size p
};

using ArenaSkeletonCover = ArenaVector<ArenaSkeleton>;

/// Proposition 1: split a skeleton into two skeletons of sizes t and
/// size()-t along the canonical order.  0 <= t <= size().
std::pair<Skeleton, Skeleton> split_skeleton(const Graph& g,
                                             const Skeleton& skeleton,
                                             std::size_t t);

/// True when the cover's edge sets are disjoint and each skeleton is valid.
bool validate_cover(const Graph& g, const SkeletonCover& cover);

/// True when the cover's skeletons together contain every real edge of g
/// exactly once (a skeleton cover in the paper's sense).
bool cover_spans_all_edges(const Graph& g, const SkeletonCover& cover);

}  // namespace tgroom
