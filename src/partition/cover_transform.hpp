// Proposition 2: transform a skeleton cover into a k-edge partition that
// uses the minimum number ceil(m/k) of wavelengths.
//
// Conceptually the paper joins the skeletons with virtual edges into one
// skeleton, cuts it into pieces of exactly k real edges (Proposition 1),
// and deletes the virtual edges.  Operationally that is equivalent to
// concatenating the canonical edge orders of the skeletons and chunking
// into groups of k, which is what we do; the virtual join edges never
// materialize.  Each part is then a union of at most (1 + #skeleton
// boundaries inside it) connected ranges, giving the paper's bound
//   Σ|V_i| <= m + ceil(m/k) + (j - 1)
// for a cover of size j (each of the j-1 boundaries lands in at most one
// part and adds at most one extra connected component there).
#pragma once

#include "partition/edge_partition.hpp"
#include "partition/skeleton.hpp"

namespace tgroom {

/// Builds the k-edge partition from a skeleton cover.  Skeletons must not
/// contain virtual edges (the paper's algorithms strip them before skeleton
/// construction).  Empty skeletons are skipped.
EdgePartition partition_from_cover(const Graph& g, const SkeletonCover& cover,
                                   int k);

/// Same transform over an arena-backed cover: the concatenated canonical
/// order lives on `arena`; only the escaping partition parts touch the
/// heap.  Produces a partition identical to the heap overload's for the
/// equivalent cover.
EdgePartition partition_from_cover(const Graph& g,
                                   const ArenaSkeletonCover& cover, int k,
                                   MonotonicArena& arena);

/// The Proposition 2 cost bound for `real_edges` edges, grooming factor k,
/// and a cover of size `cover_size`.
long long prop2_cost_bound(long long real_edges, int k,
                           std::size_t cover_size);

}  // namespace tgroom
