// The k-edge partition — the combinatorial object the paper optimizes.
//
// A partition of E(G) into parts of at most k edges; its cost Σ|V_i| equals
// the SADM count of the corresponding UPSR grooming (one wavelength per
// part, one SADM per distinct node per wavelength).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace tgroom {

struct EdgePartition {
  int k = 1;                             // grooming factor
  std::vector<std::vector<EdgeId>> parts;

  EdgeId total_edges() const;
  int wavelength_count() const { return static_cast<int>(parts.size()); }
};

/// Σ over parts of the number of distinct nodes spanned — the SADM count.
long long sadm_cost(const Graph& g, const EdgePartition& partition);

struct PartitionValidation {
  bool ok = true;
  std::string reason;
};

/// Checks: every real edge appears exactly once, no virtual edges, every
/// part nonempty with at most k edges.
PartitionValidation validate_partition(const Graph& g,
                                       const EdgePartition& partition);

/// Minimum number of wavelengths: ceil(m / k).
long long min_wavelengths(long long real_edges, int k);

/// True when the partition uses exactly ceil(m/k) parts.
bool uses_min_wavelengths(const Graph& g, const EdgePartition& partition);

/// Fewest nodes a subgraph with `edges` edges can span (inverse triangular
/// number): min t with t(t-1)/2 >= edges.
NodeId min_nodes_for_edges(long long edges);

/// A lower bound on OPT over all valid k-edge partitions:
///   max( Σ_v ceil(deg(v)/k),
///        floor(m/k)*t(k) + t(m mod k) )   where t = min_nodes_for_edges.
/// The first term holds because a part carries at most k of v's edges, so
/// v appears in (and pays an SADM on) at least ceil(deg(v)/k) parts; it
/// subsumes the #non-isolated-nodes bound.  The second is valid because t
/// is subadditive and concave, so the per-part node bound is minimized by
/// filling parts to k edges.
long long partition_cost_lower_bound(const Graph& g, int k);

/// Just the degree term Σ_v ceil(deg(v)/k) (the classic UPSR grooming
/// lower bound).
long long degree_lower_bound(const Graph& g, int k);

}  // namespace tgroom
