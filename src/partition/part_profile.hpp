// Node-multiset bookkeeping for one partition part: O(log) insertion and
// exact cost deltas for adding/removing edges.  Shared by the local-search
// and annealing refiners.
#pragma once

#include <map>

#include "graph/graph.hpp"

namespace tgroom {

class PartProfile {
 public:
  void add(const Edge& e) {
    ++count_[e.u];
    ++count_[e.v];
  }

  void remove(const Edge& e) {
    drop(e.u);
    drop(e.v);
  }

  /// Cost delta of adding e (0..2 new nodes); u != v (no self-loops).
  int add_delta(const Edge& e) const {
    return (count_.count(e.u) ? 0 : 1) + (count_.count(e.v) ? 0 : 1);
  }

  /// Cost delta of removing e (-2..0 nodes).
  int remove_delta(const Edge& e) const {
    return (count_.at(e.u) == 1 ? -1 : 0) + (count_.at(e.v) == 1 ? -1 : 0);
  }

  std::size_t node_count() const { return count_.size(); }

  /// Exact cost delta of swapping `out` for `in` within this part.
  int swap_delta(const Edge& out, const Edge& in) const {
    PartProfile scratch = *this;
    int before = static_cast<int>(scratch.node_count());
    scratch.remove(out);
    scratch.add(in);
    return static_cast<int>(scratch.node_count()) - before;
  }

 private:
  void drop(NodeId v) {
    auto it = count_.find(v);
    TGROOM_DCHECK(it != count_.end());
    if (--it->second == 0) count_.erase(it);
  }

  std::map<NodeId, int> count_;
};

}  // namespace tgroom
