#include "partition/cover_transform.hpp"

namespace tgroom {

EdgePartition partition_from_cover(const Graph& g, const SkeletonCover& cover,
                                   int k) {
  TGROOM_CHECK(k >= 1);
  EdgePartition partition;
  partition.k = k;

  std::vector<EdgeId> order;
  for (const Skeleton& skeleton : cover) {
    for (EdgeId e : skeleton.canonical_order()) {
      TGROOM_CHECK_MSG(!g.edge(e).is_virtual,
                       "cover skeletons must not contain virtual edges");
      order.push_back(e);
    }
  }

  for (std::size_t i = 0; i < order.size(); i += static_cast<std::size_t>(k)) {
    std::size_t end = std::min(order.size(), i + static_cast<std::size_t>(k));
    partition.parts.emplace_back(order.begin() + static_cast<long>(i),
                                 order.begin() + static_cast<long>(end));
  }
  return partition;
}

EdgePartition partition_from_cover(const Graph& g,
                                   const ArenaSkeletonCover& cover, int k,
                                   MonotonicArena& arena) {
  TGROOM_CHECK(k >= 1);
  EdgePartition partition;
  partition.k = k;

  ArenaVector<EdgeId> order{ArenaAllocator<EdgeId>(&arena)};
  for (const ArenaSkeleton& skeleton : cover) {
    skeleton.append_canonical_order(order);
  }
  for (EdgeId e : order) {
    TGROOM_CHECK_MSG(!g.edge(e).is_virtual,
                     "cover skeletons must not contain virtual edges");
  }

  partition.parts.reserve(
      (order.size() + static_cast<std::size_t>(k) - 1) /
      static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < order.size(); i += static_cast<std::size_t>(k)) {
    std::size_t end = std::min(order.size(), i + static_cast<std::size_t>(k));
    partition.parts.emplace_back(order.begin() + static_cast<long>(i),
                                 order.begin() + static_cast<long>(end));
  }
  return partition;
}

long long prop2_cost_bound(long long real_edges, int k,
                           std::size_t cover_size) {
  TGROOM_CHECK(k >= 1);
  if (real_edges == 0) return 0;
  long long wavelengths = (real_edges + k - 1) / k;
  long long boundaries =
      cover_size == 0 ? 0 : static_cast<long long>(cover_size) - 1;
  return real_edges + wavelengths + boundaries;
}

}  // namespace tgroom
