#include "partition/edge_partition.hpp"

#include <algorithm>

#include "graph/properties.hpp"

namespace tgroom {

EdgeId EdgePartition::total_edges() const {
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  return static_cast<EdgeId>(total);
}

long long sadm_cost(const Graph& g, const EdgePartition& partition) {
  long long cost = 0;
  for (const auto& part : partition.parts) {
    cost += spanned_node_count(g, part);
  }
  return cost;
}

PartitionValidation validate_partition(const Graph& g,
                                       const EdgePartition& partition) {
  PartitionValidation result;
  auto fail = [&](std::string reason) {
    result.ok = false;
    result.reason = std::move(reason);
    return result;
  };
  if (partition.k < 1) return fail("grooming factor k must be >= 1");

  std::vector<int> times_seen(static_cast<std::size_t>(g.edge_count()), 0);
  for (std::size_t i = 0; i < partition.parts.size(); ++i) {
    const auto& part = partition.parts[i];
    if (part.empty()) return fail("part " + std::to_string(i) + " is empty");
    if (part.size() > static_cast<std::size_t>(partition.k)) {
      return fail("part " + std::to_string(i) + " has " +
                  std::to_string(part.size()) + " > k edges");
    }
    for (EdgeId e : part) {
      if (e < 0 || e >= g.edge_count())
        return fail("part " + std::to_string(i) + " has invalid edge id");
      if (g.edge(e).is_virtual)
        return fail("part " + std::to_string(i) + " contains a virtual edge");
      ++times_seen[static_cast<std::size_t>(e)];
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).is_virtual) continue;
    int seen = times_seen[static_cast<std::size_t>(e)];
    if (seen != 1) {
      return fail("edge " + std::to_string(e) + " appears " +
                  std::to_string(seen) + " times");
    }
  }
  return result;
}

long long min_wavelengths(long long real_edges, int k) {
  TGROOM_CHECK(k >= 1);
  return (real_edges + k - 1) / k;
}

bool uses_min_wavelengths(const Graph& g, const EdgePartition& partition) {
  return static_cast<long long>(partition.parts.size()) ==
         min_wavelengths(g.real_edge_count(), partition.k);
}

NodeId min_nodes_for_edges(long long edges) {
  if (edges <= 0) return 0;
  NodeId t = 1;
  while (static_cast<long long>(t) * (t - 1) / 2 < edges) ++t;
  return t;
}

long long degree_lower_bound(const Graph& g, int k) {
  TGROOM_CHECK(k >= 1);
  long long total = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    total += (static_cast<long long>(g.real_degree(v)) + k - 1) / k;
  }
  return total;
}

long long partition_cost_lower_bound(const Graph& g, int k) {
  TGROOM_CHECK(k >= 1);
  long long m = g.real_edge_count();
  long long full_parts = m / k;
  long long rest = m % k;
  long long packing = full_parts * min_nodes_for_edges(k) +
                      min_nodes_for_edges(rest);
  return std::max(degree_lower_bound(g, k), packing);
}

}  // namespace tgroom
