#include "partition/skeleton.hpp"

#include <algorithm>

namespace tgroom {

Skeleton Skeleton::single_node(NodeId v) {
  Skeleton s;
  s.walk_nodes_ = {v};
  s.branches_at_.resize(1);
  return s;
}

Skeleton Skeleton::from_walk(Walk walk) {
  TGROOM_CHECK_MSG(!walk.nodes.empty(), "walk must have at least one node");
  Skeleton s;
  s.walk_nodes_ = std::move(walk.nodes);
  s.walk_edges_ = std::move(walk.edges);
  s.branches_at_.resize(s.walk_nodes_.size());
  return s;
}

void Skeleton::add_branch(std::size_t pos, EdgeId e) {
  TGROOM_CHECK(pos < branches_at_.size());
  branches_at_[pos].push_back(e);
}

std::size_t Skeleton::size() const {
  std::size_t total = walk_edges_.size();
  for (const auto& bucket : branches_at_) total += bucket.size();
  return total;
}

std::vector<EdgeId> Skeleton::canonical_order() const {
  std::vector<EdgeId> order;
  order.reserve(size());
  for (std::size_t pos = 0; pos < walk_nodes_.size(); ++pos) {
    for (EdgeId b : branches_at_[pos]) order.push_back(b);
    if (pos < walk_edges_.size()) order.push_back(walk_edges_[pos]);
  }
  return order;
}

bool Skeleton::validate(const Graph& g) const {
  if (walk_nodes_.empty()) return false;
  if (walk_edges_.size() + 1 != walk_nodes_.size()) return false;
  if (branches_at_.size() != walk_nodes_.size()) return false;
  Walk walk{walk_nodes_, walk_edges_};
  if (!walk.edges.empty() || walk.nodes.size() == 1) {
    if (!is_valid_walk(g, walk)) return false;
  }
  std::vector<char> seen(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e : walk_edges_) {
    if (seen[static_cast<std::size_t>(e)]) return false;
    seen[static_cast<std::size_t>(e)] = 1;
  }
  for (std::size_t pos = 0; pos < branches_at_.size(); ++pos) {
    for (EdgeId e : branches_at_[pos]) {
      if (e < 0 || e >= g.edge_count()) return false;
      if (seen[static_cast<std::size_t>(e)]) return false;
      seen[static_cast<std::size_t>(e)] = 1;
      if (!g.edge(e).has_endpoint(walk_nodes_[pos])) return false;
    }
  }
  return true;
}

ArenaSkeleton::ArenaSkeleton(MonotonicArena* arena)
    : walk_nodes_(ArenaAllocator<NodeId>(arena)),
      walk_edges_(ArenaAllocator<EdgeId>(arena)),
      branches_at_(ArenaAllocator<ArenaVector<EdgeId>>(arena)) {}

ArenaSkeleton ArenaSkeleton::single_node(NodeId v, MonotonicArena* arena) {
  ArenaSkeleton s(arena);
  s.walk_nodes_.push_back(v);
  s.branches_at_.resize(1, ArenaVector<EdgeId>(ArenaAllocator<EdgeId>(arena)));
  return s;
}

ArenaSkeleton ArenaSkeleton::from_walk(ArenaWalk&& walk,
                                       MonotonicArena* arena) {
  TGROOM_CHECK_MSG(!walk.nodes.empty(), "walk must have at least one node");
  ArenaSkeleton s(arena);
  s.walk_nodes_ = std::move(walk.nodes);
  s.walk_edges_ = std::move(walk.edges);
  s.branches_at_.resize(s.walk_nodes_.size(),
                        ArenaVector<EdgeId>(ArenaAllocator<EdgeId>(arena)));
  return s;
}

void ArenaSkeleton::add_branch(std::size_t pos, EdgeId e) {
  TGROOM_CHECK(pos < branches_at_.size());
  branches_at_[pos].push_back(e);
}

std::size_t ArenaSkeleton::size() const {
  std::size_t total = walk_edges_.size();
  for (const auto& bucket : branches_at_) total += bucket.size();
  return total;
}

void ArenaSkeleton::append_canonical_order(ArenaVector<EdgeId>& out) const {
  for (std::size_t pos = 0; pos < walk_nodes_.size(); ++pos) {
    for (EdgeId b : branches_at_[pos]) out.push_back(b);
    if (pos < walk_edges_.size()) out.push_back(walk_edges_[pos]);
  }
}

Skeleton ArenaSkeleton::to_skeleton() const {
  Walk w;
  w.nodes.assign(walk_nodes_.begin(), walk_nodes_.end());
  w.edges.assign(walk_edges_.begin(), walk_edges_.end());
  Skeleton s = Skeleton::from_walk(std::move(w));
  for (std::size_t pos = 0; pos < branches_at_.size(); ++pos) {
    for (EdgeId e : branches_at_[pos]) s.add_branch(pos, e);
  }
  return s;
}

std::pair<Skeleton, Skeleton> split_skeleton(const Graph& g,
                                             const Skeleton& skeleton,
                                             std::size_t t) {
  (void)g;
  TGROOM_CHECK_MSG(t <= skeleton.size(), "split point beyond skeleton size");
  const auto& nodes = skeleton.walk_nodes();
  const auto& walk_edges = skeleton.walk_edges();
  const auto& branches = skeleton.branches_at();

  Skeleton first;
  Skeleton second;
  std::size_t consumed = 0;
  // Scan positions; once `consumed` reaches t, the current position becomes
  // the shared pivot node: the prefix keeps the backbone up to the pivot
  // and the suffix restarts its backbone there.
  std::size_t pivot = nodes.size() - 1;
  std::size_t branch_split = 0;  // how many pivot branches go to the prefix
  bool pivot_found = false;
  for (std::size_t pos = 0; pos < nodes.size() && !pivot_found; ++pos) {
    std::size_t bucket = branches[pos].size();
    if (consumed + bucket >= t) {
      pivot = pos;
      branch_split = t - consumed;
      pivot_found = true;
      break;
    }
    consumed += bucket;
    if (pos < walk_edges.size()) {
      ++consumed;
      if (consumed == t) {
        pivot = pos + 1;
        branch_split = 0;
        pivot_found = true;
      }
    }
  }
  TGROOM_CHECK(pivot_found);

  // Prefix: backbone nodes[0..pivot], all earlier branches, and the first
  // `branch_split` branches at the pivot.
  first = Skeleton::single_node(nodes[0]);
  {
    Walk w;
    w.nodes.assign(nodes.begin(), nodes.begin() + static_cast<long>(pivot) + 1);
    w.edges.assign(walk_edges.begin(),
                   walk_edges.begin() + static_cast<long>(pivot));
    first = Skeleton::from_walk(std::move(w));
    for (std::size_t pos = 0; pos < pivot; ++pos) {
      for (EdgeId b : branches[pos]) first.add_branch(pos, b);
    }
    for (std::size_t i = 0; i < branch_split; ++i) {
      first.add_branch(pivot, branches[pivot][i]);
    }
  }

  // Suffix: backbone nodes[pivot..end], remaining pivot branches, and all
  // later branches.
  {
    Walk w;
    w.nodes.assign(nodes.begin() + static_cast<long>(pivot), nodes.end());
    w.edges.assign(walk_edges.begin() + static_cast<long>(pivot),
                   walk_edges.end());
    second = Skeleton::from_walk(std::move(w));
    for (std::size_t i = branch_split; i < branches[pivot].size(); ++i) {
      second.add_branch(0, branches[pivot][i]);
    }
    for (std::size_t pos = pivot + 1; pos < nodes.size(); ++pos) {
      for (EdgeId b : branches[pos]) second.add_branch(pos - pivot, b);
    }
  }

  TGROOM_DCHECK(first.size() == t);
  TGROOM_DCHECK(second.size() == skeleton.size() - t);
  return {std::move(first), std::move(second)};
}

bool validate_cover(const Graph& g, const SkeletonCover& cover) {
  std::vector<char> seen(static_cast<std::size_t>(g.edge_count()), 0);
  for (const Skeleton& s : cover) {
    if (!s.validate(g)) return false;
    for (EdgeId e : s.canonical_order()) {
      if (seen[static_cast<std::size_t>(e)]) return false;
      seen[static_cast<std::size_t>(e)] = 1;
    }
  }
  return true;
}

bool cover_spans_all_edges(const Graph& g, const SkeletonCover& cover) {
  std::vector<char> seen(static_cast<std::size_t>(g.edge_count()), 0);
  for (const Skeleton& s : cover) {
    for (EdgeId e : s.canonical_order()) {
      if (e < 0 || e >= g.edge_count()) return false;
      if (seen[static_cast<std::size_t>(e)]) return false;
      seen[static_cast<std::size_t>(e)] = 1;
    }
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!g.edge(e).is_virtual && !seen[static_cast<std::size_t>(e)])
      return false;
  }
  return true;
}

}  // namespace tgroom
