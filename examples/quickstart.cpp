// Quickstart: groom a random symmetric demand set on a 16-node UPSR with
// SpanT_Euler and print the resulting wavelength plan.
//
//   ./quickstart [--n 16] [--dense 0.5] [--k 4] [--seed 1]
#include <iostream>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/plan.hpp"
#include "sonet/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tgroom;
  CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 16));
  const double dense = args.get_double("dense", 0.5);
  const int k = static_cast<int>(args.get_int("k", 4));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  // 1. A demand set: every pair is a symmetric unit demand {x, y}.
  DemandSet demands = random_traffic(n, dense, rng);
  std::cout << "UPSR ring with " << n << " nodes, " << demands.size()
            << " symmetric demand pairs, grooming factor " << k << "\n\n";

  // 2. Groom: partition the traffic graph into <= k edges per wavelength.
  Graph traffic = demands.traffic_graph();
  EdgePartition partition =
      run_algorithm(AlgorithmId::kSpanTEuler, traffic, k);

  // 3. Turn the partition into a wavelength/timeslot plan and verify it on
  //    the ring simulator.
  GroomingPlan plan = plan_from_partition(demands, traffic, partition);
  UpsrRing ring(n);
  SimulationResult sim = simulate_plan(ring, plan);

  std::cout << "wavelengths used: " << sim.wavelengths_used
            << " (minimum possible: "
            << min_wavelengths(traffic.real_edge_count(), k) << ")\n";
  std::cout << "SADMs installed:  " << sim.sadm_count << " (lower bound "
            << partition_cost_lower_bound(traffic, k) << ")\n";
  std::cout << "optical bypasses: " << sim.bypass_count << "\n";
  std::cout << "mean link utilization: " << sim.mean_utilization * 100.0
            << "%\n";
  std::cout << "plan valid: " << (sim.ok ? "yes" : ("NO: " + sim.issue))
            << "\n\n";
  std::cout << render_sadm_map(ring, plan);
  return sim.ok ? 0 : 1;
}
