// nphard_gadget: walks through the paper's §4 NP-completeness reduction on
// a concrete instance, machine-checking every step:
//   EPT instance G  ->  Lemma 6 gadget G* (Δ-regular)  ->  Theorem 7 KEPRG
//   instance (k=3, L=m)  ->  decide and cross-check certificates.
//
//   ./nphard_gadget [--no]   (--no uses a triangle-free no-instance)
#include <iostream>

#include "gen/families.hpp"
#include "graph/properties.hpp"
#include "nphard/ept.hpp"
#include "nphard/gadget.hpp"
#include "nphard/keprg.hpp"
#include "util/cli.hpp"

using namespace tgroom;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool no_instance = args.get_bool("no", false);

  // Yes-instance: the octahedron K_{2,2,2} (4-regular, triangle-tileable).
  // No-instance: C6 (even degrees, m % 3 == 0, but triangle-free).
  Graph g(6);
  if (no_instance) {
    g = cycle_graph(6);
  } else {
    for (NodeId u = 0; u < 6; ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < 6; ++v) {
        if (v - u != 3) g.add_edge(u, v);
      }
    }
  }
  std::cout << "EPT instance: " << g.node_count() << " nodes, "
            << g.edge_count() << " edges ("
            << (no_instance ? "expected NO" : "expected YES") << ")\n";

  auto direct = solve_ept(g);
  std::cout << "  direct EPT solve: "
            << (direct ? "triangle partition found" : "no partition")
            << "\n";

  RegularEptGadget gadget = build_regular_ept_gadget(g);
  std::cout << "\nLemma 6 gadget G*: " << gadget.gstar.node_count()
            << " nodes, " << gadget.gstar.edge_count() << " edges, Δ = "
            << static_cast<int>(gadget.delta) << "\n";
  std::cout << "  simple: " << (is_simple(gadget.gstar) ? "yes" : "NO")
            << ", regular: "
            << (regularity(gadget.gstar).has_value() ? "yes" : "NO")
            << ", helper triangles: " << gadget.helper_triangles.size()
            << "\n";

  auto gstar_solution = solve_ept(gadget.gstar);
  std::cout << "  EPT on G*: "
            << (gstar_solution ? "solvable" : "unsolvable")
            << "  (must match the original instance)\n";
  TGROOM_CHECK(gstar_solution.has_value() == direct.has_value());

  if (direct) {
    TrianglePartition lifted = lift_triangle_partition(gadget, g, *direct);
    std::cout << "  lifted certificate: " << lifted.triangles.size()
              << " triangles, valid = "
              << (is_triangle_partition(gadget.gstar, lifted) ? "yes" : "NO")
              << "\n";
  }

  // Theorem 7 on the original (already regular) instance when small enough
  // for the exact solver.
  if (regularity(g).has_value() && g.edge_count() <= 24) {
    KeprgInstance instance = keprg_from_regular_ept(g);
    bool yes = keprg_decide(instance);
    std::cout << "\nTheorem 7 KEPRG instance (k=3, L=" << instance.budget_l
              << "): decision = " << (yes ? "YES" : "NO") << "\n";
    TGROOM_CHECK(yes == direct.has_value());
    if (yes && direct) {
      EdgePartition p = partition_from_triangles(g, *direct);
      std::cout << "  forward certificate: cost " << sadm_cost(g, p)
                << " == m = " << g.edge_count() << "\n";
      TrianglePartition back = triangles_from_partition(g, p);
      std::cout << "  backward extraction: " << back.triangles.size()
                << " triangles recovered\n";
    }
  }
  std::cout << "\nall reduction invariants held\n";
  return 0;
}
