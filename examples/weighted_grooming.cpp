// weighted_grooming: non-unitary traffic (the paper's §1 variant).
//
// Demands carry integer unit counts (e.g. OC-12 demands on an OC-48 ring =
// 4 units each); grooming works on the expanded traffic multigraph.  Shows
// rate-derived grooming factors, wavelength splitting of fat demands, and
// the survivability check.
//
//   ./weighted_grooming [--n 16] [--line OC-48] [--trib OC-3] [--seed 5]
#include <iostream>

#include "algorithms/algorithm.hpp"
#include "grooming/weighted.hpp"
#include "sonet/protection.hpp"
#include "sonet/rates.hpp"
#include "sonet/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace tgroom;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 16));
  auto line = parse_oc_rate(args.get("line", "OC-48"));
  auto trib = parse_oc_rate(args.get("trib", "OC-3"));
  TGROOM_CHECK_MSG(line && trib, "unknown OC rate");
  const int k = grooming_factor(*line, *trib);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));

  std::cout << "Weighted grooming on a " << n << "-node UPSR: " << oc_name(*line)
            << " wavelengths carrying " << oc_name(*trib)
            << " tributaries (grooming factor " << k << ")\n\n";

  // A mixed demand matrix: a few fat demands plus background mesh traffic.
  WeightedDemandSet demands(n);
  for (int fat = 0; fat < 3; ++fat) {
    NodeId a = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    NodeId b = static_cast<NodeId>((a + n / 2) % n);
    demands.add(a, b, k / 2 + static_cast<int>(rng.below(4)));
  }
  for (int i = 0; i < 2 * n; ++i) {
    auto a = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    auto b = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    demands.add(a, b, 1 + static_cast<int>(rng.below(3)));
  }
  Graph multigraph = demands.traffic_multigraph();
  std::cout << demands.size() << " demands, " << demands.total_units()
            << " circuit units (" << oc_name(*trib) << " each)\n\n";

  TextTable table("Grooming results");
  table.set_header(
      {"algorithm", "SADMs", "wavelengths", "split demands", "survivable"});
  for (AlgorithmId id : {AlgorithmId::kSpanTEuler, AlgorithmId::kCliquePack,
                         AlgorithmId::kBrauner}) {
    EdgePartition p = run_algorithm(id, multigraph, k);
    TGROOM_CHECK(validate_partition(multigraph, p).ok);
    GroomingPlan plan = plan_from_weighted_partition(demands, multigraph, p);
    UpsrRing ring(n);
    SimulationResult sim = simulate_plan(ring, plan);
    TGROOM_CHECK_MSG(sim.ok, sim.issue);
    auto spread = demand_wavelength_spread(demands, multigraph, p);
    int split = 0;
    for (int s : spread) split += (s > 1);
    bool survivable =
        survivability_report(ring, plan).survives_all_single_failures;
    table.add_row({algorithm_name(id), TextTable::num(sim.sadm_count),
                   TextTable::num(static_cast<long long>(sim.wavelengths_used)),
                   TextTable::num(static_cast<long long>(split)),
                   survivable ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nminimum wavelengths: "
            << min_wavelengths(multigraph.real_edge_count(), k)
            << "; every unit consumes one " << oc_name(*trib)
            << " timeslot on all " << n << " spans of its wavelength\n";
  return 0;
}
