// tgroom: the command-line front end.  Compose with pipes:
//
//   tgroom generate --pattern regular --n 36 --r 7 |
//     tgroom groom --k 16 --algorithm regular | tgroom simulate
//
//   tgroom generate --n 24 --dense 0.5 | tgroom compare --k 8
#include <iostream>

#include "tools/commands.hpp"

int main(int argc, char** argv) {
  return tgroom::tools::run_tool(argc, argv, std::cin, std::cout, std::cerr);
}
