// regular_traffic: study of the regular traffic pattern (paper §4).
//
// Each node sources exactly r symmetric demands — the transceiver-limited
// pattern the paper motivates.  Shows Regular_Euler against SpanT_Euler
// and the Theorem 10 guarantee, plus the all-to-all special case r = n-1.
//
//   ./regular_traffic [--n 36] [--r 7] [--k 16] [--seeds 10]
#include <iostream>

#include "algorithms/regular_euler.hpp"
#include "algorithms/spant_euler.hpp"
#include "gen/regular_graph.hpp"
#include "gen/traffic_patterns.hpp"
#include "graph/properties.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace tgroom;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 36));
  const auto r = static_cast<NodeId>(args.get_int("r", 7));
  const int k = static_cast<int>(args.get_int("k", 16));
  const int seeds = static_cast<int>(args.get_int("seeds", 10));
  TGROOM_CHECK_MSG(regular_feasible(n, r), "no simple r-regular graph here");

  std::cout << "Regular traffic pattern: n=" << n << ", r=" << r
            << ", grooming factor k=" << k << "\n";
  std::cout << "m = n*r/2 = " << (static_cast<long long>(n) * r / 2)
            << " demand pairs; every node terminates exactly " << r
            << " demands\n\n";

  double regular_total = 0, spant_total = 0, bound_total = 0, lb_total = 0;
  double cover_total = 0, match_total = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 1);
    DemandSet demands = regular_traffic(n, r, rng);
    Graph traffic = demands.traffic_graph();

    RegularEulerTrace trace;
    EdgePartition reg = regular_euler(traffic, k, {}, &trace);
    EdgePartition spn = spant_euler(traffic, k);
    regular_total += static_cast<double>(sadm_cost(traffic, reg));
    spant_total += static_cast<double>(sadm_cost(traffic, spn));
    int components = r % 2 == 0 ? static_cast<int>(trace.cover.size()) : 0;
    bound_total += static_cast<double>(regular_euler_cost_bound(
        n, r, traffic.real_edge_count(), k, components));
    lb_total += static_cast<double>(partition_cost_lower_bound(traffic, k));
    cover_total += static_cast<double>(trace.cover.size());
    match_total += static_cast<double>(trace.matching.size());
  }

  TextTable table("Mean over " + std::to_string(seeds) + " random " +
                  std::to_string(r) + "-regular instances");
  table.set_header({"metric", "value"});
  table.add_row({"Regular_Euler SADMs", TextTable::num(regular_total / seeds, 1)});
  table.add_row({"SpanT_Euler SADMs", TextTable::num(spant_total / seeds, 1)});
  table.add_row({"Theorem 10 bound", TextTable::num(bound_total / seeds, 1)});
  table.add_row({"lower bound", TextTable::num(lb_total / seeds, 1)});
  table.add_row({"skeleton cover size", TextTable::num(cover_total / seeds, 2)});
  if (r % 2 == 1) {
    table.add_row({"matching size", TextTable::num(match_total / seeds, 1)});
    table.add_row({"Lemma 8 matching bound",
                   TextTable::num(static_cast<double>(
                                      lemma8_matching_lower_bound(n, r)),
                                  0)});
    table.add_row({"Lemma 9 cover bound",
                   TextTable::num(static_cast<double>(lemma9_cover_bound(n, r)),
                                  0)});
  }
  table.print(std::cout);

  // The all-to-all special case (r = n-1) from the paper's introduction.
  std::cout << "\nAll-to-all special case (r = n-1) on a small ring:\n";
  DemandSet all = all_to_all_traffic(12);
  Graph traffic = all.traffic_graph();
  EdgePartition p = regular_euler(traffic, k);
  std::cout << "  n=12, m=" << traffic.real_edge_count() << ", k=" << k
            << ": Regular_Euler uses " << sadm_cost(traffic, p)
            << " SADMs on " << p.wavelength_count() << " wavelengths (min "
            << min_wavelengths(traffic.real_edge_count(), k) << ")\n";
  return 0;
}
