// ring_designer: an end-to-end UPSR design tool.
//
// Reads a demand set (from a file in edge-list format, or generated), runs
// every grooming algorithm, picks the cheapest valid plan, optionally
// applies the local-search refiner, and prints a full deployment report:
// per-wavelength SADM placements, link loads, and a comparison table.
//
//   ./ring_designer --demands ring.dem --k 16
//   ./ring_designer --n 24 --dense 0.5 --k 8 --refine
#include <fstream>
#include <iostream>

#include "algorithms/algorithm.hpp"
#include "algorithms/refine.hpp"
#include "gen/traffic_patterns.hpp"
#include "graph/properties.hpp"
#include "grooming/plan.hpp"
#include "sonet/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace tgroom;

namespace {

DemandSet load_demands(const CliArgs& args) {
  std::string path = args.get("demands", "");
  if (!path.empty()) {
    std::ifstream in(path);
    TGROOM_CHECK_MSG(in.good(), "cannot open demand file: " + path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return DemandSet::parse(text);
  }
  const auto n = static_cast<NodeId>(args.get_int("n", 24));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
  return random_traffic(n, args.get_double("dense", 0.5), rng);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int k = static_cast<int>(args.get_int("k", 16));
  const bool refine = args.get_bool("refine", false);

  DemandSet demands = load_demands(args);
  Graph traffic = demands.traffic_graph();
  std::cout << "Designing a UPSR with " << demands.ring_size() << " nodes, "
            << demands.size() << " demand pairs, grooming factor " << k
            << (refine ? ", refine on" : "") << "\n\n";

  std::vector<AlgorithmId> candidates{
      AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
      AlgorithmId::kWangGuIcc06, AlgorithmId::kSpanTEuler,
      AlgorithmId::kCliquePack};
  if (regularity(traffic).has_value() && *regularity(traffic) >= 2) {
    candidates.push_back(AlgorithmId::kRegularEuler);
  }

  TextTable comparison("Algorithm comparison");
  comparison.set_header({"algorithm", "SADMs", "wavelengths", "valid"});
  EdgePartition best;
  long long best_cost = -1;
  std::string best_name;
  for (AlgorithmId id : candidates) {
    GroomingOptions options;
    options.refine = refine;
    EdgePartition p = run_algorithm(id, traffic, k, options);
    bool ok = validate_partition(traffic, p).ok;
    long long cost = sadm_cost(traffic, p);
    comparison.add_row({algorithm_name(id), TextTable::num(cost),
                        TextTable::num(static_cast<long long>(
                            p.wavelength_count())),
                        ok ? "yes" : "NO"});
    if (ok && (best_cost < 0 || cost < best_cost)) {
      best_cost = cost;
      best = std::move(p);
      best_name = algorithm_name(id);
    }
  }
  comparison.print(std::cout);
  std::cout << "\nlower bound: " << partition_cost_lower_bound(traffic, k)
            << " SADMs; minimum wavelengths: "
            << min_wavelengths(traffic.real_edge_count(), k) << "\n";
  std::cout << "selected: " << best_name << " (" << best_cost << " SADMs)\n\n";

  GroomingPlan plan = plan_from_partition(demands, traffic, best);
  UpsrRing ring(demands.ring_size());
  SimulationResult sim = simulate_plan(ring, plan);
  TGROOM_CHECK_MSG(sim.ok, "simulator rejected the plan: " + sim.issue);

  std::cout << "deployment report (simulated):\n";
  std::cout << "  SADMs: " << sim.sadm_count
            << "   bypasses: " << sim.bypass_count
            << "   unit-hops: " << sim.unit_hops
            << "   mean link utilization: "
            << TextTable::num(sim.mean_utilization * 100, 1) << "%\n\n";
  std::cout << render_sadm_map(ring, plan);
  return 0;
}
