#!/usr/bin/env python3
"""Crash-recovery harness: SIGKILL a live `tgroom serve --data-dir` daemon
mid-workload and assert recovery is exact.

Each trial:
  1. Starts the daemon on a fresh data dir with --fsync always --workers 0
     (inline execution: request order == WAL order, one record per
     mutating request).
  2. Feeds it a deterministic NDJSON workload (4 groom-holds on distinct
     graphs, then a round-robin mix of provisions, partial releases with
     and without repair, and periodic release-all + re-hold cycles that
     advance the plan-id counter) and SIGKILLs it at a random point — either between requests (tracking
     how many were acked) or racing the stream (the kill can land
     mid-write, producing genuinely torn WAL tails).
  3. Recovers the directory read-only via `tgroom store-dump`, parses the
     surviving sequence number S, and checks the durability promise:
     every acked request survived (S >= acked).
  4. Replays the first S requests into a *fresh* daemon on a clean dir,
     lets it exit cleanly, and store-dumps that too.  The two dumps must
     be byte-identical: recovery reproduced exactly the table an
     uncrashed process would hold after the same S operations.

stdlib-only; exits non-zero on the first violated invariant.

Usage:
    crash_recovery_harness.py --binary build/examples/tgroom \\
        [--trials 50] [--ops 1000] [--seed 1]
"""

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

RING = 8
HELD_PLANS = 4

# Distinct small demand graphs for the four held plans (node count RING).
HOLD_GRAPHS = [
    [[0, 1], [1, 2], [2, 3], [3, 4], [0, 4]],
    [[0, 2], [2, 4], [4, 6], [0, 6], [1, 3]],
    [[0, 5], [1, 6], [2, 7], [3, 5], [1, 4]],
    [[0, 3], [3, 6], [1, 5], [2, 6], [4, 7], [0, 7]],
]


def workload(ops):
    """The scripted request list: HELD_PLANS holds, then a deterministic
    round-robin interleaving of provisions, partial releases (repair on
    and off), and release-all + re-hold cycles.  Python mirrors the
    per-plan demand multiset so every release targets pairs that are
    actually present, and tracks the server's plan-id counter so re-holds
    after a release-all address the right plan.  Any prefix of the list
    is itself a valid workload — the replay-first-S-requests check in
    each trial depends on that."""
    lines = []
    slots = []  # per round-robin slot: {"plan_id": int|None, "pairs": [..]}
    next_plan_id = 1
    for i in range(ops):
        slot_index = i % HELD_PLANS
        if i < HELD_PLANS:
            request = {
                "op": "groom",
                "id": i,
                "graph": {"n": RING, "edges": HOLD_GRAPHS[i]},
                "k": 4,
                "hold": True,
            }
            slots.append({
                "plan_id": next_plan_id,
                "pairs": [tuple(e) for e in HOLD_GRAPHS[i]],
            })
            next_plan_id += 1
        else:
            slot = slots[slot_index]
            if slot["plan_id"] is None:
                # Dropped by an earlier release-all: re-hold its graph
                # under a fresh plan id.
                request = {
                    "op": "groom",
                    "id": i,
                    "graph": {"n": RING, "edges": HOLD_GRAPHS[slot_index]},
                    "k": 4,
                    "hold": True,
                }
                slot["plan_id"] = next_plan_id
                slot["pairs"] = [tuple(e) for e in HOLD_GRAPHS[slot_index]]
                next_plan_id += 1
            elif i % 31 == 0:
                request = {
                    "op": "release",
                    "id": i,
                    "plan_id": slot["plan_id"],
                    "all": True,
                }
                slot["plan_id"] = None
                slot["pairs"] = []
            elif i % 7 == 0 and slot["pairs"]:
                a, b = slot["pairs"].pop(0)
                request = {
                    "op": "release",
                    "id": i,
                    "plan_id": slot["plan_id"],
                    "remove": [[a, b]],
                    "repair": i % 14 == 0,
                }
            else:
                a = (i * 7 + 1) % RING
                b = (i * 5 + 3) % RING
                if a == b:
                    b = (b + 1) % RING
                pair = (min(a, b), max(a, b))
                request = {
                    "op": "provision",
                    "id": i,
                    "plan_id": slot["plan_id"],
                    "add": [list(pair)],
                }
                slot["pairs"].append(pair)
        lines.append(json.dumps(request, separators=(",", ":")))
    return lines


def serve_cmd(binary, data_dir):
    return [
        binary, "serve",
        "--data-dir", data_dir,
        "--fsync", "always",
        "--workers", "0",
        "--exit-metrics", "false",
    ]


def store_dump(binary, data_dir):
    """Read-only dump; returns (last_seq, stdout_text)."""
    result = subprocess.run(
        [binary, "store-dump", "--data-dir", data_dir],
        capture_output=True, text=True,
    )
    if result.returncode != 0:
        sys.exit(f"store-dump failed on {data_dir}:\n{result.stderr}")
    header = result.stdout.splitlines()[0] if result.stdout else ""
    if not header.startswith("# tgroom store:"):
        sys.exit(f"store-dump produced no header on {data_dir}:\n"
                 f"{result.stdout[:200]}")
    fields = dict(part.split("=", 1)
                  for part in header.split()
                  if "=" in part)
    return int(fields["last_seq"]), result.stdout


def crash_synchronized(binary, data_dir, lines, kill_at):
    """Feed requests one at a time, reading each ack; SIGKILL after
    `kill_at` acked requests.  Returns the acked count."""
    proc = subprocess.Popen(
        serve_cmd(binary, data_dir),
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
    )
    acked = 0
    try:
        for line in lines[:kill_at]:
            proc.stdin.write(line + "\n")
            proc.stdin.flush()
            response = proc.stdout.readline()
            reply = json.loads(response)
            if not reply.get("ok"):
                sys.exit(f"request rejected before crash: {response!r}")
            acked += 1
    finally:
        proc.kill()
        proc.wait()
    return acked


def crash_racing(binary, data_dir, lines, rng):
    """Blast the whole stream at the daemon and SIGKILL it after a random
    delay — the kill can land mid-append, leaving a torn WAL tail.
    Returns 0: nothing is known to be acked."""
    proc = subprocess.Popen(
        serve_cmd(binary, data_dir),
        stdin=subprocess.PIPE, stdout=subprocess.DEVNULL, text=True,
    )
    try:
        try:
            proc.stdin.write("\n".join(lines) + "\n")
            proc.stdin.flush()
        except BrokenPipeError:
            pass  # killed from under the write; that's the point
        time.sleep(rng.uniform(0.0, 0.05))
    finally:
        proc.kill()
        proc.wait()
    return 0


def reference_dump(binary, data_dir, lines):
    """Clean run of `lines` through a fresh daemon (EOF exit), dumped."""
    proc = subprocess.run(
        serve_cmd(binary, data_dir),
        input="".join(line + "\n" for line in lines),
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        sys.exit(f"reference daemon failed:\n{proc.stderr}")
    return store_dump(binary, data_dir)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the tgroom tool binary")
    parser.add_argument("--trials", type=int, default=50)
    parser.add_argument("--ops", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    lines = workload(args.ops)
    rng = random.Random(args.seed)
    torn_recoveries = 0

    root = tempfile.mkdtemp(prefix="tgroom_crash_harness_")
    try:
        for trial in range(args.trials):
            crash_dir = os.path.join(root, f"crash{trial}")
            ref_dir = os.path.join(root, f"ref{trial}")
            os.makedirs(crash_dir)
            os.makedirs(ref_dir)

            racing = trial % 2 == 1
            if racing:
                acked = crash_racing(args.binary, crash_dir, lines, rng)
            else:
                kill_at = rng.randint(1, args.ops)
                acked = crash_synchronized(
                    args.binary, crash_dir, lines, kill_at)

            survived, crash_text = store_dump(args.binary, crash_dir)
            if survived < acked:
                sys.exit(
                    f"trial {trial}: DURABILITY VIOLATION — acked "
                    f"{acked} requests but only {survived} recovered")
            if survived > len(lines):
                sys.exit(f"trial {trial}: recovered {survived} ops from a "
                         f"{len(lines)}-op workload")

            _, ref_text = reference_dump(
                args.binary, ref_dir, lines[:survived])
            if crash_text != ref_text:
                sys.stderr.write(f"--- crashed recovery ---\n{crash_text}\n"
                                 f"--- uncrashed reference ---\n{ref_text}\n")
                sys.exit(f"trial {trial}: recovered state diverges from "
                         f"the uncrashed reference after {survived} ops")

            if racing:
                torn_recoveries += 1
            mode = "racing" if racing else f"acked={acked}"
            print(f"trial {trial:3d}: {mode:>12}  survived={survived:4d}  "
                  f"recovery exact")
            shutil.rmtree(crash_dir)
            shutil.rmtree(ref_dir)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    print(f"\nOK: {args.trials} crash trials "
          f"({torn_recoveries} racing the stream), every recovery "
          f"bit-identical to its uncrashed reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
