#!/usr/bin/env python3
"""Compare a benchmark JSON against a checked-in baseline.

Works on the repo's plain-main benchmark artifacts (BENCH_service.json,
BENCH_throughput.json, BENCH_wal.json): a top-level "runs" array whose
entries are identified by whichever of "workers" / "mode" / "threads"
they carry, and rate metrics alongside.  Every metric whose name ends in
"_rps" or "_per_sec" is treated as higher-is-better; a drop of more than
--threshold (default 15%) on any of them fails the comparison with exit
code 1, which is how CI turns a perf regression into a red build.

A missing baseline file is not an error: new benchmarks land before
their baseline is recorded, so the script prints how to create one and
exits 0 rather than failing every CI run in between.

Usage:
    bench_compare.py BASELINE CURRENT [--threshold 0.15]

CI runners are noisy, so the default threshold is deliberately loose; it
catches "someone re-introduced a deep copy on the hot path", not 2%
jitter.
"""

import argparse
import json
import os
import sys

RATE_SUFFIXES = ("_rps", "_per_sec")

# Fields that identify a run within a benchmark's "runs" array.  A run
# carries any subset of these; absent fields read as None so artifacts
# with different shapes (workers-keyed vs mode-keyed) both work.
# "connections"/"pipeline" key the event-loop TCP rows of
# BENCH_service.json (mode="tcp") by client fan-in and window depth.
# "n" keys the instance-size rows of BENCH_scale.json.  "shards" keys the
# BENCH_cluster.json rows by shard-group count behind the router.
KEY_FIELDS = ("workers", "mode", "threads", "connections", "pipeline", "n",
              "shards")


def run_key(run):
    return tuple(run.get(field) for field in KEY_FIELDS)


def key_label(key):
    parts = [
        f"{field}={value}"
        for field, value in zip(KEY_FIELDS, key)
        if value is not None
    ]
    return ",".join(parts) if parts else "-"


def sortable(key):
    # None-safe ordering: absent fields sort first, mixed types compare
    # as strings.
    return tuple((value is None, str(value)) for value in key)


def rate_metrics(run):
    return {
        key: value
        for key, value in run.items()
        if isinstance(value, (int, float))
        and key.endswith(RATE_SUFFIXES)
    }


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        sys.exit(f"{path}: no 'runs' array")
    return doc.get("benchmark", "?"), {run_key(run): run for run in runs}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum tolerated fractional drop on any rate metric",
    )
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}: nothing to compare against.")
        print(f"record one with:  cp {args.current} {args.baseline}")
        return 0

    base_name, base_runs = load_runs(args.baseline)
    cur_name, cur_runs = load_runs(args.current)
    if base_name != cur_name:
        sys.exit(
            f"benchmark mismatch: baseline is '{base_name}', "
            f"current is '{cur_name}'"
        )

    regressions = []
    print(f"benchmark: {base_name} (threshold {args.threshold:.0%})")
    print(f"{'run':>18} {'metric':<18} {'baseline':>12} "
          f"{'current':>12} {'delta':>8}")
    for key, base_run in sorted(
        base_runs.items(), key=lambda kv: sortable(kv[0])
    ):
        label = key_label(key)
        cur_run = cur_runs.get(key)
        if cur_run is None:
            print(f"{label:>18} (missing from current — skipped)")
            continue
        for metric, base_value in sorted(rate_metrics(base_run).items()):
            cur_value = cur_run.get(metric)
            if not isinstance(cur_value, (int, float)) or base_value <= 0:
                continue
            delta = cur_value / base_value - 1.0
            flag = ""
            if delta < -args.threshold:
                flag = "  << REGRESSION"
                regressions.append((label, metric, base_value, cur_value))
            print(f"{label:>18} {metric:<18} {base_value:>12.1f} "
                  f"{cur_value:>12.1f} {delta:>+7.1%}{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%}:")
        for label, metric, base_value, cur_value in regressions:
            print(f"  {label} {metric}: "
                  f"{base_value:.1f} -> {cur_value:.1f}")
        return 1
    print("\nOK: no rate metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
