#!/usr/bin/env python3
"""Cluster failover harness: SIGKILL a shard primary under a routed
workload and assert the router fails over and no acked mutation is lost.

Topology per cycle (five processes, all on ephemeral ports):

    router (`tgroom route --shards p0,r0;p1,r1`)
      shard 0: primary + replica (`--replica-of`), durable data dirs
      shard 1: primary + replica, durable data dirs

Each cycle:
  1. Feeds the first half of a deterministic mixed workload (held grooms,
     provisions, releases — every mutation pinned by route_key — plus
     stateless grooms) through the router in lockstep, requiring every
     ack ok.
  2. Polls shard 0's primary directly until its health replicas[] table
     shows the replica's acked_seq caught up to last_seq (the ISSUE 9
     lag surface), then SIGKILLs that primary.  The sync means every
     acked mutation is on the replica, so after failover *nothing* may
     be missing; killing between lockstep acks means nothing is in
     flight, so client-side retries cannot double-apply.
  3. Feeds the second half.  Mutations answered `shard_down` (the
     owning shard is mid-failover) are retried with backoff until the
     router promotes the replica; the cycle fails if the shard never
     comes back.
  4. Asserts the router's stats fan-out now reports a failover and that
     shard 0's surviving member answers as a primary.
  5. Shuts down through the router (which drains every shard), then
     byte-diffs each surviving store — shard 0's promoted replica,
     shard 1's primary — against a clean single-node replay of exactly
     the ok-acked mutating lines the harness routed to that shard
     (route_mix in Python mirrors src/cluster/cluster_map.hpp; shard
     nodes ignore route_key, so the routed lines replay verbatim).

stdlib-only; exits non-zero on the first violated invariant.

Usage:
    cluster_harness.py --binary build/examples/tgroom \\
        [--cycles 10] [--ops 120] [--seed 1]
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from crash_recovery_harness import reference_dump, store_dump

SHARDS = 2
MASK = (1 << 64) - 1


def route_mix(key):
    """splitmix64 finalizer — must match cluster_map.hpp's route_mix."""
    z = (key + 0x9E3779B97F4A7C15) & MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK
    return z ^ (z >> 31)


def shard_for_key(key):
    return ((route_mix(key) >> 48) * SHARDS) >> 16


def start_node(binary, data_dir, shard_index, node_id, replica_of=None):
    """One shard node with durable store and cluster identity."""
    port_file = data_dir.rstrip("/") + ".port"
    cmd = [
        binary, "serve",
        "--data-dir", data_dir,
        "--fsync", "always",
        "--workers", "0",
        "--exit-metrics", "false",
        "--port", "0",
        "--port-file", port_file,
        "--node-id", node_id,
        "--shard-index", str(shard_index),
        "--shard-count", str(SHARDS),
    ]
    if replica_of:
        cmd += ["--replica-of", replica_of]
    return launch(cmd, port_file, node_id)


def start_router(binary, shards_spec, tmp):
    port_file = os.path.join(tmp, "router.port")
    cmd = [
        binary, "route",
        "--shards", shards_spec,
        "--workers", "4",
        "--port", "0",
        "--port-file", port_file,
        "--exit-metrics", "false",
        "--probe-ms", "100",
    ]
    return launch(cmd, port_file, "router")


def launch(cmd, port_file, what):
    if os.path.exists(port_file):
        os.unlink(port_file)
    proc = subprocess.Popen(
        cmd, stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            sys.exit(f"{what} exited {proc.returncode} before binding:\n"
                     + proc.stderr.read())
        try:
            with open(port_file, encoding="ascii") as f:
                text = f.read().strip()
            if text:
                return proc, int(text)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.02)
    proc.kill()
    sys.exit(f"{what} never wrote its port file")


def connect(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    sock.settimeout(30)
    return sock, sock.makefile("r", encoding="utf-8", newline="\n")


def request(sock, reader, obj):
    sock.sendall((json.dumps(obj, separators=(",", ":")) + "\n").encode())
    line = reader.readline()
    if not line:
        sys.exit(f"connection closed answering {obj!r}")
    return json.loads(line)


def send_line(sock, reader, line):
    sock.sendall((line + "\n").encode())
    reply = reader.readline()
    if not reply:
        sys.exit(f"connection closed answering {line!r}")
    return json.loads(reply)


def workload(ops):
    """Deterministic mixed stream.  Returns a list of steps
    {line, mutating, shard, kind}; provisions/releases carry the literal
    plan_id the cycle's holds will produce (each shard node numbers its
    own holds 1,2,3,... in arrival order, which the harness mirrors
    per shard)."""
    steps = []
    held = []            # (route_key, plan_id) with a live held plan
    next_plan = [1] * SHARDS  # per-shard plan-id counters
    for i in range(ops):
        kind = i % 5
        if kind == 3 and held:
            rk, pid = held[(i // 5) % len(held)]
            line = (f'{{"op":"provision","id":{i},"route_key":{rk},'
                    f'"plan_id":{pid},"add":[[0,{2 + i % 2}]]}}')
            steps.append({"line": line, "mutating": True,
                          "shard": shard_for_key(rk), "kind": "provision"})
        elif kind == 4 and len(held) > 3:
            rk, pid = held.pop(0)
            line = (f'{{"op":"release","id":{i},"route_key":{rk},'
                    f'"plan_id":{pid},"all":true}}')
            steps.append({"line": line, "mutating": True,
                          "shard": shard_for_key(rk), "kind": "release"})
        elif kind == 2:
            rk = 1000 + i
            shard = shard_for_key(rk)
            pid = next_plan[shard]
            next_plan[shard] += 1
            held.append((rk, pid))
            n = 4 + i % 6
            edges = [[u, (u + 1) % n] for u in range(n)]
            line = (f'{{"op":"groom","id":{i},"route_key":{rk},'
                    f'"hold":true,"graph":{{"n":{n},'
                    f'"edges":{json.dumps(edges)}}},"k":4}}')
            steps.append({"line": line, "mutating": True,
                          "shard": shard, "kind": "hold"})
        else:
            n = 4 + i % 6
            edges = [[u, (u + 1) % n] for u in range(n)]
            line = (f'{{"op":"groom","id":{i},"graph":{{"n":{n},'
                    f'"edges":{json.dumps(edges)}}},"k":4}}')
            steps.append({"line": line, "mutating": False,
                          "shard": None, "kind": "groom"})
    return steps


def drive(sock, reader, steps, applied, retry_shard_down=False):
    """Lockstep-runs `steps`; ok-acked mutations land in applied[shard].
    With retry_shard_down, a shard_down answer (shard mid-failover) is
    retried with backoff for up to 20s; anything else non-ok is fatal."""
    retried = 0
    for step in steps:
        deadline = time.monotonic() + 20
        while True:
            reply = send_line(sock, reader, step["line"])
            if reply.get("ok"):
                break
            if (retry_shard_down and reply.get("error") == "shard_down"
                    and time.monotonic() < deadline):
                retried += 1
                time.sleep(0.05)
                continue
            sys.exit(f"request failed: {step['line']!r} -> {reply!r}")
        if step["mutating"]:
            if step["kind"] == "hold" and "plan_id" not in reply:
                sys.exit(f"hold ack without plan_id: {reply!r}")
            applied[step["shard"]].append(step["line"])
    return retried


def wait_replica_caught_up(port, what):
    """Polls a primary's health until every connected replica's acked_seq
    matches last_seq (the per-replica lag table from ISSUE 9)."""
    sock, reader = connect(port)
    try:
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            health = request(sock, reader, {"op": "health"})
            replicas = health.get("replicas", [])
            if replicas and all(r["acked_seq"] == health["last_seq"]
                                for r in replicas):
                return health["last_seq"]
            time.sleep(0.02)
        sys.exit(f"{what}: replica never caught up: {health!r}")
    finally:
        sock.close()


def wait_shard_primary(router_port, shard, what):
    """Polls the router's health until `shard` reports a healthy
    primary again (failover complete)."""
    sock, reader = connect(router_port)
    try:
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            health = request(sock, reader, {"op": "health"})
            entry = health["shards"][shard]
            if entry.get("primary_healthy"):
                return entry["primary"]
            time.sleep(0.05)
        sys.exit(f"{what}: shard {shard} never recovered: {health!r}")
    finally:
        sock.close()


def run_cycle(args, cycle, root):
    tmp = os.path.join(root, f"cycle{cycle}")
    os.makedirs(tmp)
    dirs = {}
    for s in range(SHARDS):
        for role in ("primary", "replica"):
            path = os.path.join(tmp, f"s{s}_{role}")
            os.makedirs(path)
            dirs[(s, role)] = path

    procs = []
    try:
        members = {}
        for s in range(SHARDS):
            proc, port = start_node(args.binary, dirs[(s, "primary")], s,
                                    f"s{s}p")
            procs.append(proc)
            members[(s, "primary")] = (proc, port)
            proc, rport = start_node(args.binary, dirs[(s, "replica")], s,
                                     f"s{s}r",
                                     replica_of=f"127.0.0.1:{port}")
            procs.append(proc)
            members[(s, "replica")] = (proc, rport)
        spec = ";".join(
            f"127.0.0.1:{members[(s, 'primary')][1]},"
            f"127.0.0.1:{members[(s, 'replica')][1]}"
            for s in range(SHARDS))
        router, router_port = start_router(args.binary, spec, tmp)
        procs.append(router)

        steps = workload(args.ops)
        half = len(steps) // 2
        applied = [[] for _ in range(SHARDS)]

        sock, reader = connect(router_port)
        drive(sock, reader, steps[:half], applied)

        # Sync point: every acked shard-0 mutation is on the replica, so
        # after the kill nothing acked may be missing.
        victim_proc, victim_port = members[(0, "primary")]
        wait_replica_caught_up(victim_port, f"cycle {cycle}")
        victim_proc.send_signal(signal.SIGKILL)
        victim_proc.wait()

        retried = drive(sock, reader, steps[half:], applied,
                        retry_shard_down=True)
        promoted_to = wait_shard_primary(router_port, 0, f"cycle {cycle}")

        stats = request(sock, reader, {"op": "stats"})
        failovers = stats["router"]["counters"]["failovers"]
        if failovers < 1:
            sys.exit(f"cycle {cycle}: primary killed but router counted "
                     f"{failovers} failovers")

        request(sock, reader, {"op": "shutdown"})
        sock.close()
        router.wait(timeout=30)
        for s in range(SHARDS):
            for role in ("primary", "replica"):
                proc = members[(s, role)][0]
                if proc.poll() is None:
                    proc.wait(timeout=30)

        # The acceptance diff: each surviving store against a clean
        # replay of exactly the lines the router applied to that shard.
        survivors = {0: dirs[(0, "replica")], 1: dirs[(1, "primary")]}
        for s, store_dir in survivors.items():
            ref_dir = os.path.join(tmp, f"ref{s}")
            os.makedirs(ref_dir)
            _, got = store_dump(args.binary, store_dir)
            _, want = reference_dump(args.binary, ref_dir, applied[s])
            if got != want:
                sys.stderr.write(f"--- shard {s} survivor ---\n{got}\n"
                                 f"--- clean replay ---\n{want}\n")
                sys.exit(f"cycle {cycle}: shard {s} store diverges from "
                         f"replay of {len(applied[s])} mutations")

        print(f"cycle {cycle:3d}: {len(steps)} requests, "
              f"{retried} shard_down retries, failover -> {promoted_to}, "
              f"both stores exact")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    shutil.rmtree(tmp)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the tgroom tool binary")
    parser.add_argument("--cycles", type=int, default=10)
    parser.add_argument("--ops", type=int, default=120)
    parser.add_argument("--seed", type=int, default=1)  # reserved
    args = parser.parse_args()

    root = tempfile.mkdtemp(prefix="tgroom_cluster_harness_")
    try:
        for cycle in range(args.cycles):
            run_cycle(args, cycle, root)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    print(f"OK: {args.cycles} kill/failover cycles, every surviving "
          f"store bit-identical to its clean replay")
    return 0


if __name__ == "__main__":
    sys.exit(main())
