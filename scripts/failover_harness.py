#!/usr/bin/env python3
"""Failover harness: SIGKILL a replicated primary mid-workload, promote
the replica, and assert the promoted store is exact.

Generalizes crash_recovery_harness.py (whose workload and store-dump
helpers it imports) from one process to a primary/replica pair:

Each trial:
  1. Starts a primary (`tgroom serve --data-dir ... --fsync always
     --workers 0 --port 0`) and a replica (`--replica-of 127.0.0.1:PORT`)
     on fresh data dirs, both on ephemeral ports parsed from the
     atomically-written --port-file.
  2. Feeds the primary the deterministic NDJSON workload over TCP.
     Even trials are *synchronized*: each request's ack is read, the
     replica is polled (health op) until it has applied every acked
     record, then the primary is SIGKILLed — durability across failover
     demands the promoted node hold all of them.  Odd trials are
     *racing*: the whole stream is blasted and the primary SIGKILLed at
     a random moment, so the replica holds some unknown prefix.
  3. Checks the replica still rejects mutations (read_only), promotes it
     (`promote` drains the stream, fsyncs, flips the role), and reads
     the surviving sequence number S from its health probe.
  4. store-dumps the promoted node's data dir and diffs it byte-for-byte
     against a clean single-node replay of the first S workload requests
     — the ISSUE 8 acceptance check — then proves the promoted node
     accepts a fresh mutation.

stdlib-only; exits non-zero on the first violated invariant.

Usage:
    failover_harness.py --binary build/examples/tgroom \\
        [--trials 10] [--ops 300] [--seed 1]
"""

import argparse
import json
import os
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from crash_recovery_harness import reference_dump, store_dump, workload

def start_server(binary, data_dir, replica_of=None):
    """Launches `tgroom serve --port 0 --port-file ...` and returns
    (proc, port) once the atomically-written port file appears."""
    # Next to, not inside, the data dir: the store owns that directory.
    port_file = data_dir.rstrip("/") + ".port"
    if os.path.exists(port_file):
        os.unlink(port_file)
    cmd = [
        binary, "serve",
        "--data-dir", data_dir,
        "--fsync", "always",
        "--workers", "0",
        "--exit-metrics", "false",
        "--port", "0",
        "--port-file", port_file,
    ]
    if replica_of:
        cmd += ["--replica-of", replica_of]
    proc = subprocess.Popen(
        cmd, stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            sys.exit(f"server on {data_dir} exited {proc.returncode} "
                     f"before binding")
        try:
            with open(port_file, encoding="ascii") as f:
                text = f.read().strip()
            if text:
                return proc, int(text)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.02)
    proc.kill()
    proc.wait()
    sys.exit(f"server on {data_dir} never wrote its port file")


def connect(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.settimeout(10)
    return sock, sock.makefile("r", encoding="utf-8", newline="\n")


def request(sock, reader, obj):
    """One request/response round-trip on an open connection."""
    sock.sendall((json.dumps(obj, separators=(",", ":")) + "\n").encode())
    line = reader.readline()
    if not line:
        sys.exit(f"connection closed answering {obj!r}")
    return json.loads(line)


def replica_last_seq(sock, reader):
    reply = request(sock, reader, {"op": "health"})
    if not reply.get("ok"):
        sys.exit(f"health probe failed: {reply!r}")
    return int(reply["last_seq"])


def wait_applied(sock, reader, target, what):
    deadline = time.monotonic() + 20
    while True:
        seq = replica_last_seq(sock, reader)
        if seq >= target:
            return seq
        if time.monotonic() > deadline:
            sys.exit(f"{what}: replica stuck at {seq}, want {target}")
        time.sleep(0.002)


def wait_settled(sock, reader):
    """After the primary dies racing: wait until the replica's applied
    seq stops moving (the stream client has drained what it received)."""
    seq = replica_last_seq(sock, reader)
    stable_since = time.monotonic()
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        time.sleep(0.05)
        now = replica_last_seq(sock, reader)
        if now != seq:
            seq = now
            stable_since = time.monotonic()
        elif time.monotonic() - stable_since > 0.3:
            return seq
    return seq


def feed_synchronized(primary_sock, primary_reader, lines, kill_at):
    """Sends `kill_at` requests, reading every ack.  Returns acked."""
    acked = 0
    for line in lines[:kill_at]:
        primary_sock.sendall((line + "\n").encode())
        reply = json.loads(primary_reader.readline())
        if not reply.get("ok"):
            sys.exit(f"request rejected before kill: {reply!r}")
        acked += 1
    return acked


def feed_racing(primary_sock, lines, rng):
    """Blasts the whole stream without reading acks; the caller kills the
    primary after a random delay.  Returns 0: nothing is known acked."""
    try:
        primary_sock.sendall(("\n".join(lines) + "\n").encode())
    except (BrokenPipeError, ConnectionResetError):
        pass
    time.sleep(rng.uniform(0.0, 0.1))
    return 0


def run_trial(args, trial, lines, rng, root):
    primary_dir = os.path.join(root, f"primary{trial}")
    replica_dir = os.path.join(root, f"replica{trial}")
    ref_dir = os.path.join(root, f"ref{trial}")
    for path in (primary_dir, replica_dir, ref_dir):
        os.makedirs(path)

    primary, primary_port = start_server(args.binary, primary_dir)
    replica, _replica_port = start_server(
        args.binary, replica_dir, replica_of=f"127.0.0.1:{primary_port}")
    try:
        psock, preader = connect(primary_port)
        rsock, rreader = connect(_replica_port)

        racing = trial % 2 == 1
        if racing:
            feed_racing(psock, lines, rng)
            primary.send_signal(signal.SIGKILL)
            primary.wait()
            acked = 0
            survived_min = wait_settled(rsock, rreader)
        else:
            kill_at = rng.randint(1, len(lines))
            acked = feed_synchronized(psock, preader, lines, kill_at)
            # The failover durability bar: everything acked must be on
            # the replica before the primary is allowed to die.
            survived_min = wait_applied(rsock, rreader, acked,
                                        f"trial {trial} catch-up")
            primary.send_signal(signal.SIGKILL)
            primary.wait()

        # Pre-promote: still a replica, still read-only.
        denied = request(rsock, rreader, {
            "op": "provision", "plan_id": 1, "add": [[0, 1]]})
        if denied.get("ok") or denied.get("error") != "read_only":
            sys.exit(f"trial {trial}: replica accepted a mutation before "
                     f"promote: {denied!r}")

        promoted = request(rsock, rreader, {"op": "promote"})
        if not promoted.get("ok") or promoted.get("role") != "primary":
            sys.exit(f"trial {trial}: promote failed: {promoted!r}")

        survived = replica_last_seq(rsock, rreader)
        if survived < survived_min:
            sys.exit(f"trial {trial}: applied seq went backwards "
                     f"({survived} < {survived_min})")
        if survived < acked:
            sys.exit(f"trial {trial}: FAILOVER DURABILITY VIOLATION — "
                     f"{acked} acked and replicated, {survived} survived")
        if survived > len(lines):
            sys.exit(f"trial {trial}: {survived} ops survived a "
                     f"{len(lines)}-op workload")

        # The acceptance diff: the promoted store against a clean
        # single-node replay of exactly the surviving prefix.  `promote`
        # drained and fsynced, so the dir is quiescent while the node
        # still runs.
        _, promoted_text = store_dump(args.binary, replica_dir)
        _, ref_text = reference_dump(args.binary, ref_dir, lines[:survived])
        if promoted_text != ref_text:
            sys.stderr.write(f"--- promoted node ---\n{promoted_text}\n"
                             f"--- clean replay ---\n{ref_text}\n")
            sys.exit(f"trial {trial}: promoted store diverges from the "
                     f"clean replay of {survived} ops")

        # A promoted node is a primary: it must take new mutations.
        mutated = request(rsock, rreader, {
            "op": "groom", "graph": {"n": 8, "edges": [[0, 1], [2, 3]]},
            "k": 4, "hold": True})
        if not mutated.get("ok"):
            sys.exit(f"trial {trial}: promoted node rejected a mutation: "
                     f"{mutated!r}")

        request(rsock, rreader, {"op": "shutdown"})
        replica.wait(timeout=10)
        psock.close()
        rsock.close()
    finally:
        for proc in (primary, replica):
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    mode = "racing" if racing else f"acked={acked}"
    print(f"trial {trial:3d}: {mode:>12}  survived={survived:4d}  "
          f"promoted store exact")
    for path in (primary_dir, replica_dir, ref_dir):
        shutil.rmtree(path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the tgroom tool binary")
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--ops", type=int, default=300)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    lines = workload(args.ops)
    rng = random.Random(args.seed)

    root = tempfile.mkdtemp(prefix="tgroom_failover_harness_")
    try:
        for trial in range(args.trials):
            run_trial(args, trial, lines, rng, root)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    print(f"\nOK: {args.trials} kill/promote cycles, every promoted store "
          f"bit-identical to its clean single-node replay")
    return 0


if __name__ == "__main__":
    sys.exit(main())
