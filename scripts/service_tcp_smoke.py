#!/usr/bin/env python3
"""Multi-connection smoke test for the epoll event-loop service.

Launches `tgroom serve --port 0 --port-file ...` (ephemeral port, read
back from the port file), drives N concurrent client connections each pipelining a burst of groom
and stats requests, checks every request gets exactly one well-formed
JSON response with the right id, then sends `shutdown` and asserts a
clean drain (EOF to the surviving clients, exit code 0).

Built to run under ASan/TSan in CI: the client load is small and
deterministic; the point is to exercise accept, concurrent reads and
write-backs, the pipelined-parse path, and the drain — not to measure
anything.

Usage:
    service_tcp_smoke.py /path/to/tgroom [--connections 4] [--requests 16]
        [--workers 2]
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time


def read_port_file(path, proc, timeout=30.0):
    """Waits for `path` to appear (written atomically by --port-file) and
    returns the port in it.  Bails early if the server process dies."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            sys.exit(f"server exited {proc.returncode} before binding")
        try:
            with open(path, encoding="ascii") as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.02)
    sys.exit(f"no port file at {path} after {timeout}s")


def build_burst(client, requests):
    """One client's pipelined request blob plus its expected ids."""
    lines = []
    ids = []
    edges = [[u, u + 1] for u in range(7)] + [[0, 3 + client % 4]]
    for i in range(requests):
        rid = client * 1000 + i
        ids.append(rid)
        if i % 4 == 3:
            req = {"op": "stats", "id": rid}
        else:
            req = {
                "op": "groom",
                "id": rid,
                "graph": {"n": 8, "edges": edges},
                "k": 4,
                "seed": 1,
            }
        lines.append(json.dumps(req))
    return ("\n".join(lines) + "\n").encode(), ids


def drive_client(port, client, requests, failures):
    try:
        blob, ids = build_burst(client, requests)
        with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
            s.settimeout(30)
            s.sendall(blob)  # one send: pipelined on the wire
            s.shutdown(socket.SHUT_WR)  # EOF-drain: server answers then closes
            data = b""
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    break
                data += chunk
        lines = data.decode().splitlines()
        if len(lines) != len(ids):
            raise AssertionError(
                f"client {client}: {len(lines)} responses to {len(ids)} requests"
            )
        got_ids = sorted(json.loads(line)["id"] for line in lines)
        if got_ids != sorted(ids):
            raise AssertionError(f"client {client}: response ids {got_ids}")
        for line in lines:
            if not json.loads(line).get("ok"):
                raise AssertionError(f"client {client}: error response {line}")
    except Exception as e:  # noqa: BLE001 - anything here is a test failure
        failures.append(f"{type(e).__name__}: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the tgroom binary")
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    port_file = os.path.join(tempfile.mkdtemp(prefix="tgroom_smoke_"),
                             "port")
    proc = subprocess.Popen(
        [args.binary, "serve", "--port", "0", "--port-file", port_file,
         "--workers", str(args.workers)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        port = read_port_file(port_file, proc)
        print(f"server on port {port}, "
              f"{args.connections} connections x {args.requests} requests")

        failures = []
        threads = [
            threading.Thread(
                target=drive_client,
                args=(port, c, args.requests, failures),
            )
            for c in range(args.connections)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failures:
            proc.kill()
            sys.exit("FAIL:\n  " + "\n  ".join(failures))

        with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
            s.settimeout(30)
            s.sendall(b'{"op":"shutdown","id":9}\n')
            reply = b""
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    break
                reply += chunk
        response = json.loads(reply.decode().splitlines()[0])
        if not response.get("ok") or response.get("op") != "shutdown":
            sys.exit(f"FAIL: bad shutdown response {response}")

        rc = proc.wait(timeout=60)
        if rc != 0:
            sys.exit(f"FAIL: server exited {rc}")
    finally:
        if proc.poll() is None:
            proc.kill()

    total = args.connections * args.requests
    print(f"OK: {total} responses across {args.connections} connections, "
          f"clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
