#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every figure/table,
# and render the charts.  Run from the repository root.
set -euo pipefail

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  "$b"
done 2>&1 | tee bench_output.txt

python3 scripts/plot_figures.py .

echo
echo "Reproduction complete:"
echo "  test_output.txt   — full ctest log"
echo "  bench_output.txt  — every figure/table of the paper + extensions"
echo "  fig4_d*.csv fig5_r*.csv bounds.csv — replot data"
echo "  see EXPERIMENTS.md for the paper-vs-measured discussion"
