#!/usr/bin/env python3
"""Render the bench CSV exports as charts.

With matplotlib installed, writes fig4.png / fig5.png next to the CSVs.
Without it, falls back to dependency-free ASCII charts on stdout, so the
figure shapes are inspectable even on a bare container.

Usage:
  python3 scripts/plot_figures.py [csv_dir]
(csv_dir defaults to the current directory; run the bench binaries first:
 ./build/bench/bench_fig4 && ./build/bench/bench_fig5)
"""

import csv
import glob
import os
import sys


def load_series(path):
    """-> {algorithm: [(k, mean_sadms), ...]}, workload label."""
    series = {}
    label = ""
    with open(path) as f:
        for row in csv.DictReader(f):
            label = row["workload"]
            series.setdefault(row["algorithm"], []).append(
                (int(row["k"]), float(row["mean_sadms"]))
            )
    for points in series.values():
        points.sort()
    return series, label


def ascii_chart(series, label, width=64, height=16):
    points = [p for pts in series.values() for p in pts]
    if not points:
        return
    ks = sorted({k for k, _ in points})
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span = max(hi - lo, 1e-9)
    marks = "xo+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    for idx, (algo, pts) in enumerate(sorted(series.items())):
        for k, v in pts:
            col = int((ks.index(k) / max(len(ks) - 1, 1)) * (width - 1))
            row = int((1 - (v - lo) / span) * (height - 1))
            grid[row][col] = marks[idx % len(marks)]
    print(f"\n{label}   (y: {lo:.0f}..{hi:.0f} SADMs, x: k={ks[0]}..{ks[-1]})")
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * width)
    for idx, algo in enumerate(sorted(series)):
        print(f"   {marks[idx % len(marks)]} = {algo}")


def matplotlib_chart(groups, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(1, len(groups), figsize=(5 * len(groups), 4))
    if len(groups) == 1:
        axes = [axes]
    for ax, (label, series) in zip(axes, groups):
        for algo, pts in sorted(series.items()):
            ax.plot([k for k, _ in pts], [v for _, v in pts], marker="o",
                    label=algo)
        ax.set_title(label)
        ax.set_xlabel("grooming factor k")
        ax.set_ylabel("SADMs")
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print(f"wrote {out_path}")


def main():
    csv_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    for figure, pattern in (("fig4", "fig4_d*.csv"), ("fig5", "fig5_r*.csv")):
        paths = sorted(glob.glob(os.path.join(csv_dir, pattern)))
        if not paths:
            print(f"no {pattern} found in {csv_dir}; run bench_{figure} first")
            continue
        groups = []
        for path in paths:
            series, label = load_series(path)
            groups.append((label, series))
        try:
            matplotlib_chart(groups, os.path.join(csv_dir, f"{figure}.png"))
        except ImportError:
            for label, series in groups:
                ascii_chart(series, label)


if __name__ == "__main__":
    main()
