// Scale and adversarial-shape stress: the algorithms must stay valid and
// fast well beyond the paper's n = 36 experiments.
#include <gtest/gtest.h>

#include "algo/blossom.hpp"
#include "algo/components.hpp"
#include "algo/spanning_tree.hpp"
#include "algorithms/algorithm.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"
#include "graph/properties.hpp"
#include "util/stopwatch.hpp"

namespace tgroom {
namespace {

void expect_valid_min_wavelength(const Graph& g, const EdgePartition& p) {
  auto v = validate_partition(g, p);
  ASSERT_TRUE(v.ok) << v.reason;
  EXPECT_TRUE(uses_min_wavelengths(g, p));
}

TEST(Stress, LargeRandomGraphAllAlgorithms) {
  Rng rng(1);
  Graph g = random_gnm(200, 2400, rng);
  Stopwatch sw;
  for (AlgorithmId id :
       {AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
        AlgorithmId::kWangGuIcc06, AlgorithmId::kSpanTEuler,
        AlgorithmId::kCliquePack}) {
    EdgePartition p = run_algorithm(id, g, 16);
    expect_valid_min_wavelength(g, p);
  }
  // Generous single-core budget; catches accidental quadratic regressions
  // in the linear-time algorithms without being flaky.
  EXPECT_LT(sw.elapsed_seconds(), 30.0);
}

TEST(Stress, VeryLargeSpanTEuler) {
  Rng rng(2);
  Graph g = random_gnm(2000, 12000, rng);
  Stopwatch sw;
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, g, 48);
  double elapsed = sw.elapsed_seconds();
  expect_valid_min_wavelength(g, p);
  EXPECT_LT(elapsed, 5.0);  // the paper's linear-time claim, generously
}

TEST(Stress, LargeRegularEulerOddDegree) {
  Rng rng(3);
  Graph g = random_regular(400, 9, rng);
  EdgePartition p = run_algorithm(AlgorithmId::kRegularEuler, g, 16);
  expect_valid_min_wavelength(g, p);
}

TEST(Stress, GiantStar) {
  Graph g = star_graph(800);
  for (AlgorithmId id : {AlgorithmId::kBrauner, AlgorithmId::kSpanTEuler,
                         AlgorithmId::kGoldschmidt}) {
    EdgePartition p = run_algorithm(id, g, 16);
    expect_valid_min_wavelength(g, p);
  }
  // The star's hub is in every part: SpanT_Euler gets the optimal
  // 17 nodes per full part.
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, g, 16);
  EXPECT_EQ(sadm_cost(g, p), 799 + min_wavelengths(799, 16));
}

TEST(Stress, LongPath) {
  Graph g = path_graph(3000);
  EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, g, 10);
  expect_valid_min_wavelength(g, p);
  // A path cut into 10-edge segments: 11 nodes per full part.
  EXPECT_EQ(sadm_cost(g, p), 2999 + min_wavelengths(2999, 10));
}

TEST(Stress, ManyTinyComponents) {
  Graph g = triangle_forest(300);  // 900 edges, 300 components
  for (AlgorithmId id : {AlgorithmId::kBrauner, AlgorithmId::kSpanTEuler,
                         AlgorithmId::kCliquePack}) {
    EdgePartition p = run_algorithm(id, g, 3);
    expect_valid_min_wavelength(g, p);
  }
  // CliquePack must recover the disjoint triangles exactly.
  EdgePartition p = run_algorithm(AlgorithmId::kCliquePack, g, 3);
  EXPECT_EQ(sadm_cost(g, p), 900);
}

TEST(Stress, CompleteGraphModerate) {
  Graph g = complete_graph(40);  // 780 edges, all degrees odd
  for (int k : {3, 16, 64}) {
    EdgePartition p = run_algorithm(AlgorithmId::kSpanTEuler, g, k);
    expect_valid_min_wavelength(g, p);
  }
}

TEST(Stress, DeepDfsDoesNotOverflowStack) {
  // Path graphs force maximal DFS depth in tree construction; the
  // implementation is iterative, so 50k nodes must be fine.
  Graph g = path_graph(50000);
  auto tree = spanning_forest(g, TreePolicy::kDfs);
  EXPECT_TRUE(is_spanning_forest(g, tree));
}

TEST(Stress, BlossomOnLargeBipartite) {
  Graph g = complete_bipartite(150, 150);
  Stopwatch sw;
  auto mates = maximum_matching_mates(g);
  int matched = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    matched += (mates[static_cast<std::size_t>(v)] != kInvalidNode);
  }
  EXPECT_EQ(matched, 300);
  EXPECT_LT(sw.elapsed_seconds(), 10.0);
}

}  // namespace
}  // namespace tgroom
