// Tests of the durable state store: format/codec units, WAL framing and
// torn-tail recovery, snapshot atomicity and fallback, DurableStore
// end-to-end reopen equality, and service-level recovery parity.
//
// Suite naming matters for CI: concurrency tests live in the
// StoreConcurrency suite so the TSan job can include them by regex.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/traffic_patterns.hpp"
#include "graph/fingerprint.hpp"
#include "grooming/incremental.hpp"
#include "grooming/plan.hpp"
#include "grooming/repair.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "store/durable_store.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace tgroom {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- helpers

struct TempDir {
  fs::path path;

  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("tgroom_store_test_" +
            std::to_string(static_cast<long long>(::getpid())) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

GroomingPlan make_plan(NodeId ring_size, int k,
                       std::initializer_list<GroomedPair> pairs) {
  GroomingPlan plan;
  plan.ring_size = ring_size;
  plan.grooming_factor = k;
  plan.pairs = pairs;
  return plan;
}

GroomCacheKey make_key(std::uint64_t fingerprint) {
  GroomCacheKey key;
  key.fingerprint = fingerprint;
  key.algorithm = 3;
  key.k = 4;
  key.seed = 7;
  key.flags = 1;
  return key;
}

GroomCacheValue make_value() {
  GroomCacheValue value;
  value.sadms = 12;
  value.wavelengths = 3;
  value.lower_bound = 9;
  value.parts = {{0, 1, 2}, {3}, {4, 5}};
  return value;
}

// ---------------------------------------------------------------- format

TEST(StoreFormat, Crc32cKnownVector) {
  // The canonical CRC32C check value (RFC 3720 appendix / every
  // Castagnoli implementation): crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  // Incremental == one-shot.
  const std::uint32_t part = crc32c("12345", 5);
  EXPECT_EQ(crc32c("6789", 4, part), 0xE3069283u);
}

TEST(StoreFormat, ByteRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  ByteReader r(w.str());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(StoreFormat, ReaderOverrunThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.str());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), StoreCorruptError);
}

TEST(StoreFormat, PlanCodecRoundTrip) {
  const GroomingPlan plan = make_plan(
      8, 4,
      {GroomedPair{{0, 3}, 0, 0}, GroomedPair{{2, 7}, 0, 1},
       GroomedPair{{1, 5}, 1, 0}});
  ByteWriter w;
  encode_plan(w, plan);
  ByteReader r(w.str());
  const GroomingPlan out = decode_plan(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(serialize_plan(out), serialize_plan(plan));
}

TEST(StoreFormat, CacheEntryCodecRoundTrip) {
  const GroomCacheKey key = make_key(0x0100ABCDEF012345ull);
  const GroomCacheValue value = make_value();
  ByteWriter w;
  encode_cache_entry(w, key, value);
  ByteReader r(w.str());
  GroomCacheKey key_out;
  GroomCacheValue value_out;
  decode_cache_entry(r, key_out, value_out);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(key_out, key);
  EXPECT_EQ(value_out.sadms, value.sadms);
  EXPECT_EQ(value_out.wavelengths, value.wavelengths);
  EXPECT_EQ(value_out.lower_bound, value.lower_bound);
  EXPECT_EQ(value_out.parts, value.parts);
}

TEST(StoreFormat, CorruptCountFieldThrowsNotAllocates) {
  // A count field larger than the remaining bytes must throw, not
  // attempt a giant reserve.
  ByteWriter w;
  w.u32(8);   // ring_size
  w.u32(4);   // grooming_factor
  w.u32(0xFFFFFFFFu);  // absurd pair count
  ByteReader r(w.str());
  EXPECT_THROW(decode_plan(r), StoreCorruptError);
}

// ---------------------------------------------------------------- WAL

TEST(StoreWal, AppendReplayRoundTrip) {
  TempDir dir;
  StoreMetrics metrics;
  {
    WalWriter wal(dir.str(), 1, WalOptions{}, &metrics);
    EXPECT_EQ(wal.append(WalRecordType::kHoldPlan, "alpha"), 1u);
    EXPECT_EQ(wal.append(WalRecordType::kProvision, "beta"), 2u);
    EXPECT_EQ(wal.append(WalRecordType::kProvision, ""), 3u);
    wal.flush();
    EXPECT_EQ(wal.last_appended_seq(), 3u);
  }
  std::vector<std::pair<std::uint64_t, std::string>> seen;
  const WalReplayStats stats = replay_wal(
      dir.str(), 0,
      [&seen](std::uint64_t seq, WalRecordType type, std::string_view body) {
        (void)type;
        seen.emplace_back(seq, std::string(body));
      },
      /*repair=*/true);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.last_seq, 3u);
  EXPECT_FALSE(stats.torn_truncated);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::uint64_t, std::string>{1, "alpha"}));
  EXPECT_EQ(seen[1], (std::pair<std::uint64_t, std::string>{2, "beta"}));
  EXPECT_EQ(seen[2], (std::pair<std::uint64_t, std::string>{3, ""}));
  EXPECT_EQ(metrics.appends.load(), 3);
}

TEST(StoreWal, AfterSeqSkipsCoveredRecords) {
  TempDir dir;
  {
    WalWriter wal(dir.str(), 1, WalOptions{}, nullptr);
    for (int i = 0; i < 5; ++i) {
      wal.append(WalRecordType::kProvision, "x");
    }
    wal.flush();
  }
  std::size_t calls = 0;
  const WalReplayStats stats = replay_wal(
      dir.str(), 3,
      [&calls](std::uint64_t seq, WalRecordType, std::string_view) {
        EXPECT_GT(seq, 3u);
        ++calls;
      },
      true);
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.records_skipped, 3u);
  EXPECT_EQ(stats.last_seq, 5u);
}

TEST(StoreWal, RecordCrcMatchesIdenticalBytesAndCatchesDivergence) {
  TempDir a;
  TempDir b;
  {
    WalWriter wal(a.str(), 1, WalOptions{}, nullptr);
    wal.append(WalRecordType::kHoldPlan, "shared");
    wal.append(WalRecordType::kProvision, "history-a");
    wal.flush();
  }
  {
    // Same record 1, diverged record 2 (the post-failover shape).
    WalWriter wal(b.str(), 1, WalOptions{}, nullptr);
    wal.append(WalRecordType::kHoldPlan, "shared");
    wal.append(WalRecordType::kProvision, "history-b");
    wal.flush();
  }
  std::uint32_t crc_a1 = 0;
  std::uint32_t crc_b1 = 0;
  ASSERT_TRUE(wal_record_crc(a.str(), 1, crc_a1));
  ASSERT_TRUE(wal_record_crc(b.str(), 1, crc_b1));
  EXPECT_EQ(crc_a1, crc_b1);  // identical bytes, identical checksum

  std::uint32_t crc_a2 = 0;
  std::uint32_t crc_b2 = 0;
  ASSERT_TRUE(wal_record_crc(a.str(), 2, crc_a2));
  ASSERT_TRUE(wal_record_crc(b.str(), 2, crc_b2));
  EXPECT_NE(crc_a2, crc_b2);  // diverged bytes at the same seq

  // Same body under a different type diverges too: the checksum covers
  // the framed payload, not just the body.
  TempDir c;
  {
    WalWriter wal(c.str(), 1, WalOptions{}, nullptr);
    wal.append(WalRecordType::kRelease, "shared");
    wal.flush();
  }
  std::uint32_t crc_c1 = 0;
  ASSERT_TRUE(wal_record_crc(c.str(), 1, crc_c1));
  EXPECT_NE(crc_c1, crc_a1);

  // Absent records: seq 0, past the tail, and an empty dir.
  std::uint32_t unused = 0;
  EXPECT_FALSE(wal_record_crc(a.str(), 0, unused));
  EXPECT_FALSE(wal_record_crc(a.str(), 3, unused));
  TempDir empty;
  EXPECT_FALSE(wal_record_crc(empty.str(), 1, unused));
}

TEST(StoreWal, SegmentsRollAndReplayAcrossFiles) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 128;  // tiny: force several rolls
  {
    WalWriter wal(dir.str(), 1, options, nullptr);
    for (int i = 0; i < 20; ++i) {
      wal.append(WalRecordType::kProvision,
                 "record-body-" + std::to_string(i));
    }
    wal.flush();
    EXPECT_GT(wal.segment_paths().size(), 2u);
  }
  std::size_t calls = 0;
  const WalReplayStats stats = replay_wal(
      dir.str(), 0,
      [&calls](std::uint64_t seq, WalRecordType, std::string_view body) {
        EXPECT_EQ(body, "record-body-" + std::to_string(seq - 1));
        ++calls;
      },
      true);
  EXPECT_EQ(calls, 20u);
  EXPECT_GT(stats.segments, 2u);
}

TEST(StoreWal, TornTailTruncatedAtEveryByteOffset) {
  // Build a pristine single-segment WAL, then simulate a crash at every
  // possible torn point: for each prefix length, recovery must replay
  // exactly the records wholly contained in the prefix, truncate the
  // tear, and a second replay (post-repair) must agree — the torn bytes
  // are never replayed.
  TempDir golden;
  {
    WalWriter wal(golden.str(), 1, WalOptions{}, nullptr);
    for (int i = 0; i < 4; ++i) {
      wal.append(WalRecordType::kProvision, "body-" + std::to_string(i));
    }
    wal.flush();
  }
  const std::vector<std::string> segs = list_wal_segments(golden.str());
  ASSERT_EQ(segs.size(), 1u);
  const std::string full = read_file(segs[0]);
  constexpr std::size_t kHeader = 24;
  // Per record: 8 prefix + 8 seq + 1 type + 6 body = 23 bytes.
  constexpr std::size_t kRecord = 23;
  ASSERT_EQ(full.size(), kHeader + 4 * kRecord);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    TempDir dir;
    const std::string name = fs::path(segs[0]).filename().string();
    write_file(dir.path / name, full.substr(0, cut));
    std::size_t replayed = 0;
    const WalReplayStats stats = replay_wal(
        dir.str(), 0,
        [&replayed](std::uint64_t, WalRecordType, std::string_view) {
          ++replayed;
        },
        /*repair=*/true);
    const std::size_t whole =
        cut < kHeader ? 0 : (cut - kHeader) / kRecord;
    EXPECT_EQ(replayed, whole) << "cut=" << cut;
    const bool at_boundary =
        cut >= kHeader && (cut - kHeader) % kRecord == 0;
    EXPECT_EQ(stats.torn_truncated, !at_boundary) << "cut=" << cut;
    // Post-repair the tear is gone: replay again and get the same
    // prefix with no torn flag.
    std::size_t replayed2 = 0;
    const WalReplayStats stats2 = replay_wal(
        dir.str(), 0,
        [&replayed2](std::uint64_t, WalRecordType, std::string_view) {
          ++replayed2;
        },
        true);
    EXPECT_EQ(replayed2, whole) << "cut=" << cut;
    EXPECT_FALSE(stats2.torn_truncated) << "cut=" << cut;
  }
}

TEST(StoreWal, TailWalIncompleteAtEveryByteOffsetAndResumes) {
  // The live-tail counterpart of TornTailTruncatedAtEveryByteOffset: a
  // replication shipper polls a log whose final record is still being
  // written.  At every possible byte prefix, tail_wal must deliver
  // exactly the wholly-present records, flag a mid-record cut as
  // `incomplete` instead of truncating, leave the file byte-identical —
  // and once the writer's remaining bytes land, a re-poll from the
  // returned cursor must deliver the rest.
  TempDir golden;
  {
    WalWriter wal(golden.str(), 1, WalOptions{}, nullptr);
    for (int i = 0; i < 4; ++i) {
      wal.append(WalRecordType::kProvision, "body-" + std::to_string(i));
    }
    wal.flush();
  }
  const std::vector<std::string> segs = list_wal_segments(golden.str());
  ASSERT_EQ(segs.size(), 1u);
  const std::string full = read_file(segs[0]);
  constexpr std::size_t kHeader = 24;
  // Per record: 8 prefix + 8 seq + 1 type + 6 body = 23 bytes.
  constexpr std::size_t kRecord = 23;
  ASSERT_EQ(full.size(), kHeader + 4 * kRecord);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    TempDir dir;
    const std::string name = fs::path(segs[0]).filename().string();
    write_file(dir.path / name, full.substr(0, cut));
    std::size_t delivered = 0;
    const WalTailStats stats = tail_wal(
        dir.str(), 0, 0,
        [&delivered](std::uint64_t seq, WalRecordType type,
                     std::string_view body) {
          EXPECT_EQ(type, WalRecordType::kProvision);
          EXPECT_EQ(body, "body-" + std::to_string(seq - 1));
          ++delivered;
        });
    const std::size_t whole = cut < kHeader ? 0 : (cut - kHeader) / kRecord;
    const bool at_boundary = cut >= kHeader && (cut - kHeader) % kRecord == 0;
    EXPECT_EQ(delivered, whole) << "cut=" << cut;
    EXPECT_EQ(stats.records, whole) << "cut=" << cut;
    EXPECT_EQ(stats.last_seq, whole) << "cut=" << cut;
    EXPECT_EQ(stats.incomplete, !at_boundary) << "cut=" << cut;
    EXPECT_FALSE(stats.compacted) << "cut=" << cut;
    // Never mutates: the torn bytes are still on disk, untouched.
    EXPECT_EQ(read_file(dir.path / name), full.substr(0, cut))
        << "cut=" << cut;
    // The writer finishes its append: re-polling from the cursor
    // delivers exactly the records the first poll could not.
    write_file(dir.path / name, full);
    std::size_t rest = 0;
    const WalTailStats resumed = tail_wal(
        dir.str(), stats.last_seq, 0,
        [&rest](std::uint64_t, WalRecordType, std::string_view) { ++rest; });
    EXPECT_EQ(rest, 4 - whole) << "cut=" << cut;
    EXPECT_EQ(resumed.last_seq, 4u) << "cut=" << cut;
    EXPECT_FALSE(resumed.incomplete) << "cut=" << cut;
  }
}

TEST(StoreWal, TailWalReportsCompactionAndHonorsMaxRecords) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 128;  // tiny: force several rolls
  {
    WalWriter wal(dir.str(), 1, options, nullptr);
    for (int i = 0; i < 20; ++i) {
      wal.append(WalRecordType::kProvision,
                 "record-body-" + std::to_string(i));
    }
    wal.flush();
  }
  const std::vector<std::string> segs = list_wal_segments(dir.str());
  ASSERT_GT(segs.size(), 2u);
  const std::uint64_t second_first = wal_segment_first_seq(segs[1]);

  // max_records caps the batch and the cursor resumes exactly after it.
  std::vector<std::uint64_t> seqs;
  const WalTailStats first = tail_wal(
      dir.str(), 0, 7,
      [&seqs](std::uint64_t seq, WalRecordType, std::string_view) {
        seqs.push_back(seq);
      });
  EXPECT_EQ(seqs.size(), 7u);
  EXPECT_EQ(first.last_seq, 7u);
  const WalTailStats rest = tail_wal(
      dir.str(), first.last_seq, 0,
      [&seqs](std::uint64_t seq, WalRecordType, std::string_view) {
        seqs.push_back(seq);
      });
  EXPECT_EQ(rest.last_seq, 20u);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i + 1);
  }

  // Drop the oldest segment (what snapshot compaction does): a cursor
  // from before the remaining history must be told to bootstrap, while
  // a cursor inside it streams normally.
  fs::remove(segs[0]);
  const WalTailStats compacted = tail_wal(
      dir.str(), 0, 0,
      [](std::uint64_t, WalRecordType, std::string_view) { FAIL(); });
  EXPECT_TRUE(compacted.compacted);
  EXPECT_EQ(compacted.first_available, second_first);
  std::size_t streamed = 0;
  const WalTailStats inside = tail_wal(
      dir.str(), second_first - 1, 0,
      [&streamed](std::uint64_t, WalRecordType, std::string_view) {
        ++streamed;
      });
  EXPECT_FALSE(inside.compacted);
  EXPECT_EQ(streamed, 20u - (second_first - 1));
}

TEST(StoreWal, TornEmptySegmentDeletedSoWriterCanReuseName) {
  // Crash after opening a segment but before flushing any record: the
  // file is shorter than its header.  Repair must delete it so a
  // restarted writer can recreate wal-<same seq>.log.
  TempDir dir;
  {
    WalWriter wal(dir.str(), 1, WalOptions{}, nullptr);
    wal.append(WalRecordType::kProvision, "a");
    wal.flush();
  }
  const std::vector<std::string> segs = list_wal_segments(dir.str());
  ASSERT_EQ(segs.size(), 1u);
  // Fake the crash artifact: a zero-byte next segment.
  write_file(dir.path / "wal-00000000000000000002.log", "");
  const WalReplayStats stats =
      replay_wal(dir.str(), 0,
                 [](std::uint64_t, WalRecordType, std::string_view) {}, true);
  EXPECT_TRUE(stats.torn_truncated);
  EXPECT_EQ(stats.last_seq, 1u);
  EXPECT_EQ(list_wal_segments(dir.str()).size(), 1u);
  // The writer can now open seq 2 without a filename collision.
  WalWriter wal(dir.str(), 2, WalOptions{}, nullptr);
  EXPECT_EQ(wal.append(WalRecordType::kProvision, "b"), 2u);
}

TEST(StoreWal, DamageInNonFinalSegmentIsCorruption) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 64;
  {
    WalWriter wal(dir.str(), 1, options, nullptr);
    for (int i = 0; i < 10; ++i) {
      wal.append(WalRecordType::kProvision, "record-" + std::to_string(i));
    }
    wal.flush();
  }
  std::vector<std::string> segs = list_wal_segments(dir.str());
  ASSERT_GT(segs.size(), 1u);
  std::string data = read_file(segs[0]);
  data[data.size() - 1] = static_cast<char>(data[data.size() - 1] ^ 0x55);
  write_file(segs[0], data);
  EXPECT_THROW(
      replay_wal(dir.str(), 0,
                 [](std::uint64_t, WalRecordType, std::string_view) {}, true),
      StoreCorruptError);
}

TEST(StoreWal, VersionMismatchIsIncompatibleNotCorrupt) {
  TempDir dir;
  {
    WalWriter wal(dir.str(), 1, WalOptions{}, nullptr);
    wal.append(WalRecordType::kProvision, "a");
    wal.flush();
  }
  const std::vector<std::string> segs = list_wal_segments(dir.str());
  ASSERT_EQ(segs.size(), 1u);
  // Header layout: magic[0,8) store_version[8,12) fp_version[12,16).
  for (const std::size_t offset : {std::size_t{8}, std::size_t{12}}) {
    std::string data = read_file(segs[0]);
    data[offset] = static_cast<char>(data[offset] + 1);
    write_file(segs[0], data);
    EXPECT_THROW(
        replay_wal(dir.str(), 0,
                   [](std::uint64_t, WalRecordType, std::string_view) {},
                   true),
        StoreIncompatibleError);
    // Restore for the next offset.
    data[offset] = static_cast<char>(data[offset] - 1);
    write_file(segs[0], data);
  }
}

// ------------------------------------------------------------ snapshots

SnapshotData make_snapshot(std::uint64_t last_seq, std::int64_t next_id) {
  SnapshotData snap;
  snap.last_seq = last_seq;
  snap.next_plan_id = next_id;
  snap.plans.emplace_back(
      1, make_plan(6, 4, {GroomedPair{{0, 2}, 0, 0}}));
  snap.plans.emplace_back(
      next_id - 1,
      make_plan(8, 2, {GroomedPair{{1, 5}, 0, 0}, GroomedPair{{3, 4}, 0, 1}}));
  return snap;
}

TEST(StoreSnapshot, WriteLoadRoundTrip) {
  TempDir dir;
  const SnapshotData snap = make_snapshot(17, 3);
  write_snapshot_file(dir.str(), snap);
  std::size_t skipped = 0;
  const auto loaded = load_latest_snapshot(dir.str(), &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(loaded->last_seq, 17u);
  EXPECT_EQ(loaded->next_plan_id, 3);
  ASSERT_EQ(loaded->plans.size(), 2u);
  EXPECT_EQ(loaded->plans[0].first, 1);
  EXPECT_EQ(serialize_plan(loaded->plans[1].second),
            serialize_plan(snap.plans[1].second));
}

TEST(StoreSnapshot, LatestWinsAndCorruptLatestFallsBack) {
  TempDir dir;
  write_snapshot_file(dir.str(), make_snapshot(10, 2));
  write_snapshot_file(dir.str(), make_snapshot(20, 3));
  std::size_t skipped = 0;
  auto loaded = load_latest_snapshot(dir.str(), &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->last_seq, 20u);

  // Corrupt the newest body: loading falls back to the older snapshot.
  const std::vector<std::string> files = list_snapshot_files(dir.str());
  ASSERT_EQ(files.size(), 2u);
  std::string data = read_file(files.back());
  data[data.size() - 1] = static_cast<char>(data[data.size() - 1] ^ 0x01);
  write_file(files.back(), data);
  skipped = 0;
  loaded = load_latest_snapshot(dir.str(), &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->last_seq, 10u);
  EXPECT_EQ(skipped, 1u);
}

TEST(StoreSnapshot, VersionMismatchThrowsIncompatible) {
  TempDir dir;
  write_snapshot_file(dir.str(), make_snapshot(5, 2));
  const std::vector<std::string> files = list_snapshot_files(dir.str());
  ASSERT_EQ(files.size(), 1u);
  std::string data = read_file(files[0]);
  data[8] = static_cast<char>(data[8] + 1);  // store format version
  write_file(files[0], data);
  std::size_t skipped = 0;
  EXPECT_THROW(load_latest_snapshot(dir.str(), &skipped),
               StoreIncompatibleError);
}

TEST(StoreSnapshot, LeftoverTmpFileIsIgnored) {
  TempDir dir;
  write_snapshot_file(dir.str(), make_snapshot(5, 2));
  // A crash between write and rename leaves a .tmp; it must be invisible.
  write_file(dir.path / "snap-00000000000000000009.snap.tmp", "garbage");
  std::size_t skipped = 0;
  const auto loaded = load_latest_snapshot(dir.str(), &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->last_seq, 5u);
  EXPECT_EQ(skipped, 0u);
}

// --------------------------------------------------------- durable store

TEST(StoreDurable, ReopenRecoversIdenticalState) {
  TempDir dir;
  DurableStoreOptions options;
  options.dir = dir.str();
  options.fsync = FsyncPolicy::kNone;
  options.snapshot_every = 0;  // WAL-only recovery

  GroomingPlan plan = make_plan(8, 4, {});
  extend_plan_incremental(plan, {{0, 4}, {1, 5}});
  std::string expect_serialized;
  {
    DurableStore store(options);
    EXPECT_FALSE(store.recovery().snapshot_loaded);
    store.append_hold(1, plan, make_key(42), make_value());
    const std::uint64_t seq = store.append_provision(1, {{2, 6}, {0, 7}});
    EXPECT_EQ(seq, 2u);
    store.sync(seq);
    store.flush();
    extend_plan_incremental(plan, {{2, 6}, {0, 7}});  // mirror locally
    expect_serialized = serialize_plan(plan);
  }
  DurableStore reopened(options);
  RecoveredState state = reopened.take_recovered();
  EXPECT_EQ(reopened.recovery().wal_records_replayed, 2u);
  EXPECT_EQ(reopened.recovery().last_seq, 2u);
  ASSERT_EQ(state.plans.size(), 1u);
  EXPECT_EQ(serialize_plan(state.plans.at(1)), expect_serialized);
  EXPECT_EQ(state.next_plan_id, 2);
  ASSERT_EQ(state.prewarm.size(), 1u);
  EXPECT_EQ(state.prewarm[0].key, make_key(42));
  EXPECT_EQ(state.prewarm[0].value->parts, make_value().parts);
  // The reopened writer resumes the sequence, never reuses it.
  EXPECT_EQ(reopened.append_provision(1, {{3, 5}}), 3u);
}

TEST(StoreDurable, SnapshotCompactsSupersededFiles) {
  TempDir dir;
  DurableStoreOptions options;
  options.dir = dir.str();
  options.fsync = FsyncPolicy::kNone;
  options.segment_bytes = 96;  // force frequent segment rolls
  DurableStore store(options);
  GroomingPlan plan = make_plan(16, 4, {});
  store.append_hold(1, plan, make_key(1), make_value());
  for (int i = 0; i < 12; ++i) {
    store.append_provision(1, {{static_cast<NodeId>(i),
                                static_cast<NodeId>(i + 2)}});
  }
  EXPECT_GT(list_wal_segments(dir.str()).size(), 2u);

  SnapshotData snap;
  snap.last_seq = store.last_seq();
  snap.next_plan_id = 2;
  snap.plans.emplace_back(1, plan);
  EXPECT_TRUE(store.write_snapshot(snap));
  // Everything but the active segment is covered by the snapshot.
  EXPECT_EQ(list_wal_segments(dir.str()).size(), 1u);
  EXPECT_EQ(list_snapshot_files(dir.str()).size(), 1u);
  EXPECT_GT(store.metrics().segments_retired.load(), 0);
  // A second identical snapshot is refused (does not advance).
  EXPECT_FALSE(store.write_snapshot(snap));
}

TEST(StoreDurable, ProvisionOfUnknownPlanIsCorruption) {
  TempDir dir;
  DurableStoreOptions options;
  options.dir = dir.str();
  options.fsync = FsyncPolicy::kNone;
  {
    DurableStore store(options);
    store.append_provision(99, {{0, 1}});
    store.flush();
  }
  EXPECT_THROW(DurableStore{options}, StoreCorruptError);
}

TEST(StoreDurable, ReleaseRecordsReplayToReleasedState) {
  TempDir dir;
  DurableStoreOptions options;
  options.dir = dir.str();
  options.fsync = FsyncPolicy::kNone;
  options.snapshot_every = 0;  // WAL-only recovery

  GroomingPlan plan = make_plan(8, 4, {});
  extend_plan_incremental(plan, {{0, 4}, {1, 5}, {2, 6}});
  GroomingPlan doomed = make_plan(8, 4, {});
  extend_plan_incremental(doomed, {{3, 7}});
  std::string expect_serialized;
  {
    DurableStore store(options);
    store.append_hold(1, plan, make_key(42), make_value());
    store.append_hold(2, doomed, make_key(43), make_value());
    store.append_provision(1, {{0, 7}});
    // Partial release with repair on plan 1; drop-all of plan 2.
    store.append_release(1, {{1, 5}, {0, 4}}, /*drop_all=*/false,
                         /*repair=*/true);
    const std::uint64_t seq =
        store.append_release(2, {}, /*drop_all=*/true, /*repair=*/true);
    store.sync(seq);
    store.flush();
    // Mirror the live state the acked responses described.
    extend_plan_incremental(plan, {{0, 7}});
    release_demands(plan, {{1, 5}, {0, 4}}, /*repair=*/true);
    expect_serialized = serialize_plan(plan);
  }
  DurableStore reopened(options);
  RecoveredState state = reopened.take_recovered();
  EXPECT_EQ(reopened.recovery().wal_records_replayed, 5u);
  EXPECT_EQ(reopened.recovery().hold_records, 2u);
  EXPECT_EQ(reopened.recovery().provision_records, 1u);
  EXPECT_EQ(reopened.recovery().release_records, 2u);
  ASSERT_EQ(state.plans.size(), 1u);  // plan 2 stays released
  EXPECT_EQ(state.plans.count(2), 0u);
  EXPECT_EQ(serialize_plan(state.plans.at(1)), expect_serialized);
  EXPECT_EQ(state.next_plan_id, 3);
}

TEST(StoreDurable, ReleaseRepairFlagIsReplayedExactly) {
  // The record carries the repair flag: a no-repair release must not be
  // replayed as a repairing one (the recovered plan would diverge from
  // the acked responses).
  TempDir dir;
  DurableStoreOptions options;
  options.dir = dir.str();
  options.fsync = FsyncPolicy::kNone;
  options.snapshot_every = 0;

  GroomingPlan plan = make_plan(8, 4, {});
  extend_plan_incremental(plan, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  {
    DurableStore store(options);
    store.append_hold(1, plan, make_key(1), make_value());
    store.append_release(1, {{3, 4}}, /*drop_all=*/false, /*repair=*/false);
    store.flush();
  }
  release_demands(plan, {{3, 4}}, /*repair=*/false);
  DurableStore reopened(options);
  RecoveredState state = reopened.take_recovered();
  ASSERT_EQ(state.plans.size(), 1u);
  EXPECT_EQ(serialize_plan(state.plans.at(1)), serialize_plan(plan));
}

TEST(StoreDurable, ReleaseOfUnknownPlanIsCorruption) {
  TempDir dir;
  DurableStoreOptions options;
  options.dir = dir.str();
  options.fsync = FsyncPolicy::kNone;
  {
    DurableStore store(options);
    store.append_release(99, {{0, 1}}, /*drop_all=*/false, /*repair=*/true);
    store.flush();
  }
  EXPECT_THROW(DurableStore{options}, StoreCorruptError);
}

TEST(StoreDurable, BatchPolicyDefersFsyncUntilFlush) {
  TempDir dir;
  DurableStoreOptions options;
  options.dir = dir.str();
  options.fsync = FsyncPolicy::kBatch;
  options.batch_bytes = 1 << 20;  // far above what we write
  DurableStore store(options);
  GroomingPlan plan = make_plan(8, 4, {});
  const std::uint64_t s1 = store.append_hold(1, plan, make_key(1),
                                             make_value());
  store.sync(s1);
  const std::uint64_t s2 = store.append_provision(1, {{0, 3}});
  store.sync(s2);
  EXPECT_EQ(store.metrics().fsyncs.load(), 0);
  store.flush();
  EXPECT_GE(store.metrics().fsyncs.load(), 1);
}

// -------------------------------------------------------- group commit

TEST(StoreConcurrency, GroupCommitBatchesFsyncsUnderContention) {
  TempDir dir;
  StoreMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  {
    WalOptions options;
    options.fsync = FsyncPolicy::kAlways;
    WalWriter wal(dir.str(), 1, options, &metrics);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        // snprintf, not string concatenation: GCC 12's -Wrestrict
        // false-positives on inlined operator+ chains under -Werror.
        char body[32];
        for (int i = 0; i < kPerThread; ++i) {
          const int len = std::snprintf(body, sizeof(body), "t%d-%d", t, i);
          const std::uint64_t seq = wal.append(
              WalRecordType::kProvision,
              std::string_view(body, static_cast<std::size_t>(len)));
          wal.sync(seq);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(wal.last_appended_seq(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
  }
  EXPECT_EQ(metrics.appends.load(), kThreads * kPerThread);
  EXPECT_GE(metrics.fsyncs.load(), 1);
  // kAlways means every record was covered by *some* fsync before its
  // sync() returned; group commit keeps the fsync count at or below the
  // append count (usually far below under contention).
  EXPECT_LE(metrics.fsyncs.load(), metrics.appends.load());
  EXPECT_GE(metrics.sync_batch_total.load(), metrics.sync_batch_max.load());

  // Replay sees a gapless, in-order sequence.
  std::uint64_t expected = 1;
  const WalReplayStats stats = replay_wal(
      dir.str(), 0,
      [&expected](std::uint64_t seq, WalRecordType, std::string_view) {
        EXPECT_EQ(seq, expected);
        ++expected;
      },
      true);
  EXPECT_EQ(stats.records,
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_FALSE(stats.torn_truncated);
}

TEST(StoreConcurrency, ConcurrentAppendsRollSegmentsSafely) {
  TempDir dir;
  StoreMetrics metrics;
  {
    WalOptions options;
    options.fsync = FsyncPolicy::kAlways;
    options.segment_bytes = 256;  // roll constantly under contention
    WalWriter wal(dir.str(), 1, options, &metrics);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&wal] {
        char body[32];
        for (int i = 0; i < 40; ++i) {
          const int len = std::snprintf(body, sizeof(body), "payload-%d", i);
          wal.sync(wal.append(
              WalRecordType::kProvision,
              std::string_view(body, static_cast<std::size_t>(len))));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  std::size_t records = 0;
  const WalReplayStats stats = replay_wal(
      dir.str(), 0,
      [&records](std::uint64_t, WalRecordType, std::string_view) {
        ++records;
      },
      true);
  EXPECT_EQ(records, 160u);
  EXPECT_GT(stats.segments, 1u);
}

// ------------------------------------------------- service integration

std::string groom_hold_request(long long id, const Graph& g, int k) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "groom");
  w.kv("id", id);
  w.key("graph");
  write_graph_json(w, g);
  w.kv("k", static_cast<long long>(k));
  w.kv("hold", true);
  w.end_object();
  return w.take();
}

std::string provision_by_id_request(long long id, long long plan_id,
                                    const std::vector<DemandPair>& add) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "provision");
  w.kv("id", id);
  w.kv("plan_id", plan_id);
  w.key("add").begin_array();
  for (const DemandPair& p : add) {
    w.begin_array()
        .value(static_cast<long long>(p.a))
        .value(static_cast<long long>(p.b))
        .end_array();
  }
  w.end_array();
  w.kv("include_plan", true);
  w.end_object();
  return w.take();
}

/// Runs one NDJSON session and returns the raw response lines (events
/// excluded).
std::vector<std::string> run_lines(GroomingService& service,
                                   const std::vector<std::string>& lines) {
  std::string input;
  for (const std::string& line : lines) {
    input += line;
    input += '\n';
  }
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(service.run(in, out), 0);
  std::vector<std::string> responses;
  std::istringstream parse(out.str());
  std::string line;
  while (std::getline(parse, line)) {
    if (line.find("\"event\"") == std::string::npos) {
      responses.push_back(line);
    }
  }
  return responses;
}

Graph ring_demand_graph(NodeId n, double density, std::uint64_t seed) {
  Rng rng(seed);
  return random_traffic(n, density, rng).traffic_graph();
}

TEST(StoreService, RestartedServiceAnswersExactlyLikeUncrashedOne) {
  TempDir dir;
  const Graph g = ring_demand_graph(10, 0.4, 7);
  const std::vector<std::string> first_half = {
      groom_hold_request(1, g, 4),
      provision_by_id_request(2, 1, {{0, 5}}),
      provision_by_id_request(3, 1, {{2, 7}, {1, 8}}),
  };
  const std::string next_request = provision_by_id_request(4, 1, {{3, 9}});

  // Durable service: first session, then a fresh process image (new
  // GroomingService) over the same data dir.
  ServiceConfig durable;
  durable.metrics_on_exit = false;
  durable.data_dir = dir.str();
  {
    GroomingService service(durable);
    run_lines(service, first_half);
  }
  GroomingService restarted(durable);
  const std::vector<std::string> recovered_lines =
      run_lines(restarted, {next_request});

  // Reference: one service that never restarted.
  ServiceConfig volatile_config;
  volatile_config.metrics_on_exit = false;
  GroomingService reference(volatile_config);
  std::vector<std::string> all = first_half;
  all.push_back(next_request);
  const std::vector<std::string> reference_lines = run_lines(reference, all);

  ASSERT_EQ(recovered_lines.size(), 1u);
  ASSERT_EQ(reference_lines.size(), 4u);
  // Byte-identical response: recovery reproduced the held plan exactly.
  EXPECT_EQ(recovered_lines[0], reference_lines[3]);
  EXPECT_EQ(restarted.held_plan_count(), 1u);
}

TEST(StoreService, RestartAfterReleasesAnswersLikeUncrashedOne) {
  TempDir dir;
  const Graph g = ring_demand_graph(10, 0.4, 9);
  const Graph h = ring_demand_graph(8, 0.5, 5);
  const std::vector<std::string> first_half = {
      groom_hold_request(1, g, 4),
      groom_hold_request(2, h, 4),
      provision_by_id_request(3, 1, {{0, 5}}),
      R"({"op":"release","id":4,"plan_id":1,"remove":[[0,5]],)"
      R"("include_plan":true})",
      R"({"op":"release","id":5,"plan_id":2,"all":true})",
  };
  const std::string next_request = provision_by_id_request(6, 1, {{3, 9}});
  const std::string dead_request = provision_by_id_request(7, 2, {{0, 1}});

  ServiceConfig durable;
  durable.metrics_on_exit = false;
  durable.data_dir = dir.str();
  {
    GroomingService service(durable);
    run_lines(service, first_half);
  }
  GroomingService restarted(durable);
  const std::vector<std::string> recovered_lines =
      run_lines(restarted, {next_request, dead_request});

  ServiceConfig volatile_config;
  volatile_config.metrics_on_exit = false;
  GroomingService reference(volatile_config);
  std::vector<std::string> all = first_half;
  all.push_back(next_request);
  all.push_back(dead_request);
  const std::vector<std::string> reference_lines = run_lines(reference, all);

  ASSERT_EQ(recovered_lines.size(), 2u);
  ASSERT_EQ(reference_lines.size(), 7u);
  // The partially-released plan provisions identically after restart...
  EXPECT_EQ(recovered_lines[0], reference_lines[5]);
  // ...and the dropped plan stays dropped: same bad_request either way.
  EXPECT_EQ(recovered_lines[1], reference_lines[6]);
  EXPECT_EQ(restarted.held_plan_count(), 1u);
}

TEST(StoreService, RecoveryPrewarmsPlanCacheFromWalHolds) {
  TempDir dir;
  const Graph g = ring_demand_graph(8, 0.5, 3);
  ServiceConfig config;
  config.metrics_on_exit = false;
  config.data_dir = dir.str();
  {
    GroomingService service(config);
    run_lines(service, {groom_hold_request(1, g, 4)});
  }
  // Clean shutdown wrote a snapshot covering the hold record, and
  // snapshots carry no cache payloads — so delete them, leaving the WAL
  // tail, as after a crash.
  for (const std::string& path : list_snapshot_files(dir.str())) {
    fs::remove(path);
  }
  GroomingService restarted(config);
  const std::vector<std::string> lines =
      run_lines(restarted, {groom_hold_request(2, g, 4)});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"cached\":true"), std::string::npos)
      << lines[0];
}

TEST(StoreService, PrewarmCanBeDisabled) {
  TempDir dir;
  const Graph g = ring_demand_graph(8, 0.5, 3);
  ServiceConfig config;
  config.metrics_on_exit = false;
  config.data_dir = dir.str();
  {
    GroomingService service(config);
    run_lines(service, {groom_hold_request(1, g, 4)});
  }
  for (const std::string& path : list_snapshot_files(dir.str())) {
    fs::remove(path);
  }
  config.prewarm_cache = false;
  GroomingService restarted(config);
  const std::vector<std::string> lines =
      run_lines(restarted, {groom_hold_request(2, g, 4)});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"cached\":false"), std::string::npos)
      << lines[0];
  EXPECT_EQ(restarted.held_plan_count(), 2u);
}

TEST(StoreService, DuplicateHoldsOfSameGraphRecoverAsDistinctPlans) {
  // Two holds of the same fingerprint are distinct plan ids; recovery
  // must keep both (the second is a cache hit, same partition payload).
  TempDir dir;
  const Graph g = ring_demand_graph(8, 0.5, 11);
  ServiceConfig config;
  config.metrics_on_exit = false;
  config.data_dir = dir.str();
  {
    GroomingService service(config);
    const std::vector<std::string> lines = run_lines(
        service, {groom_hold_request(1, g, 4), groom_hold_request(2, g, 4)});
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"plan_id\":1"), std::string::npos);
    EXPECT_NE(lines[1].find("\"plan_id\":2"), std::string::npos);
  }
  GroomingService restarted(config);
  // Provisioning each recovered plan works and they evolve separately.
  const std::vector<std::string> lines = run_lines(
      restarted, {provision_by_id_request(3, 1, {{0, 3}}),
                  provision_by_id_request(4, 2, {{1, 4}}),
                  groom_hold_request(5, g, 4)});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos) << lines[1];
  // The id counter resumed past both recovered plans.
  EXPECT_NE(lines[2].find("\"plan_id\":3"), std::string::npos) << lines[2];
}

TEST(StoreService, ExpiredDeadlineProvisionAppendsNothing) {
  TempDir dir;
  ServiceConfig config;
  config.metrics_on_exit = false;
  config.data_dir = dir.str();
  GroomingService service(config);
  service.open_store();
  const std::uint64_t before = service.store()->last_seq();

  ServiceRequest request;
  request.op = ServiceOp::kProvision;
  request.plan_id = 1;
  request.add = {{0, 1}};
  request.deadline_ms = 1;
  request.admitted =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(50);
  const std::string response = service.execute(request, nullptr);
  EXPECT_NE(response.find("deadline_exceeded"), std::string::npos)
      << response;
  // The mutation was rejected before it happened: no WAL record.
  EXPECT_EQ(service.store()->last_seq(), before);
}

TEST(StoreService, DrainOnEofFlushesUnsyncedBatches) {
  // fsync=batch with a huge threshold: nothing is synced per-request,
  // so the drain path's flush is what makes the records durable.
  TempDir dir;
  const Graph g = ring_demand_graph(8, 0.5, 5);
  ServiceConfig config;
  config.metrics_on_exit = false;
  config.data_dir = dir.str();
  config.fsync = FsyncPolicy::kBatch;
  std::uint64_t final_seq = 0;
  {
    GroomingService service(config);
    // No shutdown op: the session ends by EOF (drain path).
    run_lines(service, {groom_hold_request(1, g, 4),
                        provision_by_id_request(2, 1, {{0, 3}}),
                        provision_by_id_request(3, 1, {{1, 4}})});
    ASSERT_NE(service.store(), nullptr);
    final_seq = service.store()->last_seq();
    EXPECT_EQ(final_seq, 3u);
  }
  // Read-only recovery of what actually reached the files.
  StoreRecovery recovery;
  RecoveredState state =
      recover_store_state(dir.str(), &recovery, /*repair=*/false);
  EXPECT_EQ(recovery.last_seq, final_seq);
  EXPECT_FALSE(recovery.torn_truncated);
  ASSERT_EQ(state.plans.size(), 1u);
  EXPECT_GE(state.plans.at(1).pairs.size(), 2u);
}

TEST(StoreService, IncompatibleStoreIsStructuredError) {
  TempDir dir;
  ServiceConfig config;
  config.metrics_on_exit = false;
  config.data_dir = dir.str();
  {
    GroomingService service(config);
    run_lines(service, {groom_hold_request(
                           1, ring_demand_graph(6, 0.5, 1), 4)});
  }
  // Bump the store version byte in the snapshot a restart would load.
  const std::vector<std::string> snaps = list_snapshot_files(dir.str());
  ASSERT_FALSE(snaps.empty());
  std::string data = read_file(snaps[0]);
  data[8] = static_cast<char>(data[8] + 1);
  write_file(snaps[0], data);

  GroomingService restarted(config);
  std::istringstream in("{\"op\":\"stats\",\"id\":1}\n");
  std::ostringstream out;
  EXPECT_EQ(restarted.run(in, out), 0);
  EXPECT_NE(out.str().find("\"error\":\"store_incompatible\""),
            std::string::npos)
      << out.str();
}

TEST(StoreService, StatsReportStoreSection) {
  TempDir dir;
  ServiceConfig config;
  config.metrics_on_exit = false;
  config.data_dir = dir.str();
  GroomingService service(config);
  const std::vector<std::string> lines = run_lines(
      service, {groom_hold_request(1, ring_demand_graph(6, 0.5, 2), 4),
                "{\"op\":\"stats\",\"id\":2}"});
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue stats = parse_json(lines[1]);
  const JsonValue* store = stats.find("store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->find("appends")->as_int(), 1);
  EXPECT_EQ(store->find("fsync_policy")->string, "batch");
  ASSERT_NE(store->find("recovery"), nullptr);
  const JsonValue* counters = stats.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("store_appends")->as_int(), 1);
}

}  // namespace
}  // namespace tgroom
