// Property sweeps across many random instances: the library-wide
// invariants the paper's correctness rests on, exercised on a broad
// parameter grid rather than hand-picked cases.
#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "algorithms/algorithm.hpp"
#include "algorithms/exact.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"
#include "graph/properties.hpp"

namespace tgroom {
namespace {

struct Case {
  int seed;
  int n;
  double dense;
  int k;
};

class AllAlgorithmsPropertyP : public ::testing::TestWithParam<Case> {};

TEST_P(AllAlgorithmsPropertyP, EveryAlgorithmEveryInvariant) {
  const Case c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.seed));
  Graph g = random_dense_ratio(static_cast<NodeId>(c.n), c.dense, rng);
  const long long lb = partition_cost_lower_bound(g, c.k);

  for (AlgorithmId id :
       {AlgorithmId::kGoldschmidt, AlgorithmId::kBrauner,
        AlgorithmId::kWangGuIcc06, AlgorithmId::kSpanTEuler,
        AlgorithmId::kCliquePack}) {
    EdgePartition p = run_algorithm(id, g, c.k);
    auto v = validate_partition(g, p);
    ASSERT_TRUE(v.ok) << algorithm_name(id) << ": " << v.reason;
    EXPECT_TRUE(uses_min_wavelengths(g, p)) << algorithm_name(id);
    long long cost = sadm_cost(g, p);
    EXPECT_GE(cost, lb) << algorithm_name(id);
    // Any k-edge partition is at worst 2 SADMs per demand.
    EXPECT_LE(cost, 2LL * g.real_edge_count()) << algorithm_name(id);
  }
}

std::vector<Case> property_grid() {
  std::vector<Case> cases;
  int seed = 0;
  for (int n : {12, 24, 36}) {
    for (double dense : {0.2, 0.5, 0.8}) {
      for (int k : {2, 5, 16}) {
        cases.push_back(Case{++seed, n, dense, k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, AllAlgorithmsPropertyP,
                         ::testing::ValuesIn(property_grid()));

class RegularPropertyP
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RegularPropertyP, RegularEulerInvariants) {
  auto [n, r, k] = GetParam();
  if (!regular_feasible(static_cast<NodeId>(n), static_cast<NodeId>(r)))
    GTEST_SKIP();
  for (int seed = 0; seed < 3; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    Graph g =
        random_regular(static_cast<NodeId>(n), static_cast<NodeId>(r), rng);
    EdgePartition p = run_algorithm(AlgorithmId::kRegularEuler, g, k);
    auto v = validate_partition(g, p);
    ASSERT_TRUE(v.ok) << v.reason;
    EXPECT_TRUE(uses_min_wavelengths(g, p));
    EXPECT_GE(sadm_cost(g, p), partition_cost_lower_bound(g, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RegularPropertyP,
    ::testing::Combine(::testing::Values(12, 24, 36),
                       ::testing::Values(2, 3, 5, 8),
                       ::testing::Values(3, 8, 20)));

TEST(Property, HeuristicsWithinConstantOfOptimumOnTinyInstances) {
  // On every tiny instance the heuristics stay within the Prop-2 style
  // additive slack of the true optimum.
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 17 + 3);
    NodeId n = static_cast<NodeId>(6 + rng.below(3));
    long long m = 6 + static_cast<long long>(rng.below(5));
    long long cap = static_cast<long long>(n) * (n - 1) / 2;
    m = std::min(m, cap);
    Graph g = random_gnm(n, m, rng);
    for (int k : {2, 3}) {
      long long opt = exact_optimal_partition(g, k).cost;
      for (AlgorithmId id : {AlgorithmId::kSpanTEuler, AlgorithmId::kBrauner,
                             AlgorithmId::kCliquePack}) {
        long long cost = sadm_cost(g, run_algorithm(id, g, k));
        EXPECT_GE(cost, opt);
        EXPECT_LE(cost, opt + m) << algorithm_name(id);  // loose sanity belt
      }
    }
  }
}

TEST(Property, MonotoneInGroomingFactorForLargeK) {
  // Once k >= m everything fits one wavelength; cost equals the active
  // node count, the global minimum — so large k is never worse than k=1.
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    Graph g = random_gnm(14, 20, rng);
    long long tight = sadm_cost(
        g, run_algorithm(AlgorithmId::kSpanTEuler, g, 1));
    long long loose = sadm_cost(
        g, run_algorithm(AlgorithmId::kSpanTEuler, g, 64));
    EXPECT_EQ(loose, active_node_count(g));
    EXPECT_GE(tight, loose);
  }
}

TEST(Property, SpanTEulerBeatsOrTiesBaselinesOnAverage) {
  // The paper's headline empirical claim, at reduced scale: averaged over
  // seeds and k, SpanT_Euler's total SADM count does not exceed any
  // baseline's by more than 2% (it usually wins outright).
  std::vector<long long> totals(4, 0);
  std::vector<AlgorithmId> algos = figure4_algorithms();
  for (int seed = 0; seed < 8; ++seed) {
    for (double dense : {0.3, 0.5, 0.8}) {
      Rng rng(static_cast<std::uint64_t>(seed) * 1000 + 7);
      Graph g = random_dense_ratio(36, dense, rng);
      for (int k : {4, 16}) {
        for (std::size_t a = 0; a < algos.size(); ++a) {
          totals[a] += sadm_cost(g, run_algorithm(algos[a], g, k));
        }
      }
    }
  }
  long long spant = totals[3];
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_LE(spant, totals[a] + totals[a] / 50)
        << "SpanT_Euler vs " << algorithm_name(algos[a]);
  }
}

}  // namespace
}  // namespace tgroom
