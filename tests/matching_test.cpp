#include <gtest/gtest.h>

#include <functional>

#include "algo/blossom.hpp"
#include "algo/matching.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"
#include "graph/properties.hpp"

namespace tgroom {
namespace {

/// Reference maximum matching size by exhaustive search (tiny graphs).
std::size_t brute_force_matching_size(const Graph& g) {
  std::size_t best = 0;
  std::vector<char> used(static_cast<std::size_t>(g.node_count()), 0);
  std::function<void(EdgeId, std::size_t)> go = [&](EdgeId from,
                                                    std::size_t size) {
    best = std::max(best, size);
    for (EdgeId e = from; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      if (edge.is_virtual) continue;
      if (used[static_cast<std::size_t>(edge.u)] ||
          used[static_cast<std::size_t>(edge.v)])
        continue;
      used[static_cast<std::size_t>(edge.u)] = 1;
      used[static_cast<std::size_t>(edge.v)] = 1;
      go(e + 1, size + 1);
      used[static_cast<std::size_t>(edge.u)] = 0;
      used[static_cast<std::size_t>(edge.v)] = 0;
    }
  };
  go(0, 0);
  return best;
}

TEST(GreedyMatching, MaximalAndValid) {
  Graph g = complete_graph(7);
  auto m = greedy_matching(g);
  EXPECT_TRUE(is_matching(g, m));
  EXPECT_EQ(m.size(), 3u);  // maximal on K7 is always 3
}

TEST(GreedyMatching, IgnoresVirtualEdges) {
  Graph g(4);
  g.add_edge(0, 1, /*is_virtual=*/true);
  g.add_edge(2, 3);
  auto m = greedy_matching(g);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_FALSE(g.edge(m[0]).is_virtual);
}

TEST(IsMatching, RejectsSharedEndpointAndVirtual) {
  Graph g(4);
  EdgeId a = g.add_edge(0, 1);
  EdgeId b = g.add_edge(1, 2);
  EdgeId v = g.add_edge(2, 3, /*is_virtual=*/true);
  EXPECT_TRUE(is_matching(g, {a}));
  EXPECT_FALSE(is_matching(g, {a, b}));
  EXPECT_FALSE(is_matching(g, {v}));
  EXPECT_FALSE(is_matching(g, {static_cast<EdgeId>(99)}));
}

TEST(Blossom, PerfectMatchingOnEvenCycle) {
  Graph g = cycle_graph(8);
  auto m = maximum_matching(g);
  EXPECT_TRUE(is_matching(g, m));
  EXPECT_EQ(m.size(), 4u);
}

TEST(Blossom, OddCycleLeavesOneExposed) {
  Graph g = cycle_graph(9);
  EXPECT_EQ(maximum_matching(g).size(), 4u);
}

TEST(Blossom, PetersenHasPerfectMatching) {
  Graph g = petersen_graph();
  auto m = maximum_matching(g);
  EXPECT_TRUE(is_matching(g, m));
  EXPECT_EQ(m.size(), 5u);
}

TEST(Blossom, RequiresAugmentationThroughBlossom) {
  // Two triangles joined by a bridge: maximum matching is 3 and needs
  // blossom handling (greedy from bad order gets 2).
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  EXPECT_EQ(maximum_matching(g).size(), 3u);
}

class BlossomRandomP : public ::testing::TestWithParam<int> {};

TEST_P(BlossomRandomP, MatchesBruteForceOnSmallGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  NodeId n = static_cast<NodeId>(5 + rng.below(4));        // 5..8 nodes
  long long max_m = static_cast<long long>(n) * (n - 1) / 2;
  long long m = static_cast<long long>(rng.below(
      static_cast<std::uint64_t>(max_m)));
  Graph g = random_gnm(n, m, rng);
  auto matching = maximum_matching(g);
  EXPECT_TRUE(is_matching(g, matching));
  EXPECT_EQ(matching.size(), brute_force_matching_size(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomRandomP, ::testing::Range(0, 20));

TEST(Blossom, NestedBlossoms) {
  // A pentagon with a triangle hanging off one node plus a pendant tail:
  // augmentation must pass through nested odd structures.
  Graph g(9);
  for (NodeId v = 0; v < 5; ++v) g.add_edge(v, static_cast<NodeId>((v + 1) % 5));
  g.add_edge(0, 5);
  g.add_edge(5, 6);
  g.add_edge(6, 0);  // triangle 0-5-6 sharing node 0 with the pentagon
  g.add_edge(6, 7);
  g.add_edge(7, 8);  // tail
  auto m = maximum_matching(g);
  EXPECT_TRUE(is_matching(g, m));
  EXPECT_EQ(m.size(), 4u);  // 9 nodes: at most 4; achievable
}

TEST(Blossom, ChainOfOddCycles) {
  // Three triangles connected in a path by bridges: each bridge can be
  // matched only by breaking into the blossoms correctly.
  Graph g(9);
  for (NodeId base : {0, 3, 6}) {
    g.add_edge(base, static_cast<NodeId>(base + 1));
    g.add_edge(static_cast<NodeId>(base + 1), static_cast<NodeId>(base + 2));
    g.add_edge(base, static_cast<NodeId>(base + 2));
  }
  g.add_edge(2, 3);
  g.add_edge(5, 6);
  auto m = maximum_matching(g);
  EXPECT_TRUE(is_matching(g, m));
  EXPECT_EQ(m.size(), 4u);
}

TEST(Blossom, MatesArrayConsistent) {
  Graph g = complete_bipartite(3, 3);
  auto mates = maximum_matching_mates(g);
  int matched = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    NodeId mate = mates[static_cast<std::size_t>(v)];
    if (mate == kInvalidNode) continue;
    ++matched;
    EXPECT_EQ(mates[static_cast<std::size_t>(mate)], v);
    EXPECT_TRUE(g.has_edge(v, mate));
  }
  EXPECT_EQ(matched, 6);
}

class Lemma8P : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Lemma8P, MaximumMatchingMeetsLemma8Bound) {
  auto [n, r] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    Graph g = random_regular(static_cast<NodeId>(n), static_cast<NodeId>(r),
                             rng);
    auto m = maximum_matching(g);
    EXPECT_GE(static_cast<long long>(m.size()),
              lemma8_matching_lower_bound(static_cast<NodeId>(n),
                                          static_cast<NodeId>(r)))
        << "n=" << n << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(RegularGraphs, Lemma8P,
                         ::testing::Values(std::pair{36, 7}, std::pair{36, 15},
                                           std::pair{20, 3}, std::pair{14, 5},
                                           std::pair{12, 9}));

TEST(Lemma8, BoundFormula) {
  // ceil(n*r / (2(r+1))): for n=36, r=7 -> ceil(252/16) = 16.
  EXPECT_EQ(lemma8_matching_lower_bound(36, 7), 16);
  EXPECT_EQ(lemma8_matching_lower_bound(36, 15), 17);
  EXPECT_EQ(lemma8_matching_lower_bound(10, 0), 0);
}

TEST(ColorClassMatching, ValidAndMeetsLemma8OnRegular) {
  Rng rng(3);
  Graph g = random_regular(36, 7, rng);
  auto m = find_matching(g, MatchingPolicy::kColorClass);
  EXPECT_TRUE(is_matching(g, m));
  // Lemma 8's proof *is* this construction, so the bound must hold.
  EXPECT_GE(static_cast<long long>(m.size()),
            lemma8_matching_lower_bound(36, 7));
}

TEST(MatchingPolicies, AllProduceValidMatchings) {
  Rng rng(9);
  Graph g = random_gnm(18, 40, rng);
  for (auto policy : {MatchingPolicy::kGreedy, MatchingPolicy::kBlossom,
                      MatchingPolicy::kColorClass}) {
    Rng policy_rng(4);
    auto m = find_matching(g, policy, &policy_rng);
    EXPECT_TRUE(is_matching(g, m)) << matching_policy_name(policy);
    EXPECT_FALSE(m.empty());
  }
}

TEST(MatchingPolicies, BlossomDominatesGreedy) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Graph g = random_gnm(16, 30, rng);
    Rng greedy_rng(seed);
    auto greedy = greedy_matching(g, &greedy_rng);
    auto blossom = maximum_matching(g);
    EXPECT_GE(blossom.size(), greedy.size());
  }
}

}  // namespace
}  // namespace tgroom
