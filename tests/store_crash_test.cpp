// Crash-injection tests: a child process applies a scripted mutation
// workload against a DurableStore and raise(SIGKILL)s itself at a
// randomly chosen operation.  The parent recovers the directory and
// asserts the recovered table is bit-identical (via serialize_plan) to a
// reference built by applying the same first S operations in-process,
// where S is whatever sequence number survived on disk.
//
// Suite is named StoreCrash and deliberately excluded from the TSan CI
// regex: fork() in an instrumented multi-threaded binary is out of
// scope; the crash semantics are single-threaded by design.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "grooming/incremental.hpp"
#include "grooming/plan.hpp"
#include "store/durable_store.hpp"
#include "util/rng.hpp"

namespace tgroom {
namespace {

namespace fs = std::filesystem;

constexpr int kPlanCount = 4;

struct CrashTempDir {
  fs::path path;

  explicit CrashTempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("tgroom_store_crash_" + tag + "_" +
            std::to_string(static_cast<long long>(::getpid())));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~CrashTempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

GroomingPlan seed_plan(int index) {
  GroomingPlan plan;
  plan.ring_size = 12;
  plan.grooming_factor = 4;
  extend_plan_incremental(
      plan, {{static_cast<NodeId>(index), static_cast<NodeId>(index + 5)}});
  return plan;
}

/// Deterministic pair for operation `op` (independent of any RNG state so
/// the child and the parent's reference agree without communication).
DemandPair op_pair(std::size_t op) {
  const auto a = static_cast<NodeId>((op * 7 + 1) % 12);
  NodeId b = static_cast<NodeId>((op * 5 + 3) % 12);
  if (b == a) b = static_cast<NodeId>((b + 1) % 12);
  return DemandPair{std::min(a, b), std::max(a, b)};
}

/// Applies operation `op` (0-based) to an in-memory table, mirroring
/// exactly what the child logs.  Ops 0..kPlanCount-1 create held plans;
/// later ops provision them round-robin.
void apply_op(std::size_t op,
              std::unordered_map<std::int64_t, GroomingPlan>& plans) {
  if (op < kPlanCount) {
    plans.emplace(static_cast<std::int64_t>(op) + 1,
                  seed_plan(static_cast<int>(op)));
  } else {
    const std::int64_t plan_id =
        static_cast<std::int64_t>(op % kPlanCount) + 1;
    extend_plan_incremental(plans.at(plan_id), {op_pair(op)});
  }
}

GroomCacheKey crash_key(std::size_t op) {
  GroomCacheKey key;
  key.fingerprint = 0x0100000000000000ull + op;
  key.k = 4;
  return key;
}

/// Child body: run `crash_at` operations against a fresh DurableStore in
/// `dir`, then die without any cleanup.  When `ack_fd` >= 0, writes the
/// number of *synced* ops after every sync so the parent can check the
/// durability promise (acked implies recovered).  Never returns.
[[noreturn]] void run_child(const std::string& dir, FsyncPolicy fsync,
                            std::size_t crash_at, int ack_fd) {
  {
    DurableStoreOptions options;
    options.dir = dir;
    options.fsync = fsync;
    options.snapshot_every = 16;  // exercise snapshots + compaction too
    options.segment_bytes = 2048;  // and frequent segment rolls
    DurableStore store(options);
    std::unordered_map<std::int64_t, GroomingPlan> plans;
    for (std::size_t op = 0; op < crash_at; ++op) {
      std::uint64_t seq = 0;
      if (op < kPlanCount) {
        const auto plan_id = static_cast<std::int64_t>(op) + 1;
        plans.emplace(plan_id, seed_plan(static_cast<int>(op)));
        GroomCacheValue value;
        value.sadms = static_cast<long long>(op);
        seq = store.append_hold(plan_id, plans.at(plan_id), crash_key(op),
                                value);
      } else {
        const std::int64_t plan_id =
            static_cast<std::int64_t>(op % kPlanCount) + 1;
        const std::vector<DemandPair> add = {op_pair(op)};
        extend_plan_incremental(plans.at(plan_id), add);
        seq = store.append_provision(plan_id, add);
      }
      store.sync(seq);
      if (ack_fd >= 0) {
        // With fsync=always, sync() returning means op+1 ops are durable.
        const std::uint64_t acked = static_cast<std::uint64_t>(op) + 1;
        (void)!::write(ack_fd, &acked, sizeof(acked));
      }
      if (store.snapshot_due()) {
        SnapshotData snap;
        snap.last_seq = store.last_seq();
        snap.next_plan_id = kPlanCount + 1;
        for (const auto& [id, plan] : plans) {
          snap.plans.emplace_back(id, plan);
        }
        std::sort(snap.plans.begin(), snap.plans.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        store.write_snapshot(snap);
      }
    }
    std::raise(SIGKILL);
  }
  _exit(0);  // unreachable; keeps [[noreturn]] honest if SIGKILL fails
}

/// One crash trial: child runs `crash_at` of `total_ops` ops and dies;
/// the parent recovers and compares against the in-process reference.
/// Returns the number of ops that survived (the recovered last_seq).
std::uint64_t run_trial(const std::string& tag, FsyncPolicy fsync,
                        std::size_t total_ops, std::size_t crash_at,
                        std::uint64_t min_recovered_ops) {
  CrashTempDir dir(tag);
  int ack_pipe[2] = {-1, -1};
  const bool check_acks = fsync == FsyncPolicy::kAlways;
  if (check_acks) {
    if (::pipe(ack_pipe) != 0) {
      ADD_FAILURE() << "pipe() failed";
      return 0;
    }
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork() failed";
    return 0;
  }
  if (pid == 0) {
    // Child: no gtest machinery, no stdio cleanup — just run and die.
    if (check_acks) ::close(ack_pipe[0]);
    run_child(dir.str(), fsync, std::min(crash_at, total_ops),
              check_acks ? ack_pipe[1] : -1);
  }

  std::uint64_t acked = 0;
  if (check_acks) {
    ::close(ack_pipe[1]);
    std::uint64_t value = 0;
    while (::read(ack_pipe[0], &value, sizeof(value)) ==
           static_cast<ssize_t>(sizeof(value))) {
      acked = value;
    }
    ::close(ack_pipe[0]);
  }

  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child did not die by SIGKILL, status=" << status;

  // Recover.  The recovered sequence number S says exactly how many ops
  // reached the disk (one WAL record per op).
  StoreRecovery recovery;
  RecoveredState state;
  try {
    state = recover_store_state(dir.str(), &recovery, /*repair=*/true);
  } catch (const CheckError& e) {
    ADD_FAILURE() << tag << ": recovery threw: " << e.what();
    return 0;
  }
  const std::uint64_t survived = recovery.last_seq;
  EXPECT_LE(survived, static_cast<std::uint64_t>(crash_at)) << tag;
  EXPECT_GE(survived, min_recovered_ops)
      << tag << ": durability promise broken (acked " << min_recovered_ops
      << " ops, recovered only " << survived << ")";
  if (check_acks) {
    EXPECT_GE(survived, acked)
        << tag << ": fsync=always acked op " << acked
        << " was not recovered";
  }

  // Reference: the same first `survived` ops applied in-process.
  std::unordered_map<std::int64_t, GroomingPlan> reference;
  for (std::uint64_t op = 0; op < survived; ++op) {
    apply_op(static_cast<std::size_t>(op), reference);
  }
  EXPECT_EQ(state.plans.size(), reference.size()) << tag;
  for (const auto& [id, plan] : reference) {
    const auto it = state.plans.find(id);
    if (it == state.plans.end()) {
      ADD_FAILURE() << tag << ": plan " << id << " missing after recovery";
      continue;
    }
    // Bit-identical: same serialized text, byte for byte.
    EXPECT_EQ(serialize_plan(it->second), serialize_plan(plan))
        << tag << ": plan " << id << " diverged";
  }

  // Recovery must be stable: a second (read-only) pass sees a clean
  // store with the same tail — the torn record, if any, stayed dead.
  StoreRecovery second;
  RecoveredState again =
      recover_store_state(dir.str(), &second, /*repair=*/false);
  EXPECT_FALSE(second.torn_truncated) << tag;
  EXPECT_EQ(second.last_seq, survived) << tag;
  EXPECT_EQ(again.plans.size(), state.plans.size()) << tag;
  return survived;
}

TEST(StoreCrash, RandomSigkillPointsRecoverBitIdentical) {
  // ISSUE acceptance: >= 50 random SIGKILL points during a 1000-op
  // workload, each recovering bit-identical to the uncrashed reference.
  // fsync none/batch alternate: recovery correctness must not depend on
  // the sync policy, only *how much* survives does.
  constexpr std::size_t kTrials = 50;
  constexpr std::size_t kOps = 1000;
  Rng rng(20260805);
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const std::size_t crash_at =
        1 + static_cast<std::size_t>(rng.below(kOps));
    const FsyncPolicy fsync =
        trial % 2 == 0 ? FsyncPolicy::kNone : FsyncPolicy::kBatch;
    run_trial("trial" + std::to_string(trial), fsync, kOps, crash_at, 0);
  }
}

TEST(StoreCrash, FsyncAlwaysNeverLosesAnAckedOperation) {
  // With fsync=always every sync() that returned before the SIGKILL is a
  // durability promise; the child acks each one over a pipe and the
  // parent asserts recovery covers every acked op.
  constexpr std::size_t kTrials = 6;
  constexpr std::size_t kOps = 150;
  Rng rng(42);
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const std::size_t crash_at =
        1 + static_cast<std::size_t>(rng.below(kOps));
    run_trial("always" + std::to_string(trial), FsyncPolicy::kAlways, kOps,
              crash_at, 0);
  }
}

TEST(StoreCrash, CrashBeforeAnyDurableRecordRecoversEmpty) {
  // Crash after op 1 with fsync=none: possibly nothing reached the disk.
  // Whatever the outcome, recovery must not invent state.
  const std::uint64_t survived =
      run_trial("early", FsyncPolicy::kNone, 1, 1, 0);
  EXPECT_LE(survived, 1u);
}

}  // namespace
}  // namespace tgroom
