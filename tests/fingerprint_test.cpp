// graph_fingerprint is a *labeled* identity: equal exactly when the CSR
// arrays are equal.  Relabeled-isomorphic graphs must therefore collide
// only by (astronomically unlikely) accident — the cache must not treat
// them as the same instance, because partitions are reported in edge ids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gen/random_graph.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fingerprint.hpp"
#include "graph/graph.hpp"

namespace tgroom {
namespace {

TEST(Fingerprint, DeterministicAcrossRebuilds) {
  Graph a = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  Graph b = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
}

TEST(Fingerprint, GraphAndCsrAgree) {
  Rng rng(123);
  Graph g = random_dense_ratio(40, 0.2, rng);
  CsrGraph csr(g);
  EXPECT_EQ(graph_fingerprint(g), graph_fingerprint(csr));
}

TEST(Fingerprint, RelabeledIsomorphReadsDifferent) {
  // Swap labels 0 <-> 2 in a path: isomorphic, different labeled graph.
  Graph a = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph b = make_graph(4, {{2, 1}, {1, 0}, {0, 3}});
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));
}

TEST(Fingerprint, EdgeInsertionOrderMatters) {
  // Same edge set, different edge ids — distinct identities, because
  // responses reference partitions by edge id.
  Graph a = make_graph(3, {{0, 1}, {1, 2}});
  Graph b = make_graph(3, {{1, 2}, {0, 1}});
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));
}

TEST(Fingerprint, SensitiveToSmallChanges) {
  Graph base = make_graph(6, {{0, 1}, {2, 3}, {4, 5}});
  Graph more_nodes = make_graph(7, {{0, 1}, {2, 3}, {4, 5}});
  Graph extra_edge = make_graph(6, {{0, 1}, {2, 3}, {4, 5}, {0, 2}});
  EXPECT_NE(graph_fingerprint(base), graph_fingerprint(more_nodes));
  EXPECT_NE(graph_fingerprint(base), graph_fingerprint(extra_edge));

  Graph empty0 = make_graph(0, {});
  Graph empty1 = make_graph(1, {});
  EXPECT_NE(graph_fingerprint(empty0), graph_fingerprint(empty1));
}

TEST(Fingerprint, VirtualEdgeFlagMatters) {
  Graph a = make_graph(3, {{0, 1}, {1, 2}});
  Graph b = make_graph(3, {{0, 1}});
  b.add_edge(1, 2, /*is_virtual=*/true);
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));
}

TEST(Fingerprint, PairwiseDistinctOverRandomFamily) {
  // 64 random graphs: all fingerprints distinct (collision would mean the
  // sponge is discarding structure).
  std::vector<std::uint64_t> seen;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    Graph g = random_dense_ratio(16, 0.3, rng);
    seen.push_back(graph_fingerprint(g));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Fingerprint, TopByteCarriesFormatVersion) {
  // Fingerprints are persisted in the durable store as cache-prewarm
  // keys; the embedded version byte is what lets recovery reject keys
  // computed by a different absorption scheme.
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Rng rng(seed);
    Graph g = random_dense_ratio(12, 0.3, rng);
    const std::uint64_t fp = graph_fingerprint(g);
    EXPECT_EQ(fingerprint_version(fp), kFingerprintFormatVersion);
  }
}

}  // namespace
}  // namespace tgroom
