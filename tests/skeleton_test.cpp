#include <gtest/gtest.h>

#include "gen/families.hpp"
#include "graph/properties.hpp"
#include "partition/cover_transform.hpp"
#include "partition/skeleton.hpp"

namespace tgroom {
namespace {

/// A caterpillar skeleton on the path 0-1-2-3 with legs.
struct Fixture {
  Graph g;
  Skeleton skeleton;

  Fixture() : g(8) {
    EdgeId e01 = g.add_edge(0, 1);
    EdgeId e12 = g.add_edge(1, 2);
    EdgeId e23 = g.add_edge(2, 3);
    EdgeId leg0 = g.add_edge(0, 4);
    EdgeId leg1a = g.add_edge(1, 5);
    EdgeId leg1b = g.add_edge(1, 6);
    EdgeId leg3 = g.add_edge(3, 7);
    Walk walk{{0, 1, 2, 3}, {e01, e12, e23}};
    skeleton = Skeleton::from_walk(walk);
    skeleton.add_branch(0, leg0);
    skeleton.add_branch(1, leg1a);
    skeleton.add_branch(1, leg1b);
    skeleton.add_branch(3, leg3);
  }
};

TEST(Skeleton, SizeAndOrder) {
  Fixture f;
  EXPECT_EQ(f.skeleton.size(), 7u);
  EXPECT_TRUE(f.skeleton.validate(f.g));
  auto order = f.skeleton.canonical_order();
  ASSERT_EQ(order.size(), 7u);
  // Canonical order: leg0, e01, leg1a, leg1b, e12, e23, leg3.
  EXPECT_EQ(order[0], 3);  // leg0
  EXPECT_EQ(order[1], 0);  // e01
  EXPECT_EQ(order[4], 1);  // e12
  EXPECT_EQ(order[6], 6);  // leg3
}

TEST(Skeleton, EveryPrefixOfCanonicalOrderIsConnected) {
  Fixture f;
  auto order = f.skeleton.canonical_order();
  for (std::size_t len = 1; len <= order.size(); ++len) {
    std::vector<EdgeId> prefix(order.begin(),
                               order.begin() + static_cast<long>(len));
    // Connected subgraph with e edges spans at most e+1 nodes.
    EXPECT_LE(spanned_node_count(f.g, prefix), static_cast<NodeId>(len + 1));
  }
}

TEST(Skeleton, EveryContiguousRangeSpansAtMostLenPlusOne) {
  Fixture f;
  auto order = f.skeleton.canonical_order();
  for (std::size_t lo = 0; lo < order.size(); ++lo) {
    for (std::size_t hi = lo + 1; hi <= order.size(); ++hi) {
      std::vector<EdgeId> range(order.begin() + static_cast<long>(lo),
                                order.begin() + static_cast<long>(hi));
      EXPECT_LE(spanned_node_count(f.g, range),
                static_cast<NodeId>(hi - lo + 1));
    }
  }
}

TEST(Skeleton, SingleNode) {
  Graph g(2);
  EdgeId e = g.add_edge(0, 1);
  Skeleton s = Skeleton::single_node(0);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  s.add_branch(0, e);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.validate(g));
}

TEST(Skeleton, ValidateRejectsDetachedBranch) {
  Graph g(4);
  EdgeId e01 = g.add_edge(0, 1);
  EdgeId e23 = g.add_edge(2, 3);
  Walk walk{{0, 1}, {e01}};
  Skeleton s = Skeleton::from_walk(walk);
  s.add_branch(0, e23);  // neither endpoint is node 0
  EXPECT_FALSE(s.validate(g));
}

TEST(Skeleton, ValidateRejectsDuplicateEdge) {
  Graph g(3);
  EdgeId e01 = g.add_edge(0, 1);
  Walk walk{{0, 1}, {e01}};
  Skeleton s = Skeleton::from_walk(walk);
  s.add_branch(0, e01);
  EXPECT_FALSE(s.validate(g));
}

TEST(Skeleton, ClosedWalkBackbone) {
  Graph g = cycle_graph(4);
  Walk walk{{0, 1, 2, 3, 0}, {0, 1, 2, 3}};
  Skeleton s = Skeleton::from_walk(walk);
  EXPECT_TRUE(s.validate(g));
  EXPECT_EQ(s.size(), 4u);
}

TEST(Proposition1, SplitsAtEveryPoint) {
  Fixture f;
  for (std::size_t t = 0; t <= f.skeleton.size(); ++t) {
    auto [first, second] = split_skeleton(f.g, f.skeleton, t);
    EXPECT_EQ(first.size(), t) << "t=" << t;
    EXPECT_EQ(second.size(), f.skeleton.size() - t) << "t=" << t;
    EXPECT_TRUE(first.validate(f.g)) << "t=" << t;
    EXPECT_TRUE(second.validate(f.g)) << "t=" << t;
    // The two halves partition the skeleton's edges.
    std::vector<char> seen(static_cast<std::size_t>(f.g.edge_count()), 0);
    for (EdgeId e : first.canonical_order()) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(e)]);
      seen[static_cast<std::size_t>(e)] = 1;
    }
    for (EdgeId e : second.canonical_order()) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(e)]);
      seen[static_cast<std::size_t>(e)] = 1;
    }
    std::size_t covered = 0;
    for (char c : seen) covered += static_cast<std::size_t>(c);
    EXPECT_EQ(covered, f.skeleton.size());
  }
}

TEST(Proposition1, SplitsClosedWalkBackbone) {
  // Circuit backbone (node 0 appears twice): splits must stay valid at
  // every cut point, including cuts at the repeated node.
  Graph g = cycle_graph(5);
  Walk walk{{0, 1, 2, 3, 4, 0}, {0, 1, 2, 3, 4}};
  Skeleton s = Skeleton::from_walk(walk);
  for (std::size_t t = 0; t <= s.size(); ++t) {
    auto [first, second] = split_skeleton(g, s, t);
    EXPECT_TRUE(first.validate(g)) << "t=" << t;
    EXPECT_TRUE(second.validate(g)) << "t=" << t;
    EXPECT_EQ(first.size() + second.size(), s.size());
  }
}

TEST(Proposition1, SplitWithBranchesAtRepeatedNode) {
  // Branches attached at the second occurrence of the repeated node.
  Graph g(6);
  EdgeId e01 = g.add_edge(0, 1);
  EdgeId e12 = g.add_edge(1, 2);
  EdgeId e20 = g.add_edge(2, 0);
  EdgeId leg = g.add_edge(0, 5);
  Walk walk{{0, 1, 2, 0}, {e01, e12, e20}};
  Skeleton s = Skeleton::from_walk(walk);
  s.add_branch(3, leg);  // at the closing occurrence of node 0
  EXPECT_TRUE(s.validate(g));
  for (std::size_t t = 0; t <= s.size(); ++t) {
    auto [first, second] = split_skeleton(g, s, t);
    EXPECT_TRUE(first.validate(g)) << "t=" << t;
    EXPECT_TRUE(second.validate(g)) << "t=" << t;
  }
}

TEST(Proposition1, SplitRejectsOutOfRange) {
  Fixture f;
  EXPECT_THROW(split_skeleton(f.g, f.skeleton, f.skeleton.size() + 1),
               CheckError);
}

TEST(Proposition2, TransformProducesMinWavelengthPartition) {
  Fixture f;
  SkeletonCover cover{f.skeleton};
  for (int k = 1; k <= 8; ++k) {
    EdgePartition p = partition_from_cover(f.g, cover, k);
    EXPECT_TRUE(validate_partition(f.g, p).ok) << "k=" << k;
    EXPECT_TRUE(uses_min_wavelengths(f.g, p)) << "k=" << k;
    // All parts except possibly the last have exactly k edges.
    for (std::size_t i = 0; i + 1 < p.parts.size(); ++i) {
      EXPECT_EQ(p.parts[i].size(), static_cast<std::size_t>(k));
    }
    EXPECT_LE(sadm_cost(f.g, p),
              prop2_cost_bound(f.g.real_edge_count(), k, cover.size()));
  }
}

TEST(Proposition2, MultiSkeletonCoverRespectsBound) {
  Graph g(9);
  // Two disjoint caterpillars.
  EdgeId a01 = g.add_edge(0, 1);
  EdgeId a12 = g.add_edge(1, 2);
  EdgeId legA = g.add_edge(1, 3);
  EdgeId b45 = g.add_edge(4, 5);
  EdgeId b56 = g.add_edge(5, 6);
  EdgeId legB = g.add_edge(5, 7);
  Skeleton s1 = Skeleton::from_walk(Walk{{0, 1, 2}, {a01, a12}});
  s1.add_branch(1, legA);
  Skeleton s2 = Skeleton::from_walk(Walk{{4, 5, 6}, {b45, b56}});
  s2.add_branch(1, legB);
  SkeletonCover cover{s1, s2};
  EXPECT_TRUE(validate_cover(g, cover));
  EXPECT_TRUE(cover_spans_all_edges(g, cover));
  for (int k = 1; k <= 6; ++k) {
    EdgePartition p = partition_from_cover(g, cover, k);
    EXPECT_TRUE(validate_partition(g, p).ok);
    EXPECT_LE(sadm_cost(g, p),
              prop2_cost_bound(g.real_edge_count(), k, cover.size()));
  }
}

TEST(Proposition2, RejectsVirtualEdgesInCover) {
  Graph g(3);
  g.add_edge(0, 1);
  EdgeId v = g.add_edge(1, 2, /*is_virtual=*/true);
  Skeleton s = Skeleton::from_walk(Walk{{1, 2}, {v}});
  EXPECT_THROW(partition_from_cover(g, {s}, 2), CheckError);
}

TEST(CoverValidation, DetectsOverlap) {
  Graph g = path_graph(3);
  Skeleton s1 = Skeleton::from_walk(Walk{{0, 1}, {0}});
  Skeleton s2 = Skeleton::from_walk(Walk{{0, 1, 2}, {0, 1}});
  EXPECT_FALSE(validate_cover(g, {s1, s2}));
  EXPECT_FALSE(cover_spans_all_edges(g, {s1}));
}

TEST(Prop2Bound, Formula) {
  // m=10, k=4 -> W=3; cover size 2 -> 10 + 3 + 1 = 14.
  EXPECT_EQ(prop2_cost_bound(10, 4, 2), 14);
  EXPECT_EQ(prop2_cost_bound(0, 4, 1), 0);
  EXPECT_EQ(prop2_cost_bound(6, 3, 1), 8);
}

}  // namespace
}  // namespace tgroom
