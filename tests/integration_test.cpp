// Cross-module integration: demands -> traffic graph -> algorithm ->
// partition -> plan -> ring simulator, checking that the combinatorial
// cost model and the simulated SONET ring agree exactly.
#include <gtest/gtest.h>

#include <fstream>

#include "algorithms/algorithm.hpp"
#include "bench_support/report.hpp"
#include "bench_support/sweep.hpp"
#include "gen/traffic_patterns.hpp"
#include "grooming/plan.hpp"
#include "sonet/simulator.hpp"

namespace tgroom {
namespace {

class EndToEndP
    : public ::testing::TestWithParam<std::tuple<AlgorithmId, int>> {};

TEST_P(EndToEndP, PartitionCostEqualsSimulatedSadms) {
  auto [algo, k] = GetParam();
  Rng rng(99);
  DemandSet demands = random_traffic(24, 0.5, rng);
  Graph traffic = demands.traffic_graph();

  EdgePartition partition = run_algorithm(algo, traffic, k);
  ASSERT_TRUE(validate_partition(traffic, partition).ok);

  GroomingPlan plan = plan_from_partition(demands, traffic, partition);
  UpsrRing ring(24);
  SimulationResult sim = simulate_plan(ring, plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
  // The paper's central modelling step: Σ|V_i| == SADMs on the ring.
  EXPECT_EQ(sim.sadm_count, sadm_cost(traffic, partition));
  EXPECT_EQ(sim.wavelengths_used, partition.wavelength_count());
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndK, EndToEndP,
    ::testing::Combine(::testing::Values(AlgorithmId::kGoldschmidt,
                                         AlgorithmId::kBrauner,
                                         AlgorithmId::kWangGuIcc06,
                                         AlgorithmId::kSpanTEuler,
                                         AlgorithmId::kCliquePack),
                       ::testing::Values(3, 8, 16)));

TEST(EndToEnd, RegularTrafficWithRegularEuler) {
  Rng rng(5);
  DemandSet demands = regular_traffic(36, 7, rng);
  Graph traffic = demands.traffic_graph();
  EdgePartition partition =
      run_algorithm(AlgorithmId::kRegularEuler, traffic, 16);
  GroomingPlan plan = plan_from_partition(demands, traffic, partition);
  SimulationResult sim = simulate_plan(UpsrRing(36), plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
  EXPECT_EQ(sim.sadm_count, sadm_cost(traffic, partition));
}

TEST(EndToEnd, AllToAllTraffic) {
  DemandSet demands = all_to_all_traffic(12);
  Graph traffic = demands.traffic_graph();
  EdgePartition partition =
      run_algorithm(AlgorithmId::kRegularEuler, traffic, 4);
  GroomingPlan plan = plan_from_partition(demands, traffic, partition);
  SimulationResult sim = simulate_plan(UpsrRing(12), plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
  EXPECT_TRUE(uses_min_wavelengths(traffic, partition));
}

TEST(Sweep, RunsAndAggregates) {
  SweepConfig config;
  config.seeds = 3;
  config.grooming_factors = {4, 16};
  SweepResult result = run_sweep(WorkloadSpec::dense(20, 0.5),
                                 figure4_algorithms(), config);
  ASSERT_EQ(result.series.size(), 4u);
  for (const auto& series : result.series) {
    ASSERT_EQ(series.cells.size(), 2u);
    for (const auto& cell : series.cells) {
      EXPECT_GT(cell.mean_sadms, 0);
      EXPECT_GE(cell.mean_sadms, cell.mean_lower_bound);
      EXPECT_GE(cell.max_sadms, cell.min_sadms);
    }
    // More grooming capacity never needs more wavelengths.
    EXPECT_LE(series.cells[1].mean_wavelengths,
              series.cells[0].mean_wavelengths);
  }
  EXPECT_GT(result.mean_edges, 0);
}

TEST(Sweep, DeterministicForFixedSeed) {
  SweepConfig config;
  config.seeds = 2;
  config.grooming_factors = {8};
  auto a = run_sweep(WorkloadSpec::dense(16, 0.5), {AlgorithmId::kSpanTEuler},
                     config);
  auto b = run_sweep(WorkloadSpec::dense(16, 0.5), {AlgorithmId::kSpanTEuler},
                     config);
  EXPECT_EQ(a.series[0].cells[0].mean_sadms, b.series[0].cells[0].mean_sadms);
}

TEST(Sweep, ParallelWorkersMatchInline) {
  SweepConfig inline_cfg;
  inline_cfg.seeds = 4;
  inline_cfg.grooming_factors = {4, 8};
  SweepConfig pooled_cfg = inline_cfg;
  pooled_cfg.workers = 3;
  auto a = run_sweep(WorkloadSpec::regular(20, 4),
                     {AlgorithmId::kRegularEuler}, inline_cfg);
  auto b = run_sweep(WorkloadSpec::regular(20, 4),
                     {AlgorithmId::kRegularEuler}, pooled_cfg);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.series[0].cells[i].mean_sadms,
              b.series[0].cells[i].mean_sadms);
  }
}

TEST(Report, TableAndCsv) {
  SweepConfig config;
  config.seeds = 2;
  config.grooming_factors = {4};
  SweepResult result = run_sweep(WorkloadSpec::dense(12, 0.5),
                                 {AlgorithmId::kSpanTEuler}, config);
  TextTable table = sweep_table(result, "test");
  std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("SpanT_Euler"), std::string::npos);
  EXPECT_NE(rendered.find("n=12"), std::string::npos);

  std::string path = ::testing::TempDir() + "/tgroom_sweep.csv";
  write_sweep_csv(result, path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("mean_sadms"), std::string::npos);
}

class RoundTripP : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripP, PlanSurvivesSerializationPipeline) {
  // demands -> groom -> serialize -> parse -> simulate must agree with the
  // in-memory plan on every statistic.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 2);
  NodeId n = static_cast<NodeId>(8 + rng.below(12));
  DemandSet demands = random_traffic(n, 0.45, rng);
  Graph traffic = demands.traffic_graph();
  int k = static_cast<int>(2 + rng.below(8));
  EdgePartition partition =
      run_algorithm(AlgorithmId::kSpanTEuler, traffic, k);
  GroomingPlan plan = plan_from_partition(demands, traffic, partition);
  GroomingPlan restored = parse_plan(serialize_plan(plan));
  UpsrRing ring(n);
  SimulationResult a = simulate_plan(ring, plan);
  SimulationResult b = simulate_plan(ring, restored);
  EXPECT_TRUE(b.ok) << b.issue;
  EXPECT_EQ(a.sadm_count, b.sadm_count);
  EXPECT_EQ(a.wavelengths_used, b.wavelengths_used);
  EXPECT_EQ(a.unit_hops, b.unit_hops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripP, ::testing::Range(0, 8));

TEST(Workload, LabelsAndFactories) {
  EXPECT_EQ(workload_label(WorkloadSpec::dense(36, 0.5)), "n=36 d=0.5");
  EXPECT_EQ(workload_label(WorkloadSpec::regular(36, 7)), "n=36 r=7");
  EXPECT_EQ(workload_label(WorkloadSpec::all_to_all(8)), "n=8 all-to-all");
  Rng rng(1);
  EXPECT_EQ(make_workload(WorkloadSpec::all_to_all(8), rng).edge_count(), 28);
}

}  // namespace
}  // namespace tgroom
