#include <gtest/gtest.h>

#include <set>

#include "algo/euler.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"
#include "graph/properties.hpp"

namespace tgroom {
namespace {

std::vector<char> full_mask(const Graph& g) {
  return std::vector<char>(static_cast<std::size_t>(g.edge_count()), 1);
}

TEST(Euler, CycleHasCircuit) {
  Graph g = cycle_graph(6);
  auto walks = euler_decomposition(g, full_mask(g));
  ASSERT_EQ(walks.size(), 1u);
  EXPECT_EQ(walks[0].edges.size(), 6u);
  EXPECT_EQ(walks[0].nodes.front(), walks[0].nodes.back());  // closed
  EXPECT_TRUE(is_valid_walk(g, walks[0]));
}

TEST(Euler, PathHasOpenWalk) {
  Graph g = path_graph(5);
  auto walks = euler_decomposition(g, full_mask(g));
  ASSERT_EQ(walks.size(), 1u);
  EXPECT_EQ(walks[0].edges.size(), 4u);
  EXPECT_NE(walks[0].nodes.front(), walks[0].nodes.back());
}

TEST(Euler, StartsAtOddNodeWhenPresent) {
  Graph g = path_graph(4);
  auto walks = euler_decomposition(g, full_mask(g));
  ASSERT_EQ(walks.size(), 1u);
  NodeId start = walks[0].nodes.front();
  EXPECT_TRUE(start == 0 || start == 3);
}

TEST(Euler, StarWithThreeLeavesRejected) {
  Graph g = star_graph(4);  // 4 odd-degree nodes
  EXPECT_THROW(euler_decomposition(g, full_mask(g)), CheckError);
}

TEST(Euler, WalkFromWrongStartRejected) {
  Graph g = path_graph(4);
  // Node 1 is a mid-point (even degree), start there -> invalid walk.
  EXPECT_THROW(euler_walk_from(g, full_mask(g), 1), CheckError);
}

TEST(Euler, SingleNodeComponentGivesTrivialWalk) {
  Graph g(3);
  g.add_edge(0, 1);
  auto walk = euler_walk_from(g, full_mask(g), 2);
  EXPECT_TRUE(walk.empty());
  EXPECT_EQ(walk.nodes, (std::vector<NodeId>{2}));
}

TEST(Euler, MultipleComponents) {
  Graph g(9);
  // Triangle 0-1-2, square 3-4-5-6, isolated edgeless 7, 8.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(6, 3);
  auto walks = euler_decomposition(g, full_mask(g));
  EXPECT_EQ(walks.size(), 2u);
  std::size_t total = 0;
  for (const auto& w : walks) total += w.edges.size();
  EXPECT_EQ(total, 7u);
}

TEST(Euler, MaskRestrictsEdges) {
  Graph g = complete_graph(4);  // all degrees 3 (odd)
  // Mask to a 4-cycle 0-1-2-3: edges {0,1},{1,2},{2,3},{0,3}.
  std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 0);
  auto set_pair = [&](NodeId a, NodeId b) {
    mask[static_cast<std::size_t>(g.find_edge(a, b))] = 1;
  };
  set_pair(0, 1);
  set_pair(1, 2);
  set_pair(2, 3);
  set_pair(0, 3);
  auto walks = euler_decomposition(g, mask);
  ASSERT_EQ(walks.size(), 1u);
  EXPECT_EQ(walks[0].edges.size(), 4u);
}

TEST(Euler, HandlesParallelVirtualEdges) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1, /*is_virtual=*/true);
  auto walks = euler_decomposition(g, full_mask(g));
  ASSERT_EQ(walks.size(), 1u);
  EXPECT_EQ(walks[0].edges.size(), 2u);
}

TEST(Euler, ValidWalkChecker) {
  Graph g = path_graph(3);
  Walk good{{0, 1, 2}, {0, 1}};
  EXPECT_TRUE(is_valid_walk(g, good));
  Walk wrong_nodes{{0, 2, 1}, {0, 1}};
  EXPECT_FALSE(is_valid_walk(g, wrong_nodes));
  Walk repeated_edge{{0, 1, 0}, {0, 0}};
  EXPECT_FALSE(is_valid_walk(g, repeated_edge));
  Walk size_mismatch{{0, 1}, {0, 1}};
  EXPECT_FALSE(is_valid_walk(g, size_mismatch));
  Walk empty{{}, {}};
  EXPECT_FALSE(is_valid_walk(g, empty));
}

TEST(Euler, SplitWalkOnVirtual) {
  Graph g(5);
  EdgeId e01 = g.add_edge(0, 1);
  EdgeId e12 = g.add_edge(1, 2, /*is_virtual=*/true);
  EdgeId e23 = g.add_edge(2, 3);
  EdgeId e34 = g.add_edge(3, 4);
  Walk walk{{0, 1, 2, 3, 4}, {e01, e12, e23, e34}};
  auto segments = split_walk_on_virtual(g, walk);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].edges, (std::vector<EdgeId>{e01}));
  EXPECT_EQ(segments[1].edges, (std::vector<EdgeId>{e23, e34}));
  EXPECT_EQ(segments[1].nodes, (std::vector<NodeId>{2, 3, 4}));
}

TEST(Euler, SplitWalkDropsEmptySegments) {
  Graph g(4);
  EdgeId v01 = g.add_edge(0, 1, true);
  EdgeId v12 = g.add_edge(1, 2, true);
  EdgeId e23 = g.add_edge(2, 3);
  Walk walk{{0, 1, 2, 3}, {v01, v12, e23}};
  auto segments = split_walk_on_virtual(g, walk);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].edges, (std::vector<EdgeId>{e23}));
}

class EulerRandomP : public ::testing::TestWithParam<int> {};

TEST_P(EulerRandomP, EvenRegularGraphsDecomposeFully) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Graph g = random_regular(20, 4, rng);
  auto walks = euler_decomposition(g, full_mask(g));
  std::set<EdgeId> used;
  for (const auto& w : walks) {
    EXPECT_TRUE(is_valid_walk(g, w));
    for (EdgeId e : w.edges) EXPECT_TRUE(used.insert(e).second);
  }
  EXPECT_EQ(used.size(), static_cast<std::size_t>(g.edge_count()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerRandomP, ::testing::Range(0, 8));

}  // namespace
}  // namespace tgroom
