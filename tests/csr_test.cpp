// CsrGraph: structural equality with Graph and bit-identical kernel output
// on both representations — the determinism contract the hot path relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "algo/components.hpp"
#include "algo/euler.hpp"
#include "algo/min_degree_tree.hpp"
#include "algo/rooted_tree.hpp"
#include "algo/spanning_tree.hpp"
#include "algorithms/algorithm.hpp"
#include "algorithms/workspace.hpp"
#include "gen/random_graph.hpp"
#include "gen/regular_graph.hpp"
#include "graph/csr_graph.hpp"
#include "graph/properties.hpp"

namespace tgroom {
namespace {

std::vector<Graph> test_graphs() {
  std::vector<Graph> graphs;
  graphs.emplace_back(0);           // empty
  graphs.emplace_back(5);           // isolated nodes only
  graphs.push_back(make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  {
    Rng rng(42);
    graphs.push_back(random_gnm(24, 60, rng));
  }
  {
    Rng rng(43);
    graphs.push_back(random_gnm(36, 200, rng));
  }
  {
    Rng rng(44);
    graphs.push_back(random_regular(20, 4, rng));
  }
  {
    // Parallel + virtual edges exercise the full incidence layout.
    Graph g(6);
    g.add_edge(0, 1);
    g.add_edge(0, 1);
    g.add_edge(1, 2, /*is_virtual=*/true);
    g.add_edge(2, 3);
    g.add_edge(4, 5, /*is_virtual=*/true);
    graphs.push_back(std::move(g));
  }
  return graphs;
}

void expect_same_structure(const Graph& g, const CsrGraph& csr) {
  ASSERT_EQ(csr.node_count(), g.node_count());
  ASSERT_EQ(csr.edge_count(), g.edge_count());
  ASSERT_EQ(csr.real_edge_count(), g.real_edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(csr.edge(e).u, g.edge(e).u);
    EXPECT_EQ(csr.edge(e).v, g.edge(e).v);
    EXPECT_EQ(csr.edge(e).is_virtual, g.edge(e).is_virtual);
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto expected = g.incident(v);
    auto actual = csr.incident(v);
    ASSERT_EQ(actual.size(), expected.size()) << "node " << v;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].neighbor, expected[i].neighbor);
      EXPECT_EQ(actual[i].edge, expected[i].edge);
    }
    EXPECT_EQ(csr.degree(v), g.degree(v));
  }
}

TEST(CsrGraph, MatchesGraphStructure) {
  for (const Graph& g : test_graphs()) {
    expect_same_structure(g, CsrGraph(g));
  }
}

TEST(CsrGraph, RebuildReusesAcrossSizeChanges) {
  CsrGraph csr;
  // Big, then small, then big again: stale tails from a larger snapshot
  // must not leak into a smaller one.
  std::vector<Graph> graphs = test_graphs();
  for (int round = 0; round < 2; ++round) {
    for (const Graph& g : graphs) {
      csr.rebuild(g);
      expect_same_structure(g, csr);
    }
    std::reverse(graphs.begin(), graphs.end());
  }
}

TEST(CsrGraph, SpanningForestIdenticalPerPolicy) {
  for (const Graph& g : test_graphs()) {
    CsrGraph csr(g);
    for (TreePolicy policy : {TreePolicy::kBfs, TreePolicy::kDfs,
                              TreePolicy::kMinMaxDegree}) {
      EXPECT_EQ(spanning_forest(csr, policy), spanning_forest(g, policy))
          << tree_policy_name(policy);
    }
    // The randomized policy must consume its RNG identically too.
    Rng rng_graph(7), rng_csr(7);
    EXPECT_EQ(spanning_forest(csr, TreePolicy::kRandom, &rng_csr),
              spanning_forest(g, TreePolicy::kRandom, &rng_graph));
    EXPECT_EQ(rng_csr(), rng_graph());
  }
}

TEST(CsrGraph, ComponentsIdentical) {
  for (const Graph& g : test_graphs()) {
    CsrGraph csr(g);
    Components expected = connected_components(g);
    Components actual = connected_components(csr);
    EXPECT_EQ(actual.count, expected.count);
    EXPECT_EQ(actual.label, expected.label);

    // Mask out every other edge.
    std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 0);
    for (std::size_t e = 0; e < mask.size(); e += 2) mask[e] = 1;
    Components expected_masked = connected_components_masked(g, mask);
    Components actual_masked = connected_components_masked(csr, mask);
    EXPECT_EQ(actual_masked.count, expected_masked.count);
    EXPECT_EQ(actual_masked.label, expected_masked.label);
  }
}

TEST(CsrGraph, MaskedDegreesIdentical) {
  for (const Graph& g : test_graphs()) {
    CsrGraph csr(g);
    std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 0);
    for (std::size_t e = 0; e < mask.size(); e += 3) mask[e] = 1;
    EXPECT_EQ(masked_degrees(csr, mask), masked_degrees(g, mask));
  }
}

TEST(CsrGraph, EulerDecompositionIdentical) {
  // Even-regular graphs are Eulerian in every component under a full mask.
  for (NodeId r : {2, 4, 8}) {
    Rng rng(static_cast<std::uint64_t>(100 + r));
    Graph g = random_regular(18, r, rng);
    CsrGraph csr(g);
    std::vector<char> mask(static_cast<std::size_t>(g.edge_count()), 1);
    auto expected = euler_decomposition(g, mask);
    auto actual = euler_decomposition(csr, mask);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].nodes, expected[i].nodes);
      EXPECT_EQ(actual[i].edges, expected[i].edges);
      EXPECT_TRUE(is_valid_walk(csr, actual[i]));
    }
    // Single-walk entry point from an arbitrary even-degree start.
    Walk w_graph = euler_walk_from(g, mask, 0);
    Walk w_csr = euler_walk_from(csr, mask, 0);
    EXPECT_EQ(w_csr.nodes, w_graph.nodes);
    EXPECT_EQ(w_csr.edges, w_graph.edges);
  }
}

TEST(CsrGraph, RootedForestAndOddSubtreesIdentical) {
  for (const Graph& g : test_graphs()) {
    CsrGraph csr(g);
    std::vector<EdgeId> tree = spanning_forest(g, TreePolicy::kBfs);
    RootedForest expected = root_forest(g, tree);
    RootedForest actual = root_forest(csr, tree);
    EXPECT_EQ(actual.parent, expected.parent);
    EXPECT_EQ(actual.parent_edge, expected.parent_edge);
    EXPECT_EQ(actual.preorder, expected.preorder);
    EXPECT_EQ(actual.root_of, expected.root_of);

    std::vector<long long> weight(
        static_cast<std::size_t>(g.node_count()), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      weight[static_cast<std::size_t>(v)] = v % 3;
    }
    EXPECT_EQ(odd_subtree_edges(csr, actual, weight),
              odd_subtree_edges(g, expected, weight));
  }
}

TEST(CsrGraph, MinMaxDegreeForestIdentical) {
  for (const Graph& g : test_graphs()) {
    CsrGraph csr(g);
    std::vector<EdgeId> expected = min_max_degree_forest(g);
    std::vector<EdgeId> actual = min_max_degree_forest(csr);
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(forest_max_degree(csr, actual),
              forest_max_degree(g, expected));
  }
}

// The workspace overload of run_algorithm must be a pure optimization:
// identical partitions whether the workspace is fresh, reused, or absent,
// including across graphs of different sizes (stale-buffer hazard).
TEST(Workspace, ReusedWorkspaceMatchesFreshRuns) {
  GroomingWorkspace shared;
  std::vector<std::pair<NodeId, long long>> sizes = {
      {16, 40}, {48, 300}, {12, 20}, {36, 180}};
  for (std::size_t trial = 0; trial < sizes.size(); ++trial) {
    Rng rng(900 + trial);
    Graph g = random_gnm(sizes[trial].first, sizes[trial].second, rng);
    for (int k : {4, 16}) {
      GroomingOptions options;
      options.seed = trial * 31 + static_cast<std::uint64_t>(k);
      EdgePartition baseline =
          run_algorithm(AlgorithmId::kSpanTEuler, g, k, options);
      EdgePartition with_ws = run_algorithm(AlgorithmId::kSpanTEuler, g, k,
                                            options, &shared);
      EXPECT_EQ(with_ws.k, baseline.k);
      EXPECT_EQ(with_ws.parts, baseline.parts);
    }
  }
}

TEST(Workspace, SmartBranchesAndRefineMatchToo) {
  GroomingWorkspace shared;
  Rng rng(77);
  Graph g = random_gnm(30, 120, rng);
  GroomingOptions options;
  options.seed = 5;
  options.smart_branches = true;
  options.refine = true;
  EdgePartition baseline =
      run_algorithm(AlgorithmId::kSpanTEuler, g, 8, options);
  EdgePartition with_ws =
      run_algorithm(AlgorithmId::kSpanTEuler, g, 8, options, &shared);
  EXPECT_EQ(with_ws.parts, baseline.parts);
}

}  // namespace
}  // namespace tgroom
