#include <gtest/gtest.h>

#include "sonet/ring.hpp"
#include "sonet/simulator.hpp"

namespace tgroom {
namespace {

TEST(Ring, HopCountsAndPaths) {
  UpsrRing ring(6);
  EXPECT_EQ(ring.node_count(), 6);
  EXPECT_EQ(ring.hop_count(0, 3), 3);
  EXPECT_EQ(ring.hop_count(3, 0), 3);
  EXPECT_EQ(ring.hop_count(5, 0), 1);
  EXPECT_EQ(ring.working_path(4, 1), (std::vector<NodeId>{4, 5, 0}));
  EXPECT_EQ(ring.working_path(1, 2), (std::vector<NodeId>{1}));
}

TEST(Ring, SymmetricPairWrapsWholeRing) {
  UpsrRing ring(7);
  for (NodeId x = 0; x < 7; ++x) {
    for (NodeId y = 0; y < 7; ++y) {
      if (x == y) continue;
      auto forward = ring.working_path(x, y);
      auto backward = ring.working_path(y, x);
      EXPECT_EQ(forward.size() + backward.size(), 7u);
    }
  }
}

TEST(Ring, ProtectionPathIsComplement) {
  UpsrRing ring(5);
  auto protect = ring.protection_path(0, 3);
  // Complement arc uses the working links from 3 to 0, reversed.
  EXPECT_EQ(protect, (std::vector<NodeId>{4, 3}));
}

TEST(Ring, RejectsDegenerate) {
  EXPECT_THROW(UpsrRing(1), CheckError);
  UpsrRing ring(3);
  EXPECT_THROW(ring.hop_count(0, 0), CheckError);
}

GroomingPlan make_plan(NodeId n, int k,
                       std::vector<GroomedPair> pairs) {
  GroomingPlan plan;
  plan.ring_size = n;
  plan.grooming_factor = k;
  plan.pairs = std::move(pairs);
  return plan;
}

TEST(Simulator, ValidPlanPasses) {
  UpsrRing ring(6);
  GroomingPlan plan = make_plan(
      6, 2,
      {{DemandPair{0, 3}, 0, 0}, {DemandPair{1, 4}, 0, 1},
       {DemandPair{2, 5}, 1, 0}});
  SimulationResult sim = simulate_plan(ring, plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
  EXPECT_EQ(sim.wavelengths_used, 2);
  EXPECT_EQ(sim.sadm_count, 6);
  EXPECT_EQ(sim.bypass_count, 6);
  // Each symmetric pair loads every link once: wavelength 0 carries 2
  // pairs -> load 2 on all 6 links; wavelength 1 -> load 1.
  for (NodeId link = 0; link < 6; ++link) {
    EXPECT_EQ(sim.load[0][static_cast<std::size_t>(link)], 2);
    EXPECT_EQ(sim.load[1][static_cast<std::size_t>(link)], 1);
  }
  EXPECT_EQ(sim.unit_hops, 3 * 6);
}

TEST(Simulator, DetectsTimeslotCollision) {
  UpsrRing ring(5);
  GroomingPlan plan = make_plan(
      5, 4, {{DemandPair{0, 1}, 0, 0}, {DemandPair{2, 3}, 0, 0}});
  SimulationResult sim = simulate_plan(ring, plan);
  EXPECT_FALSE(sim.ok);
  EXPECT_NE(sim.issue.find("collision"), std::string::npos);
}

TEST(Simulator, DetectsBadTimeslot) {
  UpsrRing ring(5);
  GroomingPlan plan = make_plan(5, 2, {{DemandPair{0, 1}, 0, 2}});
  EXPECT_FALSE(simulate_plan(ring, plan).ok);
}

TEST(Simulator, DetectsBadEndpoints) {
  UpsrRing ring(5);
  GroomingPlan plan = make_plan(5, 2, {{DemandPair{0, 9}, 0, 0}});
  EXPECT_FALSE(simulate_plan(ring, plan).ok);
}

TEST(Simulator, DetectsRingSizeMismatch) {
  UpsrRing ring(5);
  GroomingPlan plan = make_plan(6, 2, {{DemandPair{0, 1}, 0, 0}});
  EXPECT_FALSE(simulate_plan(ring, plan).ok);
}

TEST(Simulator, FullWavelengthReachesCapacityNotBeyond) {
  UpsrRing ring(4);
  GroomingPlan plan = make_plan(
      4, 3,
      {{DemandPair{0, 1}, 0, 0}, {DemandPair{1, 2}, 0, 1},
       {DemandPair{2, 3}, 0, 2}});
  SimulationResult sim = simulate_plan(ring, plan);
  EXPECT_TRUE(sim.ok) << sim.issue;
  EXPECT_DOUBLE_EQ(sim.mean_utilization, 1.0);
}

TEST(Simulator, RenderSadmMap) {
  UpsrRing ring(4);
  GroomingPlan plan = make_plan(4, 2, {{DemandPair{0, 2}, 0, 0}});
  std::string map = render_sadm_map(ring, plan);
  EXPECT_NE(map.find("A.A."), std::string::npos);
  EXPECT_NE(map.find("(2 SADMs)"), std::string::npos);
}

}  // namespace
}  // namespace tgroom
