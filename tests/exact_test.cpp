#include <gtest/gtest.h>

#include "algorithms/exact.hpp"
#include "algorithms/spant_euler.hpp"
#include "gen/families.hpp"
#include "gen/random_graph.hpp"

namespace tgroom {
namespace {

TEST(Exact, EmptyGraph) {
  Graph g(3);
  ExactResult r = exact_optimal_partition(g, 4);
  EXPECT_EQ(r.cost, 0);
  EXPECT_TRUE(r.proven_optimal);
}

TEST(Exact, SingleEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  ExactResult r = exact_optimal_partition(g, 4);
  EXPECT_EQ(r.cost, 2);
  EXPECT_TRUE(validate_partition(g, r.partition).ok);
}

TEST(Exact, TriangleAtKThree) {
  Graph g = triangle_forest(1);
  ExactResult r = exact_optimal_partition(g, 3);
  EXPECT_EQ(r.cost, 3);
}

TEST(Exact, K4KnownOptimum) {
  Graph g = complete_graph(4);  // 6 edges
  // k=3: triangle (3 nodes) + remaining 3 edges (a star/path spanning 4
  // nodes... actually the complement of a triangle in K4 is a triangle's
  // "co-triangle" = star K1,3): total 3 + 4 = 7.
  ExactResult r3 = exact_optimal_partition(g, 3);
  EXPECT_EQ(r3.cost, 7);
  // k=6: everything on one wavelength: 4.
  EXPECT_EQ(exact_optimal_partition(g, 6).cost, 4);
  // k=1: each edge alone: 12.
  EXPECT_EQ(exact_optimal_partition(g, 1).cost, 12);
}

TEST(Exact, TwoTrianglesSeparate) {
  Graph g = triangle_forest(2);
  ExactResult r = exact_optimal_partition(g, 3);
  EXPECT_EQ(r.cost, 6);
  EXPECT_TRUE(validate_partition(g, r.partition).ok);
}

TEST(Exact, RespectsMaxParts) {
  Graph g = triangle_forest(2);  // 6 edges
  ExactOptions constrained;
  constrained.max_parts = 1;  // impossible at k=3
  // With max_parts=1 and k=3 < 6 edges there is no feasible assignment.
  ExactResult r = exact_optimal_partition(g, 3, constrained);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.partition.parts.empty());

  constrained.max_parts = 2;
  ExactResult r2 = exact_optimal_partition(g, 3, constrained);
  EXPECT_TRUE(r2.feasible);
  EXPECT_EQ(r2.cost, 6);
}

TEST(Exact, CostNeverBelowLowerBound) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Graph g = random_gnm(7, 10, rng);
    for (int k : {2, 3, 4}) {
      ExactResult r = exact_optimal_partition(g, k);
      EXPECT_GE(r.cost, partition_cost_lower_bound(g, k));
      EXPECT_TRUE(validate_partition(g, r.partition).ok);
    }
  }
}

TEST(Exact, HeuristicsNeverBeatOptimal) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed * 13 + 1);
    Graph g = random_gnm(7, 11, rng);
    for (int k : {2, 3}) {
      long long opt = exact_optimal_partition(g, k).cost;
      long long heuristic = sadm_cost(g, spant_euler(g, k));
      EXPECT_LE(opt, heuristic) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(Exact, SadmWavelengthTradeoffExists) {
  // §1 of the paper (citing [1], [7], [13]): minimum SADMs and minimum
  // wavelengths cannot always be achieved simultaneously.  Concrete
  // witness: three disjoint triangles with k = 5.  Free optimum keeps the
  // triangles intact (9 SADMs on 3 wavelengths); forcing the minimum
  // ceil(9/5) = 2 wavelengths must mix triangles and pay more.
  Graph g = triangle_forest(3);
  ExactResult free_opt = exact_optimal_partition(g, 5);
  EXPECT_EQ(free_opt.cost, 9);
  EXPECT_EQ(free_opt.partition.parts.size(), 3u);

  ExactOptions constrained;
  constrained.max_parts =
      static_cast<int>(min_wavelengths(g.real_edge_count(), 5));
  ExactResult min_w = exact_optimal_partition(g, 5, constrained);
  ASSERT_TRUE(min_w.feasible);
  EXPECT_EQ(min_w.partition.parts.size(), 2u);
  EXPECT_GT(min_w.cost, free_opt.cost);  // the tradeoff is real
  EXPECT_EQ(min_w.cost, 11);             // 6-node + 5-node mixed parts
}

TEST(Exact, TradeoffVanishesWhenPartsAlign) {
  // When triangles pack evenly into k the two optima coincide.
  Graph g = triangle_forest(2);
  ExactResult free_opt = exact_optimal_partition(g, 3);
  ExactOptions constrained;
  constrained.max_parts = 2;
  ExactResult min_w = exact_optimal_partition(g, 3, constrained);
  EXPECT_EQ(free_opt.cost, min_w.cost);
}

TEST(Exact, DegreeBoundMakesGadgetNoInstanceFast) {
  // The per-node degree bound must prove the 27-edge 2-regular Theorem 7
  // gadget (a chain of 9 disjoint triangles' worth of structure) optimal
  // well within budget — this regression-pins the pruning power that the
  // NP-hardness round-trip test relies on.
  Graph g = triangle_forest(9);  // 27 edges, optimum 27 at k=3
  ExactResult r = exact_optimal_partition(g, 3);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.cost, 27);
  EXPECT_LT(r.nodes_explored, 2'000'000);
}

TEST(Exact, GuardsAgainstLargeInstances) {
  Graph g = complete_graph(9);  // 36 edges
  EXPECT_THROW(exact_optimal_partition(g, 3), CheckError);
}

TEST(Exact, RejectsVirtualEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2, /*is_virtual=*/true);
  EXPECT_THROW(exact_optimal_partition(g, 2), CheckError);
}

}  // namespace
}  // namespace tgroom
