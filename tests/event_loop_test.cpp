// Tests of the epoll event-loop front-end (service/event_loop.hpp): real
// loopback sockets against an in-process server.  Multi-client responses
// are pinned bit-for-bit against the serial GroomingService::run() path
// (the event loop is a transport, not a semantics change); the rest
// exercises the transport edges — pipelining, partial writes through a
// tiny SO_SNDBUF, abrupt disconnects, admission backpressure, and the
// cross-connection shutdown drain.
//
// Linux-only, like the event loop itself; other platforms compile an
// explicit skip so the suite shape stays identical.
#include <gtest/gtest.h>

#include "service/event_loop.hpp"

#if defined(__linux__)

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "gen/traffic_patterns.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/json.hpp"

namespace tgroom {
namespace {

// ---------------------------------------------------------------- sockets

int connect_port(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void send_str(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads until `lines` newlines arrived (or EOF, which fails the test).
std::string recv_lines(int fd, std::size_t lines) {
  std::string data;
  std::size_t seen = 0;
  char buf[64 * 1024];
  while (seen < lines) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_GT(n, 0) << "connection ended after " << seen << " of " << lines
                    << " lines";
    if (n <= 0) return data;
    for (ssize_t i = 0; i < n; ++i) seen += buf[i] == '\n' ? 1u : 0u;
    data.append(buf, static_cast<std::size_t>(n));
  }
  return data;
}

std::string recv_until_eof(int fd) {
  std::string data;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return data;
    data.append(buf, static_cast<std::size_t>(n));
  }
}

std::vector<std::string> split_lines(const std::string& data) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < data.size()) {
    const std::size_t nl = data.find('\n', begin);
    if (nl == std::string::npos) break;
    lines.push_back(data.substr(begin, nl - begin));
    begin = nl + 1;
  }
  return lines;
}

long long extract_id(const std::string& line) {
  const std::size_t key = line.find("\"id\":");
  EXPECT_NE(key, std::string::npos) << line;
  return std::stoll(line.substr(key + 5));
}

// ---------------------------------------------------------------- server

/// An event-loop server on an ephemeral port, run()ning on its own
/// thread.  Tests stop it with a real `shutdown` request (stop()), so
/// every test also exercises the drain path.
struct TestServer {
  GroomingService service;
  EventLoopServer server;
  std::ostringstream log;
  std::thread thread;
  int rc = -1;

  explicit TestServer(const ServiceConfig& config,
                      const EventLoopConfig& el = EventLoopConfig{})
      : service(config), server(service, el) {
    GroomingService::clear_stop();
    EXPECT_TRUE(server.valid()) << server.error();
    thread = std::thread([this] { rc = server.run(log); });
  }

  ~TestServer() {
    if (thread.joinable()) stop();
  }

  int port() const { return server.port(); }

  /// Sends `shutdown`, waits for the server to drain, returns run()'s rc.
  int stop() {
    if (thread.joinable()) {
      const int fd = connect_port(port());
      send_str(fd, "{\"op\":\"shutdown\"}\n");
      recv_until_eof(fd);
      ::close(fd);
      thread.join();
    }
    return rc;
  }
};

ServiceConfig make_config(std::size_t workers, std::size_t cache_capacity,
                          std::size_t queue_capacity = 256) {
  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = queue_capacity;
  config.cache_capacity = cache_capacity;
  config.metrics_on_exit = false;
  return config;
}

// ---------------------------------------------------------------- workload

std::string groom_request(long long id, const Graph& g, int k,
                          bool include_partition = false) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "groom");
  w.kv("id", id);
  w.key("graph");
  write_graph_json(w, g);
  w.kv("k", static_cast<long long>(k));
  w.kv("seed", std::uint64_t{1});
  if (include_partition) w.kv("include_partition", true);
  w.end_object();
  std::string line = w.take();
  line += '\n';
  return line;
}

Graph client_graph(int client, NodeId n = 16) {
  Rng rng(static_cast<std::uint64_t>(1000 + client));
  return random_traffic(n, 0.5, rng).traffic_graph();
}

/// Runs the same request lines through the serial stdin/stdout service
/// (the semantics reference) and indexes the responses by id.
std::map<long long, std::string> run_serial(const ServiceConfig& config,
                                            const std::string& stream) {
  GroomingService service(config);
  std::istringstream in(stream);
  std::ostringstream out;
  service.run(in, out);
  std::map<long long, std::string> by_id;
  for (const std::string& line : split_lines(out.str())) {
    by_id[extract_id(line)] = line;
  }
  return by_id;
}

// ---------------------------------------------------------------- tests

// Many concurrent clients, each with its own request set, must receive
// byte-identical responses to the serial single-stream service.  Cache
// off, so every response says "cached":false under both transports.
TEST(EventLoop, MultiClientParityWithSerial) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<std::string> streams(kClients);
  std::string all;
  for (int c = 0; c < kClients; ++c) {
    const Graph g = client_graph(c);
    for (int i = 0; i < kPerClient; ++i) {
      const std::string line =
          groom_request(c * 100 + i, g, 4 + i % 3, /*include_partition=*/true);
      streams[static_cast<std::size_t>(c)] += line;
      all += line;
    }
  }
  const std::map<long long, std::string> expected =
      run_serial(make_config(2, 0), all);
  ASSERT_EQ(expected.size(),
            static_cast<std::size_t>(kClients * kPerClient));

  TestServer srv(make_config(2, 0));
  std::map<long long, std::string> got;
  std::mutex got_mutex;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_port(srv.port());
      send_str(fd, streams[static_cast<std::size_t>(c)]);
      ::shutdown(fd, SHUT_WR);  // EOF: server drains, answers, closes
      const std::string data = recv_until_eof(fd);
      ::close(fd);
      std::lock_guard<std::mutex> lock(got_mutex);
      for (const std::string& line : split_lines(data)) {
        got[extract_id(line)] = line;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(got, expected);
  EXPECT_GE(srv.service.metrics().count(
                ServiceMetrics::Counter::kConnAccepted),
            static_cast<long long>(kClients));
  EXPECT_EQ(srv.stop(), 0);
}

// With workers=0 every request executes inline on the loop thread, so a
// pipelined burst must come back in exact request order.
TEST(EventLoop, PipelinedBurstKeepsOrderInline) {
  constexpr int kRequests = 20;
  const Graph g = client_graph(7);
  std::string burst;
  for (int i = 0; i < kRequests; ++i) burst += groom_request(i, g, 4);

  TestServer srv(make_config(0, 0));
  const int fd = connect_port(srv.port());
  send_str(fd, burst);  // one send: the server sees one readiness event
  const std::vector<std::string> lines =
      split_lines(recv_lines(fd, kRequests));
  ::close(fd);

  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(extract_id(lines[static_cast<std::size_t>(i)]), i)
        << "responses reordered at position " << i;
  }
  EXPECT_GT(srv.service.metrics().count(ServiceMetrics::Counter::kPipelined),
            0);
  EXPECT_EQ(srv.stop(), 0);
}

// A tiny SO_SNDBUF plus a deliberately slow reader forces the outbox
// through many partial writes and EPOLLOUT cycles; the reassembled
// responses must still be bit-identical to the serial reference.
TEST(EventLoop, PartialWriteTortureTinySndbuf) {
  constexpr int kRequests = 4;
  Rng rng(424242);
  const Graph g = random_traffic(200, 0.5, rng).traffic_graph();
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += groom_request(i, g, 8, /*include_partition=*/true);
  }
  const std::map<long long, std::string> expected =
      run_serial(make_config(0, 0), burst);

  EventLoopConfig el;
  el.sndbuf = 2048;  // the kernel clamps up, but stays far below one response
  TestServer srv(make_config(0, 0), el);
  const int fd = connect_port(srv.port());
  send_str(fd, burst);
  std::string data;
  std::size_t seen = 0;
  char buf[512];
  while (seen < kRequests) {  // small, throttled reads
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    for (ssize_t i = 0; i < n; ++i) seen += buf[i] == '\n' ? 1u : 0u;
    data.append(buf, static_cast<std::size_t>(n));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ::close(fd);

  std::map<long long, std::string> got;
  for (const std::string& line : split_lines(data)) {
    got[extract_id(line)] = line;
  }
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [id, line] : expected) {
    EXPECT_GT(line.size(), static_cast<std::size_t>(el.sndbuf) * 2)
        << "response too small to exercise partial writes";
    EXPECT_EQ(got[id], line);
  }
  EXPECT_EQ(srv.stop(), 0);
}

// Clients that vanish mid-request (half a line, or a full request with an
// immediate hard close) must not take the server down or wedge the loop.
TEST(EventLoop, MidRequestDisconnectLeavesServerServing) {
  TestServer srv(make_config(2, 0));

  // Half a request line, then a hard close.
  {
    const int fd = connect_port(srv.port());
    send_str(fd, "{\"op\":\"groom\",\"id\":1,\"graph\":{\"n\":8,");
    ::close(fd);
  }
  // A full request whose client disappears before the response.
  {
    const int fd = connect_port(srv.port());
    send_str(fd, groom_request(2, client_graph(3), 4));
    ::close(fd);
  }
  // The server must still answer a well-behaved client.
  const Graph g = client_graph(4);
  const std::map<long long, std::string> expected =
      run_serial(make_config(2, 0), groom_request(3, g, 4));
  const int fd = connect_port(srv.port());
  send_str(fd, groom_request(3, g, 4));
  const std::vector<std::string> lines = split_lines(recv_lines(fd, 1));
  ::close(fd);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], expected.at(3));
  EXPECT_EQ(srv.stop(), 0);
}

// A pipelined burst far beyond the admission queue gets structured
// `overloaded` rejections, never silence: one response per request, on a
// connection that stays usable afterwards.
TEST(EventLoop, OverloadedBurstAnswersEveryRequest) {
  constexpr int kRequests = 16;
  const Graph g = client_graph(9, /*n=*/24);
  std::string burst;
  for (int i = 0; i < kRequests; ++i) burst += groom_request(i, g, 8);

  TestServer srv(make_config(1, 0, /*queue_capacity=*/1));
  const int fd = connect_port(srv.port());
  send_str(fd, burst);
  const std::vector<std::string> lines =
      split_lines(recv_lines(fd, kRequests));
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  int overloaded = 0;
  for (const std::string& line : lines) {
    if (line.find("\"overloaded\"") != std::string::npos) ++overloaded;
  }
  EXPECT_GT(overloaded, 0);
  EXPECT_EQ(srv.service.metrics().count(ServiceMetrics::Counter::kOverloaded),
            overloaded);

  // The connection survives the rejections.
  send_str(fd, groom_request(99, g, 8));
  const std::vector<std::string> more = split_lines(recv_lines(fd, 1));
  ::close(fd);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(extract_id(more[0]), 99);
  EXPECT_EQ(srv.stop(), 0);
}

// `shutdown` from one connection drains the whole server: other clients'
// accepted work still completes, every outbox flushes, run() returns 0,
// and every accepted connection is accounted closed.
TEST(EventLoop, ShutdownDrainsAcrossConnections) {
  TestServer srv(make_config(2, 0));
  const Graph g = client_graph(11);

  const int other = connect_port(srv.port());
  send_str(other, groom_request(1, g, 4));
  EXPECT_EQ(extract_id(split_lines(recv_lines(other, 1)).at(0)), 1);

  const int closer = connect_port(srv.port());
  send_str(closer, "{\"op\":\"shutdown\",\"id\":50}\n");
  const std::string reply = recv_until_eof(closer);
  ::close(closer);
  EXPECT_NE(reply.find("\"op\":\"shutdown\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"id\":50"), std::string::npos) << reply;

  // The drained server closes the other connection too (EOF, not reset).
  EXPECT_EQ(recv_until_eof(other), "");
  ::close(other);

  srv.thread.join();
  EXPECT_EQ(srv.rc, 0);
  const long long accepted =
      srv.service.metrics().count(ServiceMetrics::Counter::kConnAccepted);
  const long long closed =
      srv.service.metrics().count(ServiceMetrics::Counter::kConnClosed);
  EXPECT_GE(accepted, 2);
  EXPECT_EQ(accepted, closed);
}

}  // namespace
}  // namespace tgroom

#else  // !__linux__

TEST(EventLoop, SkippedWithoutLinux) {
  GTEST_SKIP() << "epoll event loop requires linux";
}

#endif
