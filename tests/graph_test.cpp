#include <gtest/gtest.h>

#include "gen/families.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

namespace tgroom {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.add_node(), 3);
  EdgeId e = g.add_edge(0, 3);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.real_edge_count(), 1);
  EXPECT_EQ(g.edge(e).u, 0);
  EXPECT_EQ(g.edge(e).v, 3);
  EXPECT_EQ(g.edge(e).other(0), 3);
  EXPECT_EQ(g.edge(e).other(3), 0);
}

TEST(Graph, RejectsSelfLoopsAndBadIds) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), CheckError);
  EXPECT_THROW(g.add_edge(0, 5), CheckError);
  EXPECT_THROW(g.add_edge(-1, 0), CheckError);
}

TEST(Graph, VirtualEdgesTrackedSeparately) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2, /*is_virtual=*/true);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(g.real_edge_count(), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.real_degree(1), 1);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // parallel real edges are storable (checked separately)
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_FALSE(is_simple(g));
}

TEST(Graph, ResizeNodesGrowsOnly) {
  Graph g(3);
  g.resize_nodes(6);
  EXPECT_EQ(g.node_count(), 6);
  g.resize_nodes(2);  // shrink requests are ignored
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_THROW(g.resize_nodes(-1), CheckError);
}

TEST(Graph, FindEdge) {
  Graph g(4);
  EdgeId e = g.add_edge(1, 3);
  EXPECT_EQ(g.find_edge(1, 3), e);
  EXPECT_EQ(g.find_edge(3, 1), e);
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Properties, DegreesAndRegularity) {
  Graph c5 = cycle_graph(5);
  EXPECT_EQ(max_degree(c5), 2);
  EXPECT_EQ(min_degree(c5), 2);
  ASSERT_TRUE(regularity(c5).has_value());
  EXPECT_EQ(*regularity(c5), 2);

  Graph star = star_graph(5);
  EXPECT_EQ(max_degree(star), 4);
  EXPECT_EQ(min_degree(star), 1);
  EXPECT_FALSE(regularity(star).has_value());
}

TEST(Properties, OddDegreeNodes) {
  Graph p4 = path_graph(4);  // two endpoints odd
  auto odd = odd_degree_nodes(p4);
  EXPECT_EQ(odd, (std::vector<NodeId>{0, 3}));
}

TEST(Properties, IsSimpleDetectsParallelRealEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(is_simple(g));
  g.add_edge(0, 1);
  EXPECT_FALSE(is_simple(g));
}

TEST(Properties, IsSimpleIgnoresVirtualDuplicates) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1, /*is_virtual=*/true);
  EXPECT_TRUE(is_simple(g));
}

TEST(Properties, SpannedNodes) {
  Graph g = path_graph(5);
  EXPECT_EQ(spanned_node_count(g, {0, 1}), 3);        // edges 0-1, 1-2
  EXPECT_EQ(spanned_node_count(g, {0, 3}), 4);        // 0-1 and 3-4
  EXPECT_EQ(spanned_nodes(g, {0}), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(spanned_node_count(g, {}), 0);
}

TEST(Properties, MaskedDegrees) {
  Graph g = cycle_graph(4);
  std::vector<char> mask(4, 0);
  mask[0] = 1;  // edge 0-1 only
  auto deg = masked_degrees(g, mask);
  EXPECT_EQ(deg[0], 1);
  EXPECT_EQ(deg[1], 1);
  EXPECT_EQ(deg[2], 0);
}

TEST(Properties, ActiveNodeCount) {
  Graph g(5);
  g.add_edge(0, 1);
  EXPECT_EQ(active_node_count(g), 2);
}

TEST(Families, Sizes) {
  EXPECT_EQ(complete_graph(6).edge_count(), 15);
  EXPECT_EQ(cycle_graph(7).edge_count(), 7);
  EXPECT_EQ(path_graph(7).edge_count(), 6);
  EXPECT_EQ(star_graph(7).edge_count(), 6);
  EXPECT_EQ(complete_bipartite(3, 4).edge_count(), 12);
  EXPECT_EQ(grid_graph(3, 4).edge_count(), 17);
  EXPECT_EQ(triangle_forest(3).edge_count(), 9);
}

TEST(Families, PetersenIsCubic) {
  Graph p = petersen_graph();
  EXPECT_EQ(p.node_count(), 10);
  EXPECT_EQ(p.edge_count(), 15);
  ASSERT_TRUE(regularity(p).has_value());
  EXPECT_EQ(*regularity(p), 3);
  EXPECT_TRUE(is_simple(p));
}

TEST(Families, CaterpillarShape) {
  Graph c = caterpillar_graph(4, 2);
  EXPECT_EQ(c.node_count(), 12);
  EXPECT_EQ(c.edge_count(), 11);  // spine 3 + legs 8
  EXPECT_EQ(c.degree(0), 3);      // spine end: 1 spine + 2 legs
  EXPECT_EQ(c.degree(1), 4);      // inner spine: 2 spine + 2 legs
}

TEST(GraphIo, RoundTrip) {
  Graph g = petersen_graph();
  std::string text = write_edge_list_string(g);
  Graph back = read_edge_list_string(text);
  EXPECT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(back.edge(e).u, g.edge(e).u);
    EXPECT_EQ(back.edge(e).v, g.edge(e).v);
  }
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  Graph g = read_edge_list_string(
      "# a comment\n\n3 2\n# edges\n0 1\n\n1 2\n");
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW(read_edge_list_string(""), CheckError);
  EXPECT_THROW(read_edge_list_string("3 2\n0 1\n"), CheckError);   // missing edge
  EXPECT_THROW(read_edge_list_string("2 1\n0 5\n"), CheckError);   // bad id
}

TEST(GraphIo, FileRoundTrip) {
  Graph g = grid_graph(3, 3);
  std::string path = ::testing::TempDir() + "/tgroom_graph_io.txt";
  write_edge_list_file(path, g);
  Graph back = read_edge_list_file(path);
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/tgroom.txt"), CheckError);
}

TEST(GraphIo, VirtualEdgesNotSerialized) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2, /*is_virtual=*/true);
  Graph back = read_edge_list_string(write_edge_list_string(g));
  EXPECT_EQ(back.edge_count(), 1);
}

}  // namespace
}  // namespace tgroom
