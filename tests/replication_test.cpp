// Tests of WAL-shipping replication (src/replication/): parity between a
// primary and a live replica over real loopback sockets, mid-log
// catch-up, snapshot bootstrap after compaction, handshake version
// gating, read-only enforcement, promotion, and the health probe.
//
// Suite naming matters for CI: everything here is in Replication* suites
// so the TSan job includes the concurrent stream-apply path by regex.
#include <gtest/gtest.h>

#include "replication/replica.hpp"

#if defined(__linux__)

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/traffic_patterns.hpp"
#include "graph/fingerprint.hpp"
#include "grooming/plan.hpp"
#include "service/event_loop.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "store/durable_store.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace tgroom {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- fixtures

struct TempDir {
  fs::path path;

  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("tgroom_repl_test_" +
            std::to_string(static_cast<long long>(::getpid())) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

int connect_port(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void send_str(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads until `lines` newlines arrived (EOF fails the test).
std::string recv_lines(int fd, std::size_t lines) {
  std::string data;
  std::size_t seen = 0;
  char buf[64 * 1024];
  while (seen < lines) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_GT(n, 0) << "connection ended after " << seen << " of " << lines
                    << " lines";
    if (n <= 0) return data;
    for (ssize_t i = 0; i < n; ++i) seen += buf[i] == '\n' ? 1u : 0u;
    data.append(buf, static_cast<std::size_t>(n));
  }
  return data;
}

std::string recv_until_eof(int fd) {
  std::string data;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return data;
    data.append(buf, static_cast<std::size_t>(n));
  }
}

/// An event-loop primary on an ephemeral port, on its own thread.
struct PrimaryServer {
  GroomingService service;
  EventLoopServer server;
  std::ostringstream log;
  std::thread thread;
  int rc = -1;

  explicit PrimaryServer(const ServiceConfig& config)
      : service(config), server(service, EventLoopConfig{}) {
    GroomingService::clear_stop();
    EXPECT_TRUE(server.valid()) << server.error();
    service.open_store();
    thread = std::thread([this] { rc = server.run(log); });
  }

  ~PrimaryServer() {
    if (thread.joinable()) stop();
  }

  int port() const { return server.port(); }

  int stop() {
    if (thread.joinable()) {
      const int fd = connect_port(port());
      send_str(fd, "{\"op\":\"shutdown\"}\n");
      recv_until_eof(fd);
      ::close(fd);
      thread.join();
    }
    return rc;
  }
};

// ---------------------------------------------------------------- workload

Graph seeded_graph(int which, NodeId n = 12) {
  Rng rng(static_cast<std::uint64_t>(100 + which));
  return random_traffic(n, 0.6, rng).traffic_graph();
}

std::string groom_hold_request(long long id, const Graph& g, int k) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "groom");
  w.kv("id", id);
  w.key("graph");
  write_graph_json(w, g);
  w.kv("k", static_cast<long long>(k));
  w.kv("seed", std::uint64_t{1});
  w.kv("hold", true);
  w.end_object();
  return w.take() + "\n";
}

/// Sends each line and waits for its response before the next, so the
/// workload is valid under any worker count.
void drive(int fd, const std::vector<std::string>& lines) {
  for (const std::string& line : lines) {
    send_str(fd, line);
    recv_lines(fd, 1);
  }
}

/// A deterministic mutation mix over `plan_count` held plans (provision
/// pairs, partial releases, one drop-all) — every op references a plan
/// the holds above it created.
std::vector<std::string> mutation_mix(int plan_count, int rounds,
                                      int id_base) {
  std::vector<std::string> lines;
  int id = id_base;
  for (int r = 0; r < rounds; ++r) {
    for (int p = 1; p <= plan_count; ++p) {
      const int a = (r + p) % 11;
      const int b = (r + 2 * p + 1) % 11 + 1;
      lines.push_back("{\"op\":\"provision\",\"id\":" + std::to_string(id++) +
                      ",\"plan_id\":" + std::to_string(p) + ",\"add\":[[" +
                      std::to_string(a) + "," + std::to_string(b == a ? b + 1
                                                                      : b) +
                      "]]}\n");
    }
    lines.push_back("{\"op\":\"release\",\"id\":" + std::to_string(id++) +
                    ",\"plan_id\":" + std::to_string(1 + r % plan_count) +
                    ",\"remove\":[[" + std::to_string(r % 11) + "," +
                    std::to_string(r % 11 + 1) + "]],\"repair\":true}\n");
  }
  return lines;
}

/// Canonical text of a store directory's recovered state: last seq,
/// next_plan_id, and every held plan serialized — the bit-identity
/// oracle for primary/replica parity.
std::string dump_store(const std::string& dir) {
  StoreRecovery recovery;
  RecoveredState state =
      recover_store_state(dir, &recovery, /*repair=*/false);
  std::vector<std::pair<std::int64_t, GroomingPlan>> plans(
      std::make_move_iterator(state.plans.begin()),
      std::make_move_iterator(state.plans.end()));
  std::sort(plans.begin(), plans.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream out;
  out << "last_seq=" << recovery.last_seq
      << " next_plan_id=" << state.next_plan_id << "\n";
  for (const auto& [id, plan] : plans) {
    out << "plan " << id << "\n" << serialize_plan(plan);
  }
  return out.str();
}

/// Polls until the replica has applied the primary's last_seq (or the
/// deadline fails the test).
void wait_caught_up(ReplicationClient& client, std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (client.applied_seq() < target) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replica stuck at " << client.applied_seq() << " of " << target
        << " (last_error: " << client.last_error() << ")";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

ServiceRequest parse_or_die(const std::string& line) {
  RequestParse parsed = parse_request(line);
  EXPECT_TRUE(parsed.request.has_value()) << parsed.error << " <- " << line;
  return std::move(*parsed.request);
}

// ---------------------------------------------------------------- parity

TEST(Replication, ParityFromSeqZeroOverLiveStream) {
  TempDir primary_dir;
  TempDir replica_dir;
  ServiceConfig primary_config;
  primary_config.workers = 2;
  primary_config.data_dir = primary_dir.str();
  primary_config.metrics_on_exit = false;
  PrimaryServer primary(primary_config);

  ServiceConfig replica_config;
  replica_config.data_dir = replica_dir.str();
  replica_config.replica_of = "127.0.0.1:" + std::to_string(primary.port());
  replica_config.metrics_on_exit = false;
  GroomingService replica(replica_config);
  replica.open_store();
  EXPECT_TRUE(replica.is_replica());

  ReplicationClientConfig link_config;
  link_config.primary = replica_config.replica_of;
  link_config.batch_records = 16;  // many fetch round-trips, not one
  ReplicationClient client(replica, link_config);
  replica.set_replica_link(&client);
  client.start();

  const int fd = connect_port(primary.port());
  std::vector<std::string> lines;
  for (int i = 0; i < 4; ++i) {
    lines.push_back(groom_hold_request(i + 1, seeded_graph(i), 4));
  }
  for (std::string& line : mutation_mix(4, 6, 100)) {
    lines.push_back(std::move(line));
  }
  drive(fd, lines);

  // Health and stats on the replica race the live apply thread — the
  // TSan-visible surface of the lag counters.
  ServiceRequest health = parse_or_die("{\"op\":\"health\"}");
  std::string health_line = replica.execute(health, nullptr);
  EXPECT_NE(health_line.find("\"role\":\"replica\""), std::string::npos)
      << health_line;
  ServiceRequest stats = parse_or_die("{\"op\":\"stats\"}");
  std::string stats_line = replica.execute(stats, nullptr);
  EXPECT_NE(stats_line.find("\"replication\":{"), std::string::npos)
      << stats_line;
  EXPECT_NE(stats_line.find("\"primary\":\"127.0.0.1:"), std::string::npos)
      << stats_line;

  const std::uint64_t target = primary.service.applied_seq();
  ASSERT_GT(target, 0u);
  wait_caught_up(client, target);
  client.stop_and_drain();
  ::close(fd);
  primary.stop();  // flushes + snapshots the primary store

  replica.store()->flush();
  EXPECT_EQ(dump_store(replica_dir.str()), dump_store(primary_dir.str()));
}

TEST(Replication, MidLogCatchUpAfterClientRestart) {
  TempDir primary_dir;
  TempDir replica_dir;
  ServiceConfig primary_config;
  primary_config.workers = 0;
  primary_config.data_dir = primary_dir.str();
  primary_config.metrics_on_exit = false;
  PrimaryServer primary(primary_config);

  ServiceConfig replica_config;
  replica_config.data_dir = replica_dir.str();
  replica_config.replica_of = "127.0.0.1:" + std::to_string(primary.port());
  replica_config.metrics_on_exit = false;
  GroomingService replica(replica_config);
  replica.open_store();

  const int fd = connect_port(primary.port());
  std::vector<std::string> phase1;
  for (int i = 0; i < 3; ++i) {
    phase1.push_back(groom_hold_request(i + 1, seeded_graph(10 + i), 4));
  }
  drive(fd, phase1);

  // First client: stream the first phase, then stop (as a restart
  // would).
  {
    ReplicationClientConfig link_config;
    link_config.primary = replica_config.replica_of;
    ReplicationClient client(replica, link_config);
    client.start();
    wait_caught_up(client, primary.service.applied_seq());
    client.stop_and_drain();
  }
  const std::uint64_t mid = replica.applied_seq();
  ASSERT_GT(mid, 0u);

  // More primary history while no client is attached.
  drive(fd, mutation_mix(3, 4, 200));

  // Second client: handshakes at a mid-log start_seq and must resume
  // from exactly there (no snapshot, no re-apply).
  {
    ReplicationClientConfig link_config;
    link_config.primary = replica_config.replica_of;
    ReplicationClient client(replica, link_config);
    client.start();
    wait_caught_up(client, primary.service.applied_seq());
    EXPECT_GE(client.applied_seq(), mid);
    client.stop_and_drain();
  }
  ::close(fd);
  primary.stop();

  replica.store()->flush();
  EXPECT_EQ(dump_store(replica_dir.str()), dump_store(primary_dir.str()));
}

TEST(Replication, SnapshotBootstrapWhenPrimaryCompactedAwayTheLog) {
  TempDir primary_dir;
  TempDir replica_dir;
  // Pre-build a primary store whose early WAL history is already
  // compacted away: tiny segments so every hold rolls its own file, then
  // a snapshot that retires all but the live segment.  A fresh replica's
  // cursor (0) now predates first_available.
  {
    DurableStoreOptions options;
    options.dir = primary_dir.str();
    options.segment_bytes = 32;
    DurableStore store(options);
    GroomCacheKey key;
    key.fingerprint = 42;
    GroomCacheValue value;
    value.sadms = 3;
    SnapshotData snap;
    for (std::int64_t i = 1; i <= 4; ++i) {
      GroomingPlan plan;
      plan.ring_size = 12;
      plan.grooming_factor = 4;
      store.append_hold(i, plan, key, value);
      snap.plans.emplace_back(i, plan);
    }
    snap.last_seq = 4;
    snap.next_plan_id = 5;
    ASSERT_TRUE(store.write_snapshot(snap));
    store.flush();
  }
  {
    const std::vector<std::string> segs = list_wal_segments(primary_dir.str());
    ASSERT_EQ(segs.size(), 1u);
    ASSERT_GT(wal_segment_first_seq(segs.front()), 1u);
  }

  ServiceConfig primary_config;
  primary_config.workers = 0;
  primary_config.data_dir = primary_dir.str();
  primary_config.metrics_on_exit = false;
  PrimaryServer primary(primary_config);

  const int fd = connect_port(primary.port());
  drive(fd, mutation_mix(4, 3, 300));

  // A fresh replica's cursor (0) predates everything the compacted WAL
  // still holds, so the handshake must route it through repl_snapshot.
  ServiceConfig replica_config;
  replica_config.data_dir = replica_dir.str();
  replica_config.replica_of = "127.0.0.1:" + std::to_string(primary.port());
  replica_config.metrics_on_exit = false;
  GroomingService replica(replica_config);
  replica.open_store();
  ReplicationClientConfig link_config;
  link_config.primary = replica_config.replica_of;
  ReplicationClient client(replica, link_config);
  replica.set_replica_link(&client);
  client.start();
  wait_caught_up(client, primary.service.applied_seq());

  JsonWriter status;
  status.begin_object();
  client.write_status_json(status);
  status.end_object();
  EXPECT_NE(status.str().find("\"snapshot_bootstraps\":1"),
            std::string::npos)
      << status.str();

  client.stop_and_drain();
  ::close(fd);
  primary.stop();

  // The bootstrap resets the replica's store to the snapshot, so the
  // recovered tables (and the seq cursor) still match the primary.
  replica.store()->flush();
  StoreRecovery primary_rec;
  StoreRecovery replica_rec;
  RecoveredState primary_state =
      recover_store_state(primary_dir.str(), &primary_rec, false);
  RecoveredState replica_state =
      recover_store_state(replica_dir.str(), &replica_rec, false);
  EXPECT_EQ(primary_rec.last_seq, replica_rec.last_seq);
  EXPECT_EQ(primary_state.next_plan_id, replica_state.next_plan_id);
  ASSERT_EQ(primary_state.plans.size(), replica_state.plans.size());
  for (const auto& [id, plan] : primary_state.plans) {
    auto it = replica_state.plans.find(id);
    ASSERT_NE(it, replica_state.plans.end()) << "plan " << id;
    EXPECT_EQ(serialize_plan(plan), serialize_plan(it->second));
  }
}

TEST(Replication, DivergedHistoryForcesSnapshotBootstrapNotAForkedWal) {
  TempDir primary_dir;
  TempDir replica_dir;
  // Two stores that agree on record 1 but hold *different bytes* at
  // seq 2 — the post-failover shape: an old primary re-attaching as a
  // replica of the promoted node wrote its own record at a seq the new
  // primary also assigned.  Appending the stream past it would silently
  // fork the stores; the handshake CRC check must route this replica
  // through a snapshot bootstrap instead.
  GroomCacheKey key;
  key.fingerprint = 7;
  GroomCacheValue value;
  value.sadms = 1;
  GroomingPlan shared;
  shared.ring_size = 8;
  shared.grooming_factor = 4;
  {
    DurableStoreOptions options;
    options.dir = primary_dir.str();
    DurableStore store(options);
    store.append_hold(1, shared, key, value);
    GroomingPlan own = shared;
    own.ring_size = 10;
    store.append_hold(2, own, key, value);
    store.flush();
  }
  {
    DurableStoreOptions options;
    options.dir = replica_dir.str();
    DurableStore store(options);
    store.append_hold(1, shared, key, value);
    GroomingPlan diverged = shared;
    diverged.ring_size = 12;  // same seq, different bytes
    store.append_hold(2, diverged, key, value);
    store.flush();
  }

  ServiceConfig primary_config;
  primary_config.workers = 0;
  primary_config.data_dir = primary_dir.str();
  primary_config.metrics_on_exit = false;
  PrimaryServer primary(primary_config);
  const int fd = connect_port(primary.port());
  drive(fd, {groom_hold_request(1, seeded_graph(20), 4)});  // seq 3

  ServiceConfig replica_config;
  replica_config.data_dir = replica_dir.str();
  replica_config.replica_of = "127.0.0.1:" + std::to_string(primary.port());
  replica_config.metrics_on_exit = false;
  GroomingService replica(replica_config);
  replica.open_store();
  ASSERT_EQ(replica.applied_seq(), 2u);  // cursor sits on the diverged record

  ReplicationClientConfig link_config;
  link_config.primary = replica_config.replica_of;
  ReplicationClient client(replica, link_config);
  replica.set_replica_link(&client);
  client.start();
  wait_caught_up(client, primary.service.applied_seq());

  // The catch-up must have gone through repl_snapshot (CRC mismatch),
  // not a plain WAL resume that would have appended past the fork.
  JsonWriter status;
  status.begin_object();
  client.write_status_json(status);
  status.end_object();
  EXPECT_NE(status.str().find("\"snapshot_bootstraps\":1"),
            std::string::npos)
      << status.str();

  client.stop_and_drain();
  ::close(fd);
  primary.stop();

  replica.store()->flush();
  EXPECT_EQ(dump_store(replica_dir.str()), dump_store(primary_dir.str()));
}

// ---------------------------------------------------------------- gating

TEST(Replication, HandshakeRejectsForeignFormatVersions) {
  TempDir dir;
  ServiceConfig config;
  config.data_dir = dir.str();
  GroomingService service(config);
  service.open_store();

  ServiceRequest wrong_store = parse_or_die(
      "{\"op\":\"repl_handshake\",\"store_version\":9999,"
      "\"fingerprint_version\":1,\"start_seq\":0}");
  std::string line = service.execute(wrong_store, nullptr);
  EXPECT_NE(line.find("\"error\":\"store_incompatible\""), std::string::npos)
      << line;

  ServiceRequest wrong_fp = parse_or_die(
      "{\"op\":\"repl_handshake\",\"store_version\":" +
      std::to_string(kStoreFormatVersion) +
      ",\"fingerprint_version\":9999,\"start_seq\":0}");
  line = service.execute(wrong_fp, nullptr);
  EXPECT_NE(line.find("\"error\":\"store_incompatible\""), std::string::npos)
      << line;

  ServiceRequest good = parse_or_die(
      "{\"op\":\"repl_handshake\",\"store_version\":" +
      std::to_string(kStoreFormatVersion) + ",\"fingerprint_version\":" +
      std::to_string(static_cast<int>(kFingerprintFormatVersion)) +
      ",\"start_seq\":0}");
  line = service.execute(good, nullptr);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"mode\":"), std::string::npos) << line;
}

TEST(Replication, ReplicaRejectsMutationsButServesReads) {
  TempDir dir;
  ServiceConfig config;
  config.data_dir = dir.str();
  config.replica_of = "198.51.100.1:9";  // never dialed in this test
  GroomingService service(config);
  service.open_store();

  // A held groom is a mutation: rejected with the structured code and
  // the primary's address in the message.
  const Graph g = seeded_graph(0);
  ServiceRequest hold = parse_or_die(groom_hold_request(1, g, 4));
  std::string line = service.execute(hold, nullptr);
  EXPECT_NE(line.find("\"error\":\"read_only\""), std::string::npos) << line;
  EXPECT_NE(line.find("198.51.100.1:9"), std::string::npos) << line;
  EXPECT_EQ(service.held_plan_count(), 0u);
  EXPECT_EQ(
      service.metrics().count(ServiceMetrics::Counter::kReadOnlyRejected), 1);

  // A plain groom only reads: allowed.
  ServiceRequest plain = parse_or_die(groom_hold_request(2, g, 4));
  plain.hold = false;
  line = service.execute(plain, nullptr);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;

  // Held-plan provision/release are mutations; the stateless inline-plan
  // form of provision stays read-only-safe.
  ServiceRequest held_provision = parse_or_die(
      "{\"op\":\"provision\",\"plan_id\":1,\"add\":[[0,1]]}");
  line = service.execute(held_provision, nullptr);
  EXPECT_NE(line.find("\"error\":\"read_only\""), std::string::npos) << line;
  ServiceRequest held_release = parse_or_die(
      "{\"op\":\"release\",\"plan_id\":1,\"remove\":[[0,1]]}");
  line = service.execute(held_release, nullptr);
  EXPECT_NE(line.find("\"error\":\"read_only\""), std::string::npos) << line;
  ServiceRequest inline_provision = parse_or_die(
      "{\"op\":\"provision\",\"plan\":{\"ring_size\":4,\"k\":2,\"pairs\":[]},"
      "\"add\":[[0,1]]}");
  line = service.execute(inline_provision, nullptr);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
}

// ---------------------------------------------------------------- promote

/// A link that only records the drain call (promotion without sockets).
class FakeLink : public ReplicaLink {
 public:
  void stop_and_drain() override { drained = true; }
  void write_status_json(JsonWriter&) const override {}
  std::uint64_t applied_seq() const override { return 7; }
  std::uint64_t primary_last_seq() const override { return 9; }
  bool drained = false;
};

TEST(Replication, PromoteDrainsFlushesAndAcceptsMutations) {
  TempDir dir;
  ServiceConfig config;
  config.data_dir = dir.str();
  config.replica_of = "203.0.113.7:9";
  GroomingService service(config);
  service.open_store();
  FakeLink link;
  service.set_replica_link(&link);

  ServiceRequest promote = parse_or_die("{\"op\":\"promote\"}");
  std::string line = service.execute(promote, nullptr);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"role\":\"primary\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"was_replica_of\":\"203.0.113.7:9\""),
            std::string::npos)
      << line;
  EXPECT_TRUE(link.drained);
  EXPECT_FALSE(service.is_replica());

  // The flipped node takes mutations.
  ServiceRequest hold = parse_or_die(groom_hold_request(1, seeded_graph(1), 4));
  line = service.execute(hold, nullptr);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_EQ(service.held_plan_count(), 1u);

  // Promoting a primary is a structured error, and idempotent-safe.
  ServiceRequest again = parse_or_die("{\"op\":\"promote\"}");
  line = service.execute(again, nullptr);
  EXPECT_NE(line.find("\"error\":\"bad_request\""), std::string::npos)
      << line;
}

// ---------------------------------------------------------------- health

TEST(Replication, HealthReportsRoleSeqAndLag) {
  ServiceConfig config;
  GroomingService service(config);
  ServiceRequest health = parse_or_die("{\"op\":\"health\",\"id\":5}");
  std::string line = service.execute(health, nullptr);
  EXPECT_NE(line.find("\"id\":5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"role\":\"primary\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"last_seq\":0"), std::string::npos) << line;
  EXPECT_NE(line.find("\"uptime_s\":"), std::string::npos) << line;

  ServiceConfig replica_config;
  replica_config.replica_of = "192.0.2.3:4";
  GroomingService replica(replica_config);
  FakeLink link;
  replica.set_replica_link(&link);
  ServiceRequest probe = parse_or_die("{\"op\":\"health\"}");
  line = replica.execute(probe, nullptr);
  EXPECT_NE(line.find("\"role\":\"replica\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"primary\":\"192.0.2.3:4\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"applied_seq\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"primary_last_seq\":9"), std::string::npos) << line;
  EXPECT_NE(line.find("\"lag\":2"), std::string::npos) << line;
}

}  // namespace
}  // namespace tgroom

#else  // !defined(__linux__)

TEST(Replication, SkippedOnNonLinux) { GTEST_SKIP(); }

#endif
